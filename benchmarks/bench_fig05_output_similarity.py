"""Figure 5: relative change in neuron output between consecutive input
elements (CDF over neurons).

Paper's observations: ~25% of neurons change by less than 10% between
consecutive inputs, and the average change is ~23%.
"""

import numpy as np
from conftest import emit

from repro.analysis.figures import render_table
from repro.core.stats import output_change_profile, profile_summary
from repro.models.specs import BENCHMARK_NAMES


def test_fig05_output_change_profile(benchmark, cache):
    def run():
        profiles = {}
        for name in BENCHMARK_NAMES:
            bench = cache.benchmark(name)
            profiles[name] = output_change_profile(bench.hidden_sequences())
        return profiles

    profiles = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, profile in profiles.items():
        summary = profile_summary(profile)
        percentiles = [
            float(np.percentile(profile, p)) for p in (10, 25, 50, 75, 90)
        ]
        rows.append(
            [
                name,
                summary["mean_percent"],
                100.0 * summary["fraction_below_10pct"],
                *percentiles,
            ]
        )
    emit(
        benchmark,
        "Figure 5 (per-neuron relative output change, %)",
        render_table(
            ["network", "mean", "%neurons<10%", "p10", "p25", "p50", "p75", "p90"],
            rows,
        ),
    )

    pooled = np.concatenate(list(profiles.values()))
    summary = profile_summary(pooled)
    # Paper: the average change is small (~23% in the paper's networks).
    # Our scaled networks land at 22-30% for three of the four; the MNMT
    # stand-in is higher (token-level inputs change faster than audio).
    assert summary["mean_percent"] <= 60.0
    small_means = [
        profile_summary(p)["mean_percent"] <= 35.0 for p in profiles.values()
    ]
    assert sum(small_means) >= 2, "expected paper-like means on most networks"
