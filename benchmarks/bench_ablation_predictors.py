"""Ablation: BNN predictor vs oracle vs input-similarity strawman.

§1 argues that "similar inputs produce similar outputs" is not a safe
predictor because small input changes can be multiplied by large
weights; this bench quantifies it: at matched reuse levels the
input-similarity predictor loses more accuracy than the BNN.
"""

from conftest import emit

from repro.analysis.figures import render_table
from repro.models.specs import BENCHMARK_NAMES

PREDICTORS = ("oracle", "bnn", "input")


def test_ablation_predictor_kinds(benchmark, cache):
    def run():
        return {
            (name, pred): cache.sweep(name, predictor=pred)
            for name in BENCHMARK_NAMES
            for pred in PREDICTORS
        }

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name in BENCHMARK_NAMES:
        row = [name]
        for pred in PREDICTORS:
            reuse = sweeps[(name, pred)].reuse_at_loss(2.0)
            row.append(f"{100 * reuse:.1f}%")
        rows.append(row)
    emit(
        benchmark,
        "Ablation (reuse at <=2% loss, by predictor)",
        render_table(["network", *PREDICTORS], rows),
    )

    # Aggregate reuse-at-loss across networks: the oracle upper-bounds
    # the practical predictors (modulo tiny-test-set noise).
    total = {
        pred: sum(sweeps[(n, pred)].reuse_at_loss(2.0) for n in BENCHMARK_NAMES)
        for pred in PREDICTORS
    }
    assert total["oracle"] >= total["bnn"] - 0.15
    # The BNN is broadly useful: double-digit reuse within budget on at
    # least two networks.  (Note: on our *synthetic* workloads the
    # input-similarity strawman is stronger than on the paper's real
    # data — phoneme holds make inputs genuinely static; EXPERIMENTS.md
    # discusses this deviation.)
    useful = [
        sweeps[(n, "bnn")].reuse_at_loss(2.0) >= 0.10 for n in BENCHMARK_NAMES
    ]
    assert sum(useful) >= 2
