"""Ablation: bit-packed XNOR/popcount vs ±1-matmul BNN evaluation.

This measures the functional simulator itself (all paths are bit-exact;
the hardware argument for XNOR/popcount is §2.2).  The geometry is the
one the vectorized engine actually runs: a whole LSTM gate phase stacked
along the neuron axis (4 x 320 neurons at EESEN's widths), evaluated on
a batch of operands.  Three paths are compared:

- the ±1 int matmul reference (``binary_dot``),
- per-call packing + popcount (``BinaryGate.evaluate_operand`` with
  ``use_packed=True``),
- the engine's hot path: the operand packed once via ``pack_signs`` and
  fed to ``BinaryGate.evaluate_packed`` — exactly what
  ``MemoizedRecurrentLayer`` does per phase timestep.
"""

import numpy as np
import pytest

from repro.core.binarization import pack_signs
from repro.core.bnn import BinaryGate

#: EESEN-like phase geometry: 4 LSTM gates x 320 neurons, 640-bit operands.
GATES, NEURONS, INPUT, RECURRENT = 4, 320, 320, 320
BATCH = 16


@pytest.fixture(scope="module")
def phase_operands():
    rng = np.random.default_rng(0)
    w_x = rng.standard_normal((GATES * NEURONS, INPUT))
    w_h = rng.standard_normal((GATES * NEURONS, RECURRENT))
    x = rng.standard_normal((BATCH, INPUT))
    h = rng.standard_normal((BATCH, RECURRENT))
    return w_x, w_h, x, h


def test_bnn_matmul_path(benchmark, phase_operands):
    w_x, w_h, x, h = phase_operands
    gate = BinaryGate(w_x, w_h, use_packed=False)
    result = benchmark(gate.evaluate, x, h)
    assert result.shape == (BATCH, GATES * NEURONS)


def test_bnn_packed_path(benchmark, phase_operands):
    w_x, w_h, x, h = phase_operands
    gate = BinaryGate(w_x, w_h, use_packed=True)
    result = benchmark(gate.evaluate, x, h)
    assert result.shape == (BATCH, GATES * NEURONS)


def test_bnn_prepacked_engine_path(benchmark, phase_operands):
    """The vectorized engine's kernel: pack once, popcount the phase."""
    w_x, w_h, x, h = phase_operands
    gate = BinaryGate(w_x, w_h)
    operand = np.concatenate([x, h], axis=-1)

    def engine_step():
        return gate.evaluate_packed(pack_signs(operand))

    result = benchmark(engine_step)
    assert result.shape == (BATCH, GATES * NEURONS)


def test_paths_agree(benchmark, phase_operands):
    w_x, w_h, x, h = phase_operands
    plain = BinaryGate(w_x, w_h, use_packed=False)
    packed = BinaryGate(w_x, w_h, use_packed=True)
    operand = np.concatenate([x, h], axis=-1)

    def all_three():
        return (
            plain.evaluate(x, h),
            packed.evaluate(x, h),
            plain.evaluate_packed(pack_signs(operand)),
        )

    a, b, c = benchmark.pedantic(all_three, rounds=1, iterations=1)
    np.testing.assert_array_equal(a, b)
    np.testing.assert_array_equal(a, c)
