"""Ablation: bit-packed XNOR/popcount vs ±1-matmul BNN evaluation.

This measures the functional simulator itself (both paths are bit-exact;
the hardware argument for XNOR/popcount is §2.2).  It is the one bench
that exercises pytest-benchmark's repeated timing, since the workload is
microseconds rather than minutes.
"""

import numpy as np
import pytest

from repro.core.bnn import BinaryGate

#: EESEN-like gate geometry: 320 neurons, 640-bit operands.
NEURONS, INPUT, RECURRENT = 320, 320, 320


@pytest.fixture(scope="module")
def gate_operands():
    rng = np.random.default_rng(0)
    w_x = rng.standard_normal((NEURONS, INPUT))
    w_h = rng.standard_normal((NEURONS, RECURRENT))
    x = rng.standard_normal((1, INPUT))
    h = rng.standard_normal((1, RECURRENT))
    return w_x, w_h, x, h


def test_bnn_matmul_path(benchmark, gate_operands):
    w_x, w_h, x, h = gate_operands
    gate = BinaryGate(w_x, w_h, use_packed=False)
    result = benchmark(gate.evaluate, x, h)
    assert result.shape == (1, NEURONS)


def test_bnn_packed_path(benchmark, gate_operands):
    w_x, w_h, x, h = gate_operands
    gate = BinaryGate(w_x, w_h, use_packed=True)
    result = benchmark(gate.evaluate, x, h)
    assert result.shape == (1, NEURONS)


def test_paths_agree(benchmark, gate_operands):
    w_x, w_h, x, h = gate_operands
    plain = BinaryGate(w_x, w_h, use_packed=False)
    packed = BinaryGate(w_x, w_h, use_packed=True)

    def both():
        return plain.evaluate(x, h), packed.evaluate(x, h)

    a, b = benchmark.pedantic(both, rounds=1, iterations=1)
    np.testing.assert_array_equal(a, b)
