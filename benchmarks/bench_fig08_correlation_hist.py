"""Figure 8: histogram of per-neuron BNN/RNN correlation factors.

Paper's observation: for EESEN, IMDB and DeepSpeech, ~85% of neurons
have R > 0.8; for MNMT most neurons still exceed R > 0.5 (the weakest of
the four — which is why its BNN predictor trails the oracle earliest).
"""

import numpy as np
from conftest import emit

from repro.analysis.figures import render_table
from repro.core.correlation import (
    correlation_histogram,
    fraction_above,
    layer_correlations,
)
from repro.models.specs import BENCHMARK_NAMES


def test_fig08_correlation_histogram(benchmark, cache):
    def run():
        correlations = {}
        for name in BENCHMARK_NAMES:
            bench = cache.benchmark(name)
            per_layer = [
                layer_correlations(layer, inputs)
                for layer, inputs in bench.layer_io_pairs()
            ]
            correlations[name] = np.concatenate(per_layer)
        return correlations

    correlations = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, corr in correlations.items():
        percent, edges = correlation_histogram(corr)
        rows.append(
            [name]
            + [f"{p:.0f}%" for p in percent]
            + [f"{100 * fraction_above(corr, 0.5):.0f}%"]
        )
    bins = ["[0,.2)", "[.2,.4)", "[.4,.6)", "[.6,.8)", "[.8,1]"]
    emit(
        benchmark,
        "Figure 8 (per-neuron correlation factor histogram)",
        render_table(["network", *bins, "R>0.5"], rows),
    )

    # All networks: the bulk of neurons correlate well — the property the
    # predictor rests on.  (The paper additionally finds MNMT weakest;
    # at our scale the ordering shifts — see EXPERIMENTS.md — because the
    # IMDB stand-in's binarized token embeddings carry less signal than
    # its paper-sized counterpart, while the MNMT stand-in's wide
    # recurrent state correlates strongly.)
    for name, corr in correlations.items():
        assert fraction_above(corr, 0.5) > 0.5, name
    # At least half the networks match the paper's "85% above 0.8" order
    # of magnitude loosely (>= 60% above 0.6).
    good = [fraction_above(c, 0.6) >= 0.6 for c in correlations.values()]
    assert sum(good) >= 2
