"""Ablation: per-layer thresholds vs the paper's single global threshold.

Layers see differently-smooth signals (raw features vs settled hidden
states), so a per-layer threshold assignment — calibrated greedily on
the validation split — can reach more reuse at the same loss budget than
the best global threshold.
"""

from conftest import emit

from repro.analysis.figures import render_table
from repro.core.calibration import calibrate_per_layer, calibrate_threshold
from repro.core.engine import MemoizationScheme

GRID = (0.0, 0.1, 0.2, 0.3, 0.5)
NETWORK = "eesen"  # deepest functional stack -> most layer diversity
BUDGET = 2.0


def test_per_layer_thresholds(benchmark, cache):
    bench = cache.benchmark(NETWORK)
    layer_names = sorted(
        {
            layer
            for (layer, _) in bench.evaluate_memoized(
                MemoizationScheme(theta=0.0)
            ).stats.total
        }
    )

    def run():
        def eval_global(theta):
            result = bench.evaluate_memoized(
                MemoizationScheme(theta=theta), calibration=True
            )
            return result.quality_loss, result.reuse_fraction

        global_theta, _ = calibrate_threshold(eval_global, GRID, max_loss=BUDGET)

        def eval_layers(assignment):
            scheme = MemoizationScheme(theta=0.0, layer_thetas=assignment)
            result = bench.evaluate_memoized(scheme, calibration=True)
            return result.quality_loss, result.reuse_fraction

        assignment, _ = calibrate_per_layer(
            eval_layers, layer_names, GRID, max_loss=BUDGET
        )

        global_test = bench.evaluate_memoized(
            MemoizationScheme(theta=global_theta)
        )
        layered_test = bench.evaluate_memoized(
            MemoizationScheme(theta=0.0, layer_thetas=assignment)
        )
        return global_theta, assignment, global_test, layered_test

    global_theta, assignment, global_test, layered_test = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    rows = [
        [
            "global",
            f"theta={global_theta}",
            f"{global_test.quality_loss:.2f}",
            f"{global_test.reuse_percent:.1f}%",
        ],
        [
            "per-layer",
            " ".join(f"{k.split('.')[-1]}={v}" for k, v in assignment.items()),
            f"{layered_test.quality_loss:.2f}",
            f"{layered_test.reuse_percent:.1f}%",
        ],
    ]
    emit(
        benchmark,
        f"Ablation (per-layer thresholds, {NETWORK}, budget {BUDGET}%)",
        render_table(["calibration", "thetas", "test loss", "test reuse"], rows),
    )

    # Per-layer calibration must be at least competitive with the global
    # threshold it generalises (small slack for val->test noise).
    assert layered_test.reuse_percent >= global_test.reuse_percent - 5.0
