"""Table 1: the four RNNs — paper geometry, our scaled instance, the
measured base quality and the measured reuse at 1% loss."""

from conftest import emit

from repro.analysis.figures import render_table
from repro.models.specs import BENCHMARK_NAMES, PAPER_NETWORKS


def test_table1_networks(benchmark, cache):
    def run():
        return {
            name: (
                cache.benchmark(name),
                cache.end_to_end(name, 1.0),
            )
            for name in BENCHMARK_NAMES
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, (bench, e2e) in results.items():
        spec = PAPER_NETWORKS[name]
        rows.append(
            [
                name,
                spec.app_domain,
                spec.cell_type.upper() + ("-bi" if spec.bidirectional else ""),
                spec.layers,
                spec.neurons,
                f"{spec.base_quality} {spec.quality_metric}",
                f"{bench.base_quality:.2f}",
                f"{spec.paper_reuse_percent}%",
                f"{e2e.reuse_percent:.1f}%",
            ]
        )
    emit(
        benchmark,
        "Table 1 (networks: paper vs measured)",
        render_table(
            [
                "network",
                "domain",
                "cell",
                "layers",
                "neurons",
                "paper base",
                "our base",
                "paper reuse@1%",
                "our reuse@1%",
            ],
            rows,
        ),
    )

    for name, (bench, _) in results.items():
        spec = PAPER_NETWORKS[name]
        # The scaled instance preserves the architecture class.
        cells = {
            "imdb": "lstm", "deepspeech2": "gru", "eesen": "lstm", "mnmt": "lstm",
        }
        assert spec.cell_type == cells[name]
        assert bench.base_quality is not None
