"""Cross-check: event-level pipeline simulator vs the analytical model.

Replays the per-neuron reuse masks of a real memoized run through the
FMU/DPU pipeline model, at both the functional (scaled) geometry and the
paper's EESEN geometry.  The analytical model only sees the reuse
*fraction*; agreement between the two validates that the fraction is a
sufficient statistic at paper-scale dot-product widths — and the scaled
geometry shows §5's warning case, where the per-neuron FMU overhead can
consume the gains when dot products are short.
"""

import math

from conftest import emit

from repro.accel.config import DEFAULT_CONFIG
from repro.accel.eventsim import collect_layer_dims, replay_trace
from repro.core.engine import MemoizationScheme, memoized
from repro.core.stats import DetailedReuseStats

PAPER_WIDTH = (320, 320)  # EESEN-like operand geometry


def _analytical_speedup(reuse, operands, config):
    """The closed-form per-gate-pass speedup the timing model implies."""
    dot = math.ceil(sum(operands) / config.dpu_width)
    neurons = 1.0  # ratio is per neuron
    base = neurons * dot
    memo = neurons * config.fmu.issue_cycles + neurons * (1.0 - reuse) * dot
    return base / memo


def test_eventsim_crosscheck(benchmark, cache):
    bench = cache.benchmark("eesen")

    def run():
        stats = DetailedReuseStats()
        dims = collect_layer_dims(bench.model)
        with memoized(bench.model, MemoizationScheme(theta=0.3), stats):
            bench.evaluate()
        scaled = replay_trace(stats, dims, DEFAULT_CONFIG)
        paper_dims = {name: PAPER_WIDTH for name in dims}
        paper = replay_trace(stats, paper_dims, DEFAULT_CONFIG)
        return stats, scaled, paper

    stats, (memo_s, base_s), (memo_p, base_p) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    reuse = stats.reuse_fraction()
    analytical = _analytical_speedup(reuse, PAPER_WIDTH, DEFAULT_CONFIG)
    event_paper = memo_p.speedup_over(base_p)
    event_scaled = memo_s.speedup_over(base_s)

    emit(
        benchmark,
        "Event-sim cross-check (EESEN trace)",
        f"reuse fraction          : {reuse:.3f}\n"
        f"event speedup @paper dims : {event_paper:.3f}x\n"
        f"analytical speedup        : {analytical:.3f}x (assumes balanced "
        "gates)\n"
        f"event speedup @toy dims   : {event_scaled:.3f}x (short dot "
        "products, FMU-overhead bound)\n"
        f"DPU utilization base/memo : {base_p.dpu_utilization:.2f} / "
        f"{memo_p.dpu_utilization:.2f}\n"
        "The gap between event and analytical speedup is inter-gate load\n"
        "imbalance: the four gates reuse different neurons each step and\n"
        "the slowest gate bounds the cell, which the fraction-based\n"
        "analytical model cannot see.",
    )

    # At paper widths the two models agree within ~20%; the residual is
    # the (real) inter-gate imbalance effect, with the event model the
    # more pessimistic of the two.
    assert abs(event_paper - analytical) / analytical < 0.20
    assert event_paper <= analytical + 1e-9
    # Memoization gains at paper widths; the toy geometry shows §5's
    # overhead-bound regime (speedup can dip below the analytical value).
    if reuse > 0.2:
        assert event_paper > 1.1
    assert memo_p.dpu_utilization < base_p.dpu_utilization
