"""Figure 1: accuracy loss and computation reuse vs threshold, with an
oracle predictor, for the four RNNs.

Paper's observation: thresholds in the 0.3-0.5 range keep accuracy loss
under ~1% while an oracle-guided memoization avoids >30% of computations.
"""

from conftest import emit

from repro.analysis.figures import render_series
from repro.models.specs import BENCHMARK_NAMES


def test_fig01_oracle_threshold_curves(benchmark, cache):
    def run():
        return {
            name: cache.sweep(name, predictor="oracle") for name in BENCHMARK_NAMES
        }

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = []
    for name, sweep in sweeps.items():
        metric = cache.benchmark(name).spec.quality_metric
        lines.append(
            render_series(
                f"{name} {metric} loss", sweep.thetas, sweep.losses, unit="pts"
            )
        )
        lines.append(
            render_series(
                f"{name} reuse",
                sweep.thetas,
                [100 * r for r in sweep.reuses],
                unit="%",
            )
        )
    emit(benchmark, "Figure 1 (oracle threshold sweep)", "\n".join(lines))

    for name, sweep in sweeps.items():
        # Reuse must grow with the threshold...
        assert sweep.reuses[-1] >= sweep.reuses[0]
        # ...and an oracle at theta=0 only reuses exact repeats: no loss.
        assert sweep.losses[0] == 0.0
    # Paper: with the right threshold the oracle avoids >=30% of the
    # computations on at least some networks at small loss.
    best = max(
        sweep.reuse_at_loss(1.0) for sweep in sweeps.values()
    )
    assert best >= 0.25, f"expected >=25% oracle reuse somewhere, got {best:.2%}"
