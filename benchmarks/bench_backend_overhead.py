"""Dispatch-overhead trajectory: one tiny fixed sweep on every backend.

Every execution backend returns bitwise-identical results, so the only
thing that separates them is *dispatch cost*: process-pool round trips,
queue-directory renames, HTTP round trips to a coordinator.  This bench
times the same tiny uncached sweep (tiny-scale IMDB, two thetas) on
each backend — serial is the floor, and ``backend - serial`` is that
backend's end-to-end dispatch overhead for this workload.

The measurements land in ``BENCH_backends.json`` (working directory):

    {"sweep": {...}, "seconds": {"serial": ..., "process": ...},
     "overhead_vs_serial_seconds": {...},
     "wire": {"http": {"round_trips": ..., "bytes_sent": ...,
                       "bytes_received": ...}}}

so later PRs that touch the transports can diff dispatch overhead —
and, for the http backend, round trips and bytes on the wire per sweep
— against history instead of eyeballing bench logs.  The batched
``batch/submit`` / ``batch/poll`` protocol keeps round trips at
O(ticks), not O(tasks x ticks); this is where a regression would show.
The queue and http rounds run against a throwaway queue directory /
in-process localhost coordinator with result reuse disabled, so every
round pays the full submit -> claim -> evaluate -> collect path.
"""

import json
from pathlib import Path

import pytest

from repro.runner import (
    CoordinatorServer,
    HttpBackend,
    ParallelRunner,
    QueueBackend,
    SweepJob,
    WorkQueue,
    make_backend,
)

#: The fixed workload: small enough that dispatch is a visible slice of
#: the total, identical across backends (and across PRs — changing it
#: breaks the trajectory).
JOB = SweepJob(network="imdb", thetas=(0.1, 0.3), scale="tiny")

OUTPUT_PATH = Path("BENCH_backends.json")

_timings = {}
_wire_stats = {}


@pytest.fixture(scope="module", autouse=True)
def warm():
    """Pay one-time process warm-up (imports, tiny-net training) before
    any timing: without this the first-run backend absorbs it and the
    serial baseline skews, turning the overhead deltas negative."""
    ParallelRunner().run(JOB)


@pytest.fixture(scope="module")
def overhead_report():
    """Collects per-backend seconds; writes BENCH_backends.json at the end."""
    yield _timings
    if not _timings:
        return
    serial = _timings.get("serial")
    payload = {
        "sweep": JOB.point_payload(JOB.thetas[0]) | {"thetas": list(JOB.thetas)},
        "seconds": {name: round(secs, 6) for name, secs in _timings.items()},
        "overhead_vs_serial_seconds": {
            name: round(secs - serial, 6)
            for name, secs in _timings.items()
            if serial is not None and name != "serial"
        },
        "wire": _wire_stats,
    }
    OUTPUT_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"\nwrote {OUTPUT_PATH} ({payload['seconds']})")


def _run_and_record(benchmark, overhead_report, name, build_backend):
    """Time the fixed sweep on a fresh backend per round; record median."""

    def run():
        backend = build_backend()
        try:
            return ParallelRunner(backend=backend).run(JOB)
        finally:
            backend.close()

    results = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert len(results) == len(JOB.thetas)
    overhead_report[name] = benchmark.stats["median"]


def test_overhead_serial(benchmark, overhead_report):
    _run_and_record(
        benchmark, overhead_report, "serial", lambda: make_backend("serial")
    )


def test_overhead_process(benchmark, overhead_report):
    _run_and_record(
        benchmark,
        overhead_report,
        "process",
        lambda: make_backend("process", jobs=2),
    )


def test_overhead_queue(benchmark, overhead_report, tmp_path):
    counter = iter(range(1_000_000))

    def build():
        # A fresh directory with reuse disabled: every round pays the
        # full submit -> claim -> evaluate -> collect queue path.
        return QueueBackend(
            tmp_path / f"queue{next(counter)}", timeout=600,
            reuse_results=False,
        )

    _run_and_record(benchmark, overhead_report, "queue", build)


def test_overhead_http(benchmark, overhead_report, tmp_path):
    counter = iter(range(1_000_000))
    servers = []
    clients = []

    def build():
        server = CoordinatorServer(
            WorkQueue(tmp_path / f"queue{next(counter)}", lease_ttl=60),
            port=0,
            quiet=True,
        )
        server.serve_in_thread()
        servers.append(server)
        backend = HttpBackend(server.url, timeout=600, reuse_results=False)
        clients.append(backend.queue)
        return backend

    try:
        _run_and_record(benchmark, overhead_report, "http", build)
    finally:
        for server in servers:
            server.stop()
    if clients:
        # Wire accounting for the *last* (steady-state, post-warmup)
        # round: with the batched protocol this stays O(ticks) per
        # sweep, independent of the task count — the number to diff
        # across PRs.
        client = clients[-1]
        _wire_stats["http"] = {
            "tasks": len(JOB.thetas),
            "round_trips": client.round_trips,
            "bytes_sent": client.bytes_sent,
            "bytes_received": client.bytes_received,
        }
