"""Cost of the engine profiling hooks — proven ~zero when disabled.

The memoized hot path (:class:`~repro.core.layers.MemoizedRecurrentLayer`)
pays for observability exactly one module-attribute read per dispatch:
``repro.obs.profiler.ACTIVE`` is checked in ``step`` and ``on_gates``,
and when it is ``None`` the original fast path runs untouched.  This
bench pins that claim with three variants per Table 1 network:

- ``baseline``: hook-free copies of ``step``/``on_gates`` monkeypatched
  onto the wrapper — the engine as it existed before the profiler
  dispatch was added;
- ``disabled``: the shipped path with no profiler installed (the
  production default);
- ``enabled``: the shipped path under :func:`~repro.obs.profiled`, i.e.
  the mirrored phase body with ``perf_counter`` fences.

All three variants run the same weights on the same inputs and are
asserted bitwise identical (outputs and reuse counts) — enabling
profiling must not change a single bit.  Timing is interleaved
(every round times all three variants back-to-back) and min-of-rounds,
so slow-host drift hits all variants alike.

Results land in ``BENCH_obs.json`` at the repo root; CI re-runs this
bench and uploads the file as an artifact.

``REPRO_BENCH_OBS_MAX_OVERHEAD`` overrides the asserted ceiling on the
aggregate disabled-vs-baseline overhead (percent; default 2.0 — raise
it on a noisy host).
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from pathlib import Path
from time import perf_counter
from typing import Dict, Optional

import numpy as np
import pytest

from repro.core.engine import MemoizationScheme, apply_memoization, restore
from repro.core.layers import MemoizedRecurrentLayer
from repro.core.stats import ReuseStats
from repro.models.specs import BENCHMARK_NAMES, PAPER_NETWORKS, NetworkSpec
from repro.nn import Bidirectional, GRULayer, LSTMLayer, RNNStack
from repro.obs import Profiler, profiled

Array = np.ndarray

BATCH, TIMESTEPS = 16, 16
THETA = 0.3
PREDICTOR = "bnn"

#: Directional-layer cap (overhead per layer-timestep is what matters;
#: shallow stacks keep the three-variant sweep fast).
DEPTH_CAP = 2

#: Interleaved timing rounds per network; min-of-rounds is reported.
ROUNDS = 5

VARIANTS = ("baseline", "disabled", "enabled")

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"


# -- hook-free baseline ------------------------------------------------------
#
# Copies of the wrapper's dispatch methods with the profiler check
# removed — what the hot path compiled to before repro.obs existed.


def _step_hookfree(self, x_t, state):
    return self.layer.step(x_t, state, hook=self)


def _on_gates_hookfree(self, cell, phase, x, h, preacts):
    if self.vectorized:
        return self._on_gates_vectorized(phase, x, h, preacts)
    return self._on_gates_scalar(phase, x, h, preacts)


@contextmanager
def _hookfree_engine():
    """Swap the profiler-aware dispatch for the hook-free copies."""
    step, on_gates = MemoizedRecurrentLayer.step, MemoizedRecurrentLayer.on_gates
    MemoizedRecurrentLayer.step = _step_hookfree
    MemoizedRecurrentLayer.on_gates = _on_gates_hookfree
    try:
        yield
    finally:
        MemoizedRecurrentLayer.step = step
        MemoizedRecurrentLayer.on_gates = on_gates


# -- workload ----------------------------------------------------------------


def _build_stack(spec: NetworkSpec, depth_cap: int = DEPTH_CAP):
    rng = np.random.default_rng(7)
    widths = spec.layer_input_sizes()
    if spec.bidirectional:
        pair_widths = widths[::2][: max(1, depth_cap // 2)]
        maker = Bidirectional.lstm if spec.cell_type == "lstm" else Bidirectional.gru
        layers = [maker(w, spec.neurons, rng=rng) for w in pair_widths]
        return RNNStack(layers)
    maker = LSTMLayer if spec.cell_type == "lstm" else GRULayer
    layers = [maker(w, spec.neurons, rng=rng) for w in widths[:depth_cap]]
    return RNNStack(layers)


class _Measurement:
    """One network's three-variant result."""

    def __init__(self):
        self.seconds: Dict[str, float] = {}
        self.outputs: Dict[str, Array] = {}
        self.reused: Dict[str, Dict] = {}
        self.total: Dict[str, Dict] = {}
        self.profile: Optional[Dict[str, object]] = None


_runs: Dict[str, _Measurement] = {}


def _measure(name: str) -> _Measurement:
    spec = PAPER_NETWORKS[name]
    stack = _build_stack(spec)
    rng = np.random.default_rng(11)
    inputs = rng.standard_normal((BATCH, TIMESTEPS, spec.input_size))
    scheme = MemoizationScheme(theta=THETA, predictor=PREDICTOR, vectorized=True)
    stats = ReuseStats()
    replacements = apply_memoization(stack, scheme, stats)
    result = _Measurement()
    try:

        def run_variant(variant: str) -> float:
            stats.reset()
            if variant == "baseline":
                with _hookfree_engine():
                    start = perf_counter()
                    outputs = stack(inputs)
                    seconds = perf_counter() - start
            elif variant == "disabled":
                start = perf_counter()
                outputs = stack(inputs)
                seconds = perf_counter() - start
            else:
                profiler = Profiler()
                with profiled(profiler):
                    start = perf_counter()
                    outputs = stack(inputs)
                    seconds = perf_counter() - start
                result.profile = profiler.snapshot()
            result.outputs[variant] = outputs
            result.reused[variant] = dict(stats.reused)
            result.total[variant] = dict(stats.total)
            return seconds

        run_variant("disabled")  # warmup: touch caches, allocate buffers
        for _ in range(ROUNDS):
            for variant in VARIANTS:
                seconds = run_variant(variant)
                best = result.seconds.get(variant)
                if best is None or seconds < best:
                    result.seconds[variant] = seconds
    finally:
        restore(replacements)
    return result


def _overhead_pct(base: float, other: float) -> float:
    return 100.0 * (other / base - 1.0)


@pytest.fixture(scope="module")
def obs_report():
    """Collects per-network measurements; writes BENCH_obs.json last."""
    yield _runs
    if not _runs:
        return
    networks = {}
    for name, run in _runs.items():
        baseline = run.seconds["baseline"]
        entry = {
            "baseline_s": baseline,
            "disabled_s": run.seconds["disabled"],
            "enabled_s": run.seconds["enabled"],
            "disabled_overhead_pct": _overhead_pct(baseline, run.seconds["disabled"]),
            "enabled_overhead_pct": _overhead_pct(baseline, run.seconds["enabled"]),
            "bitwise_equal": bool(
                all(
                    np.array_equal(run.outputs["baseline"], run.outputs[v])
                    and run.reused["baseline"] == run.reused[v]
                    and run.total["baseline"] == run.total[v]
                    for v in ("disabled", "enabled")
                )
            ),
        }
        if run.profile is not None:
            layers = run.profile.get("layers", {})
            entry["profile"] = {
                "layers": len(layers),
                "steps": sum(layer.get("steps", 0) for layer in layers.values()),
                "predict_s": sum(
                    phase["predict_s"]
                    for layer in layers.values()
                    for phase in layer["phases"].values()
                ),
                "substitute_s": sum(
                    phase["substitute_s"]
                    for layer in layers.values()
                    for phase in layer["phases"].values()
                ),
                "table_allocations": len(run.profile.get("table_allocations", [])),
            }
        networks[name] = entry
    base_total = sum(run.seconds["baseline"] for run in _runs.values())
    disabled_total = sum(run.seconds["disabled"] for run in _runs.values())
    report = {
        "scale": "paper-geometry",
        "theta": THETA,
        "predictor": PREDICTOR,
        "batch": BATCH,
        "timesteps": TIMESTEPS,
        "rounds": ROUNDS,
        "networks": networks,
        "aggregate_disabled_overhead_pct": _overhead_pct(base_total, disabled_total),
    }
    RESULTS_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_variants(benchmark, obs_report, name):
    """Time the three variants interleaved; all must agree bitwise."""
    run = _measure(name)
    obs_report[name] = run
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for extra, value in run.seconds.items():
        benchmark.extra_info[f"{extra}_s"] = value
    for variant in ("disabled", "enabled"):
        np.testing.assert_array_equal(
            run.outputs["baseline"], run.outputs[variant]
        ), variant
        assert run.reused["baseline"] == run.reused[variant]
        assert run.total["baseline"] == run.total[variant]
    # The enabled run must actually have profiled something.
    assert run.profile is not None
    assert run.profile["layers"], "profiler saw no layers"
    profiled_reuse = sum(
        phase["reused"]
        for layer in run.profile["layers"].values()
        for phase in layer["phases"].values()
    )
    assert profiled_reuse == sum(run.reused["enabled"].values())


def test_disabled_overhead_floor(benchmark, obs_report):
    """Disabled hooks must cost < the pinned ceiling vs hook-free code."""
    if not obs_report:
        pytest.skip("no measurements collected")
    ceiling = float(os.environ.get("REPRO_BENCH_OBS_MAX_OVERHEAD", "2.0"))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    base = sum(run.seconds["baseline"] for run in obs_report.values())
    disabled = sum(run.seconds["disabled"] for run in obs_report.values())
    overhead = _overhead_pct(base, disabled)
    per_network = {
        name: _overhead_pct(run.seconds["baseline"], run.seconds["disabled"])
        for name, run in obs_report.items()
    }
    lines = [f"{name:12s} {pct:+6.2f}%" for name, pct in per_network.items()]
    print("\n=== disabled-profiler overhead vs hook-free ===\n" + "\n".join(lines))
    benchmark.extra_info["aggregate_overhead_pct"] = overhead
    assert overhead < ceiling, (
        f"disabled profiling hooks cost {overhead:.2f}% aggregate "
        f"(ceiling {ceiling}%) — see BENCH_obs.json"
    )
