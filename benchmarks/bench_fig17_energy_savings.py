"""Figure 17: energy savings and computation reuse of E-PUR+BM over
E-PUR at 1%, 2% and 3% accuracy loss.

Paper's numbers: 18.5% average savings at 1% loss (reuse 24.2%); 25.5%
at 2% (reuse 31%); IMDB and EESEN save the most.

Executes via :mod:`repro.runner`: each (network, loss target) pipeline's
calibration sweep and test point resolve from the on-disk result cache
when warm (``REPRO_BENCH_JOBS=N`` parallelises cold runs).
"""

import numpy as np
from conftest import LOSS_TARGETS, emit

from repro.analysis.figures import render_table
from repro.models.specs import BENCHMARK_NAMES


def test_fig17_energy_savings(benchmark, cache):
    def run():
        return {
            (name, target): cache.end_to_end(name, target)
            for name in BENCHMARK_NAMES
            for target in LOSS_TARGETS
        }

    counters = cache.runner_counters()
    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name in BENCHMARK_NAMES:
        row = [name]
        for target in LOSS_TARGETS:
            r = results[(name, target)]
            row.append(f"{r.energy_savings_percent:.1f}%/{r.reuse_percent:.1f}%")
        rows.append(row)
    averages = ["average"]
    for target in LOSS_TARGETS:
        save = np.mean(
            [results[(n, target)].energy_savings_percent for n in BENCHMARK_NAMES]
        )
        reuse = np.mean(
            [results[(n, target)].reuse_percent for n in BENCHMARK_NAMES]
        )
        averages.append(f"{save:.1f}%/{reuse:.1f}%")
    rows.append(averages)
    emit(
        benchmark,
        "Figure 17 (energy savings / computation reuse)",
        render_table(
            ["network", *(f"@{t:.0f}% loss (sav/reuse)" for t in LOSS_TARGETS)],
            rows,
        )
        + "\npaper averages: 18.5%/24.2% @1%, 25.5%/31% @2%"
        + "\n" + cache.runner_delta(counters),
    )

    avg_save_1 = np.mean(
        [results[(n, 1.0)].energy_savings_percent for n in BENCHMARK_NAMES]
    )
    # Shape check: positive, paper-magnitude savings at 1% loss.
    assert 5.0 <= avg_save_1 <= 45.0
    # Savings should not shrink when the loss budget is relaxed.
    for name in BENCHMARK_NAMES:
        assert (
            results[(name, 3.0)].energy_savings_percent
            >= results[(name, 1.0)].energy_savings_percent - 1e-6
        )
