"""Throughput trajectory of the vectorized memoization engine.

Times the four Table 1 networks' recurrent stacks — at their *paper*
gate geometries (cell type, neurons per layer/direction, layer widths) —
under fuzzy memoization in both engine modes:

- ``scalar``: the per-gate reference path (one predictor per gate, the
  legacy ``GatePredictor.step`` closure interface);
- ``vectorized``: the batched fast path (phase-stacked predictors,
  uint64-packed sign words, contiguous memo tables).

Both modes run the same weights on the same inputs and are asserted
bitwise identical (outputs and reuse counts).  Results are written to
``BENCH_eval.json`` at the repo root so the speedup trajectory is pinned
in-tree; CI re-runs this bench and uploads the file as an artifact.

Workload notes:

- The stack depth is capped (``layers_measured`` vs ``layers_paper`` in
  the JSON) to bound bench memory and runtime; per-layer-timestep cost
  is depth-independent, so the speedup is representative of the full
  stack.
- Weights are freshly initialised, not trained: the functional
  simulator's cost per timestep does not depend on weight values (reuse
  substitution is a masked copy either way), so throughput — the
  quantity this bench pins — is measured faithfully.  Quality under
  memoization is pinned elsewhere (golden suite, figure benches).
- ``REPRO_BENCH_EVAL_MIN_SPEEDUP`` overrides the final assertion's
  speedup floor (default 3.0; set to ``0`` to disable, e.g. on a noisy
  host).
"""

from __future__ import annotations

import json
import os
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Tuple

import numpy as np
import pytest

from repro.core.engine import MemoizationScheme, apply_memoization, restore
from repro.core.stats import ReuseStats
from repro.models.specs import BENCHMARK_NAMES, PAPER_NETWORKS, NetworkSpec
from repro.nn import Bidirectional, GRULayer, LSTMLayer, RNNStack

Array = np.ndarray

#: Fixed tiny sweep: one batched forward pass per (network, mode).
BATCH, TIMESTEPS = 16, 16
THETA = 0.3
PREDICTOR = "bnn"

#: Directional-layer cap per network (memory/runtime bound; the JSON
#: records both the measured and the paper depth).
DEPTH_CAP = 4

MODES = ("scalar", "vectorized")

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_eval.json"


def _build_stack(spec: NetworkSpec, depth_cap: int = DEPTH_CAP) -> Tuple[RNNStack, int]:
    """The spec's recurrent stack at paper geometry, depth-capped.

    Returns ``(stack, directional_layers)``.
    """
    rng = np.random.default_rng(7)
    widths = spec.layer_input_sizes()
    if spec.bidirectional:
        pair_widths = widths[::2][: depth_cap // 2]
        maker = Bidirectional.lstm if spec.cell_type == "lstm" else Bidirectional.gru
        layers = [maker(w, spec.neurons, rng=rng) for w in pair_widths]
        return RNNStack(layers), 2 * len(layers)
    maker = LSTMLayer if spec.cell_type == "lstm" else GRULayer
    layers = [maker(w, spec.neurons, rng=rng) for w in widths[:depth_cap]]
    return RNNStack(layers), len(layers)


class _Run:
    """One (network, mode) measurement: median seconds + outputs + stats."""

    def __init__(self, seconds: float, outputs: Array, stats: ReuseStats):
        self.seconds = seconds
        self.outputs = outputs
        self.reused = dict(stats.reused)
        self.total = dict(stats.total)


#: (network, mode) -> _Run, filled by the throughput tests and consumed
#: by the equivalence/trajectory tests and the module-teardown report.
_runs: Dict[Tuple[str, str], _Run] = {}

#: Single-network stack cache (LRU of one: the big stacks would otherwise
#: accumulate to ~0.5 GB of weights across the parametrised run).
_stack_cache: Dict[str, Tuple[RNNStack, int, Array]] = {}


def _network_workload(name: str) -> Tuple[RNNStack, int, Array]:
    if name not in _stack_cache:
        _stack_cache.clear()
        spec = PAPER_NETWORKS[name]
        stack, directional = _build_stack(spec)
        rng = np.random.default_rng(11)
        inputs = rng.standard_normal((BATCH, TIMESTEPS, spec.input_size))
        _stack_cache[name] = (stack, directional, inputs)
    return _stack_cache[name]


def _throughput(run: _Run, directional_layers: int) -> Dict[str, float]:
    layer_timesteps = BATCH * TIMESTEPS * directional_layers
    return {
        "seconds": run.seconds,
        "points_per_sec": BATCH / run.seconds,
        "timesteps_per_sec": layer_timesteps / run.seconds,
    }


@pytest.fixture(scope="module")
def eval_report():
    """Collects per-(network, mode) runs; writes BENCH_eval.json last."""
    yield _runs
    networks = {}
    for name in BENCHMARK_NAMES:
        scalar = _runs.get((name, "scalar"))
        vectorized = _runs.get((name, "vectorized"))
        if scalar is None or vectorized is None:
            continue
        spec = PAPER_NETWORKS[name]
        _, directional, _ = _network_workload(name)
        networks[name] = {
            "cell_type": spec.cell_type,
            "neurons": spec.neurons,
            "bidirectional": spec.bidirectional,
            "layers_paper": spec.layers,
            "layers_measured": directional,
            "rows": BATCH,
            "layer_timesteps": BATCH * TIMESTEPS * directional,
            "scalar": _throughput(scalar, directional),
            "vectorized": _throughput(vectorized, directional),
            "speedup": scalar.seconds / vectorized.seconds,
            "bitwise_equal": bool(
                np.array_equal(scalar.outputs, vectorized.outputs)
                and scalar.reused == vectorized.reused
                and scalar.total == vectorized.total
            ),
        }
    if not networks:
        return
    report = {
        "scale": "paper-geometry",
        "theta": THETA,
        "predictor": PREDICTOR,
        "batch": BATCH,
        "timesteps": TIMESTEPS,
        "networks": networks,
        "max_speedup": max(n["speedup"] for n in networks.values()),
    }
    RESULTS_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_throughput(benchmark, eval_report, name, mode):
    stack, directional, inputs = _network_workload(name)
    scheme = MemoizationScheme(
        theta=THETA, predictor=PREDICTOR, vectorized=(mode == "vectorized")
    )
    stats = ReuseStats()
    replacements = apply_memoization(stack, scheme, stats)
    outputs: List[Array] = []
    try:

        def run():
            stats.reset()
            outputs.append(stack(inputs))

        benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=1)
    finally:
        restore(replacements)
    seconds = benchmark.stats["median"]
    eval_report[(name, mode)] = _Run(seconds, outputs[-1], stats)
    benchmark.extra_info["points_per_sec"] = BATCH / seconds
    benchmark.extra_info["timesteps_per_sec"] = (
        BATCH * TIMESTEPS * directional / seconds
    )


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_modes_bitwise_equal(benchmark, eval_report, name):
    """The two engine modes must agree bitwise on outputs and reuse."""
    scalar = eval_report.get((name, "scalar"))
    vectorized = eval_report.get((name, "vectorized"))
    if scalar is None or vectorized is None:
        pytest.skip("throughput tests did not run for this network")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    np.testing.assert_array_equal(scalar.outputs, vectorized.outputs)
    assert scalar.reused == vectorized.reused
    assert scalar.total == vectorized.total


def test_speedup_trajectory(benchmark, eval_report):
    """The vectorized engine must clear the pinned speedup floor."""
    floor = float(os.environ.get("REPRO_BENCH_EVAL_MIN_SPEEDUP", "3.0"))
    speedups = {
        name: eval_report[(name, "scalar")].seconds
        / eval_report[(name, "vectorized")].seconds
        for name in BENCHMARK_NAMES
        if (name, "scalar") in eval_report and (name, "vectorized") in eval_report
    }
    if not speedups:
        pytest.skip("no throughput measurements collected")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [f"{name:12s} {ratio:5.2f}x" for name, ratio in speedups.items()]
    print("\n=== vectorized speedup over scalar ===\n" + "\n".join(lines))
    benchmark.extra_info["speedups"] = speedups
    assert max(speedups.values()) >= floor, (
        f"vectorized engine only reaches {max(speedups.values()):.2f}x "
        f"(floor {floor}x) — see BENCH_eval.json"
    )
