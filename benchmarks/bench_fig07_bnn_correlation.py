"""Figure 7: correlation between binarized and full-precision neuron
outputs on the EESEN network.

Paper's observation: although BNN output magnitudes are very different
from the RNN's, the two are strongly linearly correlated (R = 0.96 on
EESEN).
"""

import numpy as np
from conftest import emit

from repro.core.correlation import collect_gate_samples


def test_fig07_eesen_pooled_correlation(benchmark, cache):
    bench = cache.benchmark("eesen")

    def run():
        pooled = []
        for layer, inputs in bench.layer_io_pairs():
            samples = collect_gate_samples(layer, inputs)
            pooled.extend(s.pooled() for s in samples.values())
        return pooled

    pooled = benchmark.pedantic(run, rounds=1, iterations=1)
    overall = float(np.mean(pooled))
    emit(
        benchmark,
        "Figure 7 (EESEN BNN vs RNN output correlation)",
        f"pooled correlation per gate: {[round(r, 3) for r in pooled]}\n"
        f"mean pooled R = {overall:.3f} (paper: 0.96)",
    )
    assert overall > 0.7, f"expected strong pooled correlation, got {overall:.3f}"
