"""Figure 16: computation reuse vs accuracy loss, oracle vs BNN
predictor, for the four networks.

Paper's observations: for losses under ~2% the BNN predictor achieves
reuse extremely close to the oracle; EESEN and IMDB tolerate the most;
MNMT's BNN tracks the oracle only up to ~23% reuse (weakest correlation).

Executes via :mod:`repro.runner`: all 8 (network, predictor) sweeps are
independent jobs, so ``REPRO_BENCH_JOBS=N`` fans their points across
workers and a warm ``.repro_cache/`` re-run evaluates nothing.
"""

from conftest import emit

from repro.analysis.figures import render_series
from repro.models.specs import BENCHMARK_NAMES


def test_fig16_oracle_vs_bnn(benchmark, cache):
    def run():
        return {
            name: {
                "oracle": cache.sweep(name, predictor="oracle"),
                "bnn": cache.sweep(name, predictor="bnn"),
            }
            for name in BENCHMARK_NAMES
        }

    counters = cache.runner_counters()
    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = []
    for name, by_pred in sweeps.items():
        for pred, sweep in by_pred.items():
            lines.append(
                render_series(
                    f"{name} {pred} (reuse% , loss)",
                    [100 * r for r in sweep.reuses],
                    sweep.losses,
                )
            )
    lines.append(cache.runner_delta(counters))
    emit(benchmark, "Figure 16 (reuse vs accuracy loss)", "\n".join(lines))

    for name, by_pred in sweeps.items():
        oracle_reuse = by_pred["oracle"].reuse_at_loss(2.0)
        bnn_reuse = by_pred["bnn"].reuse_at_loss(2.0)
        # The oracle upper-bounds the practical predictor at a loss
        # budget (allow small measurement noise on tiny test sets).
        assert bnn_reuse <= oracle_reuse + 0.08, name
    # The BNN must be useful: >=15% reuse at <=2% loss somewhere.
    assert max(b["bnn"].reuse_at_loss(2.0) for b in sweeps.values()) >= 0.15
