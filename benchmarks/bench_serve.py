"""Online serving latency/throughput trajectory of ``repro serve``.

Starts an in-process inference server over the tiny IMDB zoo model and
drives it with the deterministic load generator at several thresholds —
one fresh server per threshold, so the reuse counters are attributable.
Every run verifies the served predictions bitwise against the offline
batch path (``--verify`` semantics of ``repro loadgen``); the bench
fails on any mismatch or transport error.

Results are written to ``BENCH_serve.json`` at the repo root so the
serving trajectory is pinned in-tree: per threshold, the client-side
exact latency percentiles (p50/p95/p99), request and row throughput,
and the server's reuse fraction.  A second sweep holds theta fixed and
varies the replica-pool size: the single-replica, coalescing-off
configuration is the PR 7 baseline, and the multi-replica points run
with the coalescing batcher on — the scaling test asserts the pooled
configurations beat the baseline's throughput.  CI re-runs this bench
in the ``smoke-serve`` job and uploads the file as an artifact.

The latency numbers are client-observed over loopback HTTP with
``CONCURRENCY`` threads of clients, so they include queueing — the
quantity a deployment would see, not bare model-forward time.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

import pytest

from repro.core.engine import MemoizationScheme
from repro.models.zoo import build_benchmark
from repro.serve import InferenceServer, ServeState, run_loadgen

NETWORK = "imdb"
SCALE = "tiny"
SEED = 0

#: Thresholds swept (low -> high reuse); the trajectory test asserts the
#: reuse fraction is non-decreasing along this grid.
THETAS = (0.05, 0.2, 0.5)

REQUESTS = 24
CONCURRENCY = 4
BATCH = 4

#: Replica sweep: (replicas, coalesce_ms) points at a fixed threshold.
#: (1, 0.0) is the PR 7 baseline — one compute copy, no coalescing;
#: the pooled points run the coalescing batcher with a short window.
REPLICA_POINTS = ((1, 0.0), (2, 2.0), (4, 2.0))
REPLICA_THETA = 0.2
REPLICA_REQUESTS = 48
REPLICA_CONCURRENCY = 8
REPLICA_BATCH = 2

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

#: theta -> summary point, filled by the parametrised bench and written
#: to BENCH_serve.json at module teardown.
_points: Dict[float, Dict[str, object]] = {}

#: replicas -> summary point for the replica sweep.
_replica_points: Dict[int, Dict[str, object]] = {}


@pytest.fixture(scope="module")
def trained_benchmark():
    # A fresh (never cached) instance: the server wraps its model, which
    # must not collide with other benches sharing the zoo cache.
    bench = build_benchmark(NETWORK, scale=SCALE, seed=SEED)
    bench.ensure_trained()
    return bench


@pytest.fixture(scope="module")
def serve_report():
    """Collects per-theta loadgen summaries; writes BENCH_serve.json."""
    yield _points
    if not _points:
        return
    report = {
        "network": NETWORK,
        "scale": SCALE,
        "seed": SEED,
        "requests": REQUESTS,
        "concurrency": CONCURRENCY,
        "batch": BATCH,
        "points": {str(theta): _points[theta] for theta in sorted(_points)},
        "replica_sweep": {
            "theta": REPLICA_THETA,
            "requests": REPLICA_REQUESTS,
            "concurrency": REPLICA_CONCURRENCY,
            "batch": REPLICA_BATCH,
            "points": {
                str(replicas): _replica_points[replicas]
                for replicas in sorted(_replica_points)
            },
        },
    }
    RESULTS_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


@pytest.mark.parametrize("theta", THETAS)
def test_serve_point(benchmark, serve_report, trained_benchmark, theta):
    """One threshold: serve, load, verify bitwise, record the summary."""
    state = ServeState(trained_benchmark, MemoizationScheme(theta=theta))
    server = InferenceServer(state, quiet=True)
    server.serve_in_thread()
    summaries = []
    try:

        def run():
            summaries.append(
                run_loadgen(
                    server.url,
                    NETWORK,
                    scale=SCALE,
                    seed=SEED,
                    requests=REQUESTS,
                    concurrency=CONCURRENCY,
                    batch=BATCH,
                    verify=True,
                )
            )

        benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        server.stop()
        state.unwrap()
    summary = summaries[-1]
    assert summary["errors"] == [], summary["errors"]
    assert summary["completed"] == REQUESTS
    assert summary["verify"]["mismatches"] == 0, summary["verify"]["examples"]
    latency = summary["latency_ms"]
    serve_report[theta] = {
        "theta": theta,
        "latency_ms": latency,
        "req_per_s": summary["req_per_s"],
        "rows_per_s": summary["rows_per_s"],
        "reuse_fraction": summary["reuse"]["overall_fraction"],
        "verified_rows": summary["verify"]["checked"],
    }
    benchmark.extra_info["p50_ms"] = latency["p50"]
    benchmark.extra_info["req_per_s"] = summary["req_per_s"]
    benchmark.extra_info["reuse_fraction"] = summary["reuse"]["overall_fraction"]


@pytest.mark.parametrize("replicas,coalesce_ms", REPLICA_POINTS)
def test_replica_point(
    benchmark, serve_report, trained_benchmark, replicas, coalesce_ms
):
    """One pool size at fixed theta: serve, load, verify, record."""
    del serve_report  # ordering only: report writes after all points run
    state = ServeState(
        trained_benchmark,
        MemoizationScheme(theta=REPLICA_THETA),
        replicas=replicas,
        coalesce_ms=coalesce_ms,
    )
    server = InferenceServer(state, quiet=True)
    server.serve_in_thread()
    summaries = []
    try:

        def run():
            summaries.append(
                run_loadgen(
                    server.url,
                    NETWORK,
                    scale=SCALE,
                    seed=SEED,
                    requests=REPLICA_REQUESTS,
                    concurrency=REPLICA_CONCURRENCY,
                    batch=REPLICA_BATCH,
                    verify=True,
                )
            )

        benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        server.stop()
        state.unwrap()
    summary = summaries[-1]
    assert summary["errors"] == [], summary["errors"]
    assert summary["completed"] == REPLICA_REQUESTS
    assert summary["verify"]["mismatches"] == 0, summary["verify"]["examples"]
    latency = summary["latency_ms"]
    _replica_points[replicas] = {
        "replicas": replicas,
        "coalesce_ms": coalesce_ms,
        "latency_ms": latency,
        "req_per_s": summary["req_per_s"],
        "rows_per_s": summary["rows_per_s"],
        "reuse_fraction": summary["reuse"]["overall_fraction"],
        "coalesced_batches": summary["coalesce"]["coalesced_batches"],
        "batches": summary["coalesce"]["batches"],
        "verified_rows": summary["verify"]["checked"],
    }
    benchmark.extra_info["p95_ms"] = latency["p95"]
    benchmark.extra_info["req_per_s"] = summary["req_per_s"]


def test_replica_scaling(benchmark, serve_report):
    """A pooled, coalescing server must out-serve the one-model baseline."""
    del serve_report
    if len(_replica_points) < 2 or 1 not in _replica_points:
        pytest.skip("replica sweep points did not run")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    baseline = _replica_points[1]["req_per_s"]
    pooled = {
        replicas: point["req_per_s"]
        for replicas, point in _replica_points.items()
        if replicas > 1
    }
    lines = [
        f"replicas {replicas}: p50 "
        f"{point['latency_ms']['p50']:7.2f} ms  p95 "
        f"{point['latency_ms']['p95']:7.2f} ms  "
        f"{point['req_per_s']:6.1f} req/s  "
        f"({point['coalesced_batches']}/{point['batches']} batches coalesced)"
        for replicas, point in sorted(_replica_points.items())
    ]
    print("\n=== serving throughput vs replica count ===\n" + "\n".join(lines))
    best = max(pooled.values())
    assert best > baseline, (
        f"pooled serving ({pooled} req/s) did not beat the "
        f"single-replica baseline ({baseline:.1f} req/s)"
    )


def test_reuse_trajectory(benchmark, serve_report):
    """Reuse must be non-decreasing in theta across the served points."""
    if len(serve_report) < 2:
        pytest.skip("per-theta serving points did not run")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    thetas = sorted(serve_report)
    fractions = [serve_report[theta]["reuse_fraction"] for theta in thetas]
    lines = [
        f"theta {theta:4.2f}: p50 {serve_report[theta]['latency_ms']['p50']:7.2f} ms"
        f"  p99 {serve_report[theta]['latency_ms']['p99']:7.2f} ms"
        f"  {serve_report[theta]['req_per_s']:6.1f} req/s"
        f"  reuse {100 * fraction:5.1f}%"
        for theta, fraction in zip(thetas, fractions)
    ]
    print("\n=== serving latency/reuse vs theta ===\n" + "\n".join(lines))
    assert all(a <= b + 1e-12 for a, b in zip(fractions, fractions[1:])), (
        f"reuse not monotone in theta: {dict(zip(thetas, fractions))}"
    )
