"""Figure 18: energy breakdown (static + dynamic) for E-PUR and
E-PUR+BM at 1% accuracy loss.

Paper's observations: scratchpad memories and pipeline operations
dominate; both shrink under memoization; DRAM energy is unchanged; the
FMU overhead is negligible.
"""

from conftest import emit

from repro.analysis.figures import render_table
from repro.models.specs import BENCHMARK_NAMES

COMPONENTS = ("scratchpad", "operations", "dram", "fmu")


def test_fig18_energy_breakdown(benchmark, cache):
    def run():
        return {
            name: cache.end_to_end(name, 1.0).comparison.breakdown_percent()
            for name in BENCHMARK_NAMES
        }

    breakdowns = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, b in breakdowns.items():
        for config in ("epur", "epur_bm"):
            rows.append(
                [f"{name} {config}"]
                + [f"{b[config][c]:.1f}" for c in COMPONENTS]
                + [f"{sum(b[config].values()):.1f}"]
            )
    emit(
        benchmark,
        "Figure 18 (energy breakdown, % of baseline total)",
        render_table(["config", *COMPONENTS, "total"], rows),
    )

    for name, b in breakdowns.items():
        base, memo = b["epur"], b["epur_bm"]
        # Scratchpad dominates the baseline (§3.1: up to 80% is fetching).
        assert base["scratchpad"] == max(base[c] for c in COMPONENTS), name
        # Memoization reduces scratchpad and operations energy...
        assert memo["scratchpad"] <= base["scratchpad"], name
        assert memo["operations"] <= base["operations"], name
        # ...leaves DRAM untouched, and adds only a small FMU overhead.
        assert abs(memo["dram"] - base["dram"]) < 1e-9, name
        assert base["fmu"] == 0.0 and memo["fmu"] < 12.0, name
