"""Shared fixtures for the reproduction benches.

Training the four bench-scale networks takes ~30-60 s; it happens once
per session, and the sweep/end-to-end results that several figures share
are cached in :class:`ResultCache` so e.g. Figures 16, 17 and 19 do not
re-run the same threshold sweeps.

Every bench prints the rows/series the corresponding paper figure or
table reports (run ``pytest benchmarks/ --benchmark-only -s`` to see
them) and also attaches them to ``benchmark.extra_info``.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import pytest

from repro.analysis.sweep import EndToEndResult, end_to_end, network_sweep
from repro.core.calibration import ThresholdSweep
from repro.core.engine import MemoizationScheme
from repro.models.benchmark import Benchmark
from repro.models.specs import BENCHMARK_NAMES
from repro.models.zoo import load_benchmark

#: Threshold grid used by the figure sweeps (x-axis of Figures 1 and 16;
#: the paper's IMDB plot extends to 1.0).
THETAS: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0)

#: Accuracy-loss budgets evaluated by Figures 17-19.
LOSS_TARGETS: Sequence[float] = (1.0, 2.0, 3.0)


class ResultCache:
    """Lazy, session-wide cache of trained benchmarks and sweep results."""

    def __init__(self, scale: str = "bench"):
        self.scale = scale
        self._sweeps: Dict[Tuple[str, str, bool], ThresholdSweep] = {}
        self._e2e: Dict[Tuple[str, float], EndToEndResult] = {}

    def benchmark(self, name: str) -> Benchmark:
        return load_benchmark(name, scale=self.scale)

    def benchmarks(self):
        return [self.benchmark(name) for name in BENCHMARK_NAMES]

    def sweep(
        self, name: str, predictor: str = "bnn", throttle: bool = True
    ) -> ThresholdSweep:
        key = (name, predictor, throttle)
        if key not in self._sweeps:
            scheme = MemoizationScheme(predictor=predictor, throttle=throttle)
            self._sweeps[key] = network_sweep(
                self.benchmark(name), scheme, thetas=THETAS
            )
        return self._sweeps[key]

    def end_to_end(self, name: str, loss_target: float) -> EndToEndResult:
        key = (name, loss_target)
        if key not in self._e2e:
            self._e2e[key] = end_to_end(
                self.benchmark(name), loss_target, thetas=THETAS
            )
        return self._e2e[key]


@pytest.fixture(scope="session")
def cache() -> ResultCache:
    return ResultCache()


def emit(benchmark, title: str, text: str) -> None:
    """Print a reproduced figure/table and attach it to the bench record."""
    block = f"\n=== {title} ===\n{text}"
    print(block)
    benchmark.extra_info[title] = text
