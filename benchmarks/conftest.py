"""Shared fixtures for the reproduction benches.

Sweep and end-to-end execution routes through :mod:`repro.runner`: every
figure's (network, predictor, theta) points become
:class:`~repro.runner.SweepJob` specs executed by a shared
:class:`~repro.runner.ParallelRunner`.  Results persist in the
content-addressed on-disk cache (``.repro_cache/`` by default), so a
cold session trains the four bench-scale networks once (~30-60 s) and
re-runs of the figure benches resolve every sweep point from disk and
complete near-instantly.  Environment knobs:

- ``REPRO_BENCH_BACKEND``: execution backend — ``serial``, ``process``,
  ``queue`` or ``http`` (default: ``process`` when ``REPRO_BENCH_JOBS``
  > 1, else ``serial``; every backend produces bitwise-identical
  figures).
- ``REPRO_BENCH_JOBS``: worker processes for the process backend
  (default 1).
- ``REPRO_BENCH_QUEUE_DIR``: work-queue directory for the queue
  backend (default ``.repro_queue``); external ``repro worker``
  processes sharing it help drain the figure sweeps.
- ``REPRO_BENCH_COORDINATOR``: ``repro coordinator`` URL for the http
  backend; any ``repro worker --coordinator`` on any reachable host
  helps drain the figure sweeps.
- ``REPRO_BENCH_TOKEN_FILE``: file holding that coordinator's shared
  auth token.
- ``REPRO_BENCH_SHARDS``: per-batch evaluation shards per sweep point
  (default 1; any value produces bitwise-identical figures).
- ``REPRO_BENCH_NO_CACHE``: set to disable the on-disk cache.
- ``REPRO_CACHE_DIR``: cache location (default ``.repro_cache``).

Every bench prints the rows/series the corresponding paper figure or
table reports (run ``pytest benchmarks/ --benchmark-only -s`` to see
them) and also attaches them to ``benchmark.extra_info``.
"""

from __future__ import annotations

import os
from typing import Dict, Sequence, Tuple

import pytest

from repro.analysis.sweep import EndToEndResult, end_to_end, network_sweep
from repro.core.calibration import ThresholdSweep
from repro.core.engine import MemoizationScheme
from repro.models.benchmark import Benchmark
from repro.models.specs import BENCHMARK_NAMES
from repro.models.zoo import load_benchmark
from repro.runner import (
    DEFAULT_QUEUE_DIR,
    ParallelRunner,
    ResultCache,
    make_backend,
    read_token_file,
)

#: Threshold grid used by the figure sweeps (x-axis of Figures 1 and 16;
#: the paper's IMDB plot extends to 1.0).
THETAS: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0)

#: Accuracy-loss budgets evaluated by Figures 17-19.
LOSS_TARGETS: Sequence[float] = (1.0, 2.0, 3.0)


def build_runner() -> ParallelRunner:
    """Runner configured from the environment (see module docstring)."""
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    backend_name = os.environ.get("REPRO_BENCH_BACKEND")
    if not backend_name:
        backend_name = "process" if jobs > 1 else "serial"
    token_file = os.environ.get("REPRO_BENCH_TOKEN_FILE")
    backend = make_backend(
        backend_name,
        jobs=jobs,
        queue_dir=os.environ.get("REPRO_BENCH_QUEUE_DIR", DEFAULT_QUEUE_DIR),
        coordinator=os.environ.get("REPRO_BENCH_COORDINATOR"),
        token=read_token_file(token_file) if token_file else None,
    )
    cache = None
    if not os.environ.get("REPRO_BENCH_NO_CACHE"):
        cache = ResultCache(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))
    return ParallelRunner(cache=cache, backend=backend)


class SessionResults:
    """Session-wide memo of sweeps/e2e results, executed by the runner."""

    def __init__(self, scale: str = "bench"):
        self.scale = scale
        self.runner = build_runner()
        self.shards = int(os.environ.get("REPRO_BENCH_SHARDS", "1"))
        self._sweeps: Dict[Tuple[str, str, bool], ThresholdSweep] = {}
        self._e2e: Dict[Tuple[str, float], EndToEndResult] = {}

    def benchmark(self, name: str) -> Benchmark:
        """Trained benchmark instance (for benches that probe the model)."""
        bench = self._lazy_benchmark(name)
        bench.ensure_trained()
        return bench

    def benchmarks(self):
        return [self.benchmark(name) for name in BENCHMARK_NAMES]

    def _lazy_benchmark(self, name: str) -> Benchmark:
        # trained=False: on a warm cache the runner never needs the
        # weights, so training happens only on the first cache miss.
        return load_benchmark(name, scale=self.scale, trained=False)

    def sweep(
        self, name: str, predictor: str = "bnn", throttle: bool = True
    ) -> ThresholdSweep:
        key = (name, predictor, throttle)
        if key not in self._sweeps:
            scheme = MemoizationScheme(predictor=predictor, throttle=throttle)
            self._sweeps[key] = network_sweep(
                self._lazy_benchmark(name),
                scheme,
                thetas=THETAS,
                runner=self.runner,
                shards=self.shards,
            )
        return self._sweeps[key]

    def end_to_end(self, name: str, loss_target: float) -> EndToEndResult:
        key = (name, loss_target)
        if key not in self._e2e:
            self._e2e[key] = end_to_end(
                self._lazy_benchmark(name),
                loss_target,
                thetas=THETAS,
                runner=self.runner,
                shards=self.shards,
            )
        return self._e2e[key]

    def runner_delta(self, since: Tuple[int, int]) -> str:
        """Human-readable hits/evaluations since a counter snapshot."""
        hits, misses = since
        return (
            f"runner: {self.runner.hits - hits} cache hits, "
            f"{self.runner.misses - misses} points evaluated"
        )

    def runner_counters(self) -> Tuple[int, int]:
        return (self.runner.hits, self.runner.misses)


@pytest.fixture(scope="session")
def cache():
    results = SessionResults()
    yield results
    results.runner.close()


def emit(benchmark, title: str, text: str) -> None:
    """Print a reproduced figure/table and attach it to the bench record."""
    block = f"\n=== {title} ===\n{text}"
    print(block)
    benchmark.extra_info[title] = text
