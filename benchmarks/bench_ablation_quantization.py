"""Ablation: memoization is orthogonal to weight quantization (§2.2).

E-PUR stores FP16 weights; the related work compresses further with
linear quantization.  This bench quantizes the IMDB network's weights
(FP16 and INT8) and re-runs the memoization pipeline: reuse and accuracy
loss should be essentially unchanged, showing the two techniques stack.
"""


from conftest import emit

from repro.analysis.figures import render_table
from repro.core.engine import MemoizationScheme
from repro.core.quantization import quantize_module

SCHEMES = (("none", None, 0), ("fp16", "fp16", 0), ("int8", "linear", 8))


def test_quantization_orthogonal_to_memoization(benchmark, cache):
    bench = cache.benchmark("imdb")

    def run():
        results = {}
        saved = bench.model.state_dict()
        try:
            for label, scheme, bits in SCHEMES:
                bench.model.load_state_dict(saved)
                if scheme is not None:
                    quantize_module(bench.model, scheme=scheme, bits=bits)
                quality = bench.evaluate()
                memo = bench.evaluate_memoized(MemoizationScheme(theta=0.3))
                results[label] = (quality, memo.quality_loss, memo.reuse_percent)
        finally:
            bench.model.load_state_dict(saved)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [label, f"{q:.2f}", f"{loss:.2f}", f"{reuse:.1f}%"]
        for label, (q, loss, reuse) in results.items()
    ]
    emit(
        benchmark,
        "Ablation (quantization x memoization, IMDB)",
        render_table(["weights", "accuracy", "memo loss", "reuse"], rows),
    )

    base_quality, _, base_reuse = results["none"]
    # FP16 rounding is invisible at this scale.
    assert abs(results["fp16"][0] - base_quality) < 1.0
    assert abs(results["fp16"][2] - base_reuse) < 3.0
    # INT8 costs little accuracy and leaves reuse in the same band.
    assert results["int8"][0] > base_quality - 5.0
    assert abs(results["int8"][2] - base_reuse) < 8.0
