"""Figure 11: computation reuse with and without the throttling
mechanism, at 1% and 2% accuracy loss.

Paper's observation: accumulating relative differences across successive
reuses (Eq. 13) yields ~5% more reuse at the same accuracy than using
the instantaneous difference alone, because it converts "many long,
occasionally harmful streaks" into "more, shorter, safe streaks".
"""

from conftest import emit

from repro.analysis.figures import render_table
from repro.models.specs import BENCHMARK_NAMES


def test_fig11_throttling_ablation(benchmark, cache):
    def run():
        results = {}
        for name in BENCHMARK_NAMES:
            results[name] = {
                True: cache.sweep(name, predictor="bnn", throttle=True),
                False: cache.sweep(name, predictor="bnn", throttle=False),
            }
        return results

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, by_throttle in sweeps.items():
        row = [name]
        for loss in (1.0, 2.0):
            for throttle in (True, False):
                reuse = by_throttle[throttle].reuse_at_loss(loss)
                row.append(f"{100 * reuse:.1f}%")
        rows.append(row)
    emit(
        benchmark,
        "Figure 11 (throttling ablation: reuse at fixed loss)",
        render_table(
            ["network", "1% thr", "1% no-thr", "2% thr", "2% no-thr"], rows
        ),
    )

    # At equal threshold the unthrottled variant reuses at least as much
    # (throttling only ever blocks reuse)...
    for name, by_throttle in sweeps.items():
        for p_thr, p_no in zip(
            by_throttle[True].points, by_throttle[False].points
        ):
            assert p_thr.reuse <= p_no.reuse + 1e-9, name
    # ...but at a fixed *accuracy* budget the throttled curve must win or
    # tie on a majority of networks (the paper's Figure 11 claim).
    wins = 0
    comparisons = 0
    for by_throttle in sweeps.values():
        for loss in (1.0, 2.0):
            comparisons += 1
            if by_throttle[True].reuse_at_loss(loss) >= by_throttle[
                False
            ].reuse_at_loss(loss):
                wins += 1
    assert wins >= comparisons / 2, f"throttling won only {wins}/{comparisons}"
