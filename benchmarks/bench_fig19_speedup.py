"""Figure 19: speedup of E-PUR+BM over E-PUR at 1%, 2%, 3% accuracy loss.

Paper's numbers: 1.35x average at 1% loss, 1.5x at 2%, 1.67x at 3%;
networks with low reuse (DeepSpeech @1%) see the smallest speedups due
to the per-neuron FMU overhead.

Executes via :mod:`repro.runner`; shares every calibration sweep and
test point with Figure 17 through the content-addressed result cache.
"""

import numpy as np
from conftest import LOSS_TARGETS, emit

from repro.analysis.figures import render_table
from repro.models.specs import BENCHMARK_NAMES


def test_fig19_speedup(benchmark, cache):
    def run():
        return {
            (name, target): cache.end_to_end(name, target)
            for name in BENCHMARK_NAMES
            for target in LOSS_TARGETS
        }

    counters = cache.runner_counters()
    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name in BENCHMARK_NAMES:
        rows.append(
            [name]
            + [f"{results[(name, t)].speedup:.2f}x" for t in LOSS_TARGETS]
        )
    rows.append(
        ["average"]
        + [
            f"{np.mean([results[(n, t)].speedup for n in BENCHMARK_NAMES]):.2f}x"
            for t in LOSS_TARGETS
        ]
    )
    emit(
        benchmark,
        "Figure 19 (speedup over E-PUR)",
        render_table(["network", *(f"@{t:.0f}% loss" for t in LOSS_TARGETS)], rows)
        + "\npaper averages: 1.35x @1%, 1.5x @2%, 1.67x @3%"
        + "\n" + cache.runner_delta(counters),
    )

    speedups_1 = [results[(n, 1.0)].speedup for n in BENCHMARK_NAMES]
    # Everybody gains; average in the paper's magnitude band.
    assert all(s >= 1.0 for s in speedups_1)
    assert 1.1 <= float(np.mean(speedups_1)) <= 2.2
    # Relaxing the loss budget can only help.
    for name in BENCHMARK_NAMES:
        assert results[(name, 3.0)].speedup >= results[(name, 1.0)].speedup - 1e-9
