"""Ablation: accelerator design-parameter sensitivity.

Varies the DPU width and the FMU issue overhead around Table 2's values
and reports how the paper's headline speedup responds — wide DPUs shrink
the per-neuron dot-product latency and therefore the benefit of skipping
it; a slower (non-pipelined) FMU eats the gains on low-reuse networks.
"""

import numpy as np
from conftest import emit
from dataclasses import replace

from repro.accel.config import DEFAULT_CONFIG, FMUConfig
from repro.accel.epur import compare
from repro.accel.trace import ReuseTrace
from repro.analysis.figures import render_table
from repro.models.specs import PAPER_NETWORKS

DPU_WIDTHS = (8, 16, 32, 64)
FMU_ISSUE = (1, 3, 5)


def _avg_speedup(config):
    speedups = []
    for spec in PAPER_NETWORKS.values():
        trace = ReuseTrace.uniform(spec.paper_reuse_percent / 100.0, spec.layers)
        speedups.append(compare(spec, trace, config=config).speedup)
    return float(np.mean(speedups))


def test_hw_sensitivity(benchmark):
    def run():
        by_width = {
            w: _avg_speedup(replace(DEFAULT_CONFIG, dpu_width=w))
            for w in DPU_WIDTHS
        }
        by_issue = {
            i: _avg_speedup(
                replace(DEFAULT_CONFIG, fmu=FMUConfig(issue_cycles=i))
            )
            for i in FMU_ISSUE
        }
        return by_width, by_issue

    by_width, by_issue = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [["dpu_width", w, f"{s:.2f}x"] for w, s in by_width.items()]
    rows += [["fmu_issue", i, f"{s:.2f}x"] for i, s in by_issue.items()]
    emit(
        benchmark,
        "Ablation (hardware sensitivity, avg speedup at paper reuse)",
        render_table(["parameter", "value", "avg speedup"], rows),
    )

    # Wider DPUs leave less dot-product time to skip -> smaller speedup.
    widths = sorted(by_width)
    for a, b in zip(widths, widths[1:]):
        assert by_width[a] >= by_width[b] - 1e-9
    # A slower FMU can only hurt.
    issues = sorted(by_issue)
    for a, b in zip(issues, issues[1:]):
        assert by_issue[a] >= by_issue[b] - 1e-9
    # Table 2's design point still shows a clear gain.
    assert by_width[16] > 1.2
