"""Table 2: configuration parameters of E-PUR and the memoization unit."""

from conftest import emit

from repro.accel.config import DEFAULT_CONFIG, KIB, MIB
from repro.analysis.figures import render_table


def test_table2_configuration(benchmark):
    def run():
        return DEFAULT_CONFIG

    config = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        ["Technology", f"{config.technology_nm} nm"],
        ["Frequency", f"{config.frequency_hz / 1e6:.0f} MHz"],
        ["Intermediate Memory", f"{config.intermediate_memory_bytes // MIB} MiB"],
        ["Weight Buffer", f"{config.weight_buffer_bytes // MIB} MiB per CU"],
        ["Input Buffer", f"{config.input_buffer_bytes // KIB} KiB per CU"],
        ["DPU Width", f"{config.dpu_width} operations"],
        ["BDPU Width", f"{config.fmu.bdpu_width_bits} bits"],
        ["FMU Latency", f"{config.fmu.latency_cycles} cycles"],
        ["Integer Width", f"{config.fmu.integer_width_bytes} bytes"],
        ["Memoization Buffer", f"{config.fmu.memo_buffer_bytes // KIB} KiB"],
    ]
    emit(benchmark, "Table 2 (configuration parameters)", render_table(
        ["parameter", "value"], rows
    ))

    # Table 2 verbatim.
    assert config.technology_nm == 28
    assert config.frequency_hz == 500e6
    assert config.intermediate_memory_bytes == 6 * MIB
    assert config.weight_buffer_bytes == 2 * MIB
    assert config.input_buffer_bytes == 8 * KIB
    assert config.dpu_width == 16
    assert config.fmu.bdpu_width_bits == 2048
    assert config.fmu.latency_cycles == 5
    assert config.fmu.integer_width_bytes == 2
    assert config.fmu.memo_buffer_bytes == 8 * KIB
