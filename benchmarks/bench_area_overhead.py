"""§5 area analysis: 64.6 mm² baseline -> 66.8 mm² with memoization
(~4% overhead, dominated by the extra scratchpad memory)."""

import pytest
from conftest import emit

from repro.accel.area import DEFAULT_AREA_MODEL
from repro.analysis.figures import render_table


def test_area_overhead(benchmark):
    def run():
        return DEFAULT_AREA_MODEL

    model = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[name, f"{mm2:.1f}"] for name, mm2 in model.breakdown().items()]
    rows.append(["E-PUR total", f"{model.baseline_mm2:.1f}"])
    rows.append(["E-PUR+BM total", f"{model.memoized_mm2:.1f}"])
    rows.append(["overhead", f"{100 * model.overhead_fraction:.1f}%"])
    emit(benchmark, "Area (mm^2 at 28 nm)", render_table(
        ["component", "mm^2"], rows
    ))

    assert model.baseline_mm2 == pytest.approx(64.6, abs=0.05)
    assert model.memoized_mm2 == pytest.approx(66.8, abs=0.05)
    assert model.overhead_fraction < 0.05
