"""Tests for per-layer thresholds and their greedy calibration."""

import numpy as np
import pytest

from repro.core.calibration import calibrate_per_layer
from repro.core.engine import MemoizationScheme, memoized
from repro.core.stats import ReuseStats
from repro.nn.lstm import LSTMLayer
from repro.nn.rnn import RNNStack


class TestSchemeOverrides:
    def test_theta_for_defaults_to_global(self):
        scheme = MemoizationScheme(theta=0.2)
        assert scheme.theta_for("layer0") == 0.2

    def test_theta_for_override(self):
        scheme = MemoizationScheme(theta=0.2, layer_thetas={"layer1": 0.7})
        assert scheme.theta_for("layer0") == 0.2
        assert scheme.theta_for("layer1") == 0.7

    def test_with_layer_thetas_copies(self):
        base = MemoizationScheme(theta=0.2)
        derived = base.with_layer_thetas({"a": 0.5})
        assert base.layer_thetas is None
        assert derived.theta_for("a") == 0.5

    def test_negative_override_rejected(self):
        with pytest.raises(ValueError):
            MemoizationScheme(layer_thetas={"a": -0.1})

    def test_overrides_change_per_layer_reuse(self):
        rng = np.random.default_rng(0)
        stack = RNNStack([LSTMLayer(6, 8, rng=rng), LSTMLayer(8, 8, rng=rng)])
        x = np.cumsum(0.05 * rng.standard_normal((2, 20, 6)), axis=1)
        stats = ReuseStats()
        scheme = MemoizationScheme(theta=0.0, layer_thetas={"layer1": 2.0})
        with memoized(stack, scheme, stats):
            stack(x)
        per_layer = stats.by_layer()
        assert per_layer["layer1"] > per_layer["layer0"]


class TestGreedyCalibration:
    def test_synthetic_heterogeneous_layers(self):
        """Layer 'a' tolerates theta up to 0.4; layer 'b' up to 0.2; the
        greedy calibrator should find an assignment near (0.4, 0.2)."""
        limits = {"a": 0.4, "b": 0.2}

        def evaluate(assignment):
            loss = sum(
                max(0.0, (theta - limits[name]) * 50.0)
                for name, theta in assignment.items()
            )
            reuse = sum(assignment.values()) / 2.0
            return loss, reuse

        assignment, (loss, reuse) = calibrate_per_layer(
            evaluate, ["a", "b"], thetas=(0.1, 0.2, 0.3, 0.4), max_loss=1.0
        )
        assert loss <= 1.0
        assert assignment["a"] == 0.4
        assert assignment["b"] == 0.2
        assert reuse == pytest.approx(0.3)

    def test_beats_best_global_threshold(self):
        """Per-layer assignment must reuse at least as much as the best
        single global threshold under the same budget."""
        limits = {"a": 0.4, "b": 0.1}

        def evaluate(assignment):
            loss = sum(
                max(0.0, (theta - limits[name]) * 100.0)
                for name, theta in assignment.items()
            )
            return loss, sum(assignment.values()) / 2.0

        grid = (0.1, 0.2, 0.3, 0.4)
        best_global = max(
            (evaluate({"a": t, "b": t}) for t in grid),
            key=lambda lr: lr[1] if lr[0] <= 0.5 else -1.0,
        )
        _, (_, per_layer_reuse) = calibrate_per_layer(
            evaluate, ["a", "b"], thetas=grid, max_loss=0.5
        )
        assert per_layer_reuse >= best_global[1]

    def test_input_validation(self):
        with pytest.raises(ValueError):
            calibrate_per_layer(lambda a: (0, 0), [], thetas=(0.1,))
        with pytest.raises(ValueError):
            calibrate_per_layer(lambda a: (0, 0), ["a"], thetas=())
