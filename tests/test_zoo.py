"""Tests for the benchmark zoo and harness (specs, splits, caching)."""

import numpy as np
import pytest

from repro.core.engine import MemoizationScheme
from repro.models.benchmark import split_validation
from repro.models.specs import BENCHMARK_NAMES, PAPER_NETWORKS, NetworkSpec
from repro.models.zoo import build_benchmark, load_benchmark


class TestSpecs:
    def test_table1_names(self):
        assert set(BENCHMARK_NAMES) == {"imdb", "deepspeech2", "eesen", "mnmt"}

    def test_table1_values(self):
        imdb = PAPER_NETWORKS["imdb"]
        assert (imdb.cell_type, imdb.layers, imdb.neurons) == ("lstm", 1, 128)
        assert imdb.base_quality == 86.5
        ds2 = PAPER_NETWORKS["deepspeech2"]
        assert (ds2.cell_type, ds2.layers, ds2.neurons) == ("gru", 5, 800)
        eesen = PAPER_NETWORKS["eesen"]
        assert eesen.bidirectional and eesen.layers == 10
        mnmt = PAPER_NETWORKS["mnmt"]
        assert mnmt.neurons == 1024 and mnmt.quality_metric == "bleu"

    def test_gates_per_cell(self):
        assert PAPER_NETWORKS["imdb"].gates_per_cell == 4
        assert PAPER_NETWORKS["deepspeech2"].gates_per_cell == 3

    def test_layer_input_sizes_unidirectional(self):
        sizes = PAPER_NETWORKS["deepspeech2"].layer_input_sizes()
        assert sizes == (800, 800, 800, 800, 800)

    def test_layer_input_sizes_bidirectional(self):
        sizes = PAPER_NETWORKS["eesen"].layer_input_sizes()
        assert len(sizes) == 10
        assert sizes[0] == sizes[1] == 320  # first pair sees the input
        assert sizes[2] == sizes[3] == 640  # later pairs see both directions

    def test_higher_is_better(self):
        assert PAPER_NETWORKS["imdb"].higher_is_better
        assert not PAPER_NETWORKS["eesen"].higher_is_better

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            NetworkSpec(
                name="x", app_domain="d", cell_type="rnn", layers=1, neurons=8,
                bidirectional=False, input_size=8, avg_sequence_length=10,
                base_quality=1.0, quality_metric="accuracy",
                paper_reuse_percent=0.0, dataset="d",
            )
        with pytest.raises(ValueError):
            NetworkSpec(
                name="x", app_domain="d", cell_type="lstm", layers=3, neurons=8,
                bidirectional=True, input_size=8, avg_sequence_length=10,
                base_quality=1.0, quality_metric="wer",
                paper_reuse_percent=0.0, dataset="d",
            )


class TestSplitValidation:
    def test_disjoint_and_complete(self):
        indices = np.arange(40)
        fit, val = split_validation(indices, seed=0)
        assert set(fit).isdisjoint(val)
        assert sorted(np.concatenate([fit, val])) == list(range(40))

    def test_fraction(self):
        fit, val = split_validation(np.arange(40), seed=0, fraction=0.25)
        assert len(val) == 10

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            split_validation(np.array([1]), seed=0)


class TestBuilders:
    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            build_benchmark("resnet")

    def test_unknown_scale(self):
        with pytest.raises(ValueError, match="scale"):
            build_benchmark("imdb", scale="huge")

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_builds_untrained(self, name):
        bench = build_benchmark(name, scale="tiny")
        assert bench.base_quality is None
        assert bench.name == name

    def test_splits_disjoint(self):
        bench = build_benchmark("imdb", scale="tiny")
        all_idx = np.concatenate([bench.train_idx, bench.val_idx, bench.test_idx])
        assert len(np.unique(all_idx)) == len(all_idx)

    def test_quality_loss_requires_training(self):
        bench = build_benchmark("imdb", scale="tiny")
        with pytest.raises(RuntimeError):
            bench.quality_loss(50.0)


class TestTrainedBenchmark:
    """Uses the shared cached IMDB instance (fast to train)."""

    @pytest.fixture(scope="class")
    def bench(self):
        return load_benchmark("imdb", scale="tiny")

    def test_base_quality_reasonable(self, bench):
        assert bench.base_quality > 70.0

    def test_cache_returns_same_instance(self, bench):
        assert load_benchmark("imdb", scale="tiny") is bench

    def test_quality_loss_clamps(self, bench):
        assert bench.quality_loss(bench.base_quality + 5.0) == 0.0
        assert bench.quality_loss(bench.base_quality - 2.0) == pytest.approx(2.0)

    def test_evaluate_memoized(self, bench):
        result = bench.evaluate_memoized(MemoizationScheme(theta=0.3))
        assert 0.0 <= result.reuse_fraction <= 1.0
        assert result.reuse_percent == pytest.approx(100 * result.reuse_fraction)
        assert result.quality_loss >= 0.0

    def test_calibration_differs_from_test(self, bench):
        """Calibration must run on the validation split, not test."""
        test_result = bench.evaluate_memoized(MemoizationScheme(theta=0.3))
        cal_result = bench.evaluate_memoized(
            MemoizationScheme(theta=0.3), calibration=True
        )
        # Different split sizes -> different evaluation counts.
        assert (
            cal_result.stats.total_evaluations != test_result.stats.total_evaluations
        )

    def test_sweep_fn(self, bench):
        fn = bench.sweep_fn(MemoizationScheme())
        loss, reuse = fn(0.3)
        assert loss >= 0.0 and 0.0 <= reuse <= 1.0

    def test_hidden_sequences(self, bench):
        hidden = bench.hidden_sequences()
        assert all(h.ndim == 3 for h in hidden)

    def test_layer_io_pairs(self, bench):
        pairs = bench.layer_io_pairs()
        assert len(pairs) >= 1
