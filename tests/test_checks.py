"""The static-analysis suite checked against itself: fixture snippets
per check family (positive and negative), the annotation vocabulary,
and the CLI's baseline round trip.

Fixtures are inline source strings — the comment scanner works on
:mod:`tokenize` output, so annotation-shaped text inside *these* string
literals is invisible when the checker runs over this very file.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.checks import run_source
from repro.checks.base import SourceFile

REPO_ROOT = Path(__file__).resolve().parent.parent


def findings_for(code: str, path: str = "fixture.py"):
    return run_source(SourceFile(path, textwrap.dedent(code)))


def ids_for(code: str, path: str = "fixture.py"):
    return [finding.check for finding in findings_for(code, path)]


# -- GB01: guarded-by lock discipline ---------------------------------------


GB_BASE = """
    import threading

    class Pool:
        def __init__(self):
            self.lock = threading.Lock()
            self.jobs = []  # guarded-by: lock

        {method}
"""


def test_gb01_unguarded_access_flagged():
    code = GB_BASE.format(
        method="def push(self, job):\n            self.jobs.append(job)"
    )
    assert ids_for(code) == ["GB01"]


def test_gb01_with_block_passes():
    code = GB_BASE.format(
        method=(
            "def push(self, job):\n"
            "            with self.lock:\n"
            "                self.jobs.append(job)"
        )
    )
    assert ids_for(code) == []


def test_gb01_holds_lock_annotation_passes():
    code = GB_BASE.format(
        method=(
            "# checks: holds-lock lock\n"
            "        def push_locked(self, job):\n"
            "            self.jobs.append(job)"
        )
    )
    assert ids_for(code) == []


def test_gb01_wrong_lock_flagged():
    code = """
        import threading

        class Pool:
            def __init__(self):
                self.lock = threading.Lock()
                self.other = threading.Lock()
                self.jobs = []  # guarded-by: lock

            def push(self, job):
                with self.other:
                    self.jobs.append(job)
    """
    assert ids_for(code) == ["GB01"]


def test_gb01_init_exempt_and_condition_counts():
    code = """
        import threading

        class Pool:
            def __init__(self):
                self.cond = threading.Condition()
                self.pending = []  # guarded-by: cond
                self.pending.append(0)  # construction precedes sharing

            def push(self, job):
                with self.cond:
                    self.pending.append(job)
                    self.cond.notify()
    """
    assert ids_for(code) == []


def test_gb01_lock_released_after_with_block():
    code = GB_BASE.format(
        method=(
            "def push(self, job):\n"
            "            with self.lock:\n"
            "                pass\n"
            "            self.jobs.append(job)"
        )
    )
    assert ids_for(code) == ["GB01"]


# -- VT01/VT02: validation traps --------------------------------------------


def test_vt01_bool_admitting_int_gate_flagged():
    assert ids_for("def f(x):\n    return isinstance(x, (int, float))") == ["VT01"]


def test_vt01_same_statement_bool_exclusion_passes():
    code = """
        def f(x):
            return isinstance(x, (int, float)) and not isinstance(x, bool)
    """
    assert ids_for(code) == []


def test_vt01_annotation_suppresses():
    code = """
        def f(x):
            # checks: allow-bool-int bools are acceptable counts here
            return isinstance(x, int)
    """
    assert ids_for(code) == []


def test_vt02_wire_float_without_isfinite_flagged():
    assert ids_for('def f(p):\n    return float(p["theta"])') == ["VT02"]
    assert ids_for('def f(p):\n    return float(p.get("theta"))') == ["VT02"]


def test_vt02_isfinite_in_scope_passes():
    code = """
        import math

        def f(p):
            theta = float(p["theta"])
            if not math.isfinite(theta):
                raise ValueError(theta)
            return theta
    """
    assert ids_for(code) == []


def test_vt02_plain_float_conversion_not_flagged():
    assert ids_for("def f(x):\n    return float(x)") == []


def test_vt02_skips_test_files():
    code = 'def f(p):\n    return float(p["theta"])'
    assert ids_for(code, path="tests/test_thing.py") == []
    assert ids_for(code, path="benchmarks/bench_thing.py") == []


# -- MT01: monotonic-time discipline ----------------------------------------


def test_mt01_wall_clock_flagged_and_annotation():
    assert ids_for("import time\n\nstart = time.time()") == ["MT01"]
    assert (
        ids_for(
            "import time\n\n"
            "# checks: allow-wall-clock event timestamp\n"
            "ts = time.time()"
        )
        == []
    )


def test_mt01_bare_time_import_flagged_monotonic_not():
    assert ids_for("from time import time\n\nstart = time()") == ["MT01"]
    assert ids_for("import time\n\nstart = time.monotonic()") == []


# -- EP01/EP02/EP03: endpoint contract --------------------------------------


EP_OK = """
    class Handler:
        def _ep_health(self, body):
            return {"ok": True}

    _ROUTES = {"/health": ("GET", Handler._ep_health)}
"""


def test_endpoint_contract_clean_module_passes():
    assert ids_for(EP_OK) == []


def test_ep01_route_to_missing_handler():
    code = """
        class Handler:
            pass

        _ROUTES = {"/health": ("GET", Handler._ep_health)}
    """
    assert ids_for(code) == ["EP01"]


def test_ep02_unrouted_handler_and_suppression():
    code = """
        class Handler:
            def _ep_health(self, body):
                return {"ok": True}

            def _ep_orphan(self, body):
                return {"ok": True}

        _ROUTES = {"/health": ("GET", Handler._ep_health)}
    """
    assert ids_for(code) == ["EP02"]
    fixed = code.replace(
        "def _ep_orphan",
        "# checks: allow-unrouted registered dynamically by tests\n"
        "            def _ep_orphan",
    )
    assert ids_for(fixed) == []


def test_ep03_raw_write_and_bare_return_flagged():
    code = """
        class Handler:
            def _ep_bad(self, body):
                self.send_response(200)
                if body:
                    return
                return {"ok": True}

        _ROUTES = {"/bad": ("GET", Handler._ep_bad)}
    """
    assert ids_for(code) == ["EP03", "EP03"]


# -- BE01: broad-except hygiene ---------------------------------------------


def test_be01_silent_broad_except_flagged():
    code = """
        def f():
            try:
                work()
            except Exception:
                pass
    """
    assert ids_for(code) == ["BE01"]


def test_be01_reraise_emit_and_annotation_pass():
    reraise = """
        def f():
            try:
                work()
            except Exception as exc:
                raise RuntimeError("wrapped") from exc
    """
    emit = """
        def f(events):
            try:
                work()
            except Exception as exc:
                events.emit("error", error=str(exc))
    """
    tagged = """
        def f():
            try:
                work()
            except Exception:  # checks: allow-broad-except best-effort cleanup
                pass
    """
    assert ids_for(reraise) == []
    assert ids_for(emit) == []
    assert ids_for(tagged) == []


def test_be01_annotation_requires_reason():
    code = """
        def f():
            try:
                work()
            except Exception:  # checks: allow-broad-except
                pass
    """
    findings = findings_for(code)
    assert [f.check for f in findings] == ["BE01"]
    assert "reason" in findings[0].message


def test_be01_narrow_except_not_flagged():
    code = """
        def f():
            try:
                work()
            except ValueError:
                pass
    """
    assert ids_for(code) == []


# -- the CLI: exit codes and the baseline round trip ------------------------


def run_cli(args, cwd):
    return subprocess.run(
        [sys.executable, "-m", "repro.checks", *args],
        cwd=cwd,
        capture_output=True,
        text=True,
        env={
            "PYTHONPATH": str(REPO_ROOT / "src"),
            "PATH": "/usr/bin:/bin",
        },
    )


@pytest.fixture
def dirty_tree(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text(
        "import time\n\nstart = time.time()\n", encoding="utf-8"
    )
    return tmp_path


def test_cli_exits_nonzero_on_findings(dirty_tree):
    proc = run_cli(["pkg"], cwd=dirty_tree)
    assert proc.returncode == 1
    assert "MT01" in proc.stdout


def test_cli_exits_zero_on_clean_tree(tmp_path):
    (tmp_path / "ok.py").write_text("import time\n\nx = time.monotonic()\n")
    proc = run_cli([str(tmp_path)], cwd=tmp_path)
    assert proc.returncode == 0
    assert proc.stdout == ""


def test_cli_baseline_round_trip(dirty_tree):
    write = run_cli(["pkg", "--write-baseline", "baseline.json"], cwd=dirty_tree)
    assert write.returncode == 0
    baseline = json.loads((dirty_tree / "baseline.json").read_text())
    assert len(baseline["findings"]) == 1

    rerun = run_cli(["pkg", "--baseline", "baseline.json"], cwd=dirty_tree)
    assert rerun.returncode == 0, rerun.stdout
    assert "1 baselined" in rerun.stderr

    # A *new* finding still fails even with the old baseline in place.
    (dirty_tree / "pkg" / "fresh.py").write_text(
        'def f(p):\n    return float(p["x"])\n', encoding="utf-8"
    )
    dirty = run_cli(["pkg", "--baseline", "baseline.json"], cwd=dirty_tree)
    assert dirty.returncode == 1
    assert "VT02" in dirty.stdout
    assert "MT01" not in dirty.stdout  # still grandfathered

    # Fixing the baselined finding reports the entry as stale.
    (dirty_tree / "pkg" / "mod.py").write_text(
        "import time\n\nstart = time.monotonic()\n", encoding="utf-8"
    )
    (dirty_tree / "pkg" / "fresh.py").unlink()
    stale = run_cli(["pkg", "--baseline", "baseline.json"], cwd=dirty_tree)
    assert stale.returncode == 0
    assert "stale baseline" in stale.stderr


def test_cli_reports_syntax_errors(tmp_path):
    (tmp_path / "broken.py").write_text("def f(:\n")
    proc = run_cli([str(tmp_path)], cwd=tmp_path)
    assert proc.returncode == 1
    assert "PARSE" in proc.stdout


def test_cli_rejects_missing_path(tmp_path):
    proc = run_cli(["no/such/dir"], cwd=tmp_path)
    assert proc.returncode == 2


def test_repo_is_clean():
    """The acceptance gate: zero unsuppressed findings over the repo."""
    proc = run_cli(["src", "tests", "benchmarks"], cwd=REPO_ROOT)
    assert proc.returncode == 0, proc.stdout
