"""Property-based tests for the mergeable metric accumulators.

Seeded-random loops (a hypothesis-style property suite without the
dependency) establish the contract the sharded evaluation pipeline
rests on: for any partition of a corpus into 1..8 shards, accumulating
the shards and merging produces the *bitwise-identical* score of the
whole-corpus metric functions, and ``merge`` is associative and
order-independent.
"""

import json
import random

import numpy as np
import pytest

from repro.metrics import (
    ACCUMULATOR_KINDS,
    AccuracyAccumulator,
    BLEUAccumulator,
    MetricAccumulator,
    WERAccumulator,
    accumulator_from_payload,
    accuracy,
    corpus_bleu,
    wer,
)

N_TRIALS = 25


def random_partition(rng: random.Random, n_items: int, n_shards: int):
    """Split ``range(n_items)`` into ``n_shards`` random contiguous runs."""
    cuts = sorted(rng.sample(range(1, n_items), min(n_shards - 1, n_items - 1)))
    bounds = [0, *cuts, n_items]
    return [range(lo, hi) for lo, hi in zip(bounds[:-1], bounds[1:])]


def random_corpus(rng: random.Random, n_pairs: int, vocab: int = 6):
    references, hypotheses = [], []
    for _ in range(n_pairs):
        ref_len = rng.randint(1, 8)
        hyp_len = rng.randint(0, 8)
        references.append(tuple(rng.randrange(vocab) for _ in range(ref_len)))
        hypotheses.append(tuple(rng.randrange(vocab) for _ in range(hyp_len)))
    return references, hypotheses


class TestAccuracyAccumulator:
    def test_sharded_merge_equals_whole_corpus(self):
        rng = random.Random(0)
        np_rng = np.random.default_rng(0)
        for _ in range(N_TRIALS):
            n = rng.randint(2, 64)
            predictions = np_rng.integers(0, 3, size=n)
            targets = np_rng.integers(0, 3, size=n)
            expected = accuracy(predictions, targets)
            merged = AccuracyAccumulator()
            for part in random_partition(rng, n, rng.randint(1, 8)):
                shard = AccuracyAccumulator()
                idx = np.asarray(list(part))
                if idx.size:
                    shard.update(predictions[idx], targets[idx])
                merged.merge(shard)
            assert merged.finalize() == expected  # bitwise

    def test_accepts_score_predictions_like_accuracy(self):
        scores = np.array([[0.1, 0.9], [0.8, 0.2]])
        targets = np.array([1, 0])
        acc = AccuracyAccumulator()
        acc.update(scores, targets)
        assert acc.finalize() == accuracy(scores, targets) == 100.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="incompatible"):
            AccuracyAccumulator().update(np.zeros((2, 3, 4)), np.zeros(5))

    def test_empty_finalize_raises(self):
        with pytest.raises(ValueError, match="at least one"):
            AccuracyAccumulator().finalize()

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            AccuracyAccumulator(hits=3, total=2)


class TestWERAccumulator:
    def test_sharded_merge_equals_whole_corpus(self):
        rng = random.Random(1)
        for _ in range(N_TRIALS):
            n = rng.randint(2, 24)
            references, hypotheses = random_corpus(rng, n)
            expected = wer(references, hypotheses)
            merged = WERAccumulator()
            for part in random_partition(rng, n, rng.randint(1, 8)):
                shard = WERAccumulator()
                shard.update(
                    [references[i] for i in part], [hypotheses[i] for i in part]
                )
                merged.merge(shard)
            assert merged.finalize() == expected  # bitwise

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="references"):
            WERAccumulator().update([(1,)], [(1,), (2,)])

    def test_empty_finalize_raises(self):
        with pytest.raises(ValueError, match="at least one"):
            WERAccumulator().finalize()


class TestBLEUAccumulator:
    def test_sharded_merge_equals_whole_corpus(self):
        rng = random.Random(2)
        for _ in range(N_TRIALS):
            n = rng.randint(2, 24)
            references, hypotheses = random_corpus(rng, n)
            expected = corpus_bleu(references, hypotheses)
            merged = BLEUAccumulator()
            for part in random_partition(rng, n, rng.randint(1, 8)):
                shard = BLEUAccumulator()
                shard.update(
                    [references[i] for i in part], [hypotheses[i] for i in part]
                )
                merged.merge(shard)
            assert merged.finalize() == expected  # bitwise

    def test_matches_unsmoothed_reference(self):
        rng = random.Random(3)
        references, hypotheses = random_corpus(rng, 12)
        acc = BLEUAccumulator(smooth=False)
        acc.update(references, hypotheses)
        assert acc.finalize() == corpus_bleu(references, hypotheses, smooth=False)

    def test_incompatible_config_rejected(self):
        a = BLEUAccumulator(max_order=4)
        b = BLEUAccumulator(max_order=2)
        with pytest.raises(ValueError, match="max_order"):
            a.merge(b)

    def test_empty_finalize_raises(self):
        with pytest.raises(ValueError, match="sentence pair"):
            BLEUAccumulator().finalize()


def all_kinds(rng: random.Random):
    """One populated accumulator per kind, from random data."""
    np_rng = np.random.default_rng(rng.randrange(2**31))
    acc = AccuracyAccumulator()
    acc.update(np_rng.integers(0, 3, size=16), np_rng.integers(0, 3, size=16))
    references, hypotheses = random_corpus(rng, 8)
    w = WERAccumulator()
    w.update(references, hypotheses)
    b = BLEUAccumulator()
    b.update(references, hypotheses)
    return [acc, w, b]


class TestMergeAlgebra:
    """merge() must be associative and order-independent for every kind."""

    @staticmethod
    def shard_accumulators(rng, prototype):
        shards = []
        for _ in range(rng.randint(2, 6)):
            shard = type(prototype)()
            np_rng = np.random.default_rng(rng.randrange(2**31))
            if isinstance(prototype, AccuracyAccumulator):
                n = rng.randint(1, 20)
                shard.update(
                    np_rng.integers(0, 3, size=n), np_rng.integers(0, 3, size=n)
                )
            else:
                shard.update(*random_corpus(rng, rng.randint(1, 8)))
            shards.append(shard)
        return shards

    @pytest.mark.parametrize(
        "cls", [AccuracyAccumulator, WERAccumulator, BLEUAccumulator]
    )
    def test_order_independent(self, cls):
        rng = random.Random(4)
        for _ in range(N_TRIALS):
            shards = self.shard_accumulators(rng, cls())
            forward = cls()
            for shard in shards:
                forward.merge(shard)
            shuffled = list(shards)
            rng.shuffle(shuffled)
            backward = cls()
            for shard in shuffled:
                backward.merge(shard)
            assert forward == backward
            assert forward.finalize() == backward.finalize()

    @pytest.mark.parametrize(
        "cls", [AccuracyAccumulator, WERAccumulator, BLEUAccumulator]
    )
    def test_associative(self, cls):
        rng = random.Random(5)
        for _ in range(N_TRIALS):
            a, b, c = (self.shard_accumulators(rng, cls()) + [cls(), cls()])[:3]
            left = a.copy()
            left.merge(b)
            left.merge(c)
            bc = b.copy()
            bc.merge(c)
            right = a.copy()
            right.merge(bc)
            assert left == right

    def test_cross_kind_merge_rejected(self):
        with pytest.raises(TypeError, match="merge"):
            AccuracyAccumulator().merge(WERAccumulator())


class TestPayloadRoundtrip:
    def test_json_roundtrip_preserves_state_and_score(self):
        rng = random.Random(6)
        for acc in all_kinds(rng):
            payload = json.loads(json.dumps(acc.to_payload()))
            restored = accumulator_from_payload(payload)
            assert restored == acc
            assert restored.finalize() == acc.finalize()

    def test_copy_is_independent(self):
        acc = AccuracyAccumulator(hits=1, total=2)
        clone = acc.copy()
        clone.merge(AccuracyAccumulator(hits=1, total=2))
        assert acc.state_payload() == {"hits": 1, "total": 2}
        assert clone.state_payload() == {"hits": 2, "total": 4}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            accumulator_from_payload({"kind": "f1", "state": {}})

    def test_malformed_state_rejected(self):
        with pytest.raises((KeyError, TypeError)):
            accumulator_from_payload({"kind": "accuracy", "state": None})

    def test_registry_covers_all_kinds(self):
        assert set(ACCUMULATOR_KINDS) == {"accuracy", "wer", "bleu"}
        for cls in ACCUMULATOR_KINDS.values():
            assert issubclass(cls, MetricAccumulator)
