"""Tests for the memoized recurrent layer wrappers."""

import numpy as np
import pytest

from repro.core.engine import MemoizationScheme
from repro.core.layers import (
    MemoizedGRULayer,
    MemoizedLSTMLayer,
    MemoizedRecurrentLayer,
    wrap_layer,
)
from repro.core.stats import ReuseStats
from repro.nn.gru import GRULayer
from repro.nn.lstm import LSTMLayer
from repro.nn.rnn import RNNLayer

# The scalar wrapper path (vectorized=False) routes through the
# deprecated GatePredictor.step by design; ignore its warning here.
pytestmark = pytest.mark.filterwarnings(
    "ignore:GatePredictor.step is deprecated:DeprecationWarning"
)


@pytest.fixture
def rng():
    return np.random.default_rng(31)


def smooth_inputs(rng, batch=2, steps=20, dim=6):
    """Slowly drifting inputs (high reuse potential)."""
    base = rng.standard_normal((batch, 1, dim))
    drift = np.cumsum(0.03 * rng.standard_normal((batch, steps, dim)), axis=1)
    return base + drift


def make_scheme(predictor="bnn", theta=0.3, **kwargs):
    return MemoizationScheme(theta=theta, predictor=predictor, **kwargs)


class TestMemoizedLSTM:
    def test_oracle_theta_zero_is_exact(self, rng):
        """Oracle at theta=0 reuses only exactly-equal values, so outputs
        must match the plain layer bit for bit."""
        layer = LSTMLayer(6, 8, rng=rng)
        x = smooth_inputs(rng)
        reference = layer(x)
        stats = ReuseStats()
        wrapped = MemoizedLSTMLayer(
            layer, make_scheme("oracle", theta=0.0).make_predictor, stats
        )
        np.testing.assert_array_equal(wrapped(x), reference)

    def test_bnn_bounded_error_on_smooth_input(self, rng):
        layer = LSTMLayer(6, 8, rng=rng)
        x = smooth_inputs(rng)
        reference = layer(x)
        stats = ReuseStats()
        wrapped = MemoizedLSTMLayer(
            layer, make_scheme("bnn", theta=0.3).make_predictor, stats
        )
        out = wrapped(x)
        assert stats.reuse_fraction() > 0.05, "smooth input should see reuse"
        # Hidden states are tanh-bounded; errors must stay moderate.
        assert np.abs(out - reference).max() < 1.0

    def test_records_all_four_gates(self, rng):
        layer = LSTMLayer(6, 8, rng=rng)
        stats = ReuseStats()
        wrapped = MemoizedLSTMLayer(
            layer, make_scheme().make_predictor, stats, name="L"
        )
        wrapped(smooth_inputs(rng))
        assert {gate for (_, gate) in stats.total} == {"i", "f", "g", "o"}
        assert all(layer_name == "L" for (layer_name, _) in stats.total)

    def test_evaluation_counts(self, rng):
        layer = LSTMLayer(6, 8, rng=rng)
        stats = ReuseStats()
        wrapped = MemoizedLSTMLayer(layer, make_scheme().make_predictor, stats)
        batch, steps = 2, 20
        wrapped(smooth_inputs(rng, batch=batch, steps=steps))
        assert stats.total_evaluations == batch * steps * 8 * 4

    def test_state_resets_between_forwards(self, rng):
        layer = LSTMLayer(6, 8, rng=rng)
        stats = ReuseStats()
        wrapped = MemoizedLSTMLayer(layer, make_scheme().make_predictor, stats)
        x = smooth_inputs(rng)
        first = wrapped(x)
        second = wrapped(x)
        np.testing.assert_array_equal(first, second)

    def test_rejects_non_3d(self, rng):
        wrapped = MemoizedLSTMLayer(
            LSTMLayer(6, 8, rng=rng), make_scheme().make_predictor, ReuseStats()
        )
        with pytest.raises(ValueError):
            wrapped(rng.standard_normal((6, 8)))

    def test_step_interface_matches_forward(self, rng):
        layer = LSTMLayer(6, 8, rng=rng)
        stats = ReuseStats()
        wrapped = MemoizedLSTMLayer(layer, make_scheme().make_predictor, stats)
        x = smooth_inputs(rng, batch=1, steps=10)
        full = wrapped(x)
        state = wrapped.start_state(1)
        stepped = []
        for t in range(10):
            h, state = wrapped.step(x[:, t, :], state)
            stepped.append(h)
        np.testing.assert_allclose(full[:, -1, :], stepped[-1])


class TestMemoizedGRU:
    def test_oracle_theta_zero_is_exact(self, rng):
        layer = GRULayer(6, 8, rng=rng)
        x = smooth_inputs(rng)
        reference = layer(x)
        stats = ReuseStats()
        wrapped = MemoizedGRULayer(
            layer, make_scheme("oracle", theta=0.0).make_predictor, stats
        )
        np.testing.assert_array_equal(wrapped(x), reference)

    def test_records_all_three_gates(self, rng):
        layer = GRULayer(6, 8, rng=rng)
        stats = ReuseStats()
        wrapped = MemoizedGRULayer(layer, make_scheme().make_predictor, stats)
        wrapped(smooth_inputs(rng))
        assert {gate for (_, gate) in stats.total} == {"z", "r", "g"}

    def test_candidate_gate_uses_reset_operand(self, rng):
        """The g-gate predictor must see r*h, not h: with the input-
        similarity predictor and theta tuned so only the recurrent part
        matters, a flipped reset gate changes the decision stream."""
        layer = GRULayer(4, 6, rng=rng)
        stats = ReuseStats()
        wrapped = MemoizedGRULayer(
            layer, make_scheme("bnn", theta=0.2).make_predictor, stats
        )
        x = smooth_inputs(rng, dim=4)
        out = wrapped(x)
        reference = layer(x)
        assert out.shape == reference.shape

    def test_reuse_increases_with_theta(self, rng):
        x = smooth_inputs(rng)
        fractions = []
        for theta in (0.0, 0.5, 2.0):
            layer = GRULayer(6, 8, rng=np.random.default_rng(31))
            stats = ReuseStats()
            MemoizedGRULayer(layer, make_scheme(theta=theta).make_predictor, stats)(x)
            fractions.append(stats.reuse_fraction())
        assert fractions[0] <= fractions[1] <= fractions[2]


class TestMemoizedRNN:
    def test_oracle_theta_zero_is_exact(self, rng):
        layer = RNNLayer(6, 8, rng=rng)
        x = smooth_inputs(rng)
        reference = layer(x)
        stats = ReuseStats()
        wrapped = MemoizedRecurrentLayer(
            layer, make_scheme("oracle", theta=0.0).make_predictor, stats
        )
        np.testing.assert_array_equal(wrapped(x), reference)

    def test_records_single_gate(self, rng):
        layer = RNNLayer(6, 8, rng=rng)
        stats = ReuseStats()
        wrapped = MemoizedRecurrentLayer(
            layer, make_scheme().make_predictor, stats, name="R"
        )
        wrapped(smooth_inputs(rng))
        assert set(stats.total) == {("R", "h")}

    def test_bnn_sees_reuse_on_smooth_input(self, rng):
        layer = RNNLayer(6, 8, rng=rng)
        stats = ReuseStats()
        wrapped = MemoizedRecurrentLayer(
            layer, make_scheme("bnn", theta=0.3).make_predictor, stats
        )
        wrapped(smooth_inputs(rng))
        assert stats.reuse_fraction() > 0.05


def _run_wrapped(layer_type, rng_seed, vectorized, predictor, x):
    layer = layer_type(6, 8, rng=np.random.default_rng(rng_seed))
    stats = ReuseStats()
    wrapped = MemoizedRecurrentLayer(
        layer,
        make_scheme(predictor, theta=0.3).make_predictor,
        stats,
        vectorized=vectorized,
    )
    return wrapped(x), stats


class TestVectorizedScalarEquivalence:
    """The batched fast path must be bitwise identical to the per-gate
    scalar reference path, for every cell type and predictor."""

    @pytest.mark.parametrize("layer_type", [LSTMLayer, GRULayer, RNNLayer])
    @pytest.mark.parametrize("predictor", ["bnn", "oracle", "input"])
    def test_outputs_and_stats_identical(self, rng, layer_type, predictor):
        x = smooth_inputs(rng, batch=3, steps=25)
        vec_out, vec_stats = _run_wrapped(layer_type, 31, True, predictor, x)
        sca_out, sca_stats = _run_wrapped(layer_type, 31, False, predictor, x)
        np.testing.assert_array_equal(vec_out, sca_out)
        assert vec_stats.reused == sca_stats.reused
        assert vec_stats.total == sca_stats.total

    def test_throttle_ablation_also_equivalent(self, rng):
        x = smooth_inputs(rng)

        def run(vectorized):
            layer = LSTMLayer(6, 8, rng=np.random.default_rng(31))
            stats = ReuseStats()
            scheme = MemoizationScheme(theta=0.3, throttle=False)
            wrapped = MemoizedRecurrentLayer(
                layer, scheme.make_predictor, stats, vectorized=vectorized
            )
            return wrapped(x)

        np.testing.assert_array_equal(run(True), run(False))


class TestWrapLayer:
    def test_dispatch(self, rng):
        stats = ReuseStats()
        factory = make_scheme().make_predictor
        assert isinstance(
            wrap_layer(LSTMLayer(4, 4, rng=rng), factory, stats, "a"),
            MemoizedLSTMLayer,
        )
        assert isinstance(
            wrap_layer(GRULayer(4, 4, rng=rng), factory, stats, "b"),
            MemoizedGRULayer,
        )
        assert isinstance(
            wrap_layer(RNNLayer(4, 4, rng=rng), factory, stats, "c"),
            MemoizedRecurrentLayer,
        )

    def test_vectorized_flag_propagates(self, rng):
        factory = make_scheme().make_predictor
        wrapped = wrap_layer(
            LSTMLayer(4, 4, rng=rng), factory, ReuseStats(), "a", vectorized=False
        )
        assert wrapped.vectorized is False
        default = wrap_layer(GRULayer(4, 4, rng=rng), factory, ReuseStats(), "b")
        assert default.vectorized is True

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            wrap_layer(object(), make_scheme().make_predictor, ReuseStats(), "x")

    def test_weights_are_shared_not_copied(self, rng):
        layer = LSTMLayer(4, 4, rng=rng)
        wrapped = wrap_layer(layer, make_scheme().make_predictor, ReuseStats(), "a")
        assert wrapped.cell is layer.cell


class TestMemoTable:
    def test_substitute_before_begin_sequence_raises(self):
        from repro.core.memo import MemoTable

        table = MemoTable(neurons=4)
        with pytest.raises(RuntimeError, match="begin_sequence was not called"):
            table.substitute(
                np.zeros((1, 4), dtype=bool), np.zeros((1, 4))
            )

    def test_substitute_after_begin_sequence_works(self):
        from repro.core.memo import MemoTable

        table = MemoTable(neurons=3)
        table.begin_sequence(batch=2)
        fresh = np.arange(6, dtype=np.float64).reshape(2, 3)
        out = table.substitute(np.zeros((2, 3), dtype=bool), fresh)
        np.testing.assert_array_equal(out, fresh)

    def test_begin_sequence_recovers_from_misuse(self):
        """After the loud failure, a proper begin_sequence still works."""
        from repro.core.memo import MemoTable

        table = MemoTable(neurons=2)
        with pytest.raises(RuntimeError):
            table.substitute(np.zeros((1, 2), dtype=bool), np.zeros((1, 2)))
        table.begin_sequence(batch=1)
        out = table.substitute(
            np.zeros((1, 2), dtype=bool), np.ones((1, 2))
        )
        np.testing.assert_array_equal(out, np.ones((1, 2)))
