"""Tests for the three memoization predictors (Figures 6 and 10)."""

import numpy as np
import pytest

from repro.core.binarization import pack_signs
from repro.core.bnn import BinaryGate
from repro.core.predictors import (
    BNNGatePredictor,
    InputSimilarityGatePredictor,
    OracleGatePredictor,
)

# These suites exercise the deprecated scalar interfaces (.step /
# .predict) on purpose — they pin the legacy reference semantics.
pytestmark = pytest.mark.filterwarnings(
    "ignore:GatePredictor.(step|predict) is deprecated:DeprecationWarning"
)


def make_gate(rng, neurons=6, e=4, r=5):
    return BinaryGate(
        rng.standard_normal((neurons, e)), rng.standard_normal((neurons, r))
    )


@pytest.fixture
def rng():
    return np.random.default_rng(29)


class TestOracle:
    def test_first_step_never_reuses(self, rng):
        pred = OracleGatePredictor(theta=10.0)
        pred.begin_sequence(2)
        decision = pred.step(None, None, lambda: rng.standard_normal((2, 6)))
        assert not decision.reuse_mask.any()

    def test_reuses_when_identical(self, rng):
        pred = OracleGatePredictor(theta=0.0)
        pred.begin_sequence(1)
        y = rng.standard_normal((1, 6))
        pred.step(None, None, lambda: y.copy())
        decision = pred.step(None, None, lambda: y.copy())
        assert decision.reuse_mask.all()
        np.testing.assert_array_equal(decision.outputs, y)

    def test_theta_zero_outputs_exact(self, rng):
        """With theta=0 the oracle only reuses exactly-equal values, so
        the output stream is bit-identical to no memoization."""
        pred = OracleGatePredictor(theta=0.0)
        pred.begin_sequence(1)
        for _ in range(10):
            y = rng.standard_normal((1, 6))
            decision = pred.step(None, None, lambda y=y: y.copy())
            np.testing.assert_array_equal(decision.outputs, y)

    def test_thresholding_on_relative_error(self):
        pred = OracleGatePredictor(theta=0.5)
        pred.begin_sequence(1)
        pred.step(None, None, lambda: np.array([[1.0, 1.0]]))
        decision = pred.step(None, None, lambda: np.array([[1.2, 3.0]]))
        # neuron 0: |1.2-1|/1.2 = 0.167 <= 0.5 -> reuse memoized 1.0
        # neuron 1: |3-1|/3 = 0.667 > 0.5 -> fresh 3.0
        np.testing.assert_array_equal(decision.reuse_mask, [[True, False]])
        np.testing.assert_allclose(decision.outputs, [[1.0, 3.0]])

    def test_memo_updates_only_on_full_eval(self):
        pred = OracleGatePredictor(theta=0.5)
        pred.begin_sequence(1)
        pred.step(None, None, lambda: np.array([[1.0]]))
        pred.step(None, None, lambda: np.array([[1.2]]))  # reused, memo stays 1.0
        decision = pred.step(None, None, lambda: np.array([[1.3]]))
        # delta vs memo 1.0: |1.3-1.0|/1.3 = 0.23 <= 0.5 -> still reuses 1.0
        np.testing.assert_allclose(decision.outputs, [[1.0]])

    def test_negative_theta_rejected(self):
        with pytest.raises(ValueError):
            OracleGatePredictor(theta=-0.1)

    def test_begin_sequence_resets(self, rng):
        pred = OracleGatePredictor(theta=100.0)
        pred.begin_sequence(1)
        pred.step(None, None, lambda: np.ones((1, 3)))
        pred.begin_sequence(1)
        decision = pred.step(None, None, lambda: np.ones((1, 3)))
        assert not decision.reuse_mask.any()


class TestBNNPredictor:
    def test_first_step_never_reuses(self, rng):
        gate = make_gate(rng)
        pred = BNNGatePredictor(gate, theta=10.0)
        pred.begin_sequence(1)
        x, h = rng.standard_normal((1, 4)), rng.standard_normal((1, 5))
        decision = pred.step(x, h, lambda: rng.standard_normal((1, 6)))
        assert not decision.reuse_mask.any()

    def test_identical_inputs_reuse_everything(self, rng):
        gate = make_gate(rng)
        pred = BNNGatePredictor(gate, theta=0.0)
        pred.begin_sequence(1)
        x, h = rng.standard_normal((1, 4)), rng.standard_normal((1, 5))
        y = rng.standard_normal((1, 6))
        pred.step(x, h, lambda: y.copy())
        decision = pred.step(x, h, lambda: rng.standard_normal((1, 6)))
        # Binary outputs identical -> epsilon 0 -> reuse the memoized y.
        assert decision.reuse_mask.all()
        np.testing.assert_array_equal(decision.outputs, y)

    def test_reuse_monotone_in_theta(self, rng):
        """Higher theta can only increase total reuse (same input stream)."""
        inputs = [
            (rng.standard_normal((1, 4)), rng.standard_normal((1, 5)))
            for _ in range(30)
        ]
        outputs = [rng.standard_normal((1, 6)) for _ in range(30)]
        counts = []
        for theta in (0.0, 0.3, 1.0):
            gate = make_gate(np.random.default_rng(29))
            pred = BNNGatePredictor(gate, theta=theta)
            pred.begin_sequence(1)
            reused = 0
            for (x, h), y in zip(inputs, outputs):
                reused += int(pred.step(x, h, lambda y=y: y.copy()).reuse_mask.sum())
            counts.append(reused)
        assert counts[0] <= counts[1] <= counts[2]

    def test_throttle_limits_streaks(self):
        """Equation 13: oscillating small drifts accumulate under
        throttling and eventually force a full evaluation, while the
        unthrottled variant reuses forever (each step's epsilon alone is
        under the threshold)."""
        base = np.ones(16)
        drifted = base.copy()
        drifted[0] = -1.0  # yb drops 16 -> 14: epsilon = 2/14 ~ 0.143

        def run(throttle):
            gate = BinaryGate(np.ones((1, 8)), np.ones((1, 8)))
            pred = BNNGatePredictor(gate, theta=0.3, throttle=throttle)
            pred.begin_sequence(1)
            pred.step(base[:8][None], base[8:][None], lambda: np.zeros((1, 1)))
            flags = []
            for step in range(6):
                operand = drifted if step % 2 == 0 else base
                decision = pred.step(
                    operand[:8][None], operand[8:][None], lambda: np.zeros((1, 1))
                )
                flags.append(bool(decision.reuse_mask[0, 0]))
            return flags

        unthrottled = run(False)
        throttled = run(True)
        assert unthrottled == [True] * 6
        # Throttled: delta = 0.143, 0.143, 0.286, 0.286, 0.429 -> eval.
        assert throttled[:4] == [True, True, True, True]
        assert throttled[4] is False

    def test_zero_binary_output_blocks_reuse(self):
        """A change to a zero binary output cannot be compared relatively
        and must not be reused blindly."""
        gate = BinaryGate(np.ones((1, 1)), np.ones((1, 1)))
        pred = BNNGatePredictor(gate, theta=0.4)
        pred.begin_sequence(1)
        # First step: operands (+1, +1) -> yb = 2.
        pred.step(np.ones((1, 1)), np.ones((1, 1)), lambda: np.array([[5.0]]))
        # Second: operands (+1, -1) -> yb = 0; diff=2, denom floor 1 -> eps 2.
        decision = pred.step(
            np.ones((1, 1)), -np.ones((1, 1)), lambda: np.array([[7.0]])
        )
        assert not decision.reuse_mask.any()

    def test_delta_resets_after_full_eval(self, rng):
        gate = make_gate(rng, neurons=1, e=2, r=2)
        pred = BNNGatePredictor(gate, theta=0.05)
        pred.begin_sequence(1)
        x0, h0 = np.ones((1, 2)), np.ones((1, 2))
        pred.step(x0, h0, lambda: np.array([[1.0]]))
        # Big operand change forces a full evaluation...
        pred.step(-x0, -h0, lambda: np.array([[2.0]]))
        assert np.all(pred._delta == 0.0)
        # ...and identical operands afterwards reuse again.
        decision = pred.step(-x0, -h0, lambda: np.array([[3.0]]))
        assert decision.reuse_mask.all()
        np.testing.assert_array_equal(decision.outputs, [[2.0]])


class TestInputSimilarity:
    def test_identical_input_reuses_whole_gate(self, rng):
        pred = InputSimilarityGatePredictor(theta=0.0, neurons=4)
        pred.begin_sequence(1)
        x, h = rng.standard_normal((1, 3)), rng.standard_normal((1, 2))
        y = rng.standard_normal((1, 4))
        pred.step(x, h, lambda: y.copy())
        decision = pred.step(x, h, lambda: rng.standard_normal((1, 4)))
        assert decision.reuse_mask.all()
        np.testing.assert_array_equal(decision.outputs, y)

    def test_changed_input_blocks_reuse(self, rng):
        pred = InputSimilarityGatePredictor(theta=0.01, neurons=4)
        pred.begin_sequence(1)
        x, h = np.ones((1, 3)), np.ones((1, 2))
        pred.step(x, h, lambda: np.ones((1, 4)))
        decision = pred.step(-x, -h, lambda: np.zeros((1, 4)))
        assert not decision.reuse_mask.any()

    def test_decision_is_per_row(self, rng):
        pred = InputSimilarityGatePredictor(theta=0.01, neurons=3)
        pred.begin_sequence(2)
        x = np.ones((2, 2))
        h = np.ones((2, 2))
        pred.step(x, h, lambda: np.ones((2, 3)))
        x2 = x.copy()
        x2[1] = -5.0  # only row 1 changes
        decision = pred.step(x2, h, lambda: np.zeros((2, 3)))
        assert decision.reuse_mask[0].all()
        assert not decision.reuse_mask[1].any()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            InputSimilarityGatePredictor(theta=-1.0, neurons=3)
        with pytest.raises(ValueError):
            InputSimilarityGatePredictor(theta=0.1, neurons=0)


class TestPredictMany:
    """The vectorized contract shared by every predictor."""

    def test_first_call_is_all_false(self, rng):
        gate = make_gate(rng)
        pred = BNNGatePredictor(gate, theta=100.0)
        pred.begin_sequence(3)
        operand = rng.standard_normal((3, 9))
        mask = pred.predict_many(pack_signs(operand))
        assert mask.shape == (3, 6)
        assert mask.dtype == bool
        assert not mask.any()

    def test_bnn_packed_and_operand_paths_agree(self, rng):
        """Feeding pre-packed sign words or the raw operand must walk the
        predictor through the identical decision stream."""
        operands = [rng.standard_normal((2, 9)) for _ in range(12)]

        def run(packed):
            gate = make_gate(np.random.default_rng(29))
            pred = BNNGatePredictor(gate, theta=0.3)
            pred.begin_sequence(2)
            masks = []
            for operand in operands:
                if packed:
                    masks.append(pred.predict_many(pack_signs(operand)))
                else:
                    masks.append(pred.predict_many(operand=operand))
            return masks

        for a, b in zip(run(True), run(False)):
            np.testing.assert_array_equal(a, b)

    def test_bnn_requires_some_operand_form(self, rng):
        pred = BNNGatePredictor(make_gate(rng), theta=0.3)
        pred.begin_sequence(1)
        with pytest.raises(ValueError, match="packed signs or the operand"):
            pred.predict_many(preacts=np.ones((1, 6)))

    def test_oracle_requires_preacts(self):
        pred = OracleGatePredictor(theta=0.3)
        pred.begin_sequence(1)
        with pytest.raises(ValueError, match="preacts"):
            pred.predict_many()

    def test_input_similarity_requires_operand(self):
        pred = InputSimilarityGatePredictor(theta=0.3, neurons=4)
        pred.begin_sequence(1)
        with pytest.raises(ValueError, match="operand"):
            pred.predict_many()

    def test_oracle_decision_is_pure_function_of_memo(self, rng):
        """The oracle's predict_many consults only (preacts, memo)."""
        pred = OracleGatePredictor(theta=0.5)
        pred.begin_sequence(1)
        memo = np.array([[1.0, 1.0]])
        mask = pred.predict_many(preacts=np.array([[1.2, 3.0]]), memo=memo)
        np.testing.assert_array_equal(mask, [[True, False]])
        # No memo -> nothing to reuse.
        assert not pred.predict_many(preacts=np.array([[1.2, 3.0]])).any()

    def test_predict_wrapper_matches_predict_many_row(self, rng):
        """The deprecated single-row predict() is predict_many on a
        singleton batch."""
        operands = [rng.standard_normal(9) for _ in range(8)]

        def run(single):
            gate = make_gate(np.random.default_rng(29))
            pred = BNNGatePredictor(gate, theta=0.3)
            pred.begin_sequence(1)
            masks = []
            for operand in operands:
                if single:
                    masks.append(pred.predict(operand=operand))
                else:
                    masks.append(pred.predict_many(operand=operand[None, :])[0])
            return masks

        for a, b in zip(run(True), run(False)):
            np.testing.assert_array_equal(a, b)

    def test_throttle_state_carries_across_calls(self):
        """Accumulated delta (Eq. 13) must survive between predict_many
        calls and reset on begin_sequence."""
        gate = BinaryGate(np.ones((1, 4)), np.ones((1, 4)))
        pred = BNNGatePredictor(gate, theta=0.4)
        base = np.ones((1, 8))  # binary output 8
        drifted = base.copy()
        drifted[0, 0] = -1.0  # binary output 6: epsilon = 2/6 vs memo 8
        pred.begin_sequence(1)
        pred.predict_many(operand=base)
        first = pred.predict_many(operand=drifted)
        second = pred.predict_many(operand=drifted)
        # 1/3 <= 0.4 reuses; accumulated 2/3 > 0.4 forces the evaluation.
        assert first[0, 0]
        assert not second[0, 0]
        pred.begin_sequence(1)
        assert not pred.predict_many(operand=base).any()  # state was cleared
        assert pred.predict_many(operand=base).all()


class TestDeprecationWarnings:
    """The documented deprecations must actually warn (they were silent
    until PR 7), so downstream callers migrating to predict_many get the
    signal the docstrings promise."""

    def test_step_warns(self, rng):
        pred = OracleGatePredictor(theta=1.0)
        pred.begin_sequence(1)
        with pytest.warns(DeprecationWarning, match="step is deprecated"):
            pred.step(None, None, lambda: rng.standard_normal((1, 6)))

    def test_predict_warns(self, rng):
        pred = OracleGatePredictor(theta=1.0)
        pred.begin_sequence(1)
        with pytest.warns(DeprecationWarning, match="predict is deprecated"):
            pred.predict(preacts=rng.standard_normal(6))

    def test_warning_points_at_the_caller(self, rng):
        """stacklevel=2: the warning is attributed to this file, not to
        predictors.py — otherwise every caller sees a useless location."""
        import warnings

        pred = OracleGatePredictor(theta=1.0)
        pred.begin_sequence(1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            pred.step(None, None, lambda: rng.standard_normal((1, 6)))
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert deprecations[0].filename == __file__

    def test_predict_many_does_not_warn(self, rng):
        import warnings

        pred = OracleGatePredictor(theta=1.0)
        pred.begin_sequence(1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            pred.predict_many(preacts=rng.standard_normal((1, 6)))
        assert not any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
