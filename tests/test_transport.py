"""Tests for the HTTP coordinator transport (real localhost sockets).

The coordinator serves a ``WorkQueue`` over REST; ``RemoteWorkQueue``
speaks the same :class:`~repro.runner.queue.TaskQueue` contract back.
This suite covers the wire protocol (lifecycle, idempotent completes,
validation), shared-token auth, retry-with-backoff against a flaky /
restarting coordinator, lease expiry and quarantine over the network,
worker drain loops, and the claim-atomicity hammer: many threads
claiming through the server must never double-claim or lose a task.
"""

import threading
import time

import pytest

from repro.runner import (
    CoordinatorAuthError,
    CoordinatorServer,
    RemoteWorkQueue,
    TransportError,
    WorkQueue,
    default_owner,
    drain,
    lease_owner,
    payload_key,
)


def sample_payload(tag: int = 0):
    return {"kind": "test", "tag": tag}


def echo_handler(payload):
    return {"echo": payload["tag"]}


@pytest.fixture()
def coordinator(tmp_path):
    """A live coordinator on an ephemeral loopback port, plus its queue."""
    queue = WorkQueue(tmp_path / "queue", lease_ttl=60)
    server = CoordinatorServer(queue, port=0, quiet=True)
    server.serve_in_thread()
    yield server
    server.stop()


@pytest.fixture()
def remote(coordinator):
    """A client for the fixture coordinator (fail fast: one retry)."""
    return RemoteWorkQueue(coordinator.url, retries=1, backoff=0.05)


class TestRemoteLifecycle:
    def test_submit_claim_complete(self, coordinator, remote):
        task_id = remote.submit(sample_payload())
        assert task_id == payload_key(sample_payload())
        assert remote.pending_count() == 1

        task = remote.claim("net-worker")
        assert task is not None
        assert task.task_id == task_id
        assert task.payload == sample_payload()
        assert task.lease_path is None  # remote claims hold only the nonce
        assert remote.pending_count() == 0
        assert remote.active_count() == 1

        remote.results.put(task.task_id, {"done": True})
        remote.complete(task)
        assert remote.active_count() == 0
        assert remote.results.get(task_id) == {"done": True}
        # ... and the result really lives in the coordinator's queue dir.
        assert coordinator.queue.results.get(task_id) == {"done": True}

    def test_claim_on_empty_queue(self, remote):
        assert remote.claim() is None

    def test_submit_is_idempotent(self, remote):
        assert remote.submit(sample_payload()) == remote.submit(sample_payload())
        assert remote.pending_count() == 1

    def test_complete_is_idempotent(self, remote):
        remote.submit(sample_payload())
        task = remote.claim()
        remote.results.put(task.task_id, {"done": True})
        remote.complete(task)
        remote.complete(task)  # lease already gone: harmless no-op
        assert remote.active_count() == 0
        assert remote.results.get(task.task_id) == {"done": True}

    def test_extend_heartbeats_the_lease(self, coordinator, remote):
        remote.submit(sample_payload())
        task = remote.claim()
        lease_file = coordinator.queue.active_dir / (
            f"{task.task_id}.{task.lease}.json"
        )
        before = lease_file.stat().st_mtime
        time.sleep(0.05)
        remote.extend(task)
        assert lease_file.stat().st_mtime >= before
        assert remote.has_live_lease(task.task_id)

    def test_lease_ttl_comes_from_the_coordinator(self, remote):
        assert remote.lease_ttl == 60.0

    def test_results_discard(self, remote):
        key = payload_key(sample_payload())
        remote.results.put(key, {"done": True})
        assert key in remote.results
        remote.results.discard(key)
        assert remote.results.get(key) is None

    def test_mixed_local_and_remote_participants(self, coordinator, remote):
        """A filesystem worker and a network worker share one queue."""
        local = coordinator.queue
        remote.submit(sample_payload(1))
        local.submit(sample_payload(2))
        assert local.pending_count() == 2
        seen = set()
        for queue in (local, remote):
            task = queue.claim()
            seen.add(task.payload["tag"])
            queue.results.put(task.task_id, echo_handler(task.payload))
            queue.complete(task)
        assert seen == {1, 2}


class TestLeaseTtlValidation:
    """The coordinator-fetched TTL is validated before it is cached —
    ``json.loads`` accepts NaN/Infinity, and a poisoned TTL would break
    every heartbeat-interval comparison silently."""

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -1.0, "bogus"])
    def test_bad_ttl_from_wire_is_a_transport_error(self, monkeypatch, bad):
        client = RemoteWorkQueue("http://127.0.0.1:9", retries=0)
        monkeypatch.setattr(client, "stats", lambda: {"lease_ttl": bad})
        with pytest.raises(TransportError, match="lease_ttl"):
            client.lease_ttl

    def test_bad_refresh_keeps_the_previous_ttl(self, monkeypatch):
        client = RemoteWorkQueue("http://127.0.0.1:9", retries=0)
        monkeypatch.setattr(client, "stats", lambda: {"lease_ttl": 60.0})
        assert client.lease_ttl == 60.0
        # Age the cache past staleness, then poison the wire: the
        # stale-but-sane value wins over a fresh-but-invalid one.
        monkeypatch.setattr(client, "stats", lambda: {"lease_ttl": float("nan")})
        client._lease_ttl_fetched -= client.lease_ttl_max_age + 1
        assert client.lease_ttl == 60.0


class TestOwnership:
    def test_lease_owner_includes_hostname_and_pid(self, remote):
        remote.submit(sample_payload())
        task = remote.claim("w1")
        owner = lease_owner(task.lease)
        assert owner.startswith("w1-")
        assert owner.endswith(default_owner())  # host + pid of this test

    def test_stats_report_active_owners(self, remote):
        remote.submit(sample_payload())
        task = remote.claim("w1")
        stats = remote.stats()
        assert stats["active"] == 1
        assert stats["owners"] == [lease_owner(task.lease)]
        assert remote.active_owners() == [lease_owner(task.lease)]


class TestFailureAndRecovery:
    def test_fail_quarantines_with_error(self, remote):
        remote.submit(sample_payload())
        task = remote.claim()
        remote.fail(task, error="RuntimeError: boom over http")
        assert remote.failed_count() == 1
        assert remote.is_failed(task.task_id)
        assert "boom over http" in remote.failed_error(task.task_id)
        assert remote.claim() is None  # sticky: not re-queued

    def test_expired_lease_requeues_over_http(self, coordinator, remote):
        remote.submit(sample_payload())
        doomed = remote.claim("doomed")
        # Back-date the lease on the coordinator's disk: the worker died.
        lease_file = coordinator.queue.active_dir / (
            f"{doomed.task_id}.{doomed.lease}.json"
        )
        import os

        # checks: allow-wall-clock lease files expire by mtime, which is wall-clock epoch seconds
        past = time.time() - 10_000
        os.utime(lease_file, (past, past))
        assert not remote.has_live_lease(doomed.task_id)
        assert remote.requeue_expired() == 1
        rescued = remote.claim("rescue")
        assert rescued is not None
        assert rescued.task_id == doomed.task_id
        assert rescued.payload == doomed.payload

    def test_drain_loop_over_http(self, remote):
        ids = [remote.submit(sample_payload(i)) for i in range(3)]
        assert drain(remote, echo_handler, idle_timeout=0.0) == 3
        for i, task_id in enumerate(ids):
            assert remote.results.get(task_id) == {"echo": i}
        assert remote.pending_count() == 0
        assert remote.active_count() == 0

    def test_drain_quarantines_poison_over_http(self, remote, capsys):
        remote.submit(sample_payload(0))
        remote.submit(sample_payload(1))

        def fragile(payload):
            if payload["tag"] == 0:
                raise RuntimeError("poison")
            return echo_handler(payload)

        completed = drain(remote, fragile, idle_timeout=0.0)
        assert completed == 1
        assert remote.failed_count() == 1
        assert "poison" in capsys.readouterr().err


class TestAuth:
    @pytest.fixture()
    def secured(self, tmp_path):
        queue = WorkQueue(tmp_path / "queue", lease_ttl=60)
        server = CoordinatorServer(queue, port=0, token="s3cret", quiet=True)
        server.serve_in_thread()
        yield server
        server.stop()

    def test_right_token_accepted(self, secured):
        client = RemoteWorkQueue(secured.url, token="s3cret", retries=0)
        assert client.submit(sample_payload()) == payload_key(sample_payload())

    def test_missing_token_rejected(self, secured):
        client = RemoteWorkQueue(secured.url, retries=0)
        with pytest.raises(CoordinatorAuthError):
            client.stats()

    def test_wrong_token_rejected_without_retries(self, secured):
        client = RemoteWorkQueue(secured.url, token="guess", retries=5)
        start = time.monotonic()
        with pytest.raises(CoordinatorAuthError):
            client.submit(sample_payload())
        # Auth failures must fail fast, not burn the retry budget.
        assert time.monotonic() - start < 1.0
        assert secured.queue.pending_count() == 0  # never touched the queue


class TestWireValidation:
    def test_unknown_endpoint_is_not_retried(self, remote):
        start = time.monotonic()
        with pytest.raises(TransportError, match="unknown endpoint"):
            remote._call("teleport", {})
        assert time.monotonic() - start < 1.0

    def test_invalid_task_id_rejected(self, remote):
        with pytest.raises(TransportError, match="invalid task id"):
            remote.is_failed("../../etc/passwd")

    def test_invalid_lease_rejected(self, remote):
        from repro.runner import Task

        remote.submit(sample_payload())
        claimed = remote.claim()
        forged = Task(
            task_id=claimed.task_id,
            payload={},
            lease="../escape",
        )
        with pytest.raises(TransportError, match="invalid lease"):
            remote.complete(forged)

    def test_submit_requires_object_payload(self, remote):
        with pytest.raises(TransportError, match="payload"):
            remote._call("submit", {"payload": [1, 2, 3]})


class TestRetries:
    def test_unreachable_coordinator_raises_after_bounded_retries(self):
        client = RemoteWorkQueue(
            "http://127.0.0.1:9", retries=2, backoff=0.01, timeout=0.5
        )
        with pytest.raises(TransportError, match="unreachable"):
            client.stats()

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            RemoteWorkQueue("http://127.0.0.1:9", retries=-1)

    def test_backoff_rides_out_a_late_coordinator(self, tmp_path):
        """The coordinator comes up *after* the first attempts fail: the
        client's backoff must find it instead of giving up."""
        queue = WorkQueue(tmp_path / "queue", lease_ttl=60)
        placeholder = CoordinatorServer(queue, port=0, quiet=True)
        port = placeholder.server_address[1]
        placeholder.server_close()  # free the port but remember it

        started = {}

        def come_up_late():
            time.sleep(0.4)
            server = CoordinatorServer(
                queue, port=port, quiet=True
            )
            server.serve_in_thread()
            started["server"] = server

        thread = threading.Thread(target=come_up_late)
        thread.start()
        try:
            client = RemoteWorkQueue(
                f"http://127.0.0.1:{port}",
                retries=8,
                backoff=0.1,
                timeout=2.0,
            )
            assert client.submit(sample_payload()) == payload_key(
                sample_payload()
            )
        finally:
            thread.join()
            started["server"].stop()


class TestKeepAlive:
    """HTTP/1.1 keep-alive sockets must never desync."""

    def test_two_requests_on_one_connection(self, coordinator):
        import http.client
        import json as jsonlib

        host, port = coordinator.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            body = jsonlib.dumps({"payload": sample_payload()})
            conn.request(
                "POST", "/api/v1/submit", body=body,
                headers={"Content-Type": "application/json"},
            )
            first = conn.getresponse()
            assert first.status == 200
            first.read()
            # Same socket, second request: the body of the first must
            # have been fully consumed.
            conn.request("GET", "/api/v1/stats")
            second = conn.getresponse()
            assert second.status == 200
            assert jsonlib.loads(second.read())["pending"] == 1
        finally:
            conn.close()

    def test_error_replies_close_the_connection(self, tmp_path):
        """An error sent before the body was read (bad token) must not
        leave the unread body to be parsed as the next request — the
        server closes the connection instead."""
        import http.client
        import json as jsonlib

        queue = WorkQueue(tmp_path / "queue", lease_ttl=60)
        server = CoordinatorServer(queue, port=0, token="s3cret", quiet=True)
        server.serve_in_thread()
        try:
            host, port = server.server_address[:2]
            conn = http.client.HTTPConnection(host, port, timeout=10)
            try:
                conn.request(
                    "POST", "/api/v1/submit",
                    body=jsonlib.dumps({"payload": sample_payload()}),
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                assert response.status == 401
                assert response.getheader("Connection") == "close"
                response.read()
            finally:
                conn.close()
        finally:
            server.stop()


class TestHeartbeatResilience:
    def test_heartbeat_survives_a_coordinator_outage(self, tmp_path):
        """A beat that fails (coordinator briefly down) must not kill
        the heartbeat thread: once the coordinator is back, renewals
        resume and the lease stays fresh."""
        queue = WorkQueue(tmp_path / "queue", lease_ttl=0.4)
        server = CoordinatorServer(queue, port=0, quiet=True)
        server.serve_in_thread()
        port = server.server_address[1]
        client = RemoteWorkQueue(
            server.url, retries=0, backoff=0.01, timeout=1.0
        )
        client.submit(sample_payload())
        task = client.claim("steady")
        assert client.lease_ttl == 0.4  # cached; beats every 0.1s
        lease_file = queue.active_dir / f"{task.task_id}.{task.lease}.json"

        with client.heartbeat(task):
            server.stop()  # outage: the next beats raise TransportError
            time.sleep(0.3)
            replacement = CoordinatorServer(queue, port=port, quiet=True)
            replacement.serve_in_thread()
            try:
                before = lease_file.stat().st_mtime
                time.sleep(0.3)  # >= 2 beat intervals against the new server
                assert lease_file.stat().st_mtime > before  # beats resumed
            finally:
                replacement.stop()


class TestConcurrentClaims:
    """The atomicity claim, exercised concurrently through the server."""

    def test_no_task_double_claimed_or_lost(self, coordinator):
        tasks = 24
        expected = {
            WorkQueue(coordinator.queue.root).submit(sample_payload(i))
            for i in range(tasks)
        }
        assert len(expected) == tasks
        claimed = []
        claimed_lock = threading.Lock()
        errors = []

        def hammer(worker_id: int):
            client = RemoteWorkQueue(coordinator.url, retries=2, backoff=0.05)
            try:
                while True:
                    task = client.claim(f"hammer{worker_id}")
                    if task is None:
                        return
                    with claimed_lock:
                        claimed.append(task.task_id)
                    client.results.put(
                        task.task_id, echo_handler(task.payload)
                    )
                    client.complete(task)
            # checks: allow-broad-except worker thread collects errors for the main-thread assert
            except Exception as exc:  # surfaced below; threads mustn't die silently
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        # No double claims ...
        assert len(claimed) == len(set(claimed))
        # ... and no lost tasks: every submitted task was claimed once
        # and completed with its result stored.
        assert set(claimed) == expected
        queue = coordinator.queue
        assert queue.pending_count() == 0
        assert queue.active_count() == 0
        for task_id in expected:
            assert queue.results.get(task_id) is not None
