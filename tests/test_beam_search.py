"""Tests for beam-search decoding in the translation model."""

import numpy as np
import pytest

from repro.datasets.translation import TranslationDataset
from repro.models.translation_model import TranslationModel
from repro.nn.optim import Adam
from repro.nn.trainer import Trainer
from repro.datasets.base import batched_indices


@pytest.fixture(scope="module")
def trained():
    """A lightly trained model so decoding is non-degenerate."""
    dataset = TranslationDataset(num_pairs=80, vocab_size=5, length=4, seed=21)
    rng = np.random.default_rng(21)
    model = TranslationModel(
        dataset.vocab_size, dataset.target_vocab_size, 12, 24, rng=rng
    )
    train_idx, test_idx = dataset.split()

    def batches(epoch):
        r = np.random.default_rng(epoch)
        out = []
        for idx in batched_indices(len(train_idx), 16, r):
            rows = train_idx[idx]
            dec_in, dec_tgt = dataset.decoder_io(rows)
            out.append((dataset.source[rows], dec_in, dec_tgt))
        return out

    Trainer(model, Adam(model.parameters(), lr=8e-3, clip_norm=5.0)).fit(
        batches, 25
    )
    return model, dataset, test_idx


class TestBeamSearch:
    def test_output_count_and_lengths(self, trained):
        model, dataset, test_idx = trained
        hyps = model.translate_beam(dataset.source[test_idx[:4]], max_len=6)
        assert len(hyps) == 4
        assert all(len(h) <= 6 for h in hyps)

    def test_width_one_matches_greedy(self, trained):
        """Beam width 1 is greedy decoding by construction."""
        model, dataset, test_idx = trained
        src = dataset.source[test_idx[:6]]
        greedy = model.translate(src, max_len=6)
        beam1 = model.translate_beam(src, max_len=6, beam_width=1)
        assert greedy == beam1

    def test_wider_beam_not_worse_on_bleu(self, trained):
        model, dataset, test_idx = trained
        src = dataset.source[test_idx]
        refs = dataset.references(test_idx)
        greedy = model.evaluate(src, refs, max_len=6)
        beam = model.evaluate(src, refs, max_len=6, beam_width=4)
        # Beam search optimises sequence log-prob, which on this noise-
        # free task should not hurt BLEU materially.
        assert beam >= greedy - 5.0

    def test_invalid_width(self, trained):
        model, dataset, test_idx = trained
        with pytest.raises(ValueError):
            model.translate_beam(dataset.source[:1], max_len=4, beam_width=0)

    def test_no_eos_token_in_output(self, trained):
        model, dataset, test_idx = trained
        from repro.datasets.translation import EOS

        for hyp in model.translate_beam(dataset.source[test_idx[:8]], max_len=6):
            assert EOS not in hyp
