"""Tests for threshold calibration (§3.2.1)."""

import pytest

from repro.core.calibration import (
    ThresholdSweep,
    calibrate_threshold,
    sweep_thresholds,
)


def synthetic_eval(theta):
    """Monotone toy trade-off: reuse grows with theta, loss kicks in
    past 0.3."""
    reuse = min(0.8, theta)
    loss = 0.0 if theta <= 0.3 else (theta - 0.3) * 10.0
    return loss, reuse


class TestSweep:
    def test_records_all_points(self):
        sweep = sweep_thresholds(synthetic_eval, [0.1, 0.2, 0.3])
        assert sweep.thetas == [0.1, 0.2, 0.3]
        assert sweep.reuses == [0.1, 0.2, 0.3]
        assert sweep.losses == [0.0, 0.0, 0.0]

    def test_empty_thetas_raises(self):
        with pytest.raises(ValueError):
            sweep_thresholds(synthetic_eval, [])

    def test_negative_theta_raises(self):
        with pytest.raises(ValueError):
            sweep_thresholds(synthetic_eval, [-0.1])


class TestBestUnderLoss:
    def test_picks_highest_reuse(self):
        sweep = sweep_thresholds(synthetic_eval, [0.1, 0.3, 0.5])
        best = sweep.best_under_loss(1.0)
        # theta=0.5 has loss 2.0 (> 1.0); theta=0.3 has loss 0, reuse 0.3.
        assert best.theta == 0.3

    def test_none_when_all_over_budget(self):
        sweep = ThresholdSweep()
        sweep.add(0.5, loss=5.0, reuse=0.5)
        assert sweep.best_under_loss(1.0) is None
        assert sweep.reuse_at_loss(1.0) == 0.0

    def test_reuse_at_loss(self):
        sweep = sweep_thresholds(synthetic_eval, [0.1, 0.3, 0.35])
        # theta=0.35 -> loss 0.5, reuse 0.35: admissible at budget 1.0.
        assert sweep.reuse_at_loss(1.0) == pytest.approx(0.35)

    def test_non_monotone_losses_handled(self):
        """The best point is by reuse, not by theta order."""
        sweep = ThresholdSweep()
        sweep.add(0.1, loss=0.0, reuse=0.4)
        sweep.add(0.2, loss=0.0, reuse=0.2)  # noise: lower reuse at higher theta
        assert sweep.best_under_loss(1.0).reuse == 0.4


class TestCalibrate:
    def test_returns_theta_and_sweep(self):
        theta, sweep = calibrate_threshold(
            synthetic_eval, [0.1, 0.3, 0.5], max_loss=1.0
        )
        assert theta == 0.3
        assert len(sweep.points) == 3

    def test_falls_back_to_most_conservative(self):
        def always_bad(theta):
            return 99.0, 0.5

        theta, _ = calibrate_threshold(always_bad, [0.2, 0.1, 0.4], max_loss=1.0)
        assert theta == 0.1
