"""Unit tests for the Embedding layer."""

import numpy as np
import pytest

from repro.nn.embedding import Embedding


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestForward:
    def test_shape(self, rng):
        emb = Embedding(10, 4, rng=rng)
        out = emb(np.array([[1, 2, 3], [4, 5, 6]]))
        assert out.shape == (2, 3, 4)

    def test_lookup_matches_rows(self, rng):
        emb = Embedding(10, 4, rng=rng)
        ids = np.array([3, 7])
        np.testing.assert_array_equal(emb(ids), emb.weight.value[[3, 7]])

    def test_out_of_range_raises(self, rng):
        emb = Embedding(10, 4, rng=rng)
        with pytest.raises(IndexError):
            emb(np.array([10]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_float_ids_raise(self, rng):
        emb = Embedding(10, 4, rng=rng)
        with pytest.raises(TypeError):
            emb(np.array([1.0, 2.0]))

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            Embedding(0, 4)
        with pytest.raises(ValueError):
            Embedding(4, 0)


class TestBackward:
    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            Embedding(10, 4, rng=rng).backward(np.zeros((2, 4)))

    def test_scatter_add(self, rng):
        emb = Embedding(10, 4, rng=rng)
        ids = np.array([1, 1, 3])
        emb(ids)
        grad = np.ones((3, 4))
        emb.backward(grad)
        np.testing.assert_array_equal(emb.weight.grad[1], 2.0 * np.ones(4))
        np.testing.assert_array_equal(emb.weight.grad[3], np.ones(4))
        np.testing.assert_array_equal(emb.weight.grad[0], np.zeros(4))

    def test_batched_backward(self, rng):
        emb = Embedding(10, 4, rng=rng)
        ids = np.array([[0, 1], [1, 2]])
        emb(ids)
        emb.backward(np.ones((2, 2, 4)))
        np.testing.assert_array_equal(emb.weight.grad[1], 2.0 * np.ones(4))

    def test_duplicate_heavy_sequence(self, rng):
        emb = Embedding(5, 2, rng=rng)
        ids = np.zeros(100, dtype=np.int64)
        emb(ids)
        emb.backward(np.ones((100, 2)))
        np.testing.assert_array_equal(emb.weight.grad[0], [100.0, 100.0])
