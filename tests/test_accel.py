"""Tests for the E-PUR accelerator model (config, timing, energy, area)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.area import DEFAULT_AREA_MODEL, AreaModel
from repro.accel.config import DEFAULT_CONFIG, EPURConfig, FMUConfig, KIB, MIB
from repro.accel.energy import baseline_energy, memoized_energy
from repro.accel.epur import compare, simulate_baseline, simulate_memoized
from repro.accel.timing import (
    baseline_timing,
    memoized_timing,
    neuron_dot_cycles,
    saved_cycles_per_reuse,
)
from repro.accel.trace import ReuseTrace
from repro.core.stats import ReuseStats
from repro.models.specs import PAPER_NETWORKS


class TestConfig:
    def test_table2_defaults(self):
        config = DEFAULT_CONFIG
        assert config.technology_nm == 28
        assert config.frequency_hz == 500e6
        assert config.dpu_width == 16
        assert config.weight_buffer_bytes == 2 * MIB
        assert config.input_buffer_bytes == 8 * KIB
        assert config.intermediate_memory_bytes == 6 * MIB
        assert config.fmu.bdpu_width_bits == 2048
        assert config.fmu.latency_cycles == 5
        assert config.fmu.memo_buffer_bytes == 8 * KIB

    def test_cycle_seconds(self):
        assert DEFAULT_CONFIG.cycle_seconds == pytest.approx(2e-9)

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            EPURConfig(dpu_width=0)
        with pytest.raises(ValueError):
            EPURConfig(weight_bits=8)
        with pytest.raises(ValueError):
            FMUConfig(issue_cycles=0)


class TestTrace:
    def test_uniform(self):
        trace = ReuseTrace.uniform(0.3, 4)
        assert trace.num_layers == 4
        assert trace.mean_reuse() == pytest.approx(0.3)

    def test_zero(self):
        assert ReuseTrace.zero(3).mean_reuse() == 0.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            ReuseTrace([1.5])
        with pytest.raises(ValueError):
            ReuseTrace([])

    def test_from_stats_projects_layers(self):
        stats = ReuseStats()
        stats.record("a", "i", np.array([True, True, False, False]))  # 0.5
        stats.record("b", "i", np.array([True, False, False, False]))  # 0.25
        spec = PAPER_NETWORKS["deepspeech2"]  # 5 layers
        trace = ReuseTrace.from_stats(stats, spec)
        assert trace.num_layers == 5
        assert set(trace.layer_reuse) == {0.5, 0.25}

    def test_from_stats_empty_raises(self):
        with pytest.raises(ValueError):
            ReuseTrace.from_stats(ReuseStats(), PAPER_NETWORKS["imdb"])


class TestTiming:
    def test_neuron_dot_cycles(self):
        # IMDB: (128 + 128) / 16 = 16 cycles — §5's lower bound.
        assert neuron_dot_cycles(128, 128, DEFAULT_CONFIG) == 16

    def test_saved_cycles_range_matches_paper(self):
        """§5: one avoided evaluation saves between 16 and 80+ cycles."""
        all_saved = []
        for spec in PAPER_NETWORKS.values():
            all_saved.extend(saved_cycles_per_reuse(spec, DEFAULT_CONFIG))
        assert min(all_saved) == 16
        assert max(all_saved) >= 80

    def test_baseline_scales_with_sequence(self):
        spec = PAPER_NETWORKS["imdb"]
        report = baseline_timing(spec, DEFAULT_CONFIG)
        per_step = report.total_cycles / spec.avg_sequence_length
        assert per_step == pytest.approx(128 * 16 + 4)

    def test_zero_reuse_slower_than_baseline(self):
        """E-PUR+BM with no reuse pays pure overhead."""
        spec = PAPER_NETWORKS["eesen"]
        base = baseline_timing(spec, DEFAULT_CONFIG)
        memo = memoized_timing(spec, DEFAULT_CONFIG, ReuseTrace.zero(spec.layers))
        assert memo.total_cycles > base.total_cycles

    def test_speedup_grows_with_reuse(self):
        spec = PAPER_NETWORKS["eesen"]
        base = baseline_timing(spec, DEFAULT_CONFIG)
        speedups = []
        for reuse in (0.1, 0.3, 0.5):
            memo = memoized_timing(
                spec, DEFAULT_CONFIG, ReuseTrace.uniform(reuse, spec.layers)
            )
            speedups.append(memo.speedup_over(base))
        assert speedups[0] < speedups[1] < speedups[2]

    def test_trace_layer_mismatch_raises(self):
        with pytest.raises(ValueError):
            memoized_timing(
                PAPER_NETWORKS["eesen"], DEFAULT_CONFIG, ReuseTrace.zero(3)
            )

    @given(st.floats(0.0, 0.9))
    @settings(max_examples=20, deadline=None)
    def test_speedup_bounded_by_ideal(self, reuse):
        """Speedup can never exceed the zero-overhead ideal 1/(1-r)."""
        spec = PAPER_NETWORKS["imdb"]
        base = baseline_timing(spec, DEFAULT_CONFIG)
        memo = memoized_timing(
            spec, DEFAULT_CONFIG, ReuseTrace.uniform(reuse, spec.layers)
        )
        assert memo.speedup_over(base) <= 1.0 / (1.0 - reuse) + 1e-9


class TestEnergy:
    def test_baseline_breakdown_shape(self):
        """§3.1: weight fetching (scratchpad) dominates the energy."""
        for spec in PAPER_NETWORKS.values():
            report = baseline_energy(spec, DEFAULT_CONFIG)
            assert report.fraction("scratchpad") > 0.4
            assert report.by_component["fmu"] == 0.0

    def test_memoized_saves_energy_at_paper_reuse(self):
        for name, spec in PAPER_NETWORKS.items():
            reuse = spec.paper_reuse_percent / 100.0
            trace = ReuseTrace.uniform(reuse, spec.layers)
            base = baseline_energy(spec, DEFAULT_CONFIG)
            memo = memoized_energy(spec, DEFAULT_CONFIG, trace)
            savings = memo.savings_over(base)
            assert savings > 0.05, f"{name}: {savings}"

    def test_zero_reuse_costs_extra(self):
        spec = PAPER_NETWORKS["imdb"]
        base = baseline_energy(spec, DEFAULT_CONFIG)
        memo = memoized_energy(
            spec, DEFAULT_CONFIG, ReuseTrace.zero(spec.layers)
        )
        assert memo.total > base.total

    def test_dram_unchanged(self):
        """§5: main-memory energy is not affected by memoization."""
        spec = PAPER_NETWORKS["eesen"]
        base = baseline_energy(spec, DEFAULT_CONFIG)
        memo = memoized_energy(
            spec, DEFAULT_CONFIG, ReuseTrace.uniform(0.3, spec.layers)
        )
        assert memo.by_component["dram"] == pytest.approx(
            base.by_component["dram"]
        )

    def test_savings_monotone_in_reuse(self):
        spec = PAPER_NETWORKS["eesen"]
        base = baseline_energy(spec, DEFAULT_CONFIG)
        savings = []
        for reuse in (0.1, 0.3, 0.5):
            memo = memoized_energy(
                spec, DEFAULT_CONFIG, ReuseTrace.uniform(reuse, spec.layers)
            )
            savings.append(memo.savings_over(base))
        assert savings[0] < savings[1] < savings[2]

    def test_fmu_overhead_is_small(self):
        """§5: the FMU energy overhead is negligible vs the total."""
        spec = PAPER_NETWORKS["eesen"]
        memo = memoized_energy(
            spec, DEFAULT_CONFIG, ReuseTrace.uniform(0.3, spec.layers)
        )
        assert memo.fraction("fmu") < 0.12


class TestComparison:
    def test_headline_numbers_shape(self):
        """Average savings and speedup at the paper's per-network reuse
        land near the paper's 18.5% / 1.35x."""
        savings, speedups = [], []
        for spec in PAPER_NETWORKS.values():
            trace = ReuseTrace.uniform(
                spec.paper_reuse_percent / 100.0, spec.layers
            )
            c = compare(spec, trace)
            savings.append(c.energy_savings_percent)
            speedups.append(c.speedup)
        assert 14.0 <= float(np.mean(savings)) <= 28.0
        assert 1.2 <= float(np.mean(speedups)) <= 1.5

    def test_breakdown_percent_normalised_to_baseline(self):
        spec = PAPER_NETWORKS["imdb"]
        c = compare(spec, ReuseTrace.uniform(0.3, spec.layers))
        breakdown = c.breakdown_percent()
        assert sum(breakdown["epur"].values()) == pytest.approx(100.0)
        assert sum(breakdown["epur_bm"].values()) < 100.0  # saved energy

    def test_simulate_functions(self):
        spec = PAPER_NETWORKS["imdb"]
        base = simulate_baseline(spec)
        memo = simulate_memoized(spec, ReuseTrace.uniform(0.3, spec.layers))
        assert base.total_cycles > 0
        assert memo.total_energy < base.total_energy


class TestArea:
    def test_paper_totals(self):
        model = DEFAULT_AREA_MODEL
        assert model.baseline_mm2 == pytest.approx(64.6, abs=0.01)
        assert model.memoized_mm2 == pytest.approx(66.8, abs=0.01)

    def test_overhead_fraction(self):
        # §5: about 4% area overhead.
        assert DEFAULT_AREA_MODEL.overhead_fraction == pytest.approx(0.034, abs=0.01)

    def test_scratchpad_is_largest_overhead(self):
        """§5: the largest overhead contribution is the extra scratchpad."""
        extra = DEFAULT_AREA_MODEL.memoization_components
        assert extra["memo_scratchpad"] > extra["fmu_datapath"]

    def test_breakdown_merges_components(self):
        breakdown = DEFAULT_AREA_MODEL.breakdown()
        assert "weight_buffers" in breakdown
        assert "fmu_datapath" in breakdown
        assert sum(breakdown.values()) == pytest.approx(
            DEFAULT_AREA_MODEL.memoized_mm2
        )

    def test_custom_model(self):
        model = AreaModel(
            baseline_components={"a": 10.0},
            memoization_components={"b": 1.0},
        )
        assert model.memoized_mm2 == 11.0
