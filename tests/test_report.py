"""Tests for the one-shot reproduction report."""

import pytest

from repro.analysis.report import generate_report


class TestGenerateReport:
    @pytest.fixture(scope="class")
    def report(self):
        # Single cached network keeps this fast in the test suite.
        return generate_report(
            scale="tiny", networks=("imdb",), thetas=(0.0, 0.3)
        )

    def test_contains_sections(self, report):
        assert "# Reproduction report" in report
        assert "## Networks (Table 1)" in report
        assert "## Accelerator projection" in report
        assert "## Area" in report

    def test_contains_network_row(self, report):
        assert "imdb" in report
        assert "86.5 accuracy" in report

    def test_contains_paper_headlines(self, report):
        assert "18.5%" in report
        assert "1.35x" in report

    def test_area_totals(self, report):
        assert "64.6" in report and "66.8" in report

    def test_seed_changes_benchmark(self, report):
        """``seed`` must reach the zoo (regression: it was dropped)."""
        other = generate_report(
            scale="tiny", networks=("imdb",), thetas=(0.0, 0.3), seed=1
        )
        ours = [line for line in report.splitlines() if "imdb" in line]
        theirs = [line for line in other.splitlines() if "imdb" in line]
        assert ours != theirs  # different seed, different trained model

    def test_unknown_network_raises(self):
        with pytest.raises(KeyError):
            generate_report(networks=("alexnet",))

    def test_empty_networks_raises(self):
        with pytest.raises(ValueError):
            generate_report(networks=())


class TestReportCLI:
    def test_report_command(self, capsys):
        from repro.cli import main

        assert (
            main(
                ["report", "--scale", "tiny", "--networks", "imdb"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "# Reproduction report" in out
