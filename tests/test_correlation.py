"""Tests for the BNN/RNN correlation analysis (Figures 7-8)."""

import numpy as np
import pytest

from repro.core.correlation import (
    CorrelationSamples,
    collect_gate_samples,
    correlation_histogram,
    fraction_above,
    layer_correlations,
)
from repro.nn.gru import GRULayer
from repro.nn.lstm import LSTMLayer


@pytest.fixture
def rng():
    return np.random.default_rng(41)


def smooth_inputs(rng, batch=2, steps=25, dim=10):
    base = rng.standard_normal((batch, 1, dim))
    drift = np.cumsum(0.1 * rng.standard_normal((batch, steps, dim)), axis=1)
    return base + drift


class TestCorrelationSamples:
    def test_perfectly_correlated(self):
        full = np.linspace(0, 1, 20).reshape(-1, 2)
        samples = CorrelationSamples(full=full, binary=3.0 * full + 1.0)
        np.testing.assert_allclose(samples.per_neuron(), [1.0, 1.0])
        assert samples.pooled() == pytest.approx(1.0)

    def test_anticorrelated(self):
        full = np.linspace(0, 1, 20).reshape(-1, 1)
        samples = CorrelationSamples(full=full, binary=-full)
        np.testing.assert_allclose(samples.per_neuron(), [-1.0])


class TestCollectGateSamples:
    def test_lstm_gates_covered(self, rng):
        layer = LSTMLayer(10, 8, rng=rng)
        samples = collect_gate_samples(layer, smooth_inputs(rng))
        assert set(samples) == {"i", "f", "g", "o"}
        for gate_samples in samples.values():
            assert gate_samples.full.shape == gate_samples.binary.shape
            assert gate_samples.full.shape[1] == 8

    def test_gru_gates_covered(self, rng):
        layer = GRULayer(10, 8, rng=rng)
        samples = collect_gate_samples(layer, smooth_inputs(rng))
        assert set(samples) == {"z", "r", "g"}

    def test_sample_count(self, rng):
        layer = LSTMLayer(10, 8, rng=rng)
        x = smooth_inputs(rng, batch=3, steps=7)
        samples = collect_gate_samples(layer, x)
        assert samples["i"].full.shape[0] == 3 * 7

    def test_rejects_2d_input(self, rng):
        with pytest.raises(ValueError):
            collect_gate_samples(LSTMLayer(4, 4, rng=rng), rng.standard_normal((4, 4)))

    def test_correlations_are_high_on_real_gates(self, rng):
        """§3.1.2: trained-like gates show strong BNN/RNN correlation."""
        layer = LSTMLayer(10, 16, rng=rng)
        correlations = layer_correlations(layer, smooth_inputs(rng, steps=40))
        assert correlations.shape == (4 * 16,)
        assert np.median(correlations) > 0.5


class TestHistogram:
    def test_percentages_sum_to_100(self):
        rng = np.random.default_rng(0)
        corr = rng.uniform(0, 1, size=200)
        percent, edges = correlation_histogram(corr)
        assert percent.sum() == pytest.approx(100.0)
        assert len(percent) == len(edges) - 1

    def test_negative_values_clip_to_lowest_bin(self):
        percent, _ = correlation_histogram(np.array([-0.5, 0.1]))
        assert percent[0] == pytest.approx(100.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            correlation_histogram(np.array([]))


class TestFractionAbove:
    def test_basic(self):
        corr = np.array([0.9, 0.85, 0.7, 0.95])
        assert fraction_above(corr, 0.8) == pytest.approx(0.75)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            fraction_above(np.array([]), 0.5)
