"""Tests for reuse accounting and the Figure 5 output-change profile."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import (
    DetailedReuseStats,
    ReuseStats,
    output_change_profile,
    profile_summary,
    relative_change,
)


class TestReuseStats:
    def test_empty_is_zero(self):
        assert ReuseStats().reuse_fraction() == 0.0
        assert ReuseStats().total_evaluations == 0

    def test_record_counts(self):
        stats = ReuseStats()
        stats.record("layer0", "i", np.array([[True, False], [True, True]]))
        assert stats.total_evaluations == 4
        assert stats.total_reused == 3
        assert stats.reuse_fraction() == pytest.approx(0.75)

    def test_percent(self):
        stats = ReuseStats()
        stats.record("l", "g", np.array([True, False]))
        assert stats.reuse_percent() == pytest.approx(50.0)

    def test_by_layer_and_gate(self):
        stats = ReuseStats()
        stats.record("l0", "i", np.array([True, True]))
        stats.record("l0", "f", np.array([False, False]))
        stats.record("l1", "i", np.array([True, False]))
        assert stats.by_layer() == {"l0": 0.5, "l1": 0.5}
        assert stats.by_gate()["i"] == pytest.approx(0.75)
        assert stats.by_gate()["f"] == 0.0

    def test_merge(self):
        a, b = ReuseStats(), ReuseStats()
        a.record("l", "i", np.array([True]))
        b.record("l", "i", np.array([False]))
        b.record("m", "g", np.array([True]))
        a.merge(b)
        assert a.total_evaluations == 3
        assert a.total_reused == 2

    def test_reset(self):
        stats = ReuseStats()
        stats.record("l", "i", np.array([True]))
        stats.reset()
        assert stats.total_evaluations == 0

    @given(st.lists(st.booleans(), min_size=1, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_fraction_bounds(self, flags):
        stats = ReuseStats()
        stats.record("l", "i", np.array(flags))
        assert 0.0 <= stats.reuse_fraction() <= 1.0

    @given(
        st.lists(
            st.lists(st.booleans(), min_size=1, max_size=16),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_merge_any_partition_equals_whole(self, shards):
        """merge() over any split of the records equals one big record."""
        whole = ReuseStats()
        for flags in shards:
            whole.record("l", "i", np.array(flags))
        merged = ReuseStats()
        for flags in shards:
            part = ReuseStats()
            part.record("l", "i", np.array(flags))
            merged.merge(part)
        assert merged.total == whole.total
        assert merged.reused == whole.reused
        assert merged.reuse_fraction() == whole.reuse_fraction()


class TestDetailedReuseStats:
    """The subclass must keep counts and masks in lockstep through
    record/merge/reset (the merge/reset asymmetry regression)."""

    @staticmethod
    def detailed(*masks, layer="l", gate="i"):
        stats = DetailedReuseStats()
        for mask in masks:
            stats.record(layer, gate, np.array(mask))
        return stats

    def test_record_stores_masks_and_counts(self):
        stats = self.detailed([[True, False]], [[False, False]])
        assert stats.timesteps("l", "i") == 2
        assert stats.total_evaluations == 4
        assert stats.total_reused == 1

    def test_merge_preserves_masks(self):
        a = self.detailed([[True, False]])
        b = self.detailed([[False, True]], [[True, True]])
        a.merge(b)
        assert a.timesteps("l", "i") == 3
        assert a.total_evaluations == 6
        assert a.total_reused == 4
        np.testing.assert_array_equal(
            a.masks[("l", "i")][1], np.array([[False, True]])
        )

    def test_merge_matches_sequential_record(self):
        """Merging two halves equals recording everything in order."""
        first = [[True, False]], [[False, False]]
        second = [[True, True]], [[False, True]]
        merged = self.detailed(*first)
        merged.merge(self.detailed(*second))
        sequential = self.detailed(*first, *second)
        assert merged.total == sequential.total
        assert merged.reused == sequential.reused
        for key in sequential.masks:
            np.testing.assert_array_equal(
                np.concatenate(merged.masks[key]),
                np.concatenate(sequential.masks[key]),
            )

    def test_merge_copies_masks(self):
        """Merged masks must not alias the source's arrays."""
        source = self.detailed([[True, False]])
        target = DetailedReuseStats()
        target.merge(source)
        source.masks[("l", "i")][0][:] = False
        assert target.masks[("l", "i")][0][0, 0]

    def test_merge_plain_stats_adds_counts_only(self):
        detailed = self.detailed([[True, False]])
        plain = ReuseStats()
        plain.record("l", "i", np.array([[True, True]]))
        detailed.merge(plain)
        assert detailed.total_evaluations == 4
        assert detailed.total_reused == 3
        assert detailed.timesteps("l", "i") == 1  # no masks to inherit

    def test_reset_clears_masks_and_counts(self):
        stats = self.detailed([[True, False]])
        stats.reset()
        assert stats.total_evaluations == 0
        assert stats.timesteps("l", "i") == 0
        assert stats.masks == {}

    def test_merge_separate_keys(self):
        a = self.detailed([[True]], layer="l0")
        a.merge(self.detailed([[False]], layer="l1"))
        assert a.timesteps("l0", "i") == 1
        assert a.timesteps("l1", "i") == 1


class TestRelativeChange:
    def test_basic(self):
        out = relative_change(np.array([2.0]), np.array([1.0]))
        np.testing.assert_allclose(out, [0.5])

    def test_zero_denominator_floored(self):
        out = relative_change(np.array([0.0]), np.array([1.0]), floor=1e-8)
        assert np.isfinite(out).all()

    def test_identical_is_zero(self):
        x = np.array([3.0, -4.0])
        np.testing.assert_array_equal(relative_change(x, x), [0.0, 0.0])


class TestOutputChangeProfile:
    def test_constant_sequence_is_zero(self):
        seq = np.ones((2, 10, 4))
        profile = output_change_profile([seq])
        np.testing.assert_array_equal(profile, np.zeros(4))

    def test_sorted_ascending(self):
        rng = np.random.default_rng(0)
        profile = output_change_profile([rng.standard_normal((2, 12, 8))])
        assert np.all(np.diff(profile) >= 0)

    def test_concatenates_layers(self):
        rng = np.random.default_rng(0)
        profile = output_change_profile(
            [rng.standard_normal((1, 5, 3)), rng.standard_normal((1, 5, 4))]
        )
        assert profile.shape == (7,)

    def test_clipping(self):
        seq = np.zeros((1, 3, 1))
        seq[0, :, 0] = [1e-9, 1.0, 1e-9]  # enormous relative changes
        profile = output_change_profile([seq], clip_percent=100.0)
        assert profile.max() <= 100.0

    def test_needs_two_timesteps(self):
        with pytest.raises(ValueError):
            output_change_profile([np.ones((1, 1, 4))])

    def test_needs_3d(self):
        with pytest.raises(ValueError):
            output_change_profile([np.ones((4, 4))])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            output_change_profile([])

    def test_smooth_changes_less_than_jumpy(self):
        """A slowly drifting neuron must profile below a jumpy one."""
        steps = np.arange(50, dtype=np.float64)
        smooth = (10.0 + 0.01 * steps).reshape(1, 50, 1)
        rng = np.random.default_rng(1)
        jumpy = (10.0 + 5.0 * rng.standard_normal(50)).reshape(1, 50, 1)
        p_smooth = output_change_profile([smooth])
        p_jumpy = output_change_profile([jumpy])
        assert p_smooth[0] < p_jumpy[0]


class TestProfileSummary:
    def test_keys_and_values(self):
        profile = np.array([1.0, 5.0, 9.0, 50.0])
        summary = profile_summary(profile)
        assert summary["mean_percent"] == pytest.approx(16.25)
        assert summary["fraction_below_10pct"] == pytest.approx(0.75)
        assert summary["median_percent"] == pytest.approx(7.0)


class TestThreadSafeReuseStats:
    def test_concurrent_records_lose_nothing(self):
        import threading

        from repro.core.stats import ThreadSafeReuseStats

        stats = ThreadSafeReuseStats()
        mask = np.ones((2, 8), dtype=bool)
        per_thread = 200

        def pound():
            for _ in range(per_thread):
                stats.record("layer", "gate", mask)

        threads = [threading.Thread(target=pound) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert stats.total_evaluations == 8 * per_thread * mask.size
        assert stats.total_reused == 8 * per_thread * mask.size

    def test_snapshot_is_detached(self):
        from repro.core.stats import ThreadSafeReuseStats

        stats = ThreadSafeReuseStats()
        stats.record("layer", "i", np.array([[True, False]]))
        snap = stats.snapshot()
        assert type(snap) is ReuseStats
        stats.record("layer", "i", np.array([[True, True]]))
        assert snap.total_evaluations == 2
        assert stats.total_evaluations == 4
        snap.record("other", "o", np.array([[False]]))
        assert ("other", "o") not in stats.total

    def test_plain_snapshot_matches_base(self):
        stats = ReuseStats()
        stats.record("a", "g", np.array([[True, False, False]]))
        snap = stats.snapshot()
        assert snap.reused == stats.reused
        assert snap.total == stats.total
        assert snap.reused is not stats.reused

    def test_merge_and_reset_locked_variants(self):
        from repro.core.stats import ThreadSafeReuseStats

        stats = ThreadSafeReuseStats()
        other = ReuseStats()
        other.record("a", "g", np.array([[True]]))
        stats.merge(other)
        assert stats.total_evaluations == 1
        stats.reset()
        assert stats.total_evaluations == 0
