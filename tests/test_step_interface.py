"""Tests for the inference stepping interface shared by plain and
memoized layers (used by the seq2seq decoder)."""

import numpy as np
import pytest

from repro.nn.gru import GRULayer
from repro.nn.lstm import LSTMLayer


@pytest.fixture
def rng():
    return np.random.default_rng(47)


class TestLSTMStepping:
    def test_start_state_shapes(self, rng):
        layer = LSTMLayer(4, 6, rng=rng)
        h, c = layer.start_state(3)
        assert h.shape == (3, 6) and c.shape == (3, 6)
        assert np.all(h == 0.0) and np.all(c == 0.0)

    def test_stepping_matches_forward(self, rng):
        layer = LSTMLayer(4, 6, rng=rng)
        x = rng.standard_normal((2, 7, 4))
        full = layer(x)
        state = layer.start_state(2)
        outputs = []
        for t in range(7):
            h, state = layer.step(x[:, t, :], state)
            outputs.append(h)
        np.testing.assert_allclose(np.stack(outputs, axis=1), full)

    def test_step_state_is_fresh_objects(self, rng):
        """Stepping must not mutate the caller's state in place (beam
        search branches states)."""
        layer = LSTMLayer(4, 6, rng=rng)
        state0 = layer.start_state(1)
        saved = (state0[0].copy(), state0[1].copy())
        layer.step(rng.standard_normal((1, 4)), state0)
        np.testing.assert_array_equal(state0[0], saved[0])
        np.testing.assert_array_equal(state0[1], saved[1])


class TestGRUStepping:
    def test_start_state_shape(self, rng):
        layer = GRULayer(4, 6, rng=rng)
        h = layer.start_state(5)
        assert h.shape == (5, 6)

    def test_stepping_matches_forward(self, rng):
        layer = GRULayer(4, 6, rng=rng)
        x = rng.standard_normal((2, 7, 4))
        full = layer(x)
        state = layer.start_state(2)
        outputs = []
        for t in range(7):
            h, state = layer.step(x[:, t, :], state)
            outputs.append(h)
        np.testing.assert_allclose(np.stack(outputs, axis=1), full)

    def test_branched_states_independent(self, rng):
        """Two hypothetical beams stepping from the same state must not
        interfere."""
        layer = GRULayer(4, 6, rng=rng)
        state = layer.start_state(1)
        x = rng.standard_normal((1, 4))
        h1, state1 = layer.step(x, state)
        h2, state2 = layer.step(-x, state)
        assert not np.allclose(state1, state2)
        # Re-stepping from the original state reproduces the first result.
        h1_again, _ = layer.step(x, state)
        np.testing.assert_array_equal(h1, h1_again)
