"""Tests for the file-based multi-host work queue.

Covers the claim/complete lifecycle (atomic, race-free by
construction — including under a many-thread claim hammer), idempotent
submission, lease expiry and re-queueing, owner attribution in leases
and stats, the worker drain loop, and — the crash-recovery acceptance
test — a sweep that still completes with bitwise-correct results after
a worker dies mid-task and its lease expires.
"""

import os
import threading
import time

import pytest

from repro.models.benchmark import MemoizedResult
from repro.runner import (
    ParallelRunner,
    QueueBackend,
    QueueDrainTimeout,
    QueueTaskFailed,
    SweepJob,
    Task,
    WorkQueue,
    default_owner,
    drain,
    lease_owner,
    payload_key,
)


def sample_payload(tag: int = 0):
    """A minimal JSON task payload (queue machinery never inspects it)."""
    return {"kind": "test", "tag": tag}


def echo_handler(payload):
    return {"echo": payload["tag"]}


def expire_lease(task: Task) -> None:
    """Backdate a lease far enough that any positive TTL has expired."""
    # checks: allow-wall-clock lease files expire by mtime, which is wall-clock epoch seconds
    past = time.time() - 10_000
    os.utime(task.lease_path, (past, past))


def results_equal(a: MemoizedResult, b: MemoizedResult) -> bool:
    return (
        a.quality == b.quality
        and a.quality_loss == b.quality_loss
        and a.reuse_fraction == b.reuse_fraction
        and a.stats.reused == b.stats.reused
        and a.stats.total == b.stats.total
    )


class TestWorkQueueLifecycle:
    def test_submit_claim_complete(self, tmp_path):
        queue = WorkQueue(tmp_path)
        task_id = queue.submit(sample_payload())
        assert task_id == payload_key(sample_payload())
        assert queue.pending_count() == 1

        task = queue.claim("worker-a")
        assert task is not None
        assert task.task_id == task_id
        assert task.payload == sample_payload()
        assert queue.pending_count() == 0
        assert queue.active_count() == 1

        queue.results.put(task.task_id, {"done": True})
        queue.complete(task)
        assert queue.active_count() == 0

    def test_claim_on_empty_queue(self, tmp_path):
        assert WorkQueue(tmp_path).claim() is None

    def test_submit_is_idempotent(self, tmp_path):
        queue = WorkQueue(tmp_path)
        first = queue.submit(sample_payload())
        second = queue.submit(sample_payload())
        assert first == second
        assert queue.pending_count() == 1

    def test_submit_skips_finished_tasks(self, tmp_path):
        queue = WorkQueue(tmp_path)
        task_id = payload_key(sample_payload())
        queue.results.put(task_id, {"done": True})
        queue.submit(sample_payload())
        assert queue.pending_count() == 0

    def test_submit_skips_active_tasks(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.submit(sample_payload())
        task = queue.claim()
        assert task is not None
        queue.submit(sample_payload())  # do not race the live worker
        assert queue.pending_count() == 0
        assert queue.active_count() == 1

    def test_claim_discards_already_finished_tasks(self, tmp_path):
        """A task whose result exists is discarded, never re-evaluated."""
        queue = WorkQueue(tmp_path)
        queue.submit(sample_payload(1))
        queue.results.put(payload_key(sample_payload(1)), {"done": True})
        assert queue.claim() is None
        assert queue.pending_count() == 0
        assert queue.active_count() == 0

    def test_claim_drops_corrupt_task_files(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.pending_dir.mkdir(parents=True)
        (queue.pending_dir / ("ab" * 32 + ".json")).write_text(
            "{not json", encoding="utf-8"
        )
        assert queue.claim() is None
        assert queue.pending_count() == 0
        assert queue.active_count() == 0

    def test_two_claimers_cannot_share_a_task(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.submit(sample_payload())
        assert queue.claim("worker-a") is not None
        assert queue.claim("worker-b") is None  # atomically taken

    def test_invalid_lease_ttl_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="lease_ttl"):
            WorkQueue(tmp_path, lease_ttl=0)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_nonfinite_lease_ttl_rejected(self, tmp_path, bad):
        # A NaN TTL passes `<= 0` (every NaN comparison is False) and
        # would silently break all lease-expiry math downstream.
        with pytest.raises(ValueError, match="finite"):
            WorkQueue(tmp_path, lease_ttl=bad)


class TestOwnership:
    """Leases and failed/ records are attributable to host + pid."""

    def test_default_owner_names_host_and_pid(self):
        assert default_owner().endswith(f"-{os.getpid()}")

    def test_lease_embeds_tag_hostname_and_pid(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.submit(sample_payload())
        task = queue.claim("alice")
        owner = lease_owner(task.lease)
        assert owner == f"alice-{default_owner()}"
        # The worker tag is optional; host-pid attribution is not.
        assert task.lease_path.name == f"{task.task_id}.{task.lease}.json"

    def test_untagged_claim_still_attributable(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.submit(sample_payload())
        task = queue.claim()
        assert lease_owner(task.lease) == default_owner()

    def test_stats_list_active_owners(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.submit(sample_payload(1))
        queue.submit(sample_payload(2))
        a = queue.claim("alice")
        queue.claim("bob")
        stats = queue.stats()
        assert stats["pending"] == 0
        assert stats["active"] == 2
        assert stats["owners"] == sorted(
            [f"alice-{default_owner()}", f"bob-{default_owner()}"]
        )
        queue.results.put(a.task_id, {"done": True})
        queue.complete(a)
        assert queue.stats()["owners"] == [f"bob-{default_owner()}"]

    def test_failed_record_keeps_owner(self, tmp_path):
        """A quarantined task's file name still says who poisoned on it."""
        queue = WorkQueue(tmp_path)
        queue.submit(sample_payload())
        task = queue.claim("fragile-worker")
        queue.fail(task, error="boom")
        (record,) = queue.failed_dir.glob("*.json")
        assert f"fragile-worker-{default_owner()}" in record.name


class TestConcurrentClaims:
    """The atomicity claim under an actual many-thread hammer.

    ``claim`` promises exactly-one-winner via atomic rename; until this
    suite it was only exercised sequentially.  Here many threads race
    over one queue and every submitted task must be claimed exactly
    once and completed — no double claims, no losses.
    """

    def test_no_task_double_claimed_or_lost(self, tmp_path):
        queue = WorkQueue(tmp_path)
        expected = {queue.submit(sample_payload(i)) for i in range(40)}
        assert len(expected) == 40
        claimed = []
        lock = threading.Lock()
        errors = []

        def hammer(worker_id: int):
            try:
                while True:
                    task = queue.claim(f"hammer{worker_id}")
                    if task is None:
                        return
                    with lock:
                        claimed.append(task.task_id)
                    queue.results.put(task.task_id, echo_handler(task.payload))
                    queue.complete(task)
            # checks: allow-broad-except worker thread collects errors for the main-thread assert
            except Exception as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        assert len(claimed) == len(set(claimed))  # nobody double-claimed
        assert set(claimed) == expected  # nothing was lost
        assert queue.pending_count() == 0
        assert queue.active_count() == 0

    def test_hammer_with_interleaved_submitters(self, tmp_path):
        """Claims racing *submissions* (and re-submissions of the same
        payloads) still deliver every task exactly once."""
        queue = WorkQueue(tmp_path)
        total = 30
        claimed = []
        lock = threading.Lock()
        errors = []

        def submit_all():
            try:
                for i in range(total):
                    queue.submit(sample_payload(i))
                    queue.submit(sample_payload(i))  # idempotent duplicate
            # checks: allow-broad-except worker thread collects errors for the main-thread assert
            except Exception as exc:
                errors.append(exc)

        stop_claiming = threading.Event()

        def hammer(worker_id: int):
            try:
                while not stop_claiming.is_set():
                    task = queue.claim(f"w{worker_id}")
                    if task is None:
                        time.sleep(0.001)
                        continue
                    with lock:
                        claimed.append(task.task_id)
                    queue.results.put(task.task_id, echo_handler(task.payload))
                    queue.complete(task)
            # checks: allow-broad-except worker thread collects errors for the main-thread assert
            except Exception as exc:
                errors.append(exc)

        claimers = [
            threading.Thread(target=hammer, args=(i,)) for i in range(6)
        ]
        submitters = [threading.Thread(target=submit_all) for _ in range(2)]
        for thread in claimers + submitters:
            thread.start()
        for thread in submitters:
            thread.join()
        deadline = time.monotonic() + 30
        while len(claimed) < total and time.monotonic() < deadline:
            time.sleep(0.01)
        stop_claiming.set()
        for thread in claimers:
            thread.join()

        assert not errors
        # Every unique task was delivered and completed; none was lost.
        # (Unlike the claims-only hammer above, a *re-submission* racing
        # a claim may — extremely rarely — duplicate one in-flight task;
        # that costs a redundant deterministic evaluation, never a wrong
        # or missing result, so no double-claim assertion here.)
        assert set(claimed) == {
            payload_key(sample_payload(i)) for i in range(total)
        }
        for i in range(total):
            assert queue.results.get(payload_key(sample_payload(i))) == {
                "echo": i
            }


class TestLeaseExpiry:
    def test_expired_lease_is_requeued(self, tmp_path):
        queue = WorkQueue(tmp_path, lease_ttl=60)
        queue.submit(sample_payload())
        task = queue.claim("doomed-worker")
        assert task is not None
        expire_lease(task)

        assert queue.requeue_expired() == 1
        assert queue.pending_count() == 1
        assert queue.active_count() == 0
        reclaimed = queue.claim("rescue-worker")
        assert reclaimed is not None
        assert reclaimed.task_id == task.task_id
        assert reclaimed.payload == task.payload

    def test_fresh_lease_is_left_alone(self, tmp_path):
        queue = WorkQueue(tmp_path, lease_ttl=60)
        queue.submit(sample_payload())
        assert queue.claim() is not None
        assert queue.requeue_expired() == 0
        assert queue.active_count() == 1

    def test_extend_pushes_expiry_forward(self, tmp_path):
        queue = WorkQueue(tmp_path, lease_ttl=60)
        queue.submit(sample_payload())
        task = queue.claim()
        expire_lease(task)
        queue.extend(task)  # heartbeat mid-evaluation
        assert queue.requeue_expired() == 0
        assert queue.active_count() == 1

    def test_ttl_boundary_math_is_wall_clock_exact(self, tmp_path):
        """Pins the lease arithmetic bit-for-bit: live strictly below
        ``mtime + ttl``, expired at exactly ``mtime + ttl``, and a
        heartbeat resets the clock.  The PR 10 monotonic migration
        deliberately left this math on wall-clock file mtimes (they are
        epoch seconds shared across hosts) — this test fails if anyone
        'fixes' it to monotonic."""
        ttl = 60.0
        queue = WorkQueue(tmp_path, lease_ttl=ttl)
        queue.submit(sample_payload())
        task = queue.claim("boundary-worker")
        mtime = task.lease_path.stat().st_mtime
        # one tick before the boundary: still live
        assert queue.requeue_expired(now=mtime + ttl - 0.001) == 0
        # exactly at mtime + ttl: expired (expiry uses <=)
        assert queue.requeue_expired(now=mtime + ttl) == 1
        # heartbeat: extend() pushes the mtime forward, so the same
        # relative offset that just expired the old lease spares the
        # refreshed one
        reclaimed = queue.claim("boundary-worker")
        queue.extend(reclaimed)
        new_mtime = reclaimed.lease_path.stat().st_mtime
        assert queue.requeue_expired(now=new_mtime + ttl - 0.001) == 0
        assert queue.active_count() == 1

    def test_expired_lease_with_result_is_dropped_not_requeued(self, tmp_path):
        """A slow-but-alive worker that finished must not cause rework."""
        queue = WorkQueue(tmp_path, lease_ttl=60)
        queue.submit(sample_payload())
        task = queue.claim()
        queue.results.put(task.task_id, {"done": True})
        expire_lease(task)
        assert queue.requeue_expired() == 0
        assert queue.pending_count() == 0
        assert queue.active_count() == 0

    def test_wall_clock_expiry(self, tmp_path):
        """Leases really do expire with time, not only via backdating."""
        queue = WorkQueue(tmp_path, lease_ttl=0.05)
        queue.submit(sample_payload())
        assert queue.claim() is not None
        time.sleep(0.1)
        assert queue.requeue_expired() == 1
        assert queue.pending_count() == 1


class TestDrain:
    def test_drain_until_empty(self, tmp_path):
        queue = WorkQueue(tmp_path)
        ids = [queue.submit(sample_payload(i)) for i in range(3)]
        completed = drain(queue, echo_handler, idle_timeout=0.0)
        assert completed == 3
        assert queue.pending_count() == 0
        assert queue.active_count() == 0
        for i, task_id in enumerate(ids):
            assert queue.results.get(task_id) == {"echo": i}

    def test_drain_respects_max_tasks(self, tmp_path):
        queue = WorkQueue(tmp_path)
        for i in range(3):
            queue.submit(sample_payload(i))
        assert drain(queue, echo_handler, max_tasks=2) == 2
        assert queue.pending_count() == 1

    def test_drain_idle_timeout_on_empty_queue(self, tmp_path):
        queue = WorkQueue(tmp_path)
        assert drain(queue, echo_handler, idle_timeout=0.0) == 0

    def test_drain_survives_poison_task(self, tmp_path, capsys):
        """A task whose evaluation raises is quarantined, not re-queued:
        re-queueing a deterministic failure would crash-loop the fleet."""
        queue = WorkQueue(tmp_path)
        for i in range(3):
            queue.submit(sample_payload(i))

        def fragile_handler(payload):
            if payload["tag"] == 1:
                raise RuntimeError("boom")
            return echo_handler(payload)

        completed = drain(queue, fragile_handler, idle_timeout=0.0)
        assert completed == 2  # the two healthy tasks
        assert queue.failed_count() == 1  # the poison one, moved aside
        assert queue.pending_count() == 0
        assert queue.active_count() == 0
        assert "boom" in capsys.readouterr().err  # traceback surfaced

    def test_heartbeat_keeps_long_task_leased(self, tmp_path):
        """A task may run far longer than the TTL: the heartbeat thread
        keeps its lease fresh, so only genuinely dead workers expire."""
        queue = WorkQueue(tmp_path, lease_ttl=0.2)
        queue.submit(sample_payload())
        observed = {}

        def slow_handler(payload):
            time.sleep(0.5)  # more than 2x the lease TTL
            observed["requeued_mid_task"] = queue.requeue_expired()
            return echo_handler(payload)

        assert drain(queue, slow_handler, idle_timeout=0.0) == 1
        assert observed["requeued_mid_task"] == 0  # lease stayed fresh
        assert queue.pending_count() == 0
        assert queue.active_count() == 0

    def test_heartbeat_adopts_a_shrunk_lease_ttl_mid_task(self, tmp_path):
        """The beat interval is re-read every cycle, not frozen at task
        start: when a (remote) queue's TTL refresh shrinks ``lease_ttl``
        mid-task, the in-flight heartbeat must speed up within one old
        interval, or its beats would land slower than the new expiry."""
        queue = WorkQueue(tmp_path, lease_ttl=1.0)  # beat every 0.25s
        queue.submit(sample_payload())
        task = queue.claim()
        beats = []
        filesystem_extend = queue.extend
        queue.extend = lambda t: (
            beats.append(time.monotonic()),
            filesystem_extend(t),
        )
        with queue.heartbeat(task):
            queue.lease_ttl = 0.05  # as a TTL refresh would
            time.sleep(0.9)
        # Frozen at 1.0s/4 the window fits ~3 beats; adapted to
        # 0.05s/4 it fits dozens.
        assert len(beats) >= 5
        queue.complete(task)


class TestCrashRecovery:
    """A worker dying mid-task only delays its tasks — never loses them."""

    def test_sweep_completes_after_worker_death(self, tmp_path):
        job = SweepJob(network="imdb", thetas=(0.1, 0.3))
        baseline = ParallelRunner().run(job)

        # A "worker" claims the first point's task... and dies: the
        # task is neither completed nor released.
        queue = WorkQueue(tmp_path, lease_ttl=60)
        queue.submit(job.point_payload(job.thetas[0]))
        doomed = queue.claim("doomed-worker")
        assert doomed is not None
        expire_lease(doomed)  # its lease has since expired

        backend = QueueBackend(queue, timeout=600)
        runner = ParallelRunner(backend=backend)
        results = runner.run(job)

        assert runner.last_report.misses == len(job.thetas)
        for a, b in zip(baseline, results):
            assert results_equal(a, b)
        # The dead worker's task was re-queued, claimed and completed.
        assert queue.results.get(doomed.task_id) is not None
        assert queue.pending_count() == 0
        assert queue.active_count() == 0

    def test_sharded_sweep_recovers_a_dead_shard(self, tmp_path):
        from repro.runner import EvalShardJob

        job = SweepJob(network="imdb", thetas=(0.2,))
        baseline = ParallelRunner().run(job, shards=3)

        queue = WorkQueue(tmp_path, lease_ttl=60)
        shard_job = EvalShardJob.from_sweep_point(job, 0.2, 1, 3)
        queue.submit(shard_job.payload())
        doomed = queue.claim("doomed-worker")
        assert doomed is not None
        assert doomed.task_id == shard_job.key()
        expire_lease(doomed)

        runner = ParallelRunner(backend=QueueBackend(queue, timeout=600))
        results = runner.run(job, shards=3)
        for a, b in zip(baseline, results):
            assert results_equal(a, b)
        assert queue.active_count() == 0

    def test_submitter_drain_surfaces_and_quarantines_poison(self, tmp_path):
        """In drain mode a failing task of our own is quarantined and
        then surfaced as QueueTaskFailed with the recorded traceback."""
        queue = WorkQueue(tmp_path)
        bad = {"kind": "sweep_point", "network": "imdb"}  # missing fields
        queue.submit(bad)
        backend = QueueBackend(queue, timeout=600)
        with pytest.raises(QueueTaskFailed, match="quarantined"):
            backend.execute([bad])
        assert queue.failed_count() == 1
        assert queue.pending_count() == 0
        assert "ValueError" in queue.failed_error(payload_key(bad))

    def test_no_drain_submitter_surfaces_worker_quarantine(self, tmp_path):
        """A task a worker quarantined must raise immediately for its
        submitter — not hang until the timeout with a misleading
        'are any workers running?' message."""
        queue = WorkQueue(tmp_path)
        payload = SweepJob(network="imdb", thetas=(0.1,)).point_payload(0.1)
        queue.submit(payload)
        doomed = queue.claim("worker")
        queue.fail(doomed, error="RuntimeError: boom on a worker")

        backend = QueueBackend(queue, drain=False, timeout=600)
        with pytest.raises(QueueTaskFailed, match="boom on a worker"):
            backend.execute([payload])

    def test_foreign_poison_does_not_abort_healthy_sweep(self, tmp_path):
        """Another submitter's poison payload must not crash this one's
        sweep: the drain quarantines it and keeps going."""
        queue = WorkQueue(tmp_path)
        queue.submit({"kind": "teleport", "from": "someone-else"})
        job = SweepJob(network="imdb", thetas=(0.1, 0.3))
        baseline = ParallelRunner().run(job)
        results = ParallelRunner(
            backend=QueueBackend(queue, timeout=600)
        ).run(job)
        for a, b in zip(baseline, results):
            assert results_equal(a, b)
        assert queue.failed_count() == 1  # the foreign task, moved aside

    def test_live_lease_defers_timeout(self, tmp_path):
        """A live worker holding one of our leases counts as progress:
        the timeout must not fire while the task is in good hands."""
        import threading

        queue = WorkQueue(tmp_path, lease_ttl=3600)
        payload = sample_payload()
        queue.submit(payload)
        task = queue.claim("slow-but-alive-worker")
        assert task is not None

        def finish_late():
            time.sleep(0.6)  # slower than the submitter's timeout
            queue.results.put(task.task_id, {"ok": True})
            queue.complete(task)

        thread = threading.Thread(target=finish_late)
        thread.start()
        backend = QueueBackend(
            queue, drain=False, timeout=0.2, poll_interval=0.01
        )
        assert backend.execute([payload]) == [{"ok": True}]
        thread.join()

    def test_stuck_queue_times_out_after_lease_expiry(self, tmp_path):
        """Dead worker, no fleet, no drain: the expired lease is
        re-queued (progress, clock reset) but with nobody to claim it
        the submitter eventually gives up."""
        queue = WorkQueue(tmp_path, lease_ttl=0.1)
        payload = SweepJob(network="imdb", thetas=(0.1,)).point_payload(0.1)
        queue.submit(payload)
        assert queue.claim("dead-worker") is not None

        backend = QueueBackend(
            queue, drain=False, timeout=0.3, poll_interval=0.01
        )
        with pytest.raises(QueueDrainTimeout, match="unresolved"):
            backend.execute([payload])
        assert queue.pending_count() == 1  # recovered, awaiting a claim
