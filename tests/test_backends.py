"""Backend-equivalence suite: every execution backend is bitwise identical.

The acceptance bar of the pluggable-backend subsystem: for seeded random
mini-sweeps (networks x thetas x shard counts 1..4), the serial,
process-pool, work-queue and http backends return **exactly** (bitwise,
not approximately) the same results — quality, quality loss, reuse
fraction, and per-(layer, gate) reuse counts — and those results agree
with the checked-in PR 2 golden JSON, so all backends cannot drift
together unnoticed either.  The http runs go through a real
``CoordinatorServer`` on a localhost socket, including the
crash-recovery paths: a worker that dies mid-task over HTTP, and a
coordinator that restarts mid-sweep.
"""

import json
import os
import random
import threading
import time
import zlib
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.models.benchmark import MemoizedResult
from repro.models.specs import BENCHMARK_NAMES
from repro.runner import (
    CoordinatorServer,
    HttpBackend,
    ParallelRunner,
    ProcessBackend,
    QueueBackend,
    RemoteWorkQueue,
    ResultCache,
    SerialBackend,
    SweepJob,
    WorkQueue,
    make_backend,
)

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_seed.json"

#: The thetas the PR 2 golden file pins (per network, unsharded serial
#: path at seed 0).
GOLDEN_THETAS = (0.05, 0.3)


def results_equal(a: MemoizedResult, b: MemoizedResult) -> bool:
    return (
        a.quality == b.quality
        and a.quality_loss == b.quality_loss
        and a.reuse_fraction == b.reuse_fraction
        and a.stats.reused == b.stats.reused
        and a.stats.total == b.stats.total
    )


@pytest.fixture(scope="module")
def process_backend():
    """One shared 2-process pool so workers train each tiny net once."""
    backend = ProcessBackend(jobs=2)
    yield backend
    backend.close()


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


@contextmanager
def coordinator(queue_dir, lease_ttl=60.0, port=0):
    """A live coordinator over ``queue_dir`` on a real localhost socket."""
    server = CoordinatorServer(
        WorkQueue(queue_dir, lease_ttl=lease_ttl), port=port, quiet=True
    )
    server.serve_in_thread()
    try:
        yield server
    finally:
        server.stop()


def run_all_backends(job, shards, process_backend, tmp_path):
    """The same job under serial / process / queue / http, per backend."""
    serial = ParallelRunner(backend=SerialBackend()).run(job, shards=shards)
    process = ParallelRunner(backend=process_backend).run(job, shards=shards)
    queue_backend = QueueBackend(tmp_path / "queue", timeout=600)
    queued = ParallelRunner(backend=queue_backend).run(job, shards=shards)
    with coordinator(tmp_path / "http_queue") as server:
        http_backend = HttpBackend(server.url, timeout=600)
        http = ParallelRunner(backend=http_backend).run(job, shards=shards)
    return serial, process, queued, http


class TestBackendEquivalence:
    """serial == process == queue == http, bitwise, for random mini-sweeps."""

    @pytest.mark.parametrize("name", tuple(BENCHMARK_NAMES))
    def test_backends_identical_and_match_golden(
        self, name, process_backend, golden, tmp_path
    ):
        # crc32, not hash(): PYTHONHASHSEED must not change what we cover.
        rng = random.Random(zlib.crc32(name.encode()) ^ 0xB0A)
        shards = rng.randint(1, 4)
        job = SweepJob(
            network=name,
            thetas=GOLDEN_THETAS,
            seed=golden["seed"],
            scale=golden["scale"],
            predictor=golden["predictor"],
        )
        serial, process, queued, http = run_all_backends(
            job, shards, process_backend, tmp_path
        )
        for a, b, c, d in zip(serial, process, queued, http):
            assert results_equal(a, b)
            assert results_equal(a, c)
            assert results_equal(a, d)
        # ... and none of them drifted from the PR 2 golden numbers.
        for theta, result in zip(job.thetas, serial):
            expected = golden["networks"][name][str(theta)]
            assert result.quality_loss == pytest.approx(
                expected["quality_loss"], rel=1e-9, abs=1e-12
            ), (name, theta, shards)
            assert result.reuse_fraction == pytest.approx(
                expected["reuse_fraction"], rel=1e-9, abs=1e-12
            ), (name, theta, shards)

    def test_random_theta_grids_and_splits(self, process_backend, tmp_path):
        """Property sweep: random grids, splits and shard counts agree."""
        rng = random.Random(20260728)
        grid = (0.0, 0.05, 0.1, 0.2, 0.3, 0.5)
        for trial in range(3):
            thetas = tuple(sorted(rng.sample(grid, rng.randint(1, 3))))
            job = SweepJob(
                network=rng.choice(("imdb", "mnmt")),
                thetas=thetas,
                calibration=rng.random() < 0.5,
            )
            shards = rng.randint(1, 4)
            serial, process, queued, http = run_all_backends(
                job, shards, process_backend, tmp_path / str(trial)
            )
            assert len(serial) == len(thetas)
            for a, b, c, d in zip(serial, process, queued, http):
                assert results_equal(a, b), (trial, job)
                assert results_equal(a, c), (trial, job)
                assert results_equal(a, d), (trial, job)

    def test_queue_backend_populates_runner_cache(self, tmp_path):
        """Queue results land in the runner's own cache like any backend's."""
        job = SweepJob(network="imdb", thetas=(0.1, 0.3))
        backend = QueueBackend(tmp_path / "queue", timeout=600)
        runner = ParallelRunner(
            cache=ResultCache(tmp_path / "cache"), backend=backend
        )
        first = runner.run(job)
        assert runner.last_report.misses == len(job.thetas)
        warm = ParallelRunner(cache=ResultCache(tmp_path / "cache"))
        second = warm.run(job)
        assert warm.last_report.evaluated == 0
        for a, b in zip(first, second):
            assert results_equal(a, b)

    def test_reuse_results_false_forces_fresh_evaluation(self, tmp_path):
        """`--no-cache` must really re-run: pre-existing queue results
        are discarded, not served."""
        from repro.runner import WorkQueue, payload_key

        job = SweepJob(network="imdb", thetas=(0.1,))
        payload = job.point_payload(0.1)
        queue = WorkQueue(tmp_path / "queue")
        queue.results.put(payload_key(payload), {"planted": True})

        reusing = QueueBackend(queue, timeout=600)
        assert reusing.execute([payload]) == [{"planted": True}]

        fresh_backend = QueueBackend(queue, timeout=600, reuse_results=False)
        fresh = fresh_backend.execute([payload])[0]
        assert "planted" not in fresh
        baseline = ParallelRunner().run(job)[0]
        assert fresh["quality"] == baseline.quality

    def test_queue_backend_reuses_queue_results(self, tmp_path):
        """A second uncached run resolves from the queue's result store."""
        job = SweepJob(network="imdb", thetas=(0.1,))
        first = ParallelRunner(
            backend=QueueBackend(tmp_path / "queue", timeout=600)
        ).run(job)
        backend = QueueBackend(tmp_path / "queue", timeout=600)
        second = ParallelRunner(backend=backend).run(job)
        assert backend.queue.pending_count() == 0  # nothing re-submitted
        for a, b in zip(first, second):
            assert results_equal(a, b)


class TestHttpBackend:
    """The http backend against a live coordinator on real sockets."""

    def test_http_backend_populates_runner_cache(self, tmp_path):
        """HTTP results land in the runner's own cache like any backend's."""
        job = SweepJob(network="imdb", thetas=(0.1, 0.3))
        with coordinator(tmp_path / "queue") as server:
            backend = HttpBackend(server.url, timeout=600)
            runner = ParallelRunner(
                cache=ResultCache(tmp_path / "cache"), backend=backend
            )
            first = runner.run(job)
            assert runner.last_report.misses == len(job.thetas)
            assert runner.last_report.backend == "http"
        warm = ParallelRunner(cache=ResultCache(tmp_path / "cache"))
        second = warm.run(job)
        assert warm.last_report.evaluated == 0
        for a, b in zip(first, second):
            assert results_equal(a, b)

    def test_external_worker_drains_no_drain_submitter(self, tmp_path):
        """A network-attached `drain` worker does all the evaluation for
        a coordinate-only (--no-drain) submitter."""
        from repro.runner import drain, evaluate_task

        job = SweepJob(network="imdb", thetas=(0.1, 0.3))
        baseline = ParallelRunner().run(job)
        with coordinator(tmp_path / "queue") as server:
            worker_queue = RemoteWorkQueue(server.url)
            done = {}

            def work():
                # max_tasks bounds the exit (the submitter never
                # evaluates here, so this worker gets both tasks);
                # idle_timeout is only the safety net against a hang.
                done["count"] = drain(
                    worker_queue, evaluate_task, max_tasks=len(job.thetas),
                    idle_timeout=60.0, poll_interval=0.05,
                )

            thread = threading.Thread(target=work, daemon=True)
            thread.start()
            backend = HttpBackend(server.url, drain=False, timeout=600)
            results = ParallelRunner(backend=backend).run(job)
            thread.join(timeout=60)
        for a, b in zip(baseline, results):
            assert results_equal(a, b)
        assert done["count"] == len(job.thetas)

    def test_sweep_completes_after_worker_death_over_http(self, tmp_path):
        """A remote worker claims over HTTP and dies: lease expiry must
        recover the task and the sweep must finish bitwise-correct."""
        job = SweepJob(network="imdb", thetas=(0.1, 0.3))
        baseline = ParallelRunner().run(job)
        with coordinator(tmp_path / "queue") as server:
            doomed_worker = RemoteWorkQueue(server.url)
            doomed_worker.submit(job.point_payload(job.thetas[0]))
            doomed = doomed_worker.claim("doomed")
            assert doomed is not None
            # ... and the worker dies: back-date its lease on the
            # coordinator's disk so the heartbeat looks long gone.
            lease_file = server.queue.active_dir / (
                f"{doomed.task_id}.{doomed.lease}.json"
            )
            # checks: allow-wall-clock lease files expire by mtime, which is wall-clock epoch seconds
            past = time.time() - 10_000
            os.utime(lease_file, (past, past))

            backend = HttpBackend(server.url, timeout=600)
            runner = ParallelRunner(backend=backend)
            results = runner.run(job)
            assert runner.last_report.misses == len(job.thetas)
            for a, b in zip(baseline, results):
                assert results_equal(a, b)
            assert server.queue.results.get(doomed.task_id) is not None
            assert server.queue.pending_count() == 0
            assert server.queue.active_count() == 0

    def test_coordinator_restart_mid_sweep(self, tmp_path):
        """Queue state lives on disk: a coordinator replaced mid-sweep
        (same port, new process-equivalent) loses nothing — pending
        tasks, live leases and stored results all survive."""
        job = SweepJob(network="imdb", thetas=(0.1, 0.3))
        baseline = ParallelRunner().run(job)
        queue_dir = tmp_path / "queue"

        first = CoordinatorServer(
            WorkQueue(queue_dir, lease_ttl=60), port=0, quiet=True
        )
        first.serve_in_thread()
        port = first.server_address[1]
        client = RemoteWorkQueue(first.url, backoff=0.1)
        for theta in job.thetas:
            client.submit(job.point_payload(theta))
        in_flight = client.claim("survivor")
        assert in_flight is not None
        first.stop()  # the coordinator dies mid-sweep ...

        second = CoordinatorServer(
            WorkQueue(queue_dir, lease_ttl=60), port=port, quiet=True
        )
        second.serve_in_thread()
        try:
            # ... the in-flight worker's lease survives: it finishes its
            # task against the replacement through the same client.
            from repro.runner import evaluate_task

            output = evaluate_task(in_flight.payload)
            client.results.put(in_flight.task_id, output)
            client.complete(in_flight)
            # The rest of the sweep drains normally over the new server.
            backend = HttpBackend(second.url, timeout=600)
            results = ParallelRunner(backend=backend).run(job)
            for a, b in zip(baseline, results):
                assert results_equal(a, b)
            assert second.queue.pending_count() == 0
            assert second.queue.active_count() == 0
        finally:
            second.stop()

    def test_coordinator_restart_under_a_live_submitter(self, tmp_path):
        """Restart the coordinator *while* execute() is running: the
        client's bounded retries must ride out the gap."""
        job = SweepJob(network="imdb", thetas=(0.1, 0.3))
        baseline = ParallelRunner().run(job)
        queue_dir = tmp_path / "queue"
        first = CoordinatorServer(
            WorkQueue(queue_dir, lease_ttl=60), port=0, quiet=True
        )
        first.serve_in_thread()
        port = first.server_address[1]
        replacement = {}

        def restart_soon():
            time.sleep(0.3)
            first.stop()
            server = CoordinatorServer(
                WorkQueue(queue_dir, lease_ttl=60), port=port, quiet=True
            )
            server.serve_in_thread()
            replacement["server"] = server

        thread = threading.Thread(target=restart_soon)
        thread.start()
        try:
            backend = HttpBackend(first.url, timeout=600)
            results = ParallelRunner(backend=backend).run(job)
            for a, b in zip(baseline, results):
                assert results_equal(a, b)
        finally:
            thread.join()
            replacement["server"].stop()


class TestRunReportBackend:
    def test_report_names_backend(self, process_backend):
        job = SweepJob(network="imdb", thetas=(0.1, 0.3))
        runner = ParallelRunner(backend=process_backend)
        runner.run(job)
        assert runner.last_report.backend == "process"
        assert runner.last_report.workers == 2
        serial = ParallelRunner()
        serial.run(job)
        assert serial.last_report.backend == "serial"
        assert serial.last_report.workers == 1

    def test_single_payload_falls_back_in_process(self, process_backend):
        runner = ParallelRunner(backend=process_backend)
        runner.run(SweepJob(network="imdb", thetas=(0.1,)))
        assert runner.last_report.workers == 1  # pool round-trip skipped


class TestMakeBackend:
    def test_builds_each_backend(self, tmp_path):
        assert isinstance(make_backend("serial"), SerialBackend)
        process = make_backend("process", jobs=3)
        assert isinstance(process, ProcessBackend) and process.jobs == 3
        queued = make_backend("queue", queue_dir=tmp_path, lease_ttl=5.0)
        assert isinstance(queued, QueueBackend)
        assert queued.queue.lease_ttl == 5.0
        http = make_backend(
            "http", coordinator="http://127.0.0.1:1", token="t0ken"
        )
        assert isinstance(http, HttpBackend)
        assert http.queue.url == "http://127.0.0.1:1"
        assert http.queue.token == "t0ken"

    def test_http_backend_requires_coordinator(self):
        with pytest.raises(ValueError, match="coordinator"):
            make_backend("http")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("carrier-pigeon")

    def test_default_runner_backends(self):
        assert ParallelRunner(jobs=1).backend.name == "serial"
        with ParallelRunner(jobs=2) as runner:
            assert runner.backend.name == "process"
            assert runner.jobs == 2
