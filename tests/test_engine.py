"""Tests for the memoization engine (scheme + model-tree wrapping)."""

import numpy as np
import pytest

from repro.core.engine import (
    MemoizationScheme,
    apply_memoization,
    memoized,
    restore,
)
from repro.core.layers import MemoizedGRULayer, MemoizedLSTMLayer
from repro.core.stats import ReuseStats
from repro.nn.gru import GRULayer
from repro.nn.linear import Linear
from repro.nn.lstm import LSTMLayer
from repro.nn.module import Module
from repro.nn.rnn import Bidirectional, RNNStack


@pytest.fixture
def rng():
    return np.random.default_rng(37)


def smooth_inputs(rng, batch=2, steps=15, dim=5):
    base = rng.standard_normal((batch, 1, dim))
    drift = np.cumsum(0.05 * rng.standard_normal((batch, steps, dim)), axis=1)
    return base + drift


class TestScheme:
    def test_defaults(self):
        scheme = MemoizationScheme()
        assert scheme.predictor == "bnn"
        assert scheme.throttle is True

    def test_invalid_predictor(self):
        with pytest.raises(ValueError):
            MemoizationScheme(predictor="magic")

    def test_invalid_predictor_message_lists_kinds(self):
        """The error must name every valid kind, not fail in the engine."""
        with pytest.raises(ValueError) as excinfo:
            MemoizationScheme(predictor="magic")
        message = str(excinfo.value)
        for kind in ("bnn", "oracle", "input"):
            assert kind in message
        assert "magic" in message

    def test_make_predictor_rejects_unknown_kind(self, rng):
        """Defensive re-check for schemes whose validation was bypassed."""
        scheme = MemoizationScheme()
        object.__setattr__(scheme, "predictor", "magic")
        with pytest.raises(ValueError, match="magic"):
            scheme.make_predictor(
                rng.standard_normal((4, 3)), rng.standard_normal((4, 4))
            )

    def test_negative_theta(self):
        with pytest.raises(ValueError):
            MemoizationScheme(theta=-0.5)

    def test_with_theta_copies(self):
        scheme = MemoizationScheme(theta=0.1, predictor="oracle")
        other = scheme.with_theta(0.9)
        assert other.theta == 0.9
        assert other.predictor == "oracle"
        assert scheme.theta == 0.1

    @pytest.mark.parametrize("kind", ["bnn", "oracle", "input"])
    def test_make_predictor(self, rng, kind):
        scheme = MemoizationScheme(predictor=kind)
        predictor = scheme.make_predictor(
            rng.standard_normal((4, 3)), rng.standard_normal((4, 4))
        )
        predictor.begin_sequence(1)


class TestApplyRestore:
    def test_wraps_all_recurrent_layers(self, rng):
        stack = RNNStack(
            [
                LSTMLayer(5, 6, rng=rng),
                GRULayer(6, 4, rng=rng),
                Bidirectional.lstm(4, 3, rng=rng),
            ]
        )
        stats = ReuseStats()
        replacements = apply_memoization(stack, MemoizationScheme(), stats)
        try:
            assert isinstance(stack.layer0, MemoizedLSTMLayer)
            assert isinstance(stack.layer1, MemoizedGRULayer)
            assert isinstance(stack.layer2.fwd, MemoizedLSTMLayer)
            assert isinstance(stack.layer2.bwd, MemoizedLSTMLayer)
            assert len(replacements) == 4
        finally:
            restore(replacements)
        assert isinstance(stack.layer0, LSTMLayer)
        assert isinstance(stack.layer2.fwd, LSTMLayer)

    def test_layer_names_are_dotted_paths(self, rng):
        stack = RNNStack([Bidirectional.lstm(5, 3, rng=rng)])
        stats = ReuseStats()
        replacements = apply_memoization(stack, MemoizationScheme(), stats)
        try:
            stack(smooth_inputs(rng))
            layer_names = {name for (name, _) in stats.total}
            assert layer_names == {"layer0.fwd", "layer0.bwd"}
        finally:
            restore(replacements)

    def test_no_recurrent_layers_raises(self, rng):
        class Dense(Module):
            def __init__(self):
                super().__init__()
                self.lin = Linear(3, 3, rng=rng)

        with pytest.raises(ValueError, match="no recurrent layers"):
            apply_memoization(Dense(), MemoizationScheme(), ReuseStats())


class TestContextManager:
    def test_outputs_restored_after_exit(self, rng):
        stack = RNNStack([LSTMLayer(5, 6, rng=rng)])
        x = smooth_inputs(rng)
        reference = stack(x)
        with memoized(stack, MemoizationScheme(theta=0.5), ReuseStats()):
            memo_out = stack(x)
        after = stack(x)
        np.testing.assert_array_equal(reference, after)
        assert memo_out.shape == reference.shape

    def test_restores_on_exception(self, rng):
        stack = RNNStack([LSTMLayer(5, 6, rng=rng)])
        with pytest.raises(RuntimeError, match="boom"):
            with memoized(stack, MemoizationScheme(), ReuseStats()):
                raise RuntimeError("boom")
        assert isinstance(stack.layer0, LSTMLayer)

    def test_stats_populated(self, rng):
        stack = RNNStack([LSTMLayer(5, 6, rng=rng), GRULayer(6, 4, rng=rng)])
        stats = ReuseStats()
        with memoized(stack, MemoizationScheme(theta=1.0), stats):
            stack(smooth_inputs(rng))
        assert stats.total_evaluations > 0
        assert stats.reuse_fraction() > 0.0

    def test_oracle_upper_bounds_bnn_loss(self, rng):
        """At the same theta on the same model, the oracle's outputs are
        at least as close to the reference as the BNN's (it never makes a
        wrong reuse decision beyond the threshold)."""
        x = smooth_inputs(rng, steps=25)
        stack = RNNStack([LSTMLayer(5, 8, rng=np.random.default_rng(37))])
        reference = stack(x)
        errors = {}
        for predictor in ("oracle", "bnn"):
            with memoized(
                stack, MemoizationScheme(theta=0.2, predictor=predictor), ReuseStats()
            ):
                out = stack(x)
            errors[predictor] = float(np.abs(out - reference).mean())
        assert errors["oracle"] <= errors["bnn"] + 1e-9

    def test_packed_and_plain_bnn_identical(self, rng):
        x = smooth_inputs(rng)
        outs = {}
        for packed in (False, True):
            stack = RNNStack([LSTMLayer(5, 6, rng=np.random.default_rng(37))])
            with memoized(
                stack,
                MemoizationScheme(theta=0.3, use_packed=packed),
                ReuseStats(),
            ):
                outs[packed] = stack(x)
        np.testing.assert_array_equal(outs[False], outs[True])
