"""Tests for the memoization engine (scheme + model-tree wrapping)."""

import numpy as np
import pytest

from repro.core.engine import (
    MemoizationScheme,
    apply_memoization,
    memoized,
    restore,
    swap_scheme,
)
from repro.core.layers import MemoizedGRULayer, MemoizedLSTMLayer
from repro.core.stats import ReuseStats
from repro.nn.gru import GRULayer
from repro.nn.linear import Linear
from repro.nn.lstm import LSTMLayer
from repro.nn.module import Module
from repro.nn.rnn import Bidirectional, RNNStack

# The scalar engine path intentionally calls the deprecated
# GatePredictor.step; its DeprecationWarning is expected here.
pytestmark = pytest.mark.filterwarnings(
    "ignore:GatePredictor.step is deprecated:DeprecationWarning"
)


@pytest.fixture
def rng():
    return np.random.default_rng(37)


def smooth_inputs(rng, batch=2, steps=15, dim=5):
    base = rng.standard_normal((batch, 1, dim))
    drift = np.cumsum(0.05 * rng.standard_normal((batch, steps, dim)), axis=1)
    return base + drift


class TestScheme:
    def test_defaults(self):
        scheme = MemoizationScheme()
        assert scheme.predictor == "bnn"
        assert scheme.throttle is True

    def test_invalid_predictor(self):
        with pytest.raises(ValueError):
            MemoizationScheme(predictor="magic")

    def test_invalid_predictor_message_lists_kinds(self):
        """The error must name every valid kind, not fail in the engine."""
        with pytest.raises(ValueError) as excinfo:
            MemoizationScheme(predictor="magic")
        message = str(excinfo.value)
        for kind in ("bnn", "oracle", "input"):
            assert kind in message
        assert "magic" in message

    def test_make_predictor_rejects_unknown_kind(self, rng):
        """Defensive re-check for schemes whose validation was bypassed."""
        scheme = MemoizationScheme()
        object.__setattr__(scheme, "predictor", "magic")
        with pytest.raises(ValueError, match="magic"):
            scheme.make_predictor(
                rng.standard_normal((4, 3)), rng.standard_normal((4, 4))
            )

    def test_negative_theta(self):
        with pytest.raises(ValueError):
            MemoizationScheme(theta=-0.5)

    def test_with_theta_copies(self):
        scheme = MemoizationScheme(theta=0.1, predictor="oracle")
        other = scheme.with_theta(0.9)
        assert other.theta == 0.9
        assert other.predictor == "oracle"
        assert scheme.theta == 0.1

    @pytest.mark.parametrize("kind", ["bnn", "oracle", "input"])
    def test_make_predictor(self, rng, kind):
        scheme = MemoizationScheme(predictor=kind)
        predictor = scheme.make_predictor(
            rng.standard_normal((4, 3)), rng.standard_normal((4, 4))
        )
        predictor.begin_sequence(1)


class TestApplyRestore:
    def test_wraps_all_recurrent_layers(self, rng):
        stack = RNNStack(
            [
                LSTMLayer(5, 6, rng=rng),
                GRULayer(6, 4, rng=rng),
                Bidirectional.lstm(4, 3, rng=rng),
            ]
        )
        stats = ReuseStats()
        replacements = apply_memoization(stack, MemoizationScheme(), stats)
        try:
            assert isinstance(stack.layer0, MemoizedLSTMLayer)
            assert isinstance(stack.layer1, MemoizedGRULayer)
            assert isinstance(stack.layer2.fwd, MemoizedLSTMLayer)
            assert isinstance(stack.layer2.bwd, MemoizedLSTMLayer)
            assert len(replacements) == 4
        finally:
            restore(replacements)
        assert isinstance(stack.layer0, LSTMLayer)
        assert isinstance(stack.layer2.fwd, LSTMLayer)

    def test_layer_names_are_dotted_paths(self, rng):
        stack = RNNStack([Bidirectional.lstm(5, 3, rng=rng)])
        stats = ReuseStats()
        replacements = apply_memoization(stack, MemoizationScheme(), stats)
        try:
            stack(smooth_inputs(rng))
            layer_names = {name for (name, _) in stats.total}
            assert layer_names == {"layer0.fwd", "layer0.bwd"}
        finally:
            restore(replacements)

    def test_no_recurrent_layers_raises(self, rng):
        class Dense(Module):
            def __init__(self):
                super().__init__()
                self.lin = Linear(3, 3, rng=rng)

        with pytest.raises(ValueError, match="no recurrent layers"):
            apply_memoization(Dense(), MemoizationScheme(), ReuseStats())


class TestContextManager:
    def test_outputs_restored_after_exit(self, rng):
        stack = RNNStack([LSTMLayer(5, 6, rng=rng)])
        x = smooth_inputs(rng)
        reference = stack(x)
        with memoized(stack, MemoizationScheme(theta=0.5), ReuseStats()):
            memo_out = stack(x)
        after = stack(x)
        np.testing.assert_array_equal(reference, after)
        assert memo_out.shape == reference.shape

    def test_restores_on_exception(self, rng):
        stack = RNNStack([LSTMLayer(5, 6, rng=rng)])
        with pytest.raises(RuntimeError, match="boom"), memoized(
            stack, MemoizationScheme(), ReuseStats()
        ):
            raise RuntimeError("boom")
        assert isinstance(stack.layer0, LSTMLayer)

    def test_stats_populated(self, rng):
        stack = RNNStack([LSTMLayer(5, 6, rng=rng), GRULayer(6, 4, rng=rng)])
        stats = ReuseStats()
        with memoized(stack, MemoizationScheme(theta=1.0), stats):
            stack(smooth_inputs(rng))
        assert stats.total_evaluations > 0
        assert stats.reuse_fraction() > 0.0

    def test_oracle_upper_bounds_bnn_loss(self, rng):
        """At the same theta on the same model, the oracle's outputs are
        at least as close to the reference as the BNN's (it never makes a
        wrong reuse decision beyond the threshold)."""
        x = smooth_inputs(rng, steps=25)
        stack = RNNStack([LSTMLayer(5, 8, rng=np.random.default_rng(37))])
        reference = stack(x)
        errors = {}
        for predictor in ("oracle", "bnn"):
            with memoized(
                stack, MemoizationScheme(theta=0.2, predictor=predictor), ReuseStats()
            ):
                out = stack(x)
            errors[predictor] = float(np.abs(out - reference).mean())
        assert errors["oracle"] <= errors["bnn"] + 1e-9

    def test_packed_and_plain_bnn_identical(self, rng):
        x = smooth_inputs(rng)
        outs = {}
        for packed in (False, True):
            stack = RNNStack([LSTMLayer(5, 6, rng=np.random.default_rng(37))])
            with memoized(
                stack,
                MemoizationScheme(theta=0.3, use_packed=packed),
                ReuseStats(),
            ):
                outs[packed] = stack(x)
        np.testing.assert_array_equal(outs[False], outs[True])


class TestVectorizedFlag:
    """`MemoizationScheme.vectorized` selects the engine path without
    changing any result bit."""

    def test_default_is_vectorized(self):
        assert MemoizationScheme().vectorized is True

    def test_flag_reaches_wrappers(self, rng):
        stack = RNNStack([LSTMLayer(5, 6, rng=rng)])
        stats = ReuseStats()
        scheme = MemoizationScheme(vectorized=False)
        replacements = apply_memoization(stack, scheme, stats)
        try:
            assert stack.layer0.vectorized is False
        finally:
            restore(replacements)

    def test_mixed_stack_bitwise_equivalent(self, rng):
        """Scalar and vectorized engines agree bitwise across a stack
        mixing every wrappable layer type, outputs and reuse stats."""
        from repro.nn.rnn import RNNLayer

        x = smooth_inputs(rng, batch=3, steps=20)

        def run(vectorized):
            stack = RNNStack(
                [
                    LSTMLayer(5, 6, rng=np.random.default_rng(37)),
                    GRULayer(6, 4, rng=np.random.default_rng(38)),
                    RNNLayer(4, 5, rng=np.random.default_rng(39)),
                    Bidirectional.lstm(5, 3, rng=np.random.default_rng(40)),
                ]
            )
            stats = ReuseStats()
            scheme = MemoizationScheme(theta=0.3, vectorized=vectorized)
            with memoized(stack, scheme, stats):
                out = stack(x)
            return out, stats

        vec_out, vec_stats = run(True)
        sca_out, sca_stats = run(False)
        np.testing.assert_array_equal(vec_out, sca_out)
        assert vec_stats.reused == sca_stats.reused
        assert vec_stats.total == sca_stats.total


class TestZooEquivalence:
    """Vectorized vs scalar engine on every zoo network: quality and
    reuse must agree exactly (end-to-end, trained tiny models)."""

    @pytest.mark.parametrize("name", ["imdb", "deepspeech2", "eesen", "mnmt"])
    def test_vectorized_matches_scalar(self, name):
        from dataclasses import replace

        from repro.models.zoo import load_benchmark

        benchmark = load_benchmark(name, scale="tiny")
        scheme = MemoizationScheme(theta=0.3)
        vectorized = benchmark.evaluate_memoized(scheme)
        scalar = benchmark.evaluate_memoized(replace(scheme, vectorized=False))
        assert vectorized.quality == scalar.quality
        assert vectorized.reuse_fraction == scalar.reuse_fraction
        assert vectorized.stats.reused == scalar.stats.reused
        assert vectorized.stats.total == scalar.stats.total


class _SecondLayerNegative(dict):
    """A mapping that smuggles a negative per-layer theta past scheme
    construction: ``values()`` shows nothing invalid, but ``get`` hands
    the walk a negative threshold for one specific layer — so the
    failure only surfaces mid-walk, after earlier layers are wrapped."""

    def __init__(self, bad_layer):
        super().__init__()
        self.bad_layer = bad_layer

    def get(self, key, default=None):
        return -1.0 if key == self.bad_layer else default


class TestAtomicApply:
    """A failed apply_memoization must leave the model untouched."""

    def make_stack(self, rng):
        return RNNStack([LSTMLayer(5, 6, rng=rng), GRULayer(6, 4, rng=rng)])

    def test_mid_walk_failure_restores_swapped_layers(self, rng):
        stack = self.make_stack(rng)
        x = smooth_inputs(rng)
        reference = stack(x)
        original_layers = dict(stack._children)
        scheme = MemoizationScheme(
            layer_thetas=_SecondLayerNegative("layer1")
        )
        with pytest.raises(ValueError, match="non-negative"):
            apply_memoization(stack, scheme, ReuseStats())
        # Byte-for-byte intact: same child registry, same layer objects,
        # same outputs.
        assert dict(stack._children) == original_layers
        assert stack.layer0 is original_layers["layer0"]
        assert stack.layer1 is original_layers["layer1"]
        np.testing.assert_array_equal(stack(x), reference)

    def test_mid_walk_failure_in_nested_model(self, rng):
        stack = RNNStack(
            [LSTMLayer(5, 6, rng=rng), Bidirectional.lstm(6, 3, rng=rng)]
        )
        x = smooth_inputs(rng)
        reference = stack(x)
        scheme = MemoizationScheme(
            layer_thetas=_SecondLayerNegative("layer1.bwd")
        )
        with pytest.raises(ValueError, match="non-negative"):
            apply_memoization(stack, scheme, ReuseStats())
        assert isinstance(stack.layer0, LSTMLayer)
        assert isinstance(stack.layer1.fwd, LSTMLayer)
        assert isinstance(stack.layer1.bwd, LSTMLayer)
        np.testing.assert_array_equal(stack(x), reference)

    def test_successful_apply_still_works(self, rng):
        stack = self.make_stack(rng)
        replacements = apply_memoization(
            stack, MemoizationScheme(), ReuseStats()
        )
        try:
            assert isinstance(stack.layer0, MemoizedLSTMLayer)
            assert isinstance(stack.layer1, MemoizedGRULayer)
        finally:
            restore(replacements)


class TestSwapScheme:
    """swap_scheme: the live-retuning primitive behind `repro serve`."""

    def test_swap_rewraps_under_new_scheme(self, rng):
        stack = RNNStack([LSTMLayer(5, 6, rng=rng)])
        x = smooth_inputs(rng)
        stats = ReuseStats()
        old = MemoizationScheme(theta=0.05)
        new = MemoizationScheme(theta=0.5)
        replacements = apply_memoization(stack, old, stats)
        try:
            swap_scheme(stack, replacements, old, new, stats)
            assert isinstance(stack.layer0, MemoizedLSTMLayer)
            # The wrapper now carries the new threshold.
            assert stack.layer0._phase_predictors[0].theta == 0.5
            stack(x)  # still serves
        finally:
            restore(replacements)
        assert isinstance(stack.layer0, LSTMLayer)

    def test_failed_swap_rolls_back_to_old_scheme(self, rng):
        stack = RNNStack([LSTMLayer(5, 6, rng=rng), GRULayer(6, 4, rng=rng)])
        x = smooth_inputs(rng)
        stats = ReuseStats()
        old = MemoizationScheme(theta=0.05)
        bad = MemoizationScheme(
            layer_thetas=_SecondLayerNegative("layer1")
        )
        replacements = apply_memoization(stack, old, stats)
        try:
            with pytest.raises(ValueError, match="non-negative"):
                swap_scheme(stack, replacements, old, bad, stats)
            # Still wrapped, still under the old threshold, still serving.
            assert isinstance(stack.layer0, MemoizedLSTMLayer)
            assert isinstance(stack.layer1, MemoizedGRULayer)
            assert stack.layer0._phase_predictors[0].theta == 0.05
            stack(x)
        finally:
            restore(replacements)
        assert isinstance(stack.layer0, LSTMLayer)
        assert isinstance(stack.layer1, GRULayer)

    def test_swap_updates_caller_list_in_place(self, rng):
        stack = RNNStack([LSTMLayer(5, 6, rng=rng)])
        stats = ReuseStats()
        old = MemoizationScheme(theta=0.05)
        replacements = apply_memoization(stack, old, stats)
        handle = replacements
        swap_scheme(stack, replacements, old, old.with_theta(0.2), stats)
        assert handle is replacements
        restore(handle)
        assert isinstance(stack.layer0, LSTMLayer)
