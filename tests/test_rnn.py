"""Tests for bidirectional wrappers and deep RNN stacks."""

import numpy as np
import pytest

from repro.nn.gru import GRULayer
from repro.nn.lstm import LSTMLayer
from repro.nn.rnn import Bidirectional, RNNStack

from helpers import assert_grad_close, numeric_grad


@pytest.fixture
def rng():
    return np.random.default_rng(13)


class TestBidirectional:
    def test_output_concatenates_directions(self, rng):
        bi = Bidirectional.lstm(4, 3, rng=rng)
        out = bi(rng.standard_normal((2, 5, 4)))
        assert out.shape == (2, 5, 6)
        assert bi.output_size == 6

    def test_backward_direction_sees_future(self, rng):
        """Perturbing the last input must change the first backward output."""
        bi = Bidirectional.lstm(4, 3, rng=rng)
        x = rng.standard_normal((1, 5, 4))
        base = bi(x)
        perturbed = x.copy()
        perturbed[0, -1, :] += 1.0
        out = bi(perturbed)
        # Forward half at t=0 unchanged; backward half at t=0 changed.
        np.testing.assert_allclose(base[0, 0, :3], out[0, 0, :3])
        assert not np.allclose(base[0, 0, 3:], out[0, 0, 3:])

    def test_gru_factory(self, rng):
        bi = Bidirectional.gru(4, 3, rng=rng)
        assert bi(rng.standard_normal((1, 4, 4))).shape == (1, 4, 6)

    def test_mismatched_layers_raise(self, rng):
        with pytest.raises(ValueError):
            Bidirectional(LSTMLayer(4, 3, rng=rng), LSTMLayer(4, 5, rng=rng))
        with pytest.raises(ValueError):
            Bidirectional(LSTMLayer(4, 3, rng=rng), LSTMLayer(5, 3, rng=rng))

    def test_gradient(self, rng):
        bi = Bidirectional.lstm(3, 2, rng=rng)
        x = rng.standard_normal((1, 4, 3))
        probe = rng.standard_normal((1, 4, 4))

        def loss(v):
            return float(np.sum(bi.forward(v) * probe))

        bi.forward(x)
        analytic = bi.backward(probe)
        assert_grad_close(analytic, numeric_grad(loss, x), rtol=1e-3, atol=1e-6)


class TestRNNStack:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            RNNStack([])

    def test_size_mismatch_raises(self, rng):
        with pytest.raises(ValueError, match="expects input size"):
            RNNStack([LSTMLayer(4, 6, rng=rng), GRULayer(5, 3, rng=rng)])

    def test_mixed_stack_forward(self, rng):
        stack = RNNStack(
            [
                LSTMLayer(4, 6, rng=rng),
                GRULayer(6, 5, rng=rng),
                Bidirectional.lstm(5, 2, rng=rng),
            ]
        )
        out = stack(rng.standard_normal((2, 7, 4)))
        assert out.shape == (2, 7, 4)
        assert stack.output_size == 4

    def test_layers_property_order(self, rng):
        layers = [LSTMLayer(4, 6, rng=rng), GRULayer(6, 5, rng=rng)]
        stack = RNNStack(layers)
        assert stack.layers == layers

    def test_gradient_through_stack(self, rng):
        stack = RNNStack([LSTMLayer(3, 4, rng=rng), GRULayer(4, 2, rng=rng)])
        x = rng.standard_normal((1, 3, 3))
        probe = rng.standard_normal((1, 3, 2))

        def loss(v):
            return float(np.sum(stack.forward(v) * probe))

        stack.forward(x)
        analytic = stack.backward(probe)
        assert_grad_close(analytic, numeric_grad(loss, x), rtol=1e-3, atol=1e-6)

    def test_parameters_cover_all_layers(self, rng):
        stack = RNNStack([LSTMLayer(3, 4, rng=rng), GRULayer(4, 2, rng=rng)])
        names = {name for name, _ in stack.named_parameters()}
        assert any(name.startswith("layer0.") for name in names)
        assert any(name.startswith("layer1.") for name in names)
