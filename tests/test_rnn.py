"""Tests for the Elman RNN cell/layer, bidirectional wrappers and stacks."""

import numpy as np
import pytest

from repro.nn.cells import GatePhase
from repro.nn.gru import GRULayer
from repro.nn.lstm import LSTMLayer
from repro.nn.rnn import RNN_GATES, Bidirectional, RNNCell, RNNLayer, RNNStack

from helpers import assert_grad_close, numeric_grad


@pytest.fixture
def rng():
    return np.random.default_rng(13)


class TestRNNCell:
    def test_gate_and_phase_exports(self):
        assert RNNCell.GATES == RNN_GATES == ("h",)
        assert RNNCell.PHASES == (GatePhase(0, ("h",), "h_prev"),)

    def test_step_shapes_and_bounds(self, rng):
        cell = RNNCell(4, 3, rng=rng)
        h, cache = cell.step(rng.standard_normal((2, 4)), np.zeros((2, 3)))
        assert h.shape == (2, 3)
        assert np.all(np.abs(h) <= 1.0)  # tanh-bounded
        assert cache["h"] is h

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            RNNCell(0, 3)
        with pytest.raises(ValueError):
            RNNCell(3, -1)

    def test_step_hooked_matches_step(self, rng):
        """The hooked inference path is bitwise identical to the legacy
        training-time step."""
        cell = RNNCell(4, 3, rng=rng)
        x = rng.standard_normal((2, 4))
        h_prev = rng.standard_normal((2, 3))
        legacy, _ = cell.step(x, h_prev)
        hooked, state = cell.step_hooked(x, h_prev)
        np.testing.assert_array_equal(legacy, hooked)
        np.testing.assert_array_equal(hooked, state)

    def test_hook_sees_single_phase(self, rng):
        cell = RNNCell(4, 3, rng=rng)
        seen = []

        class Observer:
            def on_gates(self, cell, phase, x, h, preacts):
                seen.append((phase, preacts.shape))
                return preacts

        cell.step_hooked(
            rng.standard_normal((2, 4)), np.zeros((2, 3)), hook=Observer()
        )
        assert seen == [(cell.PHASES[0], (2, 3))]

    def test_hook_substitution_changes_output(self, rng):
        cell = RNNCell(4, 3, rng=rng)

        class Zeroer:
            def on_gates(self, cell, phase, x, h, preacts):
                return np.zeros_like(preacts)

        h, _ = cell.step_hooked(
            rng.standard_normal((2, 4)), np.zeros((2, 3)), hook=Zeroer()
        )
        np.testing.assert_array_equal(h, np.tanh(np.zeros((2, 3)) + cell.b_h.value))


class TestRNNLayer:
    def test_forward_shape(self, rng):
        layer = RNNLayer(4, 3, rng=rng)
        assert layer(rng.standard_normal((2, 5, 4))).shape == (2, 5, 3)

    def test_rejects_non_3d(self, rng):
        with pytest.raises(ValueError):
            RNNLayer(4, 3, rng=rng)(rng.standard_normal((5, 4)))

    def test_step_interface_matches_forward(self, rng):
        layer = RNNLayer(4, 3, rng=rng)
        x = rng.standard_normal((2, 6, 4))
        full = layer(x)
        state = layer.start_state(2)
        for t in range(6):
            h, state = layer.step(x[:, t, :], state)
            np.testing.assert_array_equal(full[:, t, :], h)

    def test_gradient(self, rng):
        layer = RNNLayer(3, 4, rng=rng)
        x = rng.standard_normal((2, 5, 3))
        probe = rng.standard_normal((2, 5, 4))

        def loss(v):
            return float(np.sum(layer.forward(v) * probe))

        layer.forward(x)
        analytic = layer.backward(probe)
        assert_grad_close(analytic, numeric_grad(loss, x), rtol=1e-4, atol=1e-7)

    def test_parameter_gradients(self, rng):
        """Weight grads check out against numeric differentiation."""
        layer = RNNLayer(3, 2, rng=rng)
        x = rng.standard_normal((1, 4, 3))
        probe = rng.standard_normal((1, 4, 2))
        layer.forward(x)
        layer.zero_grad()
        layer.backward(probe)
        for name, param in layer.named_parameters():
            original = param.value.copy()

            def loss(v, param=param, original=original):
                param.value[...] = v
                try:
                    return float(np.sum(layer.forward(x) * probe))
                finally:
                    param.value[...] = original

            numeric = numeric_grad(loss, original.copy())
            assert_grad_close(param.grad, numeric, rtol=1e-3, atol=1e-6)

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            RNNLayer(3, 2, rng=rng).backward(np.zeros((1, 2, 2)))

    def test_rnn_bidirectional_factory(self, rng):
        bi = Bidirectional.rnn(4, 3, rng=rng)
        assert bi(rng.standard_normal((1, 4, 4))).shape == (1, 4, 6)

    def test_stacks_with_other_cells(self, rng):
        stack = RNNStack([LSTMLayer(4, 5, rng=rng), RNNLayer(5, 3, rng=rng)])
        assert stack(rng.standard_normal((2, 6, 4))).shape == (2, 6, 3)


class TestBidirectional:
    def test_output_concatenates_directions(self, rng):
        bi = Bidirectional.lstm(4, 3, rng=rng)
        out = bi(rng.standard_normal((2, 5, 4)))
        assert out.shape == (2, 5, 6)
        assert bi.output_size == 6

    def test_backward_direction_sees_future(self, rng):
        """Perturbing the last input must change the first backward output."""
        bi = Bidirectional.lstm(4, 3, rng=rng)
        x = rng.standard_normal((1, 5, 4))
        base = bi(x)
        perturbed = x.copy()
        perturbed[0, -1, :] += 1.0
        out = bi(perturbed)
        # Forward half at t=0 unchanged; backward half at t=0 changed.
        np.testing.assert_allclose(base[0, 0, :3], out[0, 0, :3])
        assert not np.allclose(base[0, 0, 3:], out[0, 0, 3:])

    def test_gru_factory(self, rng):
        bi = Bidirectional.gru(4, 3, rng=rng)
        assert bi(rng.standard_normal((1, 4, 4))).shape == (1, 4, 6)

    def test_mismatched_layers_raise(self, rng):
        with pytest.raises(ValueError):
            Bidirectional(LSTMLayer(4, 3, rng=rng), LSTMLayer(4, 5, rng=rng))
        with pytest.raises(ValueError):
            Bidirectional(LSTMLayer(4, 3, rng=rng), LSTMLayer(5, 3, rng=rng))

    def test_gradient(self, rng):
        bi = Bidirectional.lstm(3, 2, rng=rng)
        x = rng.standard_normal((1, 4, 3))
        probe = rng.standard_normal((1, 4, 4))

        def loss(v):
            return float(np.sum(bi.forward(v) * probe))

        bi.forward(x)
        analytic = bi.backward(probe)
        assert_grad_close(analytic, numeric_grad(loss, x), rtol=1e-3, atol=1e-6)


class TestRNNStack:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            RNNStack([])

    def test_size_mismatch_raises(self, rng):
        with pytest.raises(ValueError, match="expects input size"):
            RNNStack([LSTMLayer(4, 6, rng=rng), GRULayer(5, 3, rng=rng)])

    def test_mixed_stack_forward(self, rng):
        stack = RNNStack(
            [
                LSTMLayer(4, 6, rng=rng),
                GRULayer(6, 5, rng=rng),
                Bidirectional.lstm(5, 2, rng=rng),
            ]
        )
        out = stack(rng.standard_normal((2, 7, 4)))
        assert out.shape == (2, 7, 4)
        assert stack.output_size == 4

    def test_layers_property_order(self, rng):
        layers = [LSTMLayer(4, 6, rng=rng), GRULayer(6, 5, rng=rng)]
        stack = RNNStack(layers)
        assert stack.layers == layers

    def test_gradient_through_stack(self, rng):
        stack = RNNStack([LSTMLayer(3, 4, rng=rng), GRULayer(4, 2, rng=rng)])
        x = rng.standard_normal((1, 3, 3))
        probe = rng.standard_normal((1, 3, 2))

        def loss(v):
            return float(np.sum(stack.forward(v) * probe))

        stack.forward(x)
        analytic = stack.backward(probe)
        assert_grad_close(analytic, numeric_grad(loss, x), rtol=1e-3, atol=1e-6)

    def test_parameters_cover_all_layers(self, rng):
        stack = RNNStack([LSTMLayer(3, 4, rng=rng), GRULayer(4, 2, rng=rng)])
        names = {name for name, _ in stack.named_parameters()}
        assert any(name.startswith("layer0.") for name in names)
        assert any(name.startswith("layer1.") for name in names)
