"""Integration tests: the full pipeline across module boundaries.

These intentionally cross every seam — dataset -> model -> training ->
memoized evaluation -> trace -> accelerator — on the cached tiny IMDB
benchmark (fast to train) plus cheap untrained models elsewhere.
"""

import numpy as np
import pytest

from repro.accel.epur import compare
from repro.accel.eventsim import collect_layer_dims, replay_trace
from repro.accel.trace import ReuseTrace
from repro.analysis.sweep import end_to_end
from repro.core.engine import MemoizationScheme, memoized
from repro.core.stats import DetailedReuseStats, ReuseStats
from repro.models.zoo import load_benchmark
from repro.nn.serialization import load_state, save_state


@pytest.fixture(scope="module")
def imdb():
    return load_benchmark("imdb", scale="tiny")


class TestFunctionalToAccelerator:
    def test_stats_to_trace_to_comparison(self, imdb):
        result = imdb.evaluate_memoized(MemoizationScheme(theta=0.3))
        trace = ReuseTrace.from_stats(result.stats, imdb.spec)
        assert trace.num_layers == imdb.spec.layers
        comparison = compare(imdb.spec, trace)
        assert comparison.reuse_percent == pytest.approx(
            100 * trace.mean_reuse()
        )
        assert comparison.speedup > 1.0

    def test_end_to_end_consistency(self, imdb):
        """The e2e pipeline's reuse equals re-evaluating its theta."""
        result = end_to_end(imdb, loss_target=2.0, thetas=(0.0, 0.3))
        direct = imdb.evaluate_memoized(
            MemoizationScheme(theta=result.theta)
        )
        assert result.reuse_percent == pytest.approx(
            direct.reuse_percent, abs=1e-9
        )

    def test_detailed_stats_through_model(self, imdb):
        """DetailedReuseStats + eventsim work on a real trained model."""
        stats = DetailedReuseStats()
        dims = collect_layer_dims(imdb.model)
        with memoized(imdb.model, MemoizationScheme(theta=0.3), stats):
            imdb.evaluate()
        memo, base = replay_trace(stats, dims)
        assert memo.reuse_fraction == pytest.approx(stats.reuse_fraction())
        assert base.total_cycles >= memo.total_cycles * 0.5  # sane scale


class TestModelPersistenceUnderMemoization:
    def test_saved_model_reproduces_memoized_run(self, imdb, tmp_path):
        """state -> disk -> fresh model: identical memoized behaviour."""
        path = tmp_path / "imdb.npz"
        save_state(imdb.model, path)
        fresh = load_benchmark("imdb", scale="tiny", trained=False)
        # Note: trained=False returns an *untrained* cached instance —
        # distinct cache key, so we do not clobber the trained one.
        load_state(fresh.model, path)
        fresh._trained = True
        fresh.base_quality = fresh.evaluate()
        assert fresh.base_quality == imdb.base_quality

        ours = fresh.evaluate_memoized(MemoizationScheme(theta=0.3))
        theirs = imdb.evaluate_memoized(MemoizationScheme(theta=0.3))
        assert ours.reuse_fraction == pytest.approx(theirs.reuse_fraction)
        assert ours.quality == pytest.approx(theirs.quality)


class TestDeterminism:
    def test_memoized_evaluation_is_deterministic(self, imdb):
        a = imdb.evaluate_memoized(MemoizationScheme(theta=0.2))
        b = imdb.evaluate_memoized(MemoizationScheme(theta=0.2))
        assert a.reuse_fraction == b.reuse_fraction
        assert a.quality == b.quality

    def test_same_seed_same_benchmark(self):
        a = load_benchmark("imdb", scale="tiny", trained=False)
        b_fresh = type(a)(scale="tiny", seed=0)
        np.testing.assert_array_equal(
            a.dataset.tokens, b_fresh.dataset.tokens
        )

    def test_different_seed_different_data(self):
        from repro.models.zoo import build_benchmark

        a = build_benchmark("imdb", scale="tiny", seed=0)
        b = build_benchmark("imdb", scale="tiny", seed=1)
        assert not np.array_equal(a.dataset.tokens, b.dataset.tokens)


class TestSchemeMatrixOnRealModel:
    @pytest.mark.parametrize("predictor", ["bnn", "oracle", "input"])
    @pytest.mark.parametrize("throttle", [True, False])
    def test_all_scheme_combinations_run(self, imdb, predictor, throttle):
        scheme = MemoizationScheme(
            theta=0.2, predictor=predictor, throttle=throttle
        )
        result = imdb.evaluate_memoized(scheme)
        assert 0.0 <= result.reuse_fraction <= 1.0
        assert result.quality >= 0.0

    def test_packed_matches_plain_on_real_model(self, imdb):
        plain = imdb.evaluate_memoized(
            MemoizationScheme(theta=0.2, use_packed=False)
        )
        packed = imdb.evaluate_memoized(
            MemoizationScheme(theta=0.2, use_packed=True)
        )
        assert plain.reuse_fraction == packed.reuse_fraction
        assert plain.quality == packed.quality
