"""The runtime lock-order sanitizer, from unit level to a real
``pytest --lock-sanitizer`` subprocess over a seeded ABBA deadlock.

Raw locks are created with ``_thread.allocate_lock()`` and wrapped
explicitly, so these tests stay correct even when the whole session
itself runs under ``--lock-sanitizer`` (the explicit wrap uses a
private sanitizer instance, invisible to any installed one).
"""

from __future__ import annotations

import _thread
import subprocess
import sys
import textwrap
import threading
from pathlib import Path

import pytest

from repro.checks.lockorder import LockOrderError, LockOrderSanitizer

REPO_ROOT = Path(__file__).resolve().parent.parent


def raw_lock():
    return _thread.allocate_lock()


def test_abba_cycle_detected_single_threaded():
    san = LockOrderSanitizer()
    a = san.wrap(raw_lock(), label="A")
    b = san.wrap(raw_lock(), label="B")
    with a:
        with b:
            pass
    assert not san.violations  # one order alone is fine
    with b:
        with a:
            pass
    assert len(san.violations) == 1
    report = san.violations[0]
    assert "potential deadlock" in report
    assert "A#" in report and "B#" in report


def test_consistent_order_never_fires():
    san = LockOrderSanitizer()
    a = san.wrap(raw_lock(), label="A")
    b = san.wrap(raw_lock(), label="B")
    for _ in range(10):
        with a:
            with b:
                pass
    assert san.violations == []


def test_three_lock_cycle_detected():
    san = LockOrderSanitizer()
    a = san.wrap(raw_lock(), label="A")
    b = san.wrap(raw_lock(), label="B")
    c = san.wrap(raw_lock(), label="C")
    with a:
        with b:
            pass
    with b:
        with c:
            pass
    assert not san.violations
    with c:
        with a:
            pass
    assert len(san.violations) == 1


def test_duplicate_cycle_reported_once():
    san = LockOrderSanitizer()
    a = san.wrap(raw_lock(), label="A")
    b = san.wrap(raw_lock(), label="B")
    with a, b:
        pass
    for _ in range(3):
        with b, a:
            pass
    assert len(san.violations) == 1


def test_strict_mode_raises():
    san = LockOrderSanitizer(strict=True)
    a = san.wrap(raw_lock(), label="A")
    b = san.wrap(raw_lock(), label="B")
    with a, b:
        pass
    with pytest.raises(LockOrderError), b:
        with a:
            pass


def test_rlock_reentrancy_adds_no_edges():
    san = LockOrderSanitizer()
    r = san.wrap(threading.RLock(), label="R")
    other = san.wrap(raw_lock(), label="other")
    with r:
        with r:  # re-entrant: must not self-edge or confuse release
            with other:
                pass
    with r:  # still tracked correctly after full release
        pass
    assert san.violations == []


def test_failed_nonblocking_acquire_not_recorded():
    san = LockOrderSanitizer()
    a = san.wrap(raw_lock(), label="A")
    b = san.wrap(raw_lock(), label="B")
    with a, b:
        pass
    b._raw.acquire()  # someone else holds B
    try:
        with a:
            assert b.acquire(blocking=False) is False
    finally:
        b._raw.release()
    # the failed acquire must not have added a B-held edge anywhere
    with b, a:
        pass
    assert len(san.violations) == 1  # only the real ABBA above


def test_install_tracks_condition_and_queue(monkeypatch):
    """Patched factories cover Condition.wait (RLock protocol) and
    queue.Queue's lock/condition plumbing without false positives."""
    san = LockOrderSanitizer()
    san.install()
    try:
        cond = threading.Condition()
        fired = []

        def waiter():
            with cond:
                while not fired:
                    cond.wait(timeout=5)

        thread = threading.Thread(target=waiter)
        thread.start()
        with cond:
            fired.append(1)
            cond.notify_all()
        thread.join(timeout=5)
        assert not thread.is_alive()

        import queue

        q = queue.Queue(maxsize=2)
        q.put(1)
        assert q.get() == 1
    finally:
        san.uninstall()
    assert san.violations == []
    assert threading.Lock is san._orig_lock  # uninstall restored factories


def test_install_detects_abba_across_threads():
    """The sanitizer catches the inverted order even when the two
    acquisitions happen on different threads at different times —
    no actual deadlock needs to occur."""
    san = LockOrderSanitizer()
    san.install()
    try:
        a = threading.Lock()
        b = threading.Lock()

        def forward():
            with a:
                with b:
                    pass

        t = threading.Thread(target=forward)
        t.start()
        t.join()
        with b:
            with a:
                pass
    finally:
        san.uninstall()
    assert len(san.violations) == 1


def test_seeded_deadlock_fails_pytest_run(tmp_path):
    """Acceptance: `pytest --lock-sanitizer` fails a test file whose
    code contains a real ABBA inversion, and reports the cycle."""
    test_file = tmp_path / "test_seeded_abba.py"
    test_file.write_text(
        textwrap.dedent(
            """
            import threading


            def test_inverted_lock_order():
                a = threading.Lock()
                b = threading.Lock()
                with a:
                    with b:
                        pass
                with b:
                    with a:
                        pass
            """
        ),
        encoding="utf-8",
    )
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            "-p",
            "repro.checks.pytest_plugin",
            "--lock-sanitizer",
            "-q",
            str(test_file),
        ],
        cwd=tmp_path,
        capture_output=True,
        text=True,
        env={
            "PYTHONPATH": str(REPO_ROOT / "src"),
            "PATH": "/usr/bin:/bin",
            "HOME": str(tmp_path),
        },
        timeout=120,
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "potential deadlock" in proc.stdout
    # ... and the identical run without the flag passes.
    clean = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            "-p",
            "repro.checks.pytest_plugin",
            "-q",
            str(test_file),
        ],
        cwd=tmp_path,
        capture_output=True,
        text=True,
        env={
            "PYTHONPATH": str(REPO_ROOT / "src"),
            "PATH": "/usr/bin:/bin",
            "HOME": str(tmp_path),
        },
        timeout=120,
    )
    assert clean.returncode == 0, clean.stdout + clean.stderr
