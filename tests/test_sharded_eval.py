"""Equivalence suite for batch-sharded evaluation.

The acceptance bar of the sharding subsystem: for random shard counts
1..8, the merged shard partials of every zoo benchmark are **exactly**
(bitwise, not approximately) the unsharded evaluation — quality,
quality loss, reuse fraction, and per-(layer, gate) reuse counts.  A
checked-in golden JSON (generated from the unsharded serial path at
seed 0) pins the absolute numbers so refactors cannot silently drift
both paths together.
"""

import json
import random
import zlib
from pathlib import Path

import numpy as np
import pytest

from repro.core.engine import MemoizationScheme
from repro.models.benchmark import (
    MemoizedResult,
    merge_shard_results,
    shard_indices,
)
from repro.models.specs import BENCHMARK_NAMES
from repro.models.zoo import load_benchmark

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_seed.json"

ALL_NETWORKS = tuple(BENCHMARK_NAMES)


def assert_results_identical(merged: MemoizedResult, whole: MemoizedResult):
    assert merged.quality == whole.quality
    assert merged.quality_loss == whole.quality_loss
    assert merged.reuse_fraction == whole.reuse_fraction
    assert merged.stats.reused == whole.stats.reused
    assert merged.stats.total == whole.stats.total


class TestShardIndices:
    def test_partition_is_exact_and_ordered(self):
        rng = random.Random(0)
        for _ in range(50):
            n_rows = rng.randint(1, 100)
            indices = np.arange(1000, 1000 + n_rows)
            shard_count = rng.randint(1, 8)
            parts = [
                shard_indices(indices, i, shard_count)
                for i in range(shard_count)
            ]
            np.testing.assert_array_equal(np.concatenate(parts), indices)

    def test_is_deterministic(self):
        indices = np.arange(17)
        first = shard_indices(indices, 2, 5)
        second = shard_indices(indices, 2, 5)
        np.testing.assert_array_equal(first, second)

    def test_oversharding_yields_empty_shards(self):
        parts = [shard_indices(np.arange(3), i, 5) for i in range(5)]
        assert [len(p) for p in parts] == [1, 1, 1, 0, 0]

    def test_invalid_shard_rejected(self):
        with pytest.raises(ValueError, match="shard_count"):
            shard_indices(np.arange(3), 0, 0)
        with pytest.raises(ValueError, match="shard_index"):
            shard_indices(np.arange(3), 2, 2)
        with pytest.raises(ValueError, match="shard_index"):
            shard_indices(np.arange(3), -1, 2)


class TestShardedEquivalence:
    """Sharded merge == unsharded evaluation, bitwise, on every network."""

    @pytest.mark.parametrize("name", ALL_NETWORKS)
    def test_random_shard_counts_merge_exactly(self, name):
        benchmark = load_benchmark(name, scale="tiny")
        scheme = MemoizationScheme(theta=0.2)
        whole = benchmark.evaluate_memoized(scheme)
        # crc32, not hash(): PYTHONHASHSEED must not change what we cover.
        rng = random.Random(zlib.crc32(name.encode()))
        shard_counts = {1, rng.randint(2, 8), rng.randint(2, 8)}
        for shard_count in sorted(shard_counts):
            partials = [
                benchmark.evaluate_memoized(scheme, shard=(i, shard_count))
                for i in range(shard_count)
            ]
            merged = merge_shard_results(
                partials, benchmark.spec.higher_is_better
            )
            assert_results_identical(merged, whole)

    @pytest.mark.parametrize("name", ("imdb", "mnmt"))
    def test_calibration_split_shards_merge_exactly(self, name):
        benchmark = load_benchmark(name, scale="tiny")
        scheme = MemoizationScheme(theta=0.1)
        whole = benchmark.evaluate_memoized(scheme, calibration=True)
        partials = [
            benchmark.evaluate_memoized(scheme, calibration=True, shard=(i, 4))
            for i in range(4)
        ]
        merged = merge_shard_results(partials, benchmark.spec.higher_is_better)
        assert_results_identical(merged, whole)

    def test_single_shard_equals_unsharded(self):
        benchmark = load_benchmark("imdb", scale="tiny")
        scheme = MemoizationScheme(theta=0.2)
        whole = benchmark.evaluate_memoized(scheme)
        single = benchmark.evaluate_memoized(scheme, shard=(0, 1))
        assert_results_identical(single, whole)
        assert single.metric is not None  # partials carry the accumulator
        assert single.base_quality == benchmark.base_quality

    def test_oversharded_split_still_merges_exactly(self):
        """More shards than calibration rows -> empty partials merge fine."""
        benchmark = load_benchmark("imdb", scale="tiny")
        scheme = MemoizationScheme(theta=0.2)
        rows = len(benchmark.eval_indices(calibration=True))
        shard_count = rows + 3
        whole = benchmark.evaluate_memoized(scheme, calibration=True)
        partials = [
            benchmark.evaluate_memoized(
                scheme, calibration=True, shard=(i, shard_count)
            )
            for i in range(shard_count)
        ]
        merged = merge_shard_results(partials, benchmark.spec.higher_is_better)
        assert_results_identical(merged, whole)

    def test_merge_order_does_not_matter(self):
        benchmark = load_benchmark("imdb", scale="tiny")
        scheme = MemoizationScheme(theta=0.2)
        partials = [
            benchmark.evaluate_memoized(scheme, shard=(i, 3)) for i in range(3)
        ]
        forward = merge_shard_results(partials, True)
        backward = merge_shard_results(partials[::-1], True)
        assert_results_identical(forward, backward)


class TestMergeShardResults:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_shard_results([], True)

    def test_whole_split_result_rejected(self):
        benchmark = load_benchmark("imdb", scale="tiny")
        whole = benchmark.evaluate_memoized(MemoizationScheme(theta=0.2))
        with pytest.raises(ValueError, match="shard"):
            merge_shard_results([whole], True)

    def test_inconsistent_base_quality_rejected(self):
        benchmark = load_benchmark("imdb", scale="tiny")
        scheme = MemoizationScheme(theta=0.2)
        a = benchmark.evaluate_memoized(scheme, shard=(0, 2))
        b = benchmark.evaluate_memoized(scheme, shard=(1, 2))
        import dataclasses

        tampered = dataclasses.replace(b, base_quality=b.base_quality + 1.0)
        with pytest.raises(ValueError, match="base_quality"):
            merge_shard_results([a, tampered], True)

    def test_merge_does_not_mutate_partials(self):
        benchmark = load_benchmark("imdb", scale="tiny")
        scheme = MemoizationScheme(theta=0.2)
        partials = [
            benchmark.evaluate_memoized(scheme, shard=(i, 2)) for i in range(2)
        ]
        before = [p.metric.state_payload() for p in partials]
        merge_shard_results(partials, True)
        merge_shard_results(partials, True)  # idempotent re-merge
        assert [p.metric.state_payload() for p in partials] == before


class TestGoldenRegression:
    """The sharded pipeline must reproduce the checked-in seed-path numbers.

    The golden file was generated from the *unsharded serial* path at
    seed 0; asserting the sharded pipeline against it means a refactor
    cannot drift both paths together without tripping this test.  The
    comparison allows only platform-level float noise (different BLAS
    builds), far below any genuine behaviour change.
    """

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))

    def test_golden_covers_all_networks(self, golden):
        assert set(golden["networks"]) == set(BENCHMARK_NAMES)

    @pytest.mark.parametrize("name", ALL_NETWORKS)
    def test_sharded_pipeline_reproduces_golden(self, golden, name):
        benchmark = load_benchmark(
            name, scale=golden["scale"], seed=golden["seed"]
        )
        for theta_key, expected in golden["networks"][name].items():
            theta = float(theta_key)
            scheme = MemoizationScheme(
                theta=theta, predictor=golden["predictor"]
            )
            partials = [
                benchmark.evaluate_memoized(scheme, shard=(i, 3))
                for i in range(3)
            ]
            merged = merge_shard_results(
                partials, benchmark.spec.higher_is_better
            )
            assert merged.quality_loss == pytest.approx(
                expected["quality_loss"], rel=1e-9, abs=1e-12
            ), (name, theta)
            assert merged.reuse_fraction == pytest.approx(
                expected["reuse_fraction"], rel=1e-9, abs=1e-12
            ), (name, theta)
