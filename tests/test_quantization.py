"""Tests for linear quantization (paper §2.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quantization import (
    LinearQuantizer,
    quantize_fp16,
    quantize_module,
)
from repro.nn.linear import Linear
from repro.nn.lstm import LSTMLayer


class TestFP16:
    def test_roundtrip_small_values_exact(self):
        values = np.array([0.5, -0.25, 1.0, 2.0])
        np.testing.assert_array_equal(quantize_fp16(values), values)

    def test_precision_loss(self):
        value = np.array([1.0 + 2**-12])
        assert quantize_fp16(value)[0] != value[0]

    def test_error_bounded(self):
        rng = np.random.default_rng(0)
        values = rng.standard_normal(1000)
        error = np.abs(values - quantize_fp16(values))
        # Half precision has ~3 decimal digits around 1.0.
        assert error.max() < 2e-3


class TestLinearQuantizer:
    def test_q_max(self):
        assert LinearQuantizer(bits=8).q_max == 127
        assert LinearQuantizer(bits=4).q_max == 7

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            LinearQuantizer(bits=1)
        with pytest.raises(ValueError):
            LinearQuantizer(bits=17)

    def test_codes_in_range(self):
        rng = np.random.default_rng(1)
        q = LinearQuantizer(bits=8)
        codes = q.quantize(rng.standard_normal(500))
        assert codes.max() <= 127 and codes.min() >= -127

    def test_max_magnitude_maps_to_qmax(self):
        q = LinearQuantizer(bits=8)
        codes = q.quantize(np.array([-2.0, 1.0, 2.0]))
        assert codes[2] == 127 and codes[0] == -127

    def test_zero_tensor(self):
        q = LinearQuantizer(bits=8)
        assert q.scale_for(np.zeros(4)) == 1.0
        np.testing.assert_array_equal(q.roundtrip(np.zeros(4)), np.zeros(4))

    @given(st.integers(2, 16))
    @settings(max_examples=15, deadline=None)
    def test_roundtrip_error_bounded_by_half_step(self, bits):
        rng = np.random.default_rng(bits)
        values = rng.uniform(-3, 3, size=200)
        q = LinearQuantizer(bits=bits)
        error = np.abs(values - q.roundtrip(values))
        assert error.max() <= q.scale_for(values) / 2 + 1e-12

    def test_error_shrinks_with_bits(self):
        rng = np.random.default_rng(2)
        values = rng.standard_normal(500)
        errors = [
            LinearQuantizer(bits=b).quantization_error(values) for b in (4, 8, 12)
        ]
        assert errors[0] > errors[1] > errors[2]

    def test_empty_tensor_error(self):
        assert LinearQuantizer().quantization_error(np.array([])) == 0.0


class TestQuantizeModule:
    def test_fp16_in_place(self):
        layer = Linear(8, 4, rng=np.random.default_rng(3))
        original = layer.weight.value.copy()
        errors = quantize_module(layer, scheme="fp16")
        assert set(errors) == {"weight", "bias"}
        np.testing.assert_array_equal(layer.weight.value, quantize_fp16(original))

    def test_linear_scheme(self):
        layer = Linear(8, 4, rng=np.random.default_rng(3))
        errors = quantize_module(layer, scheme="linear", bits=8)
        assert all(e >= 0.0 for e in errors.values())
        assert errors["weight"] > 0.0

    def test_unknown_scheme(self):
        layer = Linear(4, 2)
        with pytest.raises(ValueError, match="unknown quantization scheme"):
            quantize_module(layer, scheme="ternary")

    def test_quantized_lstm_still_functional(self):
        """INT8-quantized weights barely perturb the outputs."""
        rng = np.random.default_rng(4)
        layer = LSTMLayer(6, 8, rng=rng)
        x = rng.standard_normal((2, 10, 6))
        reference = layer(x)
        quantize_module(layer, scheme="linear", bits=8)
        quantized = layer(x)
        assert np.abs(quantized - reference).max() < 0.15
