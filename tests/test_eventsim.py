"""Tests for the event-level pipeline simulator and detailed stats."""

import numpy as np
import pytest

from repro.accel.config import DEFAULT_CONFIG
from repro.accel.eventsim import (
    baseline_gate_pass_cycles,
    collect_layer_dims,
    gate_pass_cycles,
    replay_trace,
)
from repro.core.engine import MemoizationScheme, memoized
from repro.core.stats import DetailedReuseStats
from repro.nn.gru import GRULayer
from repro.nn.linear import Linear
from repro.nn.lstm import LSTMLayer
from repro.nn.module import Module
from repro.nn.rnn import RNNStack


class TestDetailedStats:
    def test_masks_recorded_in_order(self):
        stats = DetailedReuseStats()
        stats.record("l", "i", np.array([[True, False]]))
        stats.record("l", "i", np.array([[False, False]]))
        assert stats.timesteps("l", "i") == 2
        np.testing.assert_array_equal(
            stats.masks[("l", "i")][0], [[True, False]]
        )

    def test_counts_still_aggregate(self):
        stats = DetailedReuseStats()
        stats.record("l", "i", np.array([[True, False]]))
        assert stats.total_evaluations == 2
        assert stats.total_reused == 1

    def test_1d_masks_promoted(self):
        stats = DetailedReuseStats()
        stats.record("l", "i", np.array([True, False]))
        assert stats.masks[("l", "i")][0].shape == (1, 2)

    def test_reset_clears_masks(self):
        stats = DetailedReuseStats()
        stats.record("l", "i", np.array([[True]]))
        stats.reset()
        assert stats.timesteps("l", "i") == 0


class TestGatePass:
    def test_all_reused_is_fmu_bound(self):
        result = gate_pass_cycles(np.ones(10, dtype=bool), 16, DEFAULT_CONFIG)
        fmu = DEFAULT_CONFIG.fmu
        assert result.cycles == fmu.latency_cycles + 10 * fmu.issue_cycles + 4
        assert result.dpu_busy_cycles == 0
        assert result.reused == 10

    def test_none_reused_is_dpu_bound(self):
        result = gate_pass_cycles(np.zeros(10, dtype=bool), 16, DEFAULT_CONFIG)
        # First decision at fill+1, then 10 back-to-back dots.
        expected = DEFAULT_CONFIG.fmu.latency_cycles + 1 + 10 * 16 + 4
        assert result.cycles == expected
        assert result.dpu_busy_cycles == 160

    def test_monotone_in_reuse(self):
        rng = np.random.default_rng(0)
        base_mask = np.zeros(32, dtype=bool)
        prev = gate_pass_cycles(base_mask, 16, DEFAULT_CONFIG).cycles
        mask = base_mask.copy()
        for idx in rng.permutation(32):
            mask[idx] = True
            now = gate_pass_cycles(mask, 16, DEFAULT_CONFIG).cycles
            assert now <= prev
            prev = now

    def test_baseline_pass(self):
        assert baseline_gate_pass_cycles(10, 16) == 164

    def test_skipping_late_neurons_saves_more_than_early(self):
        """A reuse at the end of the pass removes a dot from the critical
        path tail; a reuse at the start is hidden behind the FMU fill."""
        dot = 16
        early = np.zeros(16, dtype=bool)
        early[0] = True
        late = np.zeros(16, dtype=bool)
        late[-1] = True
        c_early = gate_pass_cycles(early, dot, DEFAULT_CONFIG).cycles
        c_late = gate_pass_cycles(late, dot, DEFAULT_CONFIG).cycles
        assert c_late <= c_early


class TestReplayTrace:
    def _run(self, theta):
        rng = np.random.default_rng(7)
        stack = RNNStack([LSTMLayer(8, 8, rng=rng), GRULayer(8, 8, rng=rng)])
        dims = collect_layer_dims(stack)
        base = rng.standard_normal((2, 1, 8))
        drift = np.cumsum(0.05 * rng.standard_normal((2, 20, 8)), axis=1)
        stats = DetailedReuseStats()
        with memoized(stack, MemoizationScheme(theta=theta), stats):
            stack(base + drift)
        return stats, dims

    def test_reports_consistent_with_stats(self):
        stats, dims = self._run(theta=0.4)
        memo, base = replay_trace(stats, dims)
        assert memo.reuse_fraction == pytest.approx(stats.reuse_fraction())
        assert base.reuse_fraction == 0.0
        assert base.evaluated_neurons == stats.total_evaluations

    def test_paper_scale_dims_show_speedup(self):
        """With paper-like dot widths the recorded reuse pattern yields a
        clear event-level speedup; at toy widths the FMU overhead can
        eat it — exactly §5's low-reuse warning."""
        stats, dims = self._run(theta=0.4)
        paper_dims = {name: (320, 320) for name in dims}
        memo, base = replay_trace(stats, paper_dims)
        if stats.reuse_fraction() > 0.2:
            assert memo.speedup_over(base) > 1.0

    def test_missing_dims_raise(self):
        stats, dims = self._run(theta=0.4)
        with pytest.raises(KeyError):
            replay_trace(stats, {"wrong": (8, 8)})

    def test_empty_stats_raise(self):
        with pytest.raises(ValueError):
            replay_trace(DetailedReuseStats(), {})

    def test_utilization_drops_with_memoization(self):
        stats, dims = self._run(theta=0.6)
        memo, base = replay_trace(stats, dims)
        assert memo.dpu_utilization <= base.dpu_utilization
        assert 0.0 <= memo.dpu_utilization <= 1.0


class TestCollectLayerDims:
    def test_names_match_engine(self):
        rng = np.random.default_rng(9)
        stack = RNNStack([LSTMLayer(4, 6, rng=rng)])
        dims = collect_layer_dims(stack)
        assert dims == {"layer0": (4, 6)}

    def test_no_recurrent_layers_raise(self):
        class Dense(Module):
            def __init__(self):
                super().__init__()
                self.lin = Linear(3, 3)

        with pytest.raises(ValueError):
            collect_layer_dims(Dense())
