"""Tests for loss functions (values and gradients)."""

import numpy as np
import pytest

from repro.nn.losses import (
    SequenceCrossEntropy,
    SoftmaxCrossEntropy,
    masked_sequence_loss,
)

from helpers import assert_grad_close, numeric_grad


@pytest.fixture
def rng():
    return np.random.default_rng(17)


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0, 0.0]])
        assert SoftmaxCrossEntropy()(logits, np.array([0])) < 1e-6

    def test_uniform_prediction_log_c(self):
        logits = np.zeros((4, 5))
        loss = SoftmaxCrossEntropy()(logits, np.zeros(4, dtype=int))
        np.testing.assert_allclose(loss, np.log(5.0), rtol=1e-9)

    def test_gradient_matches_numeric(self, rng):
        logits = rng.standard_normal((3, 4))
        targets = np.array([0, 2, 3])
        loss_fn = SoftmaxCrossEntropy()

        def loss(v):
            return SoftmaxCrossEntropy()(v, targets)

        loss_fn(logits, targets)
        assert_grad_close(loss_fn.backward(), numeric_grad(loss, logits))

    def test_label_smoothing_gradient(self, rng):
        logits = rng.standard_normal((3, 4))
        targets = np.array([1, 1, 0])
        loss_fn = SoftmaxCrossEntropy(label_smoothing=0.1)

        def loss(v):
            return SoftmaxCrossEntropy(label_smoothing=0.1)(v, targets)

        loss_fn(logits, targets)
        assert_grad_close(loss_fn.backward(), numeric_grad(loss, logits))

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy()(rng.standard_normal((3, 4)), np.zeros(5, dtype=int))

    def test_invalid_smoothing_raises(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy(label_smoothing=1.0)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            SoftmaxCrossEntropy().backward()


class TestSequenceCrossEntropy:
    def test_matches_flat_when_unmasked(self, rng):
        logits = rng.standard_normal((2, 3, 4))
        targets = rng.integers(0, 4, size=(2, 3))
        seq = SequenceCrossEntropy()(logits, targets)
        flat = SoftmaxCrossEntropy()(logits.reshape(-1, 4), targets.reshape(-1))
        np.testing.assert_allclose(seq, flat, rtol=1e-9)

    def test_mask_removes_positions(self, rng):
        logits = rng.standard_normal((1, 3, 4))
        targets = np.array([[0, 1, 2]])
        mask = np.array([[1.0, 1.0, 0.0]])
        masked = SequenceCrossEntropy()(logits, targets, mask)
        trimmed = SequenceCrossEntropy()(logits[:, :2], targets[:, :2])
        np.testing.assert_allclose(masked, trimmed, rtol=1e-9)

    def test_masked_gradient_zero(self, rng):
        logits = rng.standard_normal((1, 3, 4))
        targets = np.array([[0, 1, 2]])
        mask = np.array([[1.0, 0.0, 1.0]])
        loss_fn = SequenceCrossEntropy()
        loss_fn(logits, targets, mask)
        grad = loss_fn.backward()
        np.testing.assert_array_equal(grad[0, 1], np.zeros(4))

    def test_gradient_matches_numeric(self, rng):
        logits = rng.standard_normal((2, 3, 4))
        targets = rng.integers(0, 4, size=(2, 3))
        mask = np.array([[1.0, 1.0, 0.0], [1.0, 1.0, 1.0]])
        loss_fn = SequenceCrossEntropy()

        def loss(v):
            return SequenceCrossEntropy()(v, targets, mask)

        loss_fn(logits, targets, mask)
        assert_grad_close(loss_fn.backward(), numeric_grad(loss, logits))

    def test_all_masked_raises(self, rng):
        logits = rng.standard_normal((1, 2, 3))
        with pytest.raises(ValueError):
            SequenceCrossEntropy()(logits, np.zeros((1, 2), dtype=int), np.zeros((1, 2)))

    def test_wrong_rank_raises(self, rng):
        with pytest.raises(ValueError):
            SequenceCrossEntropy()(rng.standard_normal((2, 3)), np.zeros((2,), dtype=int))


class TestConvenience:
    def test_masked_sequence_loss_returns_pair(self, rng):
        logits = rng.standard_normal((1, 2, 3))
        targets = np.zeros((1, 2), dtype=int)
        loss, grad = masked_sequence_loss(logits, targets)
        assert np.isscalar(loss)
        assert grad.shape == logits.shape
