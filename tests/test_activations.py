"""Unit tests for repro.nn.activations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn.activations import (
    get_activation,
    identity,
    relu,
    sigmoid,
    softmax,
    tanh,
)

from helpers import numeric_grad

finite_arrays = arrays(
    np.float64,
    array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=8),
    elements=st.floats(-20, 20, allow_nan=False),
)


class TestSigmoid:
    def test_known_values(self):
        np.testing.assert_allclose(sigmoid(np.array([0.0])), [0.5])
        np.testing.assert_allclose(
            sigmoid(np.array([1.0])), [1.0 / (1.0 + np.exp(-1.0))]
        )

    def test_extreme_inputs_do_not_overflow(self):
        out = sigmoid(np.array([-1e4, 1e4]))
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)

    def test_symmetry(self):
        x = np.linspace(-5, 5, 11)
        np.testing.assert_allclose(sigmoid(x) + sigmoid(-x), np.ones_like(x))

    @given(finite_arrays)
    @settings(max_examples=25, deadline=None)
    def test_range(self, x):
        out = sigmoid(x)
        assert np.all(out >= 0.0) and np.all(out <= 1.0)

    def test_grad_matches_numeric(self):
        x = np.linspace(-3, 3, 7)
        y = sigmoid(x)
        analytic = sigmoid.grad_from_output(y)
        numeric = np.array(
            [numeric_grad(lambda v: float(sigmoid(v)), np.array(xi)) for xi in x]
        ).reshape(-1)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-5)


class TestTanh:
    def test_known_values(self):
        np.testing.assert_allclose(tanh(np.array([0.0])), [0.0])

    @given(finite_arrays)
    @settings(max_examples=25, deadline=None)
    def test_odd_function(self, x):
        np.testing.assert_allclose(tanh(-x), -tanh(x), atol=1e-12)

    def test_grad_matches_numeric(self):
        x = np.linspace(-2, 2, 9)
        y = tanh(x)
        analytic = tanh.grad_from_output(y)
        numeric = np.array(
            [numeric_grad(lambda v: float(tanh(v)), np.array(xi)) for xi in x]
        ).reshape(-1)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-5)


class TestRelu:
    def test_clips_negatives(self):
        np.testing.assert_array_equal(
            relu(np.array([-2.0, 0.0, 3.0])), [0.0, 0.0, 3.0]
        )

    def test_grad_is_indicator(self):
        y = relu(np.array([-1.0, 2.0]))
        np.testing.assert_array_equal(relu.grad_from_output(y), [0.0, 1.0])


class TestSoftmax:
    def test_sums_to_one(self):
        out = softmax(np.random.default_rng(0).standard_normal((4, 7)))
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(4))

    def test_shift_invariance(self):
        x = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0))

    def test_handles_large_logits(self):
        out = softmax(np.array([1e4, 0.0, -1e4]))
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [1.0, 0.0, 0.0], atol=1e-12)

    @given(finite_arrays)
    @settings(max_examples=25, deadline=None)
    def test_always_a_distribution(self, x):
        out = softmax(x)
        assert np.all(out >= 0.0)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-9)


class TestIdentity:
    def test_passthrough(self):
        x = np.array([1.5, -2.0])
        np.testing.assert_array_equal(identity(x), x)
        np.testing.assert_array_equal(identity.grad_from_output(x), [1.0, 1.0])


class TestRegistry:
    @pytest.mark.parametrize("name", ["sigmoid", "tanh", "relu", "identity", "softmax"])
    def test_lookup(self, name):
        assert get_activation(name).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown activation"):
            get_activation("swish")
