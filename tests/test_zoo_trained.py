"""Trained-benchmark behaviour for the three non-IMDB networks.

Training the tiny-scale instances takes a few seconds each and happens
once per session (module-scoped via the zoo cache).
"""

import pytest

from repro.core.engine import MemoizationScheme
from repro.models.zoo import load_benchmark


@pytest.fixture(scope="module")
def deepspeech():
    return load_benchmark("deepspeech2", scale="tiny")


@pytest.fixture(scope="module")
def eesen():
    return load_benchmark("eesen", scale="tiny")


@pytest.fixture(scope="module")
def mnmt():
    return load_benchmark("mnmt", scale="tiny")


class TestDeepSpeech:
    def test_base_quality_is_low_wer(self, deepspeech):
        assert deepspeech.base_quality is not None
        assert deepspeech.base_quality < 50.0

    def test_memoized_reuse_grows_with_theta(self, deepspeech):
        low = deepspeech.evaluate_memoized(MemoizationScheme(theta=0.05))
        high = deepspeech.evaluate_memoized(MemoizationScheme(theta=0.5))
        assert high.reuse_fraction >= low.reuse_fraction

    def test_stats_cover_gru_gates(self, deepspeech):
        result = deepspeech.evaluate_memoized(MemoizationScheme(theta=0.3))
        gates = {gate for (_, gate) in result.stats.total}
        assert gates == {"z", "r", "g"}

    def test_hidden_sequences_per_layer(self, deepspeech):
        hidden = deepspeech.hidden_sequences()
        assert len(hidden) == deepspeech.model.stack.num_layers


class TestEESEN:
    def test_base_quality_is_low_wer(self, eesen):
        assert eesen.base_quality < 50.0

    def test_bidirectional_layers_recorded_separately(self, eesen):
        result = eesen.evaluate_memoized(MemoizationScheme(theta=0.3))
        layers = {layer for (layer, _) in result.stats.total}
        assert any(name.endswith(".fwd") for name in layers)
        assert any(name.endswith(".bwd") for name in layers)

    def test_oracle_zero_theta_no_loss(self, eesen):
        result = eesen.evaluate_memoized(
            MemoizationScheme(theta=0.0, predictor="oracle")
        )
        assert result.quality_loss == 0.0

    def test_speech_tolerance_vs_translation(self, eesen, mnmt):
        """The paper's qualitative ordering: bidirectional speech
        tolerates far more reuse per unit loss than translation."""
        theta = 0.3
        speech = eesen.evaluate_memoized(MemoizationScheme(theta=theta))
        translation = mnmt.evaluate_memoized(MemoizationScheme(theta=theta))
        speech_ratio = speech.reuse_fraction / (1.0 + speech.quality_loss)
        translation_ratio = translation.reuse_fraction / (
            1.0 + translation.quality_loss
        )
        assert speech_ratio > translation_ratio


class TestMNMT:
    def test_base_quality_is_high_bleu(self, mnmt):
        assert mnmt.base_quality > 60.0

    def test_memoized_decode_produces_tokens(self, mnmt):
        from repro.core.engine import memoized
        from repro.core.stats import ReuseStats

        src = mnmt.dataset.source[mnmt.test_idx[:4]]
        with memoized(mnmt.model, MemoizationScheme(theta=0.2), ReuseStats()):
            hyps = mnmt.model.translate(src, max_len=mnmt.dataset.length + 2)
        assert len(hyps) == 4
        assert all(isinstance(h, tuple) for h in hyps)

    def test_encoder_and_decoder_both_memoized(self, mnmt):
        result = mnmt.evaluate_memoized(MemoizationScheme(theta=0.2))
        layers = {layer for (layer, _) in result.stats.total}
        assert layers == {"encoder", "decoder"}

    def test_loss_grows_substantially_at_high_theta(self, mnmt):
        """Figure 16's MNMT story: accuracy collapses at high reuse."""
        gentle = mnmt.evaluate_memoized(MemoizationScheme(theta=0.05))
        harsh = mnmt.evaluate_memoized(MemoizationScheme(theta=1.0))
        assert harsh.reuse_fraction > gentle.reuse_fraction
        assert harsh.quality_loss >= gentle.quality_loss
