"""Tests for the three synthetic workload generators."""

import numpy as np
import pytest

from repro.datasets.base import Batch, batched_indices, train_test_split
from repro.datasets.sentiment import SentimentDataset
from repro.datasets.speech import SpeechDataset, collapse
from repro.datasets.translation import BOS, EOS, TranslationDataset


class TestBase:
    def test_batch_size(self):
        batch = Batch(np.zeros((4, 3)), np.zeros(4))
        assert batch.size == 4

    def test_split_covers_everything(self):
        rng = np.random.default_rng(0)
        train, test = train_test_split(list(range(20)), 0.25, rng)
        assert sorted(train + test) == list(range(20))
        assert len(test) == 5

    def test_split_invalid_fraction(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            train_test_split([1, 2, 3], 0.0, rng)

    def test_batched_indices_cover_range(self):
        chunks = list(batched_indices(10, 3))
        flat = np.concatenate(chunks)
        np.testing.assert_array_equal(np.sort(flat), np.arange(10))

    def test_batched_indices_shuffled(self):
        rng = np.random.default_rng(0)
        flat = np.concatenate(list(batched_indices(50, 7, rng)))
        assert not np.array_equal(flat, np.arange(50))
        np.testing.assert_array_equal(np.sort(flat), np.arange(50))

    def test_batched_indices_invalid(self):
        with pytest.raises(ValueError):
            list(batched_indices(10, 0))


class TestCollapse:
    def test_merges_runs(self):
        assert collapse([1, 1, 2, 2, 2, 1]) == (1, 2, 1)

    def test_empty(self):
        assert collapse([]) == ()

    def test_single(self):
        assert collapse([5]) == (5,)


class TestSpeechDataset:
    @pytest.fixture
    def dataset(self):
        return SpeechDataset(num_utterances=8, seed=3)

    def test_shapes(self, dataset):
        steps = dataset.phones_per_utterance * dataset.frames_per_phone
        assert dataset.features.shape == (8, steps, dataset.feature_dim)
        assert dataset.frame_labels.shape == (8, steps)
        assert len(dataset.transcripts) == 8

    def test_deterministic(self):
        a = SpeechDataset(num_utterances=4, seed=7)
        b = SpeechDataset(num_utterances=4, seed=7)
        np.testing.assert_array_equal(a.features, b.features)
        assert a.transcripts == b.transcripts

    def test_different_seeds_differ(self):
        a = SpeechDataset(num_utterances=4, seed=7)
        b = SpeechDataset(num_utterances=4, seed=8)
        assert not np.array_equal(a.features, b.features)

    def test_transcripts_match_collapsed_labels(self, dataset):
        for u in range(8):
            assert collapse(dataset.frame_labels[u]) == dataset.transcripts[u]

    def test_no_consecutive_phoneme_repeats(self, dataset):
        for transcript in dataset.transcripts:
            assert all(a != b for a, b in zip(transcript, transcript[1:]))

    def test_temporal_smoothness(self, dataset):
        """Consecutive frames must be far more similar than random pairs
        — the property the whole paper rests on."""
        feats = dataset.features
        consecutive = np.linalg.norm(np.diff(feats, axis=1), axis=-1).mean()
        rng = np.random.default_rng(0)
        idx = rng.permutation(feats.shape[1])
        shuffled = np.linalg.norm(
            feats[:, idx[:-1], :] - feats[:, idx[1:], :], axis=-1
        ).mean()
        assert consecutive < 0.5 * shuffled

    def test_split_disjoint(self, dataset):
        train, test = dataset.split()
        assert set(train).isdisjoint(test)
        assert len(train) + len(test) == 8

    def test_decode_frames(self, dataset):
        decoded = dataset.decode_frames(dataset.frame_labels[:2])
        assert decoded == dataset.transcripts[:2]

    def test_decode_rejects_1d(self, dataset):
        with pytest.raises(ValueError):
            dataset.decode_frames(dataset.frame_labels[0])

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            SpeechDataset(num_phonemes=1)
        with pytest.raises(ValueError):
            SpeechDataset(attack_frames=10, frames_per_phone=8)


class TestSentimentDataset:
    @pytest.fixture
    def dataset(self):
        return SentimentDataset(num_documents=32, seed=5)

    def test_shapes(self, dataset):
        assert dataset.tokens.shape == (32, dataset.doc_length)
        assert dataset.labels.shape == (32,)

    def test_labels_binary(self, dataset):
        assert set(np.unique(dataset.labels)) <= {0, 1}

    def test_labels_consistent_with_valence(self, dataset):
        """The realised label must match the majority valence — the task
        is noise-free by construction."""
        for doc, label in zip(dataset.tokens, dataset.labels):
            valence = sum(dataset.valence_of(int(t)) for t in doc)
            assert (valence > 0) == (label == 1)
            assert valence != 0

    def test_both_classes_present(self, dataset):
        assert len(np.unique(dataset.labels)) == 2

    def test_deterministic(self):
        a = SentimentDataset(num_documents=16, seed=9)
        b = SentimentDataset(num_documents=16, seed=9)
        np.testing.assert_array_equal(a.tokens, b.tokens)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_tokens_in_vocab(self, dataset):
        assert dataset.tokens.min() >= 0
        assert dataset.tokens.max() < dataset.vocab_size

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            SentimentDataset(vocab_size=10, valence_words=8)
        with pytest.raises(ValueError):
            SentimentDataset(signal_rate=0.0)

    def test_valence_partition(self, dataset):
        assert dataset.valence_of(0) == 1
        assert dataset.valence_of(dataset.valence_words) == -1
        assert dataset.valence_of(2 * dataset.valence_words) == 0


class TestTranslationDataset:
    @pytest.fixture
    def dataset(self):
        return TranslationDataset(num_pairs=24, vocab_size=6, length=5, seed=11)

    def test_shapes(self, dataset):
        assert dataset.source.shape == (24, 5)
        assert dataset.target.shape == (24, 6)  # reversed + EOS

    def test_target_is_permuted_reversal(self, dataset):
        for src, tgt in zip(dataset.source, dataset.target):
            expected = dataset.permutation[src][::-1] + 3
            np.testing.assert_array_equal(tgt[:-1], expected)
            assert tgt[-1] == EOS

    def test_decoder_io_shifted(self, dataset):
        dec_in, dec_tgt = dataset.decoder_io(np.arange(4))
        assert dec_in.shape == dec_tgt.shape
        assert np.all(dec_in[:, 0] == BOS)
        np.testing.assert_array_equal(dec_in[:, 1:], dec_tgt[:, :-1])

    def test_references_strip_eos(self, dataset):
        refs = dataset.references(np.arange(3))
        for ref in refs:
            assert EOS not in ref
            assert len(ref) == 5

    def test_burstiness(self):
        """With burst_rate > 0 repeats are much more common than in the
        unbursty corpus."""
        bursty = TranslationDataset(num_pairs=64, burst_rate=0.5, seed=1)
        flat = TranslationDataset(num_pairs=64, burst_rate=0.0, seed=1)

        def repeat_fraction(ds):
            src = ds.source
            return float(np.mean(src[:, 1:] == src[:, :-1]))

        assert repeat_fraction(bursty) > repeat_fraction(flat) + 0.2

    def test_deterministic(self):
        a = TranslationDataset(num_pairs=8, seed=13)
        b = TranslationDataset(num_pairs=8, seed=13)
        np.testing.assert_array_equal(a.source, b.source)

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            TranslationDataset(vocab_size=1)
        with pytest.raises(ValueError):
            TranslationDataset(length=0)
        with pytest.raises(ValueError):
            TranslationDataset(burst_rate=1.0)

    def test_target_vocab_size(self, dataset):
        assert dataset.target_vocab_size == 9
