"""Tests for WER, BLEU, accuracy and Pearson correlation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    accuracy,
    accuracy_loss,
    bleu,
    bleu_loss,
    corpus_bleu,
    edit_distance,
    pearson,
    wer,
    wer_loss,
)

tokens = st.lists(st.integers(0, 5), min_size=0, max_size=12)


class TestEditDistance:
    def test_identical(self):
        assert edit_distance([1, 2, 3], [1, 2, 3]) == 0

    def test_empty_cases(self):
        assert edit_distance([], [1, 2]) == 2
        assert edit_distance([1, 2], []) == 2
        assert edit_distance([], []) == 0

    def test_substitution(self):
        assert edit_distance([1, 2, 3], [1, 9, 3]) == 1

    def test_insertion_deletion(self):
        assert edit_distance([1, 2, 3], [1, 2]) == 1
        assert edit_distance([1, 2], [1, 5, 2]) == 1

    def test_classic_example(self):
        assert edit_distance("kitten", "sitting") == 3

    @given(tokens, tokens)
    @settings(max_examples=50, deadline=None)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @given(tokens, tokens, tokens)
    @settings(max_examples=30, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    @given(tokens, tokens)
    @settings(max_examples=50, deadline=None)
    def test_bounds(self, a, b):
        d = edit_distance(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))


class TestWER:
    def test_perfect_is_zero(self):
        assert wer([[1, 2, 3]], [[1, 2, 3]]) == 0.0

    def test_corpus_pooling(self):
        # 1 edit over 4 reference tokens = 25%.
        assert wer([[1, 2], [3, 4]], [[1, 2], [3, 9]]) == pytest.approx(25.0)

    def test_can_exceed_100(self):
        assert wer([[1]], [[2, 3, 4]]) == pytest.approx(300.0)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            wer([[1]], [[1], [2]])

    def test_empty_corpus_raises(self):
        with pytest.raises(ValueError):
            wer([], [])

    def test_no_reference_tokens_raises(self):
        with pytest.raises(ValueError):
            wer([[]], [[1]])

    def test_wer_loss_convention(self):
        assert wer_loss(10.0, 12.5) == pytest.approx(2.5)
        assert wer_loss(10.0, 9.0) == 0.0  # improvements clamp to zero


class TestBLEU:
    def test_perfect_is_100(self):
        refs = [[1, 2, 3, 4, 5]]
        assert corpus_bleu(refs, refs, smooth=False) == pytest.approx(100.0)

    def test_disjoint_is_zero(self):
        assert corpus_bleu([[1, 2, 3, 4]], [[5, 6, 7, 8]]) == 0.0

    def test_brevity_penalty(self):
        """A too-short but precise hypothesis scores below 100."""
        refs = [[1, 2, 3, 4, 5, 6, 7, 8]]
        hyps = [[1, 2, 3, 4]]
        score = corpus_bleu(refs, hyps)
        assert 0.0 < score < 100.0

    def test_order_matters(self):
        refs = [[1, 2, 3, 4]]
        shuffled = [[4, 3, 2, 1]]
        assert corpus_bleu(refs, shuffled) < corpus_bleu(refs, refs)

    def test_clipping(self):
        """Repeating a correct unigram must not inflate precision."""
        refs = [[1, 2, 3, 4]]
        spam = [[1, 1, 1, 1]]
        assert corpus_bleu(refs, spam) < 50.0

    def test_corpus_vs_sentence_pooling(self):
        refs = [[1, 2, 3, 4], [5, 6, 7, 8]]
        hyps = [[1, 2, 3, 4], [5, 6, 0, 8]]
        score = corpus_bleu(refs, hyps)
        assert 0.0 < score < 100.0

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            corpus_bleu([[1]], [])

    def test_empty_corpus_raises(self):
        with pytest.raises(ValueError):
            corpus_bleu([], [])

    def test_invalid_order_raises(self):
        with pytest.raises(ValueError):
            corpus_bleu([[1]], [[1]], max_order=0)

    def test_empty_hypothesis_is_zero(self):
        assert corpus_bleu([[1, 2, 3]], [[]]) == 0.0

    def test_alias(self):
        refs = [[1, 2, 3, 4, 5]]
        assert bleu(refs, refs) == corpus_bleu(refs, refs)

    def test_bleu_loss_convention(self):
        assert bleu_loss(29.8, 28.3) == pytest.approx(1.5)
        assert bleu_loss(29.8, 30.5) == 0.0


class TestAccuracy:
    def test_hard_predictions(self):
        assert accuracy(np.array([0, 1, 1]), np.array([0, 1, 0])) == pytest.approx(
            100.0 * 2 / 3
        )

    def test_logit_predictions(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2]])
        assert accuracy(logits, np.array([1, 0])) == 100.0

    def test_incompatible_shapes_raise(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros((3, 2, 2)), np.zeros(2))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_accuracy_loss_convention(self):
        assert accuracy_loss(86.5, 85.0) == pytest.approx(1.5)
        assert accuracy_loss(86.5, 90.0) == 0.0


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(10.0)
        assert pearson(x, 2 * x + 3) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(10.0)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_constant_returns_zero(self):
        assert pearson(np.ones(5), np.arange(5.0)) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            pearson(np.ones(3), np.ones(4))

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            pearson(np.ones(1), np.ones(1))

    @given(
        st.lists(st.floats(-100, 100), min_size=3, max_size=20),
        st.lists(st.floats(-100, 100), min_size=3, max_size=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_bounded(self, a, b):
        n = min(len(a), len(b))
        r = pearson(np.array(a[:n]), np.array(b[:n]))
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9
