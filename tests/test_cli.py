"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.runner import (
    DEFAULT_COORDINATOR_PORT,
    DEFAULT_LEASE_TTL,
    DEFAULT_QUEUE_DIR,
    CoordinatorServer,
    SweepJob,
    WorkQueue,
    payload_key,
)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_network_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "resnet"])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "imdb"])
        assert args.predictor == "bnn"
        assert not args.no_throttle
        assert args.jobs == 1
        assert args.shards == 1
        assert not args.no_cache
        assert args.cache_dir == ".repro_cache"
        assert args.seed == 0

    def test_shards_flag_parsed_on_sweep_e2e_report(self):
        for argv in (
            ["sweep", "imdb", "--shards", "4"],
            ["e2e", "imdb", "--shards", "4"],
            ["report", "--shards", "4"],
        ):
            assert build_parser().parse_args(argv).shards == 4

    def test_e2e_has_runner_flags(self):
        args = build_parser().parse_args(
            ["e2e", "imdb", "--jobs", "4", "--no-cache"]
        )
        assert args.jobs == 4
        assert args.no_cache

    def test_backend_flag_parsed_on_sweep_e2e_report(self):
        for argv in (
            ["sweep", "imdb"],
            ["e2e", "imdb"],
            ["report"],
        ):
            args = build_parser().parse_args(argv)
            assert args.backend is None  # auto: process iff --jobs > 1
            assert args.queue_dir == DEFAULT_QUEUE_DIR
            assert args.lease_ttl == DEFAULT_LEASE_TTL
            assert not args.no_drain
            assert args.queue_timeout is None
            queued = build_parser().parse_args(
                argv + ["--backend", "queue", "--queue-dir", "/tmp/q"]
            )
            assert queued.backend == "queue"
            assert queued.queue_dir == "/tmp/q"

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "imdb", "--backend", "osmosis"])

    def test_worker_defaults(self):
        args = build_parser().parse_args(["worker"])
        assert args.queue_dir == DEFAULT_QUEUE_DIR
        assert args.lease_ttl == DEFAULT_LEASE_TTL
        assert args.max_tasks is None
        assert args.idle_timeout is None
        assert args.poll_interval == 0.1
        assert args.coordinator is None
        assert args.token_file is None
        assert args.gzip == "auto"

    def test_coordinator_defaults(self):
        args = build_parser().parse_args(["coordinator"])
        assert args.queue_dir == DEFAULT_QUEUE_DIR
        assert args.lease_ttl == DEFAULT_LEASE_TTL
        assert args.host == "0.0.0.0"
        assert args.port == DEFAULT_COORDINATOR_PORT
        assert args.token_file is None

    def test_coordinator_flags_parsed(self):
        args = build_parser().parse_args(
            ["coordinator", "--queue-dir", "/tmp/q", "--port", "9999",
             "--host", "127.0.0.1", "--token-file", "/tmp/tok"]
        )
        assert args.queue_dir == "/tmp/q"
        assert args.port == 9999
        assert args.host == "127.0.0.1"
        assert args.token_file == "/tmp/tok"

    def test_http_backend_flags_parsed_on_sweep_e2e_report(self):
        for argv in (["sweep", "imdb"], ["e2e", "imdb"], ["report"]):
            args = build_parser().parse_args(
                argv + ["--backend", "http",
                        "--coordinator", "http://10.0.0.5:8642",
                        "--token-file", "/tmp/tok"]
            )
            assert args.backend == "http"
            assert args.coordinator == "http://10.0.0.5:8642"
            assert args.token_file == "/tmp/tok"
            assert args.gzip == "auto"

    def test_gzip_flag_parsed_and_validated(self):
        args = build_parser().parse_args(
            ["sweep", "imdb", "--gzip", "always"]
        )
        assert args.gzip == "always"
        args = build_parser().parse_args(["worker", "--gzip", "off"])
        assert args.gzip == "off"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "imdb", "--gzip", "maybe"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "deepspeech2" in out and "29.8 bleu" in out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "64.6" in out and "66.8" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "eesen", "--reuse", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "energy savings" in out

    def test_simulate_rejects_bad_reuse(self):
        with pytest.raises(SystemExit):
            main(["simulate", "eesen", "--reuse", "1.5"])

    def test_sweep_runs_tiny_network(self, capsys):
        """Uses the cached tiny IMDB model (trains once per session)."""
        assert main(["sweep", "imdb", "--no-cache", "--thetas", "0.1", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "accuracy loss" in out
        assert "0.1" in out and "0.3" in out

    def test_e2e_runs_tiny_network(self, capsys):
        assert main(["e2e", "imdb", "--no-cache", "--loss-target", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "calibrated theta" in out and "speedup" in out

    def test_sweep_rejects_bad_jobs(self):
        with pytest.raises(SystemExit):
            main(["sweep", "imdb", "--jobs", "0", "--no-cache"])

    def test_sweep_rejects_bad_shards(self):
        with pytest.raises(SystemExit):
            main(["sweep", "imdb", "--shards", "0", "--no-cache"])


class TestRunnerIntegration:
    def test_parallel_sweep_matches_serial(self, capsys):
        """`repro sweep --jobs 2` must print the exact serial table."""
        argv = ["sweep", "imdb", "--no-cache", "--thetas", "0.1", "0.3"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_sharded_sweep_matches_serial(self, capsys):
        """`repro sweep --shards 4` must print the exact serial table."""
        argv = ["sweep", "imdb", "--no-cache", "--thetas", "0.1", "0.3"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--shards", "4"]) == 0
        sharded = capsys.readouterr().out
        assert sharded == serial

    def test_sharded_e2e_matches_serial(self, capsys):
        argv = ["e2e", "imdb", "--no-cache", "--loss-target", "2.0"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--shards", "3"]) == 0
        assert capsys.readouterr().out == serial

    def test_explicit_serial_backend_matches_default(self, capsys):
        argv = ["sweep", "imdb", "--no-cache", "--thetas", "0.1", "0.3"]
        assert main(argv) == 0
        default = capsys.readouterr().out
        assert main(argv + ["--backend", "serial"]) == 0
        assert capsys.readouterr().out == default

    def test_serial_backend_rejects_jobs(self):
        with pytest.raises(SystemExit, match="incompatible"):
            main(
                ["sweep", "imdb", "--no-cache", "--backend", "serial",
                 "--jobs", "2"]
            )

    def test_queue_backend_rejects_jobs(self):
        """--jobs only parameterises the process backend; accepting it
        silently for queue would promise parallelism that never runs."""
        with pytest.raises(SystemExit, match="incompatible"):
            main(
                ["sweep", "imdb", "--no-cache", "--backend", "queue",
                 "--jobs", "8"]
            )

    def test_bad_lease_ttl_rejected(self):
        with pytest.raises(SystemExit, match="lease-ttl"):
            main(["sweep", "imdb", "--no-cache", "--lease-ttl", "0"])

    def test_cached_sweep_matches_uncached(self, capsys, tmp_path):
        argv = ["sweep", "imdb", "--thetas", "0.1", "0.3"]
        assert main(argv + ["--no-cache"]) == 0
        uncached = capsys.readouterr().out
        cached = argv + ["--cache-dir", str(tmp_path)]
        assert main(cached) == 0  # cold: populates the cache
        assert capsys.readouterr().out == uncached
        assert main(cached) == 0  # warm: served from disk
        assert capsys.readouterr().out == uncached
        assert any(tmp_path.glob("*/*.json"))


class TestQueueBackendCLI:
    def test_queue_sweep_matches_serial(self, capsys, tmp_path):
        """`--backend queue` (self-draining) prints the exact serial table."""
        argv = ["sweep", "imdb", "--no-cache", "--thetas", "0.1", "0.3"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        queue_argv = argv + [
            "--backend", "queue",
            "--queue-dir", str(tmp_path / "queue"),
            "--queue-timeout", "600",
        ]
        assert main(queue_argv) == 0
        assert capsys.readouterr().out == serial

    def test_queue_sweep_with_shards_matches_serial(self, capsys, tmp_path):
        argv = ["sweep", "imdb", "--no-cache", "--thetas", "0.1", "0.3"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        queue_argv = argv + [
            "--backend", "queue", "--shards", "3",
            "--queue-dir", str(tmp_path / "queue"),
            "--queue-timeout", "600",
        ]
        assert main(queue_argv) == 0
        assert capsys.readouterr().out == serial

    def test_worker_drains_prepopulated_queue(self, capsys, tmp_path):
        """`repro worker` claims, evaluates and stores a submitted task."""
        queue = WorkQueue(tmp_path / "queue")
        job = SweepJob(network="imdb", thetas=(0.1,))
        task_id = queue.submit(job.point_payload(0.1))
        assert main(
            ["worker", "--queue-dir", str(tmp_path / "queue"),
             "--max-tasks", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "drained 1 task(s)" in out
        assert queue.results.get(task_id) is not None
        assert queue.pending_count() == 0
        assert queue.active_count() == 0

    def test_worker_quarantines_foreign_payloads(self, capsys, tmp_path):
        """Unknown kinds / foreign CACHE_VERSIONs are quarantined in
        failed/, never evaluated and never crash-looped."""
        queue = WorkQueue(tmp_path / "queue")
        job = SweepJob(network="imdb", thetas=(0.1,))
        good_id = payload_key(job.point_payload(0.1))
        # Tasks are claimed in task-id order; pick a nonce that makes
        # the poison task sort first so the worker must hit it.
        poison = {"kind": "teleport", "nonce": 0}
        while payload_key(poison) > good_id:
            poison["nonce"] += 1
        queue.submit(poison)
        assert queue.submit(job.point_payload(0.1)) == good_id
        # Non-zero exit: scripted multi-host deployments detect poison
        # tasks from the exit code alone.
        assert main(
            ["worker", "--queue-dir", str(tmp_path / "queue"),
             "--max-tasks", "1"]
        ) == 1
        captured = capsys.readouterr()
        assert "drained 1 task(s)" in captured.out
        assert "1 task(s) quarantined in failed/" in captured.out
        assert "unknown job kind" in captured.err  # traceback surfaced
        assert queue.results.get(good_id) is not None
        assert queue.failed_count() == 1
        assert queue.pending_count() == 0

    def test_worker_exit_code_counts_only_own_quarantines(
        self, capsys, tmp_path
    ):
        """A quarantine by *another* worker while this one drains
        cleanly must not flip this worker's exit code: blame follows
        the worker that hit the poison, not the whole fleet."""
        queue = WorkQueue(tmp_path / "queue")
        job = SweepJob(network="imdb", thetas=(0.1,))
        good_id = payload_key(job.point_payload(0.1))
        # Claims go in task-id order; make the poison task sort first
        # so the "other worker" deterministically picks it up.
        poison = {"kind": "teleport", "nonce": 0}
        while payload_key(poison) > good_id:
            poison["nonce"] += 1
        queue.submit(poison)
        queue.submit(job.point_payload(0.1))
        other = queue.claim("other-worker")
        assert other.payload["kind"] == "teleport"
        # The other worker quarantines its poison task mid-run.
        queue.fail(other, error="someone else's poison")
        assert main(
            ["worker", "--queue-dir", str(tmp_path / "queue"),
             "--max-tasks", "1"]
        ) == 0  # this worker drained only the healthy task
        out = capsys.readouterr().out
        assert "drained 1 task(s)" in out
        assert "quarantined" not in out

    def test_worker_exit_code_ignores_preexisting_quarantine(
        self, capsys, tmp_path
    ):
        """Only quarantines from *this run* flip the exit code: a worker
        that drained cleanly next to an old failed/ record exits 0."""
        queue = WorkQueue(tmp_path / "queue")
        queue.submit({"kind": "teleport"})
        assert main(
            ["worker", "--queue-dir", str(tmp_path / "queue"),
             "--idle-timeout", "0"]
        ) == 1  # the run that quarantined it fails loudly ...
        capsys.readouterr()
        job = SweepJob(network="imdb", thetas=(0.1,))
        queue.submit(job.point_payload(0.1))
        assert main(
            ["worker", "--queue-dir", str(tmp_path / "queue"),
             "--max-tasks", "1"]
        ) == 0  # ... later clean runs do not re-report it
        out = capsys.readouterr().out
        assert "drained 1 task(s)" in out
        assert "quarantined" not in out

    def test_worker_idle_timeout_on_empty_queue(self, capsys, tmp_path):
        assert main(
            ["worker", "--queue-dir", str(tmp_path / "queue"),
             "--idle-timeout", "0"]
        ) == 0
        assert "drained 0 task(s)" in capsys.readouterr().out

    def test_worker_rejects_bad_flags(self, tmp_path):
        with pytest.raises(SystemExit, match="lease-ttl"):
            main(["worker", "--queue-dir", str(tmp_path), "--lease-ttl", "0"])
        with pytest.raises(SystemExit, match="max-tasks"):
            main(["worker", "--queue-dir", str(tmp_path), "--max-tasks", "0"])

    def test_worker_logs_owner_identity(self, capsys, tmp_path):
        """Logs name the worker's hostname-pid owner id, so multi-host
        output is attributable."""
        from repro.runner import default_owner

        assert main(
            ["worker", "--queue-dir", str(tmp_path / "queue"),
             "--idle-timeout", "0"]
        ) == 0
        assert default_owner() in capsys.readouterr().out


class TestHttpCLI:
    """The http backend and network worker, end to end over the CLI."""

    @pytest.fixture()
    def coordinator(self, tmp_path):
        server = CoordinatorServer(
            WorkQueue(tmp_path / "queue", lease_ttl=60), port=0, quiet=True
        )
        server.serve_in_thread()
        yield server
        server.stop()

    def test_http_sweep_matches_serial(self, capsys, coordinator):
        argv = ["sweep", "imdb", "--no-cache", "--thetas", "0.1", "0.3"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(
            argv + ["--backend", "http", "--coordinator", coordinator.url,
                    "--queue-timeout", "600"]
        ) == 0
        assert capsys.readouterr().out == serial

    def test_http_sweep_with_forced_gzip_matches_serial(
        self, capsys, coordinator
    ):
        argv = ["sweep", "imdb", "--no-cache", "--thetas", "0.1", "0.3"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(
            argv + ["--backend", "http", "--coordinator", coordinator.url,
                    "--gzip", "always", "--queue-timeout", "600"]
        ) == 0
        assert capsys.readouterr().out == serial

    def test_http_sweep_with_shards_matches_serial(self, capsys, coordinator):
        argv = ["sweep", "imdb", "--no-cache", "--thetas", "0.1", "0.3"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(
            argv + ["--backend", "http", "--coordinator", coordinator.url,
                    "--shards", "3", "--queue-timeout", "600"]
        ) == 0
        assert capsys.readouterr().out == serial

    def test_network_worker_drains_submitted_task(self, capsys, coordinator):
        job = SweepJob(network="imdb", thetas=(0.1,))
        task_id = coordinator.queue.submit(job.point_payload(0.1))
        assert main(
            ["worker", "--coordinator", coordinator.url, "--max-tasks", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "drained 1 task(s)" in out
        assert coordinator.url in out  # logs say where it drained from
        assert coordinator.queue.results.get(task_id) is not None

    def test_token_auth_round_trip(self, capsys, tmp_path):
        token_file = tmp_path / "token"
        token_file.write_text("s3cret\n", encoding="utf-8")
        server = CoordinatorServer(
            WorkQueue(tmp_path / "queue", lease_ttl=60),
            port=0,
            token="s3cret",
            quiet=True,
        )
        server.serve_in_thread()
        try:
            argv = ["sweep", "imdb", "--no-cache", "--thetas", "0.1"]
            assert main(argv) == 0
            serial = capsys.readouterr().out
            assert main(
                argv + ["--backend", "http", "--coordinator", server.url,
                        "--token-file", str(token_file),
                        "--queue-timeout", "600"]
            ) == 0
            assert capsys.readouterr().out == serial
        finally:
            server.stop()

    def test_coordinator_command_serves_until_interrupted(
        self, capsys, tmp_path, monkeypatch
    ):
        """`repro coordinator` binds, announces its URL, serves until
        Ctrl-C, and reports the final queue state."""
        served = {}

        def fake_serve_forever(self):
            served["url"] = self.url  # really bound: URL has a port
            raise KeyboardInterrupt

        monkeypatch.setattr(
            CoordinatorServer, "serve_forever", fake_serve_forever
        )
        assert main(
            ["coordinator", "--queue-dir", str(tmp_path / "queue"),
             "--host", "127.0.0.1", "--port", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert served["url"] in out
        assert "NO auth" in out  # warns when serving unauthenticated
        assert "coordinator stopped" in out
        assert "0 pending" in out

    def test_http_backend_requires_coordinator(self):
        with pytest.raises(SystemExit, match="--coordinator"):
            main(["sweep", "imdb", "--no-cache", "--backend", "http"])

    def test_http_backend_rejects_jobs(self):
        with pytest.raises(SystemExit, match="incompatible"):
            main(
                ["sweep", "imdb", "--no-cache", "--backend", "http",
                 "--coordinator", "http://127.0.0.1:1", "--jobs", "4"]
            )

    def test_missing_token_file_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="token-file"):
            main(
                ["sweep", "imdb", "--no-cache", "--backend", "http",
                 "--coordinator", "http://127.0.0.1:1",
                 "--token-file", str(tmp_path / "absent")]
            )

    def test_empty_token_file_rejected(self, tmp_path):
        empty = tmp_path / "token"
        empty.write_text("  \n", encoding="utf-8")
        with pytest.raises(SystemExit, match="empty"):
            main(
                ["worker", "--coordinator", "http://127.0.0.1:1",
                 "--token-file", str(empty), "--idle-timeout", "0"]
            )
