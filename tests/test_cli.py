"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_network_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "resnet"])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "imdb"])
        assert args.predictor == "bnn"
        assert not args.no_throttle
        assert args.jobs == 1
        assert args.shards == 1
        assert not args.no_cache
        assert args.cache_dir == ".repro_cache"
        assert args.seed == 0

    def test_shards_flag_parsed_on_sweep_e2e_report(self):
        for argv in (
            ["sweep", "imdb", "--shards", "4"],
            ["e2e", "imdb", "--shards", "4"],
            ["report", "--shards", "4"],
        ):
            assert build_parser().parse_args(argv).shards == 4

    def test_e2e_has_runner_flags(self):
        args = build_parser().parse_args(
            ["e2e", "imdb", "--jobs", "4", "--no-cache"]
        )
        assert args.jobs == 4
        assert args.no_cache


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "deepspeech2" in out and "29.8 bleu" in out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "64.6" in out and "66.8" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "eesen", "--reuse", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "energy savings" in out

    def test_simulate_rejects_bad_reuse(self):
        with pytest.raises(SystemExit):
            main(["simulate", "eesen", "--reuse", "1.5"])

    def test_sweep_runs_tiny_network(self, capsys):
        """Uses the cached tiny IMDB model (trains once per session)."""
        assert main(["sweep", "imdb", "--no-cache", "--thetas", "0.1", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "accuracy loss" in out
        assert "0.1" in out and "0.3" in out

    def test_e2e_runs_tiny_network(self, capsys):
        assert main(["e2e", "imdb", "--no-cache", "--loss-target", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "calibrated theta" in out and "speedup" in out

    def test_sweep_rejects_bad_jobs(self):
        with pytest.raises(SystemExit):
            main(["sweep", "imdb", "--jobs", "0", "--no-cache"])

    def test_sweep_rejects_bad_shards(self):
        with pytest.raises(SystemExit):
            main(["sweep", "imdb", "--shards", "0", "--no-cache"])


class TestRunnerIntegration:
    def test_parallel_sweep_matches_serial(self, capsys):
        """`repro sweep --jobs 2` must print the exact serial table."""
        argv = ["sweep", "imdb", "--no-cache", "--thetas", "0.1", "0.3"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_sharded_sweep_matches_serial(self, capsys):
        """`repro sweep --shards 4` must print the exact serial table."""
        argv = ["sweep", "imdb", "--no-cache", "--thetas", "0.1", "0.3"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--shards", "4"]) == 0
        sharded = capsys.readouterr().out
        assert sharded == serial

    def test_sharded_e2e_matches_serial(self, capsys):
        argv = ["e2e", "imdb", "--no-cache", "--loss-target", "2.0"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--shards", "3"]) == 0
        assert capsys.readouterr().out == serial

    def test_cached_sweep_matches_uncached(self, capsys, tmp_path):
        argv = ["sweep", "imdb", "--thetas", "0.1", "0.3"]
        assert main(argv + ["--no-cache"]) == 0
        uncached = capsys.readouterr().out
        cached = argv + ["--cache-dir", str(tmp_path)]
        assert main(cached) == 0  # cold: populates the cache
        assert capsys.readouterr().out == uncached
        assert main(cached) == 0  # warm: served from disk
        assert capsys.readouterr().out == uncached
        assert any(tmp_path.glob("*/*.json"))
