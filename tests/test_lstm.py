"""Gradient checks and behavioural tests for the peephole LSTM."""

import numpy as np
import pytest

from repro.nn.activations import sigmoid, tanh
from repro.nn.lstm import LSTM_GATES, LSTMCell, LSTMLayer

from helpers import assert_grad_close, numeric_grad


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestCellForward:
    def test_step_shapes(self, rng):
        cell = LSTMCell(4, 6, rng=rng)
        h, c, cache = cell.step(
            rng.standard_normal((2, 4)), np.zeros((2, 6)), np.zeros((2, 6))
        )
        assert h.shape == (2, 6) and c.shape == (2, 6)
        assert set(cache) >= {"i", "f", "g", "o", "c"}

    def test_matches_reference_equations(self, rng):
        """Step must compute exactly Figure 4 of the paper."""
        cell = LSTMCell(3, 5, rng=rng, peephole=True)
        x = rng.standard_normal((1, 3))
        h_prev = rng.standard_normal((1, 5))
        c_prev = rng.standard_normal((1, 5))
        h, c, _ = cell.step(x, h_prev, c_prev)

        def gate(name):
            w_x, w_h, b = cell.gate_weights(name)
            return x @ w_x.T + h_prev @ w_h.T + b

        i = sigmoid(gate("i") + cell.p_i.value * c_prev)
        f = sigmoid(gate("f") + cell.p_f.value * c_prev)
        g = tanh(gate("g"))
        c_ref = f * c_prev + i * g
        o = sigmoid(gate("o") + cell.p_o.value * c_ref)
        h_ref = o * tanh(c_ref)
        np.testing.assert_allclose(c, c_ref)
        np.testing.assert_allclose(h, h_ref)

    def test_preacts_hook_substitutes_dot_products(self, rng):
        cell = LSTMCell(3, 5, rng=rng)
        x = rng.standard_normal((1, 3))
        h_prev = rng.standard_normal((1, 5))
        c_prev = rng.standard_normal((1, 5))
        pre = cell.gate_preacts(x, h_prev)
        h_direct, c_direct, _ = cell.step(x, h_prev, c_prev)
        h_hooked, c_hooked, _ = cell.step(x, h_prev, c_prev, preacts=pre)
        np.testing.assert_allclose(h_direct, h_hooked)
        np.testing.assert_allclose(c_direct, c_hooked)

    def test_forget_bias_applied(self, rng):
        cell = LSTMCell(3, 5, rng=rng, forget_bias=1.0)
        assert np.all(cell.b_f.value == 1.0)

    def test_gate_weights_unknown_gate(self, rng):
        with pytest.raises(KeyError):
            LSTMCell(3, 5, rng=rng).gate_weights("q")

    def test_no_peephole_has_no_p_params(self, rng):
        cell = LSTMCell(3, 5, rng=rng, peephole=False)
        assert not any(n.startswith("p_") for n, _ in cell.named_parameters())

    def test_gate_names(self, rng):
        assert LSTMCell(3, 5, rng=rng).gate_names == LSTM_GATES


class TestLayerForward:
    def test_output_shape(self, rng):
        layer = LSTMLayer(4, 6, rng=rng)
        assert layer(rng.standard_normal((2, 7, 4))).shape == (2, 7, 6)

    def test_rejects_non_3d(self, rng):
        with pytest.raises(ValueError):
            LSTMLayer(4, 6, rng=rng)(rng.standard_normal((7, 4)))

    def test_state_carries_across_time(self, rng):
        """Output at t must depend on inputs before t."""
        layer = LSTMLayer(4, 6, rng=rng)
        x = rng.standard_normal((1, 5, 4))
        base = layer(x)
        perturbed = x.copy()
        perturbed[0, 0, :] += 1.0
        out = layer(perturbed)
        assert not np.allclose(base[0, -1], out[0, -1])

    def test_initial_state_used(self, rng):
        layer = LSTMLayer(4, 6, rng=rng)
        x = rng.standard_normal((1, 3, 4))
        h0 = rng.standard_normal((1, 6))
        c0 = rng.standard_normal((1, 6))
        assert not np.allclose(layer(x), layer(x, h0=h0, c0=c0))

    def test_deterministic(self, rng):
        layer = LSTMLayer(4, 6, rng=rng)
        x = rng.standard_normal((2, 5, 4))
        np.testing.assert_array_equal(layer(x), layer(x))


@pytest.mark.parametrize("peephole", [True, False])
class TestLayerGradients:
    """Finite-difference validation of the full BPTT pass."""

    def _setup(self, rng, peephole):
        layer = LSTMLayer(3, 4, rng=rng, peephole=peephole)
        x = rng.standard_normal((2, 4, 3))
        probe = rng.standard_normal((2, 4, 4))
        return layer, x, probe

    def test_input_gradient(self, rng, peephole):
        layer, x, probe = self._setup(rng, peephole)

        def loss(v):
            return float(np.sum(layer.forward(v) * probe))

        layer.forward(x)
        analytic = layer.backward(probe)
        assert_grad_close(analytic, numeric_grad(loss, x), rtol=1e-3, atol=1e-6)

    @pytest.mark.parametrize("pname", ["w_ix", "w_fh", "w_gx", "w_oh", "b_i", "b_g"])
    def test_weight_gradients(self, rng, peephole, pname):
        layer, x, probe = self._setup(rng, peephole)
        param = getattr(layer.cell, pname)

        def loss(w):
            saved = param.value
            param.value = w
            out = float(np.sum(layer.forward(x) * probe))
            param.value = saved
            return out

        layer.forward(x)
        layer.backward(probe)
        assert_grad_close(
            param.grad, numeric_grad(loss, param.value.copy()), rtol=1e-3, atol=1e-6
        )

    def test_peephole_gradients(self, rng, peephole):
        if not peephole:
            pytest.skip("no peepholes in this configuration")
        layer, x, probe = self._setup(rng, peephole)
        # Non-zero peepholes so the gradient path is exercised.
        for name in ("p_i", "p_f", "p_o"):
            getattr(layer.cell, name).value += 0.3
        for name in ("p_i", "p_f", "p_o"):
            param = getattr(layer.cell, name)

            def loss(w, param=param):
                saved = param.value
                param.value = w
                out = float(np.sum(layer.forward(x) * probe))
                param.value = saved
                return out

            layer.cell.zero_grad()
            layer.forward(x)
            layer.backward(probe)
            assert_grad_close(
                param.grad,
                numeric_grad(loss, param.value.copy()),
                rtol=1e-3,
                atol=1e-6,
            )

    def test_backward_before_forward_raises(self, rng, peephole):
        layer = LSTMLayer(3, 4, rng=rng, peephole=peephole)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2, 4)))
