"""Tests for the online inference service (`repro serve` + loadgen).

The load-bearing properties:

- Served predictions are bitwise identical to the offline batch path
  (`Benchmark.evaluate_memoized`'s inference) at the same scheme — one
  row at a time, batched, or under concurrent load.
- Live retuning (PUT /theta) swaps the scheme atomically: requests
  in flight finish under the scheme they started with, every response
  names its scheme_version, and a failed retune leaves the server
  serving under the old scheme.
- Streaming sessions keep memo state warm across chunk requests and
  reproduce the one-shot forward bitwise.
"""

import threading

import numpy as np
import pytest

from repro.core.engine import MemoizationScheme
from repro.models.zoo import load_benchmark
from repro.serve import (
    MAX_INFER_ROWS,
    InferenceServer,
    ServeClient,
    ServeError,
    ServeState,
    parse_layer_thetas,
    run_loadgen,
)
from repro.serve.loadgen import expected_outputs, scheme_from_info
from repro.serve.state import LatencyHistogram

THETA = 0.05


def serve(benchmark, scheme=None, **server_kwargs):
    """Start a server for `benchmark`; caller must call `shutdown`."""
    state = ServeState(
        benchmark, scheme or MemoizationScheme(theta=THETA)
    )
    server = InferenceServer(state, quiet=True, **server_kwargs)
    server.serve_in_thread()

    def shutdown():
        server.stop()
        state.unwrap()

    return server, state, shutdown


@pytest.fixture
def imdb():
    return load_benchmark("imdb", scale="tiny")


@pytest.fixture
def imdb_rows(imdb):
    indices = [int(i) for i in imdb.test_idx[:6]]
    return indices, [imdb.dataset.tokens[i].tolist() for i in indices]


class TestLatencyHistogram:
    def test_counts_and_summary(self):
        hist = LatencyHistogram(bounds_ms=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 5000.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["overflow"] == 1
        assert snap["max_ms"] == 5000.0
        cumulative = [bucket["count"] for bucket in snap["buckets"]]
        assert cumulative == [1, 2, 3]

    def test_empty(self):
        snap = LatencyHistogram().snapshot()
        assert snap["count"] == 0
        assert snap["mean_ms"] == 0.0


class TestEndpoints:
    def test_health_payload(self, imdb):
        server, _, shutdown = serve(imdb)
        try:
            health = ServeClient(server.url).get("/api/v1/health")
            assert health["ok"] is True
            assert health["model"] == "imdb"
            assert health["task"] == "sentiment"
            assert health["scheme_version"] == 1
        finally:
            shutdown()

    def test_infer_single_and_batch(self, imdb, imdb_rows):
        _, rows = imdb_rows
        server, _, shutdown = serve(imdb)
        try:
            client = ServeClient(server.url)
            single = client.post("/api/v1/infer", {"input": rows[0]})
            assert len(single["outputs"]) == 1
            assert single["scheme_version"] == 1
            assert single["theta"] == THETA
            batch = client.post("/api/v1/infer", {"inputs": rows})
            assert len(batch["outputs"]) == len(rows)
            assert batch["outputs"][0] == single["outputs"][0]
        finally:
            shutdown()

    def test_validation_errors(self, imdb, imdb_rows):
        _, rows = imdb_rows
        server, _, shutdown = serve(imdb)
        try:
            client = ServeClient(server.url)
            for bad in (
                {},  # no inputs
                {"inputs": []},  # empty
                {"inputs": "nope"},  # not a list
                {"inputs": [["a", "b"]]},  # non-int tokens
                {"inputs": [[10**6]]},  # out of vocab
                {"input": rows[0], "inputs": rows},  # both forms
                {"inputs": [rows[0]] * (MAX_INFER_ROWS + 1)},  # too many
            ):
                with pytest.raises(ServeError) as excinfo:
                    client.post("/api/v1/infer", bad)
                assert excinfo.value.status == 400
        finally:
            shutdown()

    def test_unknown_endpoint_and_method(self, imdb):
        server, _, shutdown = serve(imdb)
        try:
            client = ServeClient(server.url)
            with pytest.raises(ServeError) as excinfo:
                client.post("/api/v1/nope", {})
            assert excinfo.value.status == 404
            with pytest.raises(ServeError) as excinfo:
                client.post("/api/v1/metrics", {})
            assert excinfo.value.status == 405
        finally:
            shutdown()

    def test_auth_required_when_token_set(self, imdb, imdb_rows):
        _, rows = imdb_rows
        server, _, shutdown = serve(imdb, token="s3cret")
        try:
            with pytest.raises(ServeError) as excinfo:
                ServeClient(server.url).get("/api/v1/health")
            assert excinfo.value.status == 401
            with pytest.raises(ServeError) as excinfo:
                ServeClient(server.url, token="wrong").post(
                    "/api/v1/infer", {"input": rows[0]}
                )
            assert excinfo.value.status == 401
            ok = ServeClient(server.url, token="s3cret").get("/api/v1/health")
            assert ok["ok"] is True
        finally:
            shutdown()

    def test_metrics_shape(self, imdb, imdb_rows):
        _, rows = imdb_rows
        server, _, shutdown = serve(imdb)
        try:
            client = ServeClient(server.url)
            client.post("/api/v1/infer", {"inputs": rows})
            metrics = client.get("/api/v1/metrics")
            assert metrics["model"]["name"] == "imdb"
            assert metrics["inference"]["requests"] == 1
            assert metrics["inference"]["rows"] == len(rows)
            latency = metrics["inference"]["latency_ms"]
            assert latency["count"] == 1
            assert latency["buckets"], "histogram must expose buckets"
            assert 0.0 <= metrics["reuse"]["overall_fraction"] <= 1.0
            assert "lstm" in metrics["reuse"]["by_layer"]
            assert metrics["requests"]["/api/v1/infer"] == 1
        finally:
            shutdown()


class TestBitwiseEquivalence:
    """Served predictions == offline batch path, bit for bit."""

    def test_single_rows_match_batch_path(self, imdb, imdb_rows):
        indices, rows = imdb_rows
        scheme = MemoizationScheme(theta=THETA)
        # Reference first: expected_outputs wraps/unwraps the same model.
        expected = expected_outputs(imdb, scheme, indices)
        server, _, shutdown = serve(imdb, scheme=scheme)
        try:
            client = ServeClient(server.url)
            served = [
                client.post("/api/v1/infer", {"input": row})["outputs"][0]
                for row in rows
            ]
            assert served == expected
            batch = client.post("/api/v1/infer", {"inputs": rows})["outputs"]
            assert batch == expected
        finally:
            shutdown()

    def test_speech_rows_match_batch_path(self):
        bench = load_benchmark("deepspeech2", scale="tiny")
        indices = [int(i) for i in bench.test_idx[:3]]
        scheme = MemoizationScheme(theta=THETA)
        expected = expected_outputs(bench, scheme, indices)
        server, _, shutdown = serve(bench, scheme=scheme)
        try:
            client = ServeClient(server.url)
            rows = [bench.dataset.features[i].tolist() for i in indices]
            served = client.post("/api/v1/infer", {"inputs": rows})["outputs"]
            assert served == expected
        finally:
            shutdown()

    def test_concurrent_traffic_with_live_retune(self, imdb):
        """N threads of traffic stay bitwise-correct across a mid-run
        theta PUT: every response is attributed to a scheme_version, and
        each prediction equals the batch path at that version's theta."""
        indices = [int(i) for i in imdb.test_idx[:8]]
        rows = {i: imdb.dataset.tokens[i].tolist() for i in indices}
        theta_a, theta_b = 0.05, 0.4
        expected = {
            1: dict(zip(indices, expected_outputs(
                imdb, MemoizationScheme(theta=theta_a), indices))),
            2: dict(zip(indices, expected_outputs(
                imdb, MemoizationScheme(theta=theta_b), indices))),
        }
        server, _, shutdown = serve(
            imdb, scheme=MemoizationScheme(theta=theta_a)
        )
        try:
            url = server.url
            results = []
            results_lock = threading.Lock()
            put_gate = threading.Event()

            def worker(worker_id):
                client = ServeClient(url)
                for step in range(10):
                    index = indices[(worker_id + step) % len(indices)]
                    reply = client.post(
                        "/api/v1/infer", {"input": rows[index]}
                    )
                    with results_lock:
                        results.append(
                            (index, reply["outputs"][0],
                             reply["scheme_version"])
                        )
                    if step == 2:
                        put_gate.set()  # traffic is flowing; retune now

            threads = [
                threading.Thread(target=worker, args=(w,)) for w in range(4)
            ]
            for thread in threads:
                thread.start()
            put_gate.wait(timeout=30)
            info = ServeClient(url).put("/api/v1/theta", {"theta": theta_b})
            assert info["scheme_version"] == 2
            for thread in threads:
                thread.join()
        finally:
            shutdown()
        versions = {version for (_, _, version) in results}
        assert versions <= {1, 2}
        assert 2 in versions, "some traffic must land after the retune"
        for index, output, version in results:
            assert output == expected[version][index], (
                f"row {index} under scheme_version {version}"
            )


class TestThetaEndpoint:
    def test_get_reports_scheme(self, imdb):
        server, _, shutdown = serve(imdb)
        try:
            info = ServeClient(server.url).get("/api/v1/theta")
            assert info["theta"] == THETA
            assert info["predictor"] == "bnn"
            assert info["layers"] == ["lstm"]
            assert info["scheme_version"] == 1
        finally:
            shutdown()

    def test_put_retunes_globally_and_per_layer(self, imdb, imdb_rows):
        _, rows = imdb_rows
        server, _, shutdown = serve(imdb)
        try:
            client = ServeClient(server.url)
            info = client.put(
                "/api/v1/theta",
                {"theta": 0.2, "layer_thetas": {"lstm": 0.1}},
            )
            assert info["theta"] == 0.2
            assert info["layer_thetas"] == {"lstm": 0.1}
            assert info["scheme_version"] == 2
            reply = client.post("/api/v1/infer", {"input": rows[0]})
            assert reply["scheme_version"] == 2
            # Clearing the overrides is an explicit null.
            info = client.put("/api/v1/theta", {"layer_thetas": None})
            assert info["layer_thetas"] is None
            assert info["scheme_version"] == 3
        finally:
            shutdown()

    def test_bad_retunes_are_rejected_and_harmless(self, imdb, imdb_rows):
        _, rows = imdb_rows
        server, _, shutdown = serve(imdb)
        try:
            client = ServeClient(server.url)
            for bad in (
                {},  # nothing to do
                {"theta": -0.5},  # negative
                {"theta": "big"},  # not a number
                {"predictor": "magic"},  # unknown kind
                {"layer_thetas": {"nope": 0.1}},  # unknown layer
                {"layer_thetas": {"lstm": -1.0}},  # negative override
                {"use_packed": True},  # not retunable
            ):
                with pytest.raises(ServeError) as excinfo:
                    client.put("/api/v1/theta", bad)
                assert excinfo.value.status == 400
            # Still serving, still version 1.
            reply = client.post("/api/v1/infer", {"input": rows[0]})
            assert reply["scheme_version"] == 1
            assert reply["theta"] == THETA
        finally:
            shutdown()


class TestStreamingSessions:
    def test_chunked_equals_one_shot(self):
        bench = load_benchmark("deepspeech2", scale="tiny")
        index = int(bench.test_idx[0])
        frames = bench.dataset.features[index]
        server, _, shutdown = serve(bench)
        try:
            client = ServeClient(server.url)
            one_shot = client.post(
                "/api/v1/infer", {"input": frames.tolist()}
            )["outputs"][0]
            opened = client.post("/api/v1/session/open", {})
            sid = opened["session"]
            steps = frames.shape[0]
            chunk_preds = []
            for lo, hi in ((0, steps // 3), (steps // 3, steps)):
                reply = client.post(
                    "/api/v1/infer",
                    {"session": sid, "input": frames[lo:hi].tolist()},
                )
                chunk_preds.extend(reply["outputs"][0])
            closed = client.post("/api/v1/session/close", {"session": sid})
            assert closed["transcript"] == one_shot
            assert closed["frames"] == steps
            assert len(chunk_preds) == steps
        finally:
            shutdown()

    def test_unknown_session_is_404(self):
        bench = load_benchmark("deepspeech2", scale="tiny")
        chunk = bench.dataset.features[int(bench.test_idx[0])][:2].tolist()
        server, _, shutdown = serve(bench)
        try:
            client = ServeClient(server.url)
            with pytest.raises(ServeError) as excinfo:
                client.post(
                    "/api/v1/infer",
                    {"session": "deadbeef", "input": chunk},
                )
            assert excinfo.value.status == 404
            with pytest.raises(ServeError) as excinfo:
                client.post("/api/v1/session/close", {"session": "deadbeef"})
            assert excinfo.value.status == 404
        finally:
            shutdown()

    def test_closed_session_cannot_be_fed(self):
        bench = load_benchmark("deepspeech2", scale="tiny")
        frames = bench.dataset.features[int(bench.test_idx[0])]
        server, _, shutdown = serve(bench)
        try:
            client = ServeClient(server.url)
            sid = client.post("/api/v1/session/open", {})["session"]
            client.post("/api/v1/session/close", {"session": sid})
            with pytest.raises(ServeError) as excinfo:
                client.post(
                    "/api/v1/infer",
                    {"session": sid, "input": frames.tolist()},
                )
            assert excinfo.value.status == 404
        finally:
            shutdown()

    def test_bidirectional_model_refuses_sessions(self):
        bench = load_benchmark("eesen", scale="tiny")
        server, _, shutdown = serve(bench)
        try:
            with pytest.raises(ServeError) as excinfo:
                ServeClient(server.url).post("/api/v1/session/open", {})
            assert excinfo.value.status == 400
            assert "unidirectional" in str(excinfo.value)
        finally:
            shutdown()

    def test_sentiment_model_refuses_sessions(self, imdb):
        server, _, shutdown = serve(imdb)
        try:
            with pytest.raises(ServeError) as excinfo:
                ServeClient(server.url).post("/api/v1/session/open", {})
            assert excinfo.value.status == 400
        finally:
            shutdown()


class TestLoadgen:
    def test_loadgen_with_verify(self, imdb):
        server, _, shutdown = serve(imdb)
        try:
            summary = run_loadgen(
                server.url,
                "imdb",
                requests=6,
                concurrency=3,
                batch=2,
                verify=True,
            )
        finally:
            shutdown()
        assert summary["completed"] == 6
        assert summary["errors"] == []
        assert summary["verify"]["checked"] == 12
        assert summary["verify"]["mismatches"] == 0
        latency = summary["latency_ms"]
        assert latency["p50"] <= latency["p95"] <= latency["p99"]
        assert summary["req_per_s"] > 0

    def test_loadgen_rejects_wrong_network(self, imdb):
        server, _, shutdown = serve(imdb)
        try:
            with pytest.raises(ServeError, match="serves 'imdb'"):
                run_loadgen(server.url, "mnmt", requests=1)
        finally:
            shutdown()

    def test_loadgen_can_retune_first(self, imdb):
        server, state, shutdown = serve(imdb)
        try:
            summary = run_loadgen(
                server.url, "imdb", requests=2, concurrency=1,
                batch=1, theta=0.3,
            )
            assert summary["scheme"]["theta"] == 0.3
            assert state.scheme.theta == 0.3
        finally:
            shutdown()

    def test_scheme_round_trip(self, imdb):
        server, _, shutdown = serve(imdb)
        try:
            info = ServeClient(server.url).get("/api/v1/theta")
        finally:
            shutdown()
        scheme = scheme_from_info(info)
        assert scheme.theta == THETA
        assert scheme.predictor == "bnn"


class TestCLIWiring:
    def test_parse_layer_thetas(self):
        assert parse_layer_thetas(["a=0.1", "b.c=0.2"]) == {
            "a": 0.1, "b.c": 0.2
        }
        with pytest.raises(ValueError):
            parse_layer_thetas(["missing-equals"])
        with pytest.raises(ValueError):
            parse_layer_thetas(["a=not-a-number"])

    def test_parser_accepts_serve_and_loadgen(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["serve", "imdb", "--port", "0", "--theta", "0.1",
             "--layer-theta", "lstm=0.2"]
        )
        assert args.command == "serve"
        assert args.layer_theta == ["lstm=0.2"]
        args = parser.parse_args(
            ["loadgen", "imdb", "--url", "http://x:1", "--verify"]
        )
        assert args.command == "loadgen"
        assert args.verify is True
        with pytest.raises(SystemExit):
            parser.parse_args(["loadgen", "imdb"])  # --url required


class TestModelHygiene:
    def test_unwrap_restores_cached_model(self, imdb):
        """ServeState wraps the (shared, cached) zoo model; unwrap must
        hand it back exactly as it was for the rest of the suite."""
        from repro.nn.lstm import LSTMLayer

        imdb.ensure_trained()
        tokens = imdb.dataset.tokens[imdb.test_idx[:4]]
        before = imdb.model.predict(tokens)
        _, state, shutdown = serve(imdb)
        shutdown()
        assert isinstance(imdb.model.lstm, LSTMLayer)
        np.testing.assert_array_equal(imdb.model.predict(tokens), before)
