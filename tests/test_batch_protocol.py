"""Tests for the batched, gzip-compressed coordinator wire protocol.

PR 5's contract, from the wire up:

- ``TaskQueue.submit_many`` / ``poll_many`` defaults on the file queue;
- ``/api/v1/batch/submit`` and ``/api/v1/batch/poll`` endpoints, spoken
  by ``RemoteWorkQueue`` so one submitter poll tick over an N-task
  sweep costs one round trip instead of ~3N (proved with the
  coordinator's request counters);
- transparent gzip on both request and reply paths, with the body cap
  enforced on the *decompressed* size;
- interoperability both ways: a new client against an old coordinator
  (batch routes removed) falls back to the per-task endpoints and
  identity encoding; an old-style client (per-task endpoints, no gzip)
  keeps working against the new coordinator;
- the PR 4 review's transport fixes: Content-Length validation (400 /
  411), server-side worker-name validation, ``results/has`` membership
  without payload transfer, and bounded-staleness lease-TTL refresh.
"""

import gzip
import http.client
import json
import threading
import time

import pytest

from repro.runner import (
    HttpBackend,
    CoordinatorServer,
    QueueTaskFailed,
    RemoteWorkQueue,
    TransportError,
    WorkQueue,
    drain,
    payload_key,
)

BATCH_ENDPOINTS = (
    "/api/v1/batch/submit",
    "/api/v1/batch/poll",
    "/api/v1/results/has",
    "/api/v1/results/discard_many",
)

PER_TASK_POLL_ENDPOINTS = (
    "/api/v1/results/get",
    "/api/v1/failed",
    "/api/v1/lease",
    "/api/v1/submit",
)


def sample_payload(tag: int = 0):
    return {"kind": "test", "tag": tag}


def echo_handler(payload):
    return {"echo": payload["tag"]}


@pytest.fixture()
def coordinator(tmp_path):
    queue = WorkQueue(tmp_path / "queue", lease_ttl=60)
    server = CoordinatorServer(queue, port=0, quiet=True)
    server.serve_in_thread()
    yield server
    server.stop()


@pytest.fixture()
def remote(coordinator):
    return RemoteWorkQueue(coordinator.url, retries=1, backoff=0.05)


@pytest.fixture()
def legacy_coordinator(coordinator):
    """The same coordinator minus the protocol-2 routes: how an old
    (PR 4) coordinator answers a new client — 404 on every batch
    endpoint, per-task endpoints untouched."""
    for endpoint in BATCH_ENDPOINTS:
        del coordinator.routes[endpoint]
    return coordinator


class TestFileQueueBatchDefaults:
    """The contract's default loop implementations on the file queue."""

    def test_submit_many_matches_per_task_ids(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_ttl=60)
        payloads = [sample_payload(i) for i in range(4)]
        ids = queue.submit_many(payloads)
        assert ids == [payload_key(p) for p in payloads]
        assert queue.pending_count() == 4
        # Idempotent, like submit.
        assert queue.submit_many(payloads) == ids
        assert queue.pending_count() == 4

    def test_submit_many_empty(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_ttl=60)
        assert queue.submit_many([]) == []

    def test_poll_many_reports_every_state(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_ttl=60)
        done, poisoned, leased, missing = (
            sample_payload(0),
            sample_payload(1),
            sample_payload(2),
            sample_payload(3),
        )
        ids = queue.submit_many([done, poisoned, leased])

        task = queue.claim()  # ids are sorted; claim order follows
        claimed = {task.task_id}
        queue.results.put(task.task_id, {"ok": True})
        queue.complete(task)
        task = queue.claim()
        claimed.add(task.task_id)
        queue.fail(task, error="RuntimeError: poison")
        task = queue.claim()
        claimed.add(task.task_id)
        assert claimed == set(ids)

        snapshot = queue.poll_many(ids + [payload_key(missing)])
        states = {
            key: (
                entry["result"] is not None,
                entry["failed"],
                entry["lease_live"],
            )
            for key, entry in snapshot.items()
        }
        by_payload = {payload_key(p): p["tag"] for p in (done, poisoned, leased)}
        for key, (has_result, failed, lease_live) in states.items():
            tag = by_payload.get(key)
            if has_result:
                assert not failed and not lease_live
                assert snapshot[key]["result"] == {"ok": True}
            elif failed:
                assert "poison" in snapshot[key]["error"]
                assert tag is not None
            elif lease_live:
                assert tag is not None
            else:  # the never-submitted id: all states negative
                assert key == payload_key(missing)
        assert sum(1 for s in states.values() if s[0]) == 1
        assert sum(1 for s in states.values() if s[1]) == 1
        assert sum(1 for s in states.values() if s[2]) == 1


class TestRemoteBatch:
    def test_batch_submit_round_trip(self, coordinator, remote):
        payloads = [sample_payload(i) for i in range(5)]
        ids = remote.submit_many(payloads)
        assert ids == [payload_key(p) for p in payloads]
        assert coordinator.queue.pending_count() == 5
        assert coordinator.request_counts["/api/v1/batch/submit"] == 1
        assert coordinator.request_counts["/api/v1/submit"] == 0

    def test_poll_many_is_one_round_trip(self, coordinator, remote):
        ids = remote.submit_many([sample_payload(i) for i in range(10)])
        before = remote.round_trips
        snapshot = remote.poll_many(ids)
        assert remote.round_trips == before + 1
        assert coordinator.request_counts["/api/v1/batch/poll"] == 1
        assert set(snapshot) == set(ids)
        for entry in snapshot.values():
            assert entry["result"] is None
            assert not entry["failed"]
            assert not entry["lease_live"]

    def test_poll_many_empty_is_free(self, remote):
        before = remote.round_trips
        assert remote.poll_many([]) == {}
        assert remote.submit_many([]) == []
        assert remote.round_trips == before

    def test_poll_many_sees_results_failures_and_leases(self, remote):
        ids = remote.submit_many([sample_payload(i) for i in range(3)])
        first = remote.claim()
        remote.results.put(first.task_id, {"ok": True})
        remote.complete(first)
        second = remote.claim()
        remote.fail(second, error="RuntimeError: poison")
        third = remote.claim()

        snapshot = remote.poll_many(ids)
        assert snapshot[first.task_id]["result"] == {"ok": True}
        assert snapshot[second.task_id]["failed"]
        assert "poison" in snapshot[second.task_id]["error"]
        assert snapshot[third.task_id]["lease_live"]

    def test_batch_poll_rejects_bad_ids(self, remote):
        with pytest.raises(TransportError, match="invalid task id"):
            remote.poll_many(["../../etc/passwd"])

    def test_discard_many_is_one_round_trip(self, coordinator, remote):
        blobs = [sample_payload(i) for i in range(5)]
        keys = [payload_key(p) for p in blobs]
        for key, blob in zip(keys, blobs):
            coordinator.queue.results.put(key, blob)
        remote.results.discard_many(keys)
        assert all(coordinator.queue.results.get(key) is None for key in keys)
        assert coordinator.request_counts["/api/v1/results/discard_many"] == 1
        assert coordinator.request_counts["/api/v1/results/discard"] == 0

    def test_requests_chunk_below_the_server_cap(
        self, coordinator, remote, monkeypatch
    ):
        import repro.runner.transport.client as client_module

        monkeypatch.setattr(client_module, "BATCH_CHUNK", 4)
        ids = remote.submit_many([sample_payload(i) for i in range(10)])
        assert len(ids) == 10
        assert coordinator.queue.pending_count() == 10
        assert coordinator.request_counts["/api/v1/batch/submit"] == 3
        snapshot = remote.poll_many(ids)
        assert set(snapshot) == set(ids)
        assert coordinator.request_counts["/api/v1/batch/poll"] == 3

    def test_batch_submit_rejects_non_object_payloads(self, remote):
        with pytest.raises(TransportError, match="payloads"):
            remote._call("batch/submit", {"payloads": [1, 2]})

    def test_batch_poll_defers_results_past_the_reply_budget(self, tmp_path):
        """A reply inlines result payloads only up to the body budget;
        the rest look pending and arrive on subsequent polls, so a
        warm bench-scale sweep can't force one giant reply."""
        queue = WorkQueue(tmp_path / "q", lease_ttl=60)
        server = CoordinatorServer(
            queue, port=0, quiet=True, max_body_bytes=10_000
        )
        server.serve_in_thread()
        try:
            client = RemoteWorkQueue(server.url, retries=1, backoff=0.05)
            blobs = [{"blob": str(i) * 6_000} for i in range(3)]
            keys = [payload_key(blob) for blob in blobs]
            for key, blob in zip(keys, blobs):
                queue.results.put(key, blob)
            collected = {}
            rounds = 0
            pending = list(keys)
            while pending and rounds < 5:
                snapshot = client.poll_many(pending)
                for key in pending:
                    result = (snapshot.get(key) or {}).get("result")
                    if result is not None:
                        collected[key] = result
                pending = [key for key in pending if key not in collected]
                rounds += 1
            assert collected == dict(zip(keys, blobs))
            assert rounds >= 2  # the budget forced progressive delivery
        finally:
            server.stop()

    def test_duplicate_ids_cannot_retro_defer_a_delivered_result(
        self, tmp_path
    ):
        """A duplicate id revisits the same entry dict; with the budget
        spent it must not null out the result its first occurrence
        already delivered (ids are deduped before the budget walk)."""
        queue = WorkQueue(tmp_path / "q", lease_ttl=60)
        server = CoordinatorServer(
            queue, port=0, quiet=True, max_body_bytes=10_000
        )
        server.serve_in_thread()
        try:
            blob = {"blob": "d" * 6_000}  # > half the budget
            key = payload_key(blob)
            queue.results.put(key, blob)
            client = RemoteWorkQueue(server.url, retries=1, backoff=0.05)
            # Raw call: bypasses the client's own dedup to hit the
            # server path directly.
            reply = client._call("batch/poll", {"task_ids": [key, key]})
            assert reply["tasks"][key]["result"] == blob
        finally:
            server.stop()

    def test_deferred_cache_hits_are_not_resubmitted(self, tmp_path):
        """Budget-deferred results are hits, not misses: the submitter
        must wait for them instead of re-uploading their payloads."""
        queue = WorkQueue(tmp_path / "q", lease_ttl=60)
        server = CoordinatorServer(
            queue, port=0, quiet=True, max_body_bytes=10_000
        )
        server.serve_in_thread()
        try:
            payloads = [sample_payload(i) for i in range(3)]
            blobs = [{"blob": str(i) * 6_000} for i in range(3)]
            for payload, blob in zip(payloads, blobs):
                queue.results.put(payload_key(payload), blob)
            backend = HttpBackend(
                server.url, drain=False, timeout=30, poll_interval=0.05
            )
            assert backend.execute(payloads) == blobs
            assert server.request_counts["/api/v1/batch/submit"] == 0
            assert server.request_counts["/api/v1/batch/poll"] >= 2
        finally:
            server.stop()

    def test_batch_submit_item_count_capped(self, remote):
        payloads = [{"t": i} for i in range(10_001)]
        with pytest.raises(TransportError) as excinfo:
            remote._call("batch/submit", {"payloads": payloads})
        assert excinfo.value.status == 413


class TestRoundTripsPerTick:
    """The tentpole's acceptance: poll cost is O(ticks), not O(N x ticks)."""

    def test_cache_hit_sweep_costs_one_round_trip(self, coordinator):
        queue = coordinator.queue
        payloads = [sample_payload(i) for i in range(8)]
        for payload in payloads:
            queue.results.put(payload_key(payload), echo_handler(payload))
        backend = HttpBackend(coordinator.url, drain=False, timeout=30)
        results = backend.execute(payloads)
        assert results == [echo_handler(p) for p in payloads]
        # Everything was already done: one batch/poll answered all 8.
        assert coordinator.request_counts["/api/v1/batch/poll"] == 1
        for endpoint in PER_TASK_POLL_ENDPOINTS:
            assert coordinator.request_counts[endpoint] == 0

    def test_waiting_sweep_never_touches_per_task_endpoints(
        self, coordinator
    ):
        payloads = [sample_payload(i) for i in range(6)]
        worker = threading.Thread(
            target=drain,
            args=(coordinator.queue, echo_handler),
            kwargs={"idle_timeout": 10.0, "poll_interval": 0.02},
        )
        worker.start()
        try:
            backend = HttpBackend(
                coordinator.url, drain=False, timeout=60, poll_interval=0.05
            )
            results = backend.execute(payloads)
        finally:
            worker.join()
        assert results == [echo_handler(p) for p in payloads]
        # One batched submit, batched polls, zero per-task traffic: the
        # request count per tick is independent of the sweep size.
        assert coordinator.request_counts["/api/v1/batch/submit"] == 1
        assert coordinator.request_counts["/api/v1/batch/poll"] >= 1
        for endpoint in PER_TASK_POLL_ENDPOINTS:
            assert coordinator.request_counts[endpoint] == 0

    def test_no_cache_sweep_discards_in_one_round_trip(self, coordinator):
        payloads = [sample_payload(i) for i in range(6)]
        for payload in payloads:
            coordinator.queue.results.put(
                payload_key(payload), {"stale": True}
            )
        worker = threading.Thread(
            target=drain,
            args=(coordinator.queue, echo_handler),
            kwargs={"idle_timeout": 10.0, "poll_interval": 0.02},
        )
        worker.start()
        try:
            backend = HttpBackend(
                coordinator.url,
                drain=False,
                timeout=60,
                poll_interval=0.05,
                reuse_results=False,
            )
            results = backend.execute(payloads)
        finally:
            worker.join()
        assert results == [echo_handler(p) for p in payloads]
        assert coordinator.request_counts["/api/v1/results/discard_many"] == 1
        assert coordinator.request_counts["/api/v1/results/discard"] == 0

    def test_failed_task_surfaces_through_batch_poll(self, coordinator):
        payload = sample_payload(13)
        queue = coordinator.queue
        queue.submit(payload)
        task = queue.claim()
        queue.fail(task, error="RuntimeError: deterministic poison")
        backend = HttpBackend(coordinator.url, drain=False, timeout=30)
        with pytest.raises(QueueTaskFailed, match="deterministic poison"):
            backend.execute([payload])
        for endpoint in PER_TASK_POLL_ENDPOINTS:
            assert coordinator.request_counts[endpoint] == 0


class TestGzip:
    def test_request_bodies_compressed(self, coordinator):
        client = RemoteWorkQueue(
            coordinator.url, retries=1, backoff=0.05, gzip_mode="always"
        )
        blob = {"blob": "x" * 50_000}
        key = payload_key(blob)
        client.results.put(key, blob)
        # Stored intact on the coordinator's disk ...
        assert coordinator.queue.results.get(key) == blob
        # ... but the wire carried the compressed form.
        assert client.bytes_sent < 10_000

    def test_replies_compressed_for_gzip_clients(self, coordinator, remote):
        blob = {"blob": "y" * 50_000}
        key = payload_key(blob)
        coordinator.queue.results.put(key, blob)
        assert remote.results.get(key) == blob
        assert remote.bytes_received < 10_000

    def test_reply_compression_visible_on_the_wire(self, coordinator):
        blob = {"blob": "z" * 50_000}
        key = payload_key(blob)
        coordinator.queue.results.put(key, blob)
        host, port = coordinator.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request(
                "POST",
                "/api/v1/results/get",
                body=json.dumps({"key": key}),
                headers={
                    "Content-Type": "application/json",
                    "Accept-Encoding": "gzip",
                },
            )
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Encoding") == "gzip"
            assert response.getheader("X-Repro-Protocol") == "2"
            reply = json.loads(gzip.decompress(response.read()))
            assert reply["result"] == blob
        finally:
            conn.close()

    def test_gzip_q0_refusal_honored(self, coordinator):
        """`Accept-Encoding: gzip;q=0` is an explicit refusal (RFC
        9110): the reply must come back identity-encoded."""
        blob = {"blob": "q" * 50_000}
        key = payload_key(blob)
        coordinator.queue.results.put(key, blob)
        host, port = coordinator.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request(
                "POST",
                "/api/v1/results/get",
                body=json.dumps({"key": key}),
                headers={
                    "Content-Type": "application/json",
                    "Accept-Encoding": "gzip;q=0",
                },
            )
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Encoding") is None
            assert json.loads(response.read())["result"] == blob
        finally:
            conn.close()

    def test_auto_gzip_downgrades_after_coordinator_swap(
        self, coordinator, monkeypatch
    ):
        """A coordinator replaced mid-sweep by a PR 4 build (no gzip
        support) must not kill the sweep: the first bounced gzip body
        pins the client back to identity encoding, like the batch 404
        fallback."""
        from repro.runner.transport import server as server_module

        def pr4_read_body(handler):
            length = int(handler.headers.get("Content-Length", 0) or 0)
            raw = handler.rfile.read(length) if length else b"{}"
            try:
                parsed = json.loads(raw or b"{}")
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise server_module._RequestError(
                    400, f"request body is not JSON: {exc}"
                ) from exc
            return parsed

        client = RemoteWorkQueue(coordinator.url, retries=2, backoff=0.01)
        client.stats()  # learn protocol 2 while the new build serves
        assert client._peer_gzip

        monkeypatch.setattr(
            server_module.CoordinatorHandler, "_read_body", pr4_read_body
        )
        blob = {"blob": "x" * 50_000}
        key = payload_key(blob)
        client.results.put(key, blob)  # gzip bounces; retried identity
        assert coordinator.queue.results.get(key) == blob
        assert client._gzip_refused
        trips = client.round_trips
        client.results.put(key, blob)  # pinned: one identity attempt
        assert client.round_trips == trips + 1

    def test_small_replies_stay_identity(self, coordinator):
        host, port = coordinator.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request(
                "GET", "/api/v1/stats", headers={"Accept-Encoding": "gzip"}
            )
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Encoding") is None
            json.loads(response.read())
        finally:
            conn.close()

    def test_auto_mode_waits_for_the_peer_to_advertise(self, coordinator):
        client = RemoteWorkQueue(coordinator.url, retries=1, backoff=0.05)
        assert not client._peer_gzip  # nothing heard from the peer yet
        client.stats()
        # The reply's X-Repro-Protocol header unlocked request gzip.
        assert client._peer_gzip
        blob = {"blob": "w" * 50_000}
        sent_before = client.bytes_sent
        client.results.put(payload_key(blob), blob)
        assert client.bytes_sent - sent_before < 10_000

    def test_decompressed_size_limit_enforced(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_ttl=60)
        server = CoordinatorServer(
            queue, port=0, quiet=True, max_body_bytes=5_000
        )
        server.serve_in_thread()
        try:
            client = RemoteWorkQueue(
                server.url, retries=1, backoff=0.05, gzip_mode="always"
            )
            blob = {"blob": "x" * 50_000}  # ~300 bytes gzipped
            with pytest.raises(TransportError) as excinfo:
                client.results.put(payload_key(blob), blob)
            assert excinfo.value.status == 413
            assert "decompressed" in str(excinfo.value)
        finally:
            server.stop()

    def test_corrupt_gzip_body_is_400(self, coordinator):
        host, port = coordinator.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request(
                "POST",
                "/api/v1/requeue",
                body=b"not gzip at all",
                headers={
                    "Content-Type": "application/json",
                    "Content-Encoding": "gzip",
                },
            )
            response = conn.getresponse()
            assert response.status == 400
            assert b"gzip" in response.read()
        finally:
            conn.close()

    def test_unknown_content_encoding_is_415(self, coordinator):
        host, port = coordinator.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request(
                "POST",
                "/api/v1/requeue",
                body=b"{}",
                headers={
                    "Content-Type": "application/json",
                    "Content-Encoding": "br",
                },
            )
            assert conn.getresponse().status == 415
        finally:
            conn.close()

    def test_gzip_mode_validated(self):
        with pytest.raises(ValueError, match="gzip_mode"):
            RemoteWorkQueue("http://127.0.0.1:9", gzip_mode="sometimes")


class TestInterop:
    """Old peers and new peers must keep understanding each other."""

    def test_new_client_falls_back_against_old_coordinator(
        self, legacy_coordinator
    ):
        client = RemoteWorkQueue(
            legacy_coordinator.url, retries=1, backoff=0.05
        )
        payloads = [sample_payload(i) for i in range(3)]
        ids = client.submit_many(payloads)
        assert ids == [payload_key(p) for p in payloads]
        assert client._batch_ok is False  # pinned after the first 404
        assert legacy_coordinator.queue.pending_count() == 3
        snapshot = client.poll_many(ids)
        assert set(snapshot) == set(ids)
        # The fallback really is the per-task protocol.
        counts = legacy_coordinator.request_counts
        assert counts["/api/v1/submit"] == 3
        assert counts["/api/v1/results/get"] >= 3

    def test_membership_falls_back_to_get(self, legacy_coordinator):
        client = RemoteWorkQueue(
            legacy_coordinator.url, retries=1, backoff=0.05
        )
        key = payload_key(sample_payload())
        assert key not in client.results
        client.results.put(key, {"ok": True})
        assert key in client.results

    def test_discard_many_falls_back_to_per_key(self, legacy_coordinator):
        client = RemoteWorkQueue(
            legacy_coordinator.url, retries=1, backoff=0.05
        )
        keys = [payload_key(sample_payload(i)) for i in range(3)]
        for key in keys:
            client.results.put(key, {"ok": True})
        client.results.discard_many(keys)
        queue = legacy_coordinator.queue
        assert all(queue.results.get(key) is None for key in keys)
        assert (
            legacy_coordinator.request_counts["/api/v1/results/discard"] == 3
        )

    def test_http_backend_sweep_completes_against_old_coordinator(
        self, legacy_coordinator
    ):
        payloads = [sample_payload(i) for i in range(4)]
        worker = threading.Thread(
            target=drain,
            args=(legacy_coordinator.queue, echo_handler),
            kwargs={"idle_timeout": 10.0, "poll_interval": 0.02},
        )
        worker.start()
        try:
            backend = HttpBackend(
                legacy_coordinator.url,
                drain=False,
                timeout=60,
                poll_interval=0.05,
            )
            results = backend.execute(payloads)
        finally:
            worker.join()
        assert results == [echo_handler(p) for p in payloads]

    def test_first_auto_request_is_identity_encoded(self, coordinator):
        """What keeps a new client safe against an old coordinator: it
        never gzips before the peer has advertised support, so the
        first request would parse on a PR 4 server too."""
        client = RemoteWorkQueue(coordinator.url, retries=1, backoff=0.05)
        payload = {"payload": sample_payload() | {"pad": "p" * 5_000}}
        client._call("submit", payload)
        assert client.bytes_sent >= len(json.dumps(payload))

    def test_old_style_client_still_speaks_to_new_coordinator(
        self, coordinator
    ):
        """A PR 4 client: per-task endpoints, identity encoding, no
        Accept-Encoding — byte-for-byte the old wire format."""
        host, port = coordinator.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request(
                "POST",
                "/api/v1/submit",
                body=json.dumps({"payload": sample_payload()}),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Encoding") is None
            reply = json.loads(response.read())
            assert reply["task_id"] == payload_key(sample_payload())
        finally:
            conn.close()


class TestBodyLengthValidation:
    """`_read_body` never trusts Content-Length (PR 4 review fix)."""

    def _post(self, coordinator, headers, body=None):
        host, port = coordinator.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request("POST", "/api/v1/requeue", body=body, headers=headers)
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def test_missing_content_length_is_411(self, coordinator):
        # http.client always fabricates a Content-Length for POST, so
        # speak raw HTTP to really omit the header.
        import socket

        host, port = coordinator.server_address[:2]
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(
                b"POST /api/v1/requeue HTTP/1.1\r\n"
                b"Host: coordinator\r\n\r\n"
            )
            reply = sock.recv(65536)
        assert reply.split(b"\r\n", 1)[0].split(b" ")[1] == b"411"
        assert b"Content-Length" in reply

    def test_negative_content_length_is_400(self, coordinator):
        status, detail = self._post(
            coordinator, {"Content-Length": "-1"}, body=b""
        )
        assert status == 400
        assert b"Content-Length" in detail

    def test_non_numeric_content_length_is_400(self, coordinator):
        status, detail = self._post(
            coordinator, {"Content-Length": "banana"}, body=b""
        )
        assert status == 400
        assert b"Content-Length" in detail

    def test_zero_content_length_still_works(self, coordinator):
        status, detail = self._post(
            coordinator, {"Content-Length": "0"}, body=b""
        )
        assert status == 200
        assert json.loads(detail) == {"requeued": 0}


class TestWorkerNameValidation:
    """`/claim` sanitizes worker tags before they name lease files."""

    @pytest.mark.parametrize(
        "worker",
        ["../evil", "a/b", "a b", "dot.dot", "x" * 65],
        ids=["traversal", "slash", "space", "dot", "too-long"],
    )
    def test_garbage_worker_names_rejected(self, remote, worker):
        with pytest.raises(TransportError, match="invalid worker"):
            remote.claim(worker)

    def test_non_string_worker_rejected(self, remote):
        with pytest.raises(TransportError, match="invalid worker"):
            remote._call("claim", {"worker": {"name": "object"}})

    def test_valid_and_empty_workers_accepted(self, remote):
        remote.submit(sample_payload())
        task = remote.claim("fleet-worker_1")
        assert task is not None
        remote.complete(task)
        assert remote.claim("") is None  # empty tag = anonymous, fine


class TestResultsHas:
    def test_membership_without_payload_transfer(self, coordinator, remote):
        blob = {"blob": "m" * 50_000}
        key = payload_key(blob)
        coordinator.queue.results.put(key, blob)
        received_before = remote.bytes_received
        assert key in remote.results
        assert remote.bytes_received - received_before < 1_000
        assert coordinator.request_counts["/api/v1/results/has"] == 1
        assert coordinator.request_counts["/api/v1/results/get"] == 0

    def test_membership_miss(self, remote):
        assert payload_key(sample_payload()) not in remote.results


class TestLeaseTtlRefresh:
    def test_ttl_refreshes_after_coordinator_restart(self, tmp_path):
        root = tmp_path / "q"
        first = CoordinatorServer(
            WorkQueue(root, lease_ttl=60), port=0, quiet=True
        )
        first.serve_in_thread()
        port = first.server_address[1]
        client = RemoteWorkQueue(
            first.url,
            retries=1,
            backoff=0.05,
            timeout=2.0,
            lease_ttl_max_age=0.05,
        )
        assert client.lease_ttl == 60.0
        first.stop()
        second = CoordinatorServer(
            WorkQueue(root, lease_ttl=120), port=port, quiet=True
        )
        second.serve_in_thread()
        try:
            time.sleep(0.06)  # past the staleness window
            assert client.lease_ttl == 120.0
        finally:
            second.stop()

    def test_stale_ttl_survives_an_unreachable_coordinator(self, tmp_path):
        server = CoordinatorServer(
            WorkQueue(tmp_path / "q", lease_ttl=60), port=0, quiet=True
        )
        server.serve_in_thread()
        client = RemoteWorkQueue(
            server.url,
            retries=0,
            backoff=0.01,
            timeout=0.5,
            lease_ttl_max_age=0.0,
        )
        assert client.lease_ttl == 60.0
        server.stop()
        # Refresh fails; the stale value is better than an exception
        # mid-heartbeat.
        assert client.lease_ttl == 60.0

    def test_fresh_ttl_is_not_refetched(self, coordinator, remote):
        assert remote.lease_ttl == 60.0
        trips = remote.round_trips
        assert remote.lease_ttl == 60.0  # within the staleness window
        assert remote.round_trips == trips
