"""Tests for the unified telemetry subsystem (``repro.obs``).

The load-bearing properties:

- The metrics registry survives concurrent writers without losing
  counts, and histogram snapshots keep the exact JSON shape the serving
  tier has exposed since the latency histogram landed.
- Request tracing: every reply echoes ``X-Repro-Request-Id``; a
  well-formed client id is adopted, a bad one replaced; one id follows
  a request through serve (``/infer`` body + events) and through the
  coordinator (claim -> complete on one id).
- The event ring stays bounded and reports what it dropped.
- The engine profiler is a no-op when disabled and *bitwise invisible*
  when enabled: same outputs, same reuse decisions.
- ``/metrics.prom`` renders valid Prometheus text exposition on both
  servers while the JSON ``/metrics`` payload keeps its keys.
"""

import gzip
import json
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.core.engine import MemoizationScheme, apply_memoization, restore
from repro.core.stats import ReuseStats
from repro.models.zoo import load_benchmark
from repro.nn import LSTMLayer, RNNStack
from repro.obs import (
    Counter,
    EventLog,
    Gauge,
    Histogram,
    MetricsRegistry,
    Profiler,
    REQUEST_ID_HEADER,
    ensure_request_id,
    new_request_id,
    profiled,
    valid_request_id,
)
from repro.obs import profiler as profiler_module
from repro.obs import prom
from repro.obs.top import (
    percentile_from_buckets,
    render_coordinator,
    render_serve,
    run_top,
)
from repro.runner import CoordinatorServer, RemoteWorkQueue, WorkQueue
from repro.serve import InferenceServer, ServeClient, ServeState, run_loadgen

THETA = 0.05


# -- registry ----------------------------------------------------------------


class TestRegistry:
    def test_counter(self):
        counter = Counter("c_total", "a count")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_counter_set_total_never_lowers(self):
        counter = Counter("c_total")
        counter.set_total(10)
        counter.set_total(4)
        assert counter.value() == 10

    def test_labeled_series(self):
        counter = Counter("hits_total", label_names=("path",))
        counter.inc(labels=("/a",))
        counter.inc(labels=("/a",))
        counter.inc(labels=("/b",))
        assert counter.series() == {("/a",): 2, ("/b",): 1}
        with pytest.raises(ValueError):
            counter.inc()  # missing label

    def test_gauge(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.inc(-2)
        assert gauge.value() == 3.0

    def test_histogram_snapshot_shape(self):
        hist = Histogram("h_ms", bounds_ms=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 5000.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["overflow"] == 1
        assert snap["max_ms"] == 5000.0
        assert [b["count"] for b in snap["buckets"]] == [1, 2, 3]
        assert snap["sum_ms"] == pytest.approx(5055.5)
        # Unobserved series snapshot as all-zero, same shape.
        empty = Histogram("e_ms", bounds_ms=(1.0,)).snapshot()
        assert empty["count"] == 0 and len(empty["buckets"]) == 1

    def test_registry_get_or_create_and_kind_collision(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total")
        assert registry.counter("x_total") is a
        with pytest.raises(ValueError):
            registry.gauge("x_total")
        with pytest.raises(ValueError):
            registry.register(Counter("x_total"))
        assert [m.name for m in registry.collect()] == ["x_total"]

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            Counter("0bad")
        with pytest.raises(ValueError):
            Counter("ok_total", label_names=("bad-label",))

    def test_thread_hammer(self):
        registry = MetricsRegistry()
        counter = registry.counter("hammer_total", label_names=("t",))
        hist = registry.histogram("hammer_ms", bounds_ms=(1.0, 10.0))
        threads, per_thread = 8, 500
        barrier = threading.Barrier(threads)

        def work(tag):
            barrier.wait()
            for i in range(per_thread):
                counter.inc(labels=(tag,))
                hist.observe(float(i % 20))

        pool = [
            threading.Thread(target=work, args=(str(t),)) for t in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert sum(counter.series().values()) == threads * per_thread
        assert hist.snapshot()["count"] == threads * per_thread


# -- event ring --------------------------------------------------------------


class TestEventLog:
    def test_bounded_ring_reports_drops(self):
        log = EventLog(capacity=4)
        for i in range(6):
            log.emit("tick", n=i)
        snap = log.snapshot()
        assert snap["capacity"] == 4
        assert snap["total"] == 6
        assert snap["dropped"] == 2
        kept = [event["n"] for event in snap["events"]]
        assert kept == [2, 3, 4, 5]  # oldest-first, oldest two dropped
        seqs = [event["seq"] for event in snap["events"]]
        assert seqs == sorted(seqs)

    def test_kind_filter_and_limit(self):
        log = EventLog(capacity=16)
        for i in range(4):
            log.emit("a", n=i)
            log.emit("b", n=i)
        only_a = log.snapshot(kind="a")["events"]
        assert [e["kind"] for e in only_a] == ["a"] * 4
        last_two = log.snapshot(limit=2)["events"]
        assert [e["n"] for e in last_two] == [3, 3]

    def test_events_carry_timestamps(self):
        log = EventLog()
        log.emit("x")
        event = log.snapshot()["events"][0]
        assert event["ts"] > 0 and event["kind"] == "x"


# -- tracing -----------------------------------------------------------------


class TestTracing:
    def test_minted_ids_are_valid(self):
        ids = {new_request_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(valid_request_id(i) for i in ids)

    def test_valid_request_id(self):
        assert valid_request_id("abc-DEF_1.2")
        assert not valid_request_id("")
        assert not valid_request_id("a" * 65)
        assert not valid_request_id("has space")
        assert not valid_request_id(None)

    def test_ensure_adopts_or_replaces(self):
        assert ensure_request_id("client-id-1") == "client-id-1"
        replaced = ensure_request_id("bad id!")
        assert replaced != "bad id!" and valid_request_id(replaced)
        assert valid_request_id(ensure_request_id(None))


# -- Prometheus exposition ---------------------------------------------------


class TestProm:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter(
            "req_total", "requests", label_names=("path",)
        ).inc(labels=('/a"b\\c',))
        registry.gauge("depth", "queue depth").set(3)
        hist = registry.histogram("lat_ms", "latency", bounds_ms=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(99.0)
        return registry

    def test_render_validates(self):
        text = prom.render(self._registry())
        samples = prom.validate_exposition(text)
        assert samples >= 6  # counter + gauge + 3 buckets + sum + count
        assert "# TYPE req_total counter" in text
        assert 'le="+Inf"} 2' in text

    def test_escaping_round_trips(self):
        text = prom.render(self._registry())
        assert '\\"' in text and "\\\\" in text
        prom.validate_exposition(text)

    def test_validator_rejects_garbage(self):
        with pytest.raises(ValueError):
            prom.validate_exposition("req_total 1\n")  # no TYPE declared
        with pytest.raises(ValueError):
            prom.validate_exposition(
                "# TYPE x counter\nx 1\nx 2\n"
            )  # duplicate series
        with pytest.raises(ValueError):
            prom.validate_exposition(
                "# TYPE h histogram\n"
                'h_bucket{le="1.0"} 1\nh_sum 1\nh_count 1\n'
            )  # no +Inf bucket

    def test_module_cli(self, tmp_path, capsys):
        good = tmp_path / "good.prom"
        good.write_text(prom.render(self._registry()))
        assert prom.main([str(good)]) == 0
        assert "ok:" in capsys.readouterr().out
        bad = tmp_path / "bad.prom"
        bad.write_text("not a metric line\n")
        assert prom.main([str(bad)]) == 1
        assert "invalid exposition" in capsys.readouterr().err


# -- engine profiler ---------------------------------------------------------


class TestProfiler:
    def _memoized_stack(self):
        rng = np.random.default_rng(3)
        stack = RNNStack([LSTMLayer(6, 12, rng=rng)])
        stats = ReuseStats()
        scheme = MemoizationScheme(theta=0.4, predictor="bnn", vectorized=True)
        replacements = apply_memoization(stack, scheme, stats)
        inputs = np.random.default_rng(5).standard_normal((4, 10, 6))
        return stack, stats, replacements, inputs

    def test_disabled_by_default(self):
        assert profiler_module.ACTIVE is None

    def test_profiled_restores_previous(self):
        with profiled() as outer:
            assert profiler_module.ACTIVE is outer
            with profiled() as inner:
                assert profiler_module.ACTIVE is inner
            assert profiler_module.ACTIVE is outer
        assert profiler_module.ACTIVE is None

    def test_enabled_is_bitwise_invisible(self):
        stack, stats, replacements, inputs = self._memoized_stack()
        try:
            baseline = stack(inputs)
            reused_off = dict(stats.reused)
            total_off = dict(stats.total)
            stats.reset()
            with profiled() as profiler:
                profiled_out = stack(inputs)
            np.testing.assert_array_equal(baseline, profiled_out)
            assert dict(stats.reused) == reused_off
            assert dict(stats.total) == total_off
        finally:
            restore(replacements)
        snap = profiler.snapshot()
        (layer_name,) = snap["layers"].keys()
        layer = snap["layers"][layer_name]
        assert layer["steps"] == 10
        assert layer["step_s"] > 0
        assert layer["compute_s"] >= 0
        phases = layer["phases"]
        assert phases  # at least one gate phase recorded
        profiled_reuse = sum(p["reused"] for p in phases.values())
        assert profiled_reuse == sum(stats.reused.values())

    def test_table_allocations_reported_from_cold_path(self):
        stack, _, replacements, inputs = self._memoized_stack()
        try:
            with profiled() as profiler:
                stack(inputs)  # first forward: buffers allocate under profiling
                stack(inputs)  # same batch shape: no new allocation
        finally:
            restore(replacements)
        allocations = profiler.snapshot()["table_allocations"]
        assert allocations
        assert all(a["batch"] == inputs.shape[0] for a in allocations)
        assert len({(a["layer"], a["phase"]) for a in allocations}) == len(
            allocations
        )

    def test_snapshot_reuse_fraction(self):
        profiler = Profiler()
        profiler.record_phase("l", 0, ("i",), 0.1, 0.05, reused=3, total=4)
        phase = profiler.snapshot()["layers"]["l"]["phases"]["0"]
        assert phase["reuse_fraction"] == pytest.approx(0.75)


# -- serve integration -------------------------------------------------------


def _serve(benchmark, **kwargs):
    state = ServeState(benchmark, MemoizationScheme(theta=THETA))
    server = InferenceServer(state, quiet=True, **kwargs)
    server.serve_in_thread()

    def shutdown():
        server.stop()
        state.unwrap()

    return server, state, shutdown


def _fetch_raw(url, path, token=None, request_id=None):
    headers = {}
    if token:
        headers["Authorization"] = f"Bearer {token}"
    if request_id is not None:
        headers[REQUEST_ID_HEADER] = request_id
    request = urllib.request.Request(url + path, headers=headers)
    with urllib.request.urlopen(request, timeout=30) as reply:
        body = reply.read()
        if reply.headers.get("Content-Encoding") == "gzip":
            body = gzip.decompress(body)
        return reply.status, dict(reply.headers), body.decode("utf-8")


@pytest.fixture(scope="module")
def imdb():
    return load_benchmark("imdb", scale="tiny")


@pytest.fixture(scope="module")
def imdb_row(imdb):
    return imdb.dataset.tokens[int(imdb.test_idx[0])].tolist()


class TestServeTelemetry:
    def test_request_id_minted_and_echoed(self, imdb, imdb_row):
        server, _, shutdown = _serve(imdb)
        try:
            client = ServeClient(server.url)
            reply = client.post("/api/v1/infer", {"input": imdb_row})
            assert reply["request_id"] == client.last_request_id
            assert valid_request_id(reply["request_id"])
        finally:
            shutdown()

    def test_client_id_adopted_and_bad_id_replaced(self, imdb):
        server, _, shutdown = _serve(imdb)
        try:
            _, headers, _ = _fetch_raw(
                server.url, "/api/v1/health", request_id="trace-me.1"
            )
            assert headers[REQUEST_ID_HEADER] == "trace-me.1"
            _, headers, _ = _fetch_raw(
                server.url, "/api/v1/health", request_id="bad id!"
            )
            echoed = headers[REQUEST_ID_HEADER]
            assert echoed != "bad id!" and valid_request_id(echoed)
        finally:
            shutdown()

    def test_timings_spans_sum_to_total(self, imdb, imdb_row):
        server, _, shutdown = _serve(imdb)
        try:
            client = ServeClient(server.url)
            reply = client.post("/api/v1/infer", {"input": imdb_row})
            timings = reply["timings_ms"]
            stages = {k: v for k, v in timings.items() if k != "total"}
            assert set(stages) == {
                "validate", "queue_wait", "gather", "forward",
                "finalize", "collect",
            }
            assert all(v >= 0 for v in stages.values())
            assert timings["total"] == pytest.approx(
                sum(stages.values()), rel=1e-9
            )
        finally:
            shutdown()

    def test_request_id_lands_in_events(self, imdb, imdb_row):
        server, _, shutdown = _serve(imdb)
        try:
            client = ServeClient(server.url)
            reply = client.post("/api/v1/infer", {"input": imdb_row})
            events = client.get("/api/v1/events")["events"]
            infer_events = [e for e in events if e["kind"] == "infer"]
            assert reply["request_id"] in {
                e["request_id"] for e in infer_events
            }
            client.put("/api/v1/theta", {"theta": 0.2})
            events = client.get("/api/v1/events")["events"]
            retunes = [e for e in events if e["kind"] == "retune"]
            assert retunes and retunes[-1]["theta"] == 0.2
            assert "theta" in retunes[-1]["changed"]
        finally:
            shutdown()

    def test_session_events_and_timings(self):
        bench = load_benchmark("deepspeech2", scale="tiny")
        chunk = bench.dataset.features[int(bench.test_idx[0])][:4].tolist()
        server, _, shutdown = _serve(bench)
        try:
            client = ServeClient(server.url)
            opened = client.post("/api/v1/session/open", {})
            session = opened["session"]
            reply = client.post(
                "/api/v1/infer", {"session": session, "input": chunk}
            )
            timings = reply["timings_ms"]
            stages = {k: v for k, v in timings.items() if k != "total"}
            assert set(stages) == {
                "validate", "session_wait", "forward", "finalize",
            }
            assert timings["total"] == pytest.approx(
                sum(stages.values()), rel=1e-9
            )
            client.post("/api/v1/session/close", {"session": session})
            kinds = [
                e["kind"] for e in client.get("/api/v1/events")["events"]
            ]
            assert "session_opened" in kinds and "session_closed" in kinds
        finally:
            shutdown()

    def test_metrics_prom_valid_and_json_metrics_unchanged(
        self, imdb, imdb_row
    ):
        server, _, shutdown = _serve(imdb, token="s3cret")
        try:
            client = ServeClient(server.url, token="s3cret")
            client.post("/api/v1/infer", {"input": imdb_row})
            # Auth applies to the exposition too.
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _fetch_raw(server.url, "/metrics.prom")
            assert excinfo.value.code == 401
            status, headers, text = _fetch_raw(
                server.url, "/metrics.prom", token="s3cret"
            )
            assert status == 200
            assert headers["Content-Type"] == prom.PROM_CONTENT_TYPE
            assert prom.validate_exposition(text) > 0
            assert "repro_request_latency_ms_bucket" in text
            assert "repro_infer_requests_total 1" in text
            metrics = client.get("/api/v1/metrics")
            assert set(metrics) == {
                "model", "scheme", "uptime_s", "requests", "inference",
                "pool", "coalesce", "reuse", "sessions",
            }
        finally:
            shutdown()

    def test_loadgen_report_and_trace_agree(self, imdb, tmp_path):
        server, _, shutdown = _serve(imdb)
        try:
            out = tmp_path / "report.json"
            summary = run_loadgen(
                server.url,
                "imdb",
                requests=6,
                concurrency=2,
                batch=2,
                out=str(out),
            )
            report = json.loads(out.read_text())
            assert report["requests"] == summary["requests"] == 6
            assert sum(report["by_scheme_version"].values()) == 6
            sampled = report["requests_sampled"]
            assert sampled and all(r["request_id"] for r in sampled)
            assert all(
                set(r["timings_ms"]) >= {"total", "forward"} for r in sampled
            )
            stage_means = report["server_timings_ms"]
            assert stage_means["total"] > 0
            # The sampled ids are findable in the server's event ring.
            events = ServeClient(server.url).get("/api/v1/events")["events"]
            seen = {e.get("request_id") for e in events}
            assert {r["request_id"] for r in sampled} <= seen
        finally:
            shutdown()


# -- coordinator integration -------------------------------------------------


@pytest.fixture()
def coordinator(tmp_path):
    queue = WorkQueue(tmp_path / "queue", lease_ttl=60)
    server = CoordinatorServer(queue, port=0, quiet=True)
    server.serve_in_thread()
    yield server
    server.stop()


class TestCoordinatorTelemetry:
    def test_health(self, coordinator):
        client = RemoteWorkQueue(coordinator.url, retries=1, backoff=0.05)
        health = client._call("health", method="GET")
        assert health["ok"] is True
        assert health["writable"] is True
        assert health["protocol"] >= 1
        assert health["queue_dir"]

    def test_claim_to_complete_single_request_id(self, coordinator):
        client = RemoteWorkQueue(coordinator.url, retries=1, backoff=0.05)
        client.submit({"kind": "t", "tag": 1})
        task = client.claim("owner-a")
        claim_id = client.last_request_id
        assert valid_request_id(claim_id)
        # worker_joined was traced under the claim's request id.
        events = client._call("events", method="GET")["events"]
        joined = [e for e in events if e["kind"] == "worker_joined"]
        assert [e["request_id"] for e in joined] == [claim_id]
        client.results.put(task.task_id, {"ok": True})
        client.complete(task)
        # complete reused the id minted at claim time: one id per lease.
        assert client.last_request_id == claim_id

    def test_quarantine_and_lease_expiry_events(self, tmp_path):
        queue = WorkQueue(tmp_path / "q2", lease_ttl=0.05)
        server = CoordinatorServer(queue, port=0, quiet=True)
        server.serve_in_thread()
        try:
            client = RemoteWorkQueue(server.url, retries=1, backoff=0.05)
            client.submit({"kind": "t", "tag": 1})
            task = client.claim("owner-b")
            client.fail(task, error="boom")
            client.submit({"kind": "t", "tag": 2})
            client.claim("owner-b")
            time.sleep(0.1)
            queue.requeue_expired()
            kinds = {
                e["kind"]: e
                for e in client._call("events", method="GET")["events"]
            }
            assert kinds["task_quarantined"]["error"] == "boom"
            # Owners are decorated with a host suffix on the wire.
            assert kinds["task_quarantined"]["owner"].startswith("owner-b")
            assert kinds["lease_expired"]["owner"].startswith("owner-b")
        finally:
            server.stop()

    def test_per_owner_throughput_and_prom(self, coordinator):
        client = RemoteWorkQueue(coordinator.url, retries=1, backoff=0.05)
        for tag in range(3):
            client.submit({"kind": "t", "tag": tag})
        for _ in range(2):
            task = client.claim("owner-c")
            client.results.put(task.task_id, {"ok": True})
            client.complete(task)
        task = client.claim("owner-c")
        client.fail(task, error="nope")
        stats = client._call("stats", method="GET")
        (owner_key,) = stats["throughput"].keys()
        assert owner_key.startswith("owner-c")
        throughput = stats["throughput"][owner_key]
        assert throughput["completed"] == 2
        assert throughput["failed"] == 1
        assert throughput["rate_per_s"] > 0
        status, headers, text = _fetch_raw(coordinator.url, "/metrics.prom")
        assert status == 200
        assert headers["Content-Type"] == prom.PROM_CONTENT_TYPE
        assert prom.validate_exposition(text) > 0
        assert f'repro_tasks_completed_total{{owner="{owner_key}"}} 2' in text
        assert "repro_queue_pending 0" in text


# -- repro top ---------------------------------------------------------------


class TestTop:
    def test_percentile_interpolation(self):
        snapshot = {
            "count": 4,
            "max_ms": 500.0,
            "buckets": [
                {"le_ms": 10.0, "count": 2},
                {"le_ms": 100.0, "count": 3},
            ],
        }
        assert percentile_from_buckets(snapshot, 0.25) == pytest.approx(5.0)
        assert percentile_from_buckets(snapshot, 0.75) == pytest.approx(100.0)
        # Past the last bound -> observed max, not a fictional edge.
        assert percentile_from_buckets(snapshot, 1.0) == 500.0
        assert percentile_from_buckets({"count": 0}, 0.5) == 0.0

    def test_render_serve_smoke(self):
        text = render_serve(
            {
                "model": {"name": "imdb", "scale": "tiny"},
                "scheme": {"scheme_version": 2, "theta": 0.1,
                           "predictor": "bnn"},
                "uptime_s": 65.0,
                "inference": {"requests": 10, "rows": 40,
                              "latency_ms": {"count": 0}},
                "pool": {"replicas": 2, "busy": 1},
                "reuse": {"overall_fraction": 0.5},
                "sessions": {"open": 0},
            }
        )
        assert "imdb/tiny" in text and "1/2 busy" in text and "50.0%" in text

    def test_run_top_against_both_servers(self, imdb, coordinator):
        server, _, shutdown = _serve(imdb)
        try:
            dashboard = run_top(server.url)
            assert dashboard.startswith("serve")
            assert "latency" in dashboard
        finally:
            shutdown()
        dashboard = run_top(coordinator.url)
        assert dashboard.startswith("coordinator")
        assert "0 active owner(s)" in dashboard

    def test_render_coordinator_throughput_table(self):
        text = render_coordinator(
            {
                "pending": 1, "active": 2, "failed": 0, "results": 3,
                "lease_ttl": 60.0, "owners": ["w1"],
                "throughput": {
                    "w1": {"completed": 5, "failed": 1, "rate_per_s": 0.5}
                },
            }
        )
        assert "pending 1" in text
        assert "w1" in text and "0.50" in text
