"""Tests for sign binarization and binary dot products (Eq. 7-8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binarization import (
    binarize,
    binarize_bits,
    binary_dot,
    binary_dot_packed,
    pack_signs,
    padded_bit_length,
)


class TestBinarize:
    def test_signs(self):
        np.testing.assert_array_equal(
            binarize(np.array([-1.5, -0.0, 0.0, 2.0])), [-1, 1, 1, 1]
        )

    def test_zero_maps_to_plus_one(self):
        """Eq. 7: x >= 0 -> +1, so exactly zero binarizes to +1."""
        assert binarize(np.array([0.0]))[0] == 1

    def test_bits_convention(self):
        np.testing.assert_array_equal(
            binarize_bits(np.array([-3.0, 4.0])), [0, 1]
        )

    def test_dtype(self):
        assert binarize(np.zeros(4)).dtype == np.int8


class TestBinaryDot:
    def test_known_value(self):
        w = np.array([[1, -1, 1]], dtype=np.int8)
        x = np.array([1, 1, 1], dtype=np.int8)
        assert binary_dot(w, x)[0] == 1

    def test_batched(self):
        w = np.array([[1, -1], [1, 1]], dtype=np.int8)
        x = np.array([[1, 1], [-1, 1]], dtype=np.int8)
        out = binary_dot(w, x)
        assert out.shape == (2, 2)
        np.testing.assert_array_equal(out, [[0, 2], [-2, 0]])

    def test_range_bound(self):
        """|dot| <= D and dot has the parity of D."""
        rng = np.random.default_rng(0)
        w = binarize(rng.standard_normal((5, 9)))
        x = binarize(rng.standard_normal(9))
        out = binary_dot(w, x)
        assert np.all(np.abs(out) <= 9)
        assert np.all((out - 9) % 2 == 0)


class TestPackedPath:
    @given(
        st.integers(min_value=1, max_value=100),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_packed_equals_matmul(self, n_bits, neurons, seed):
        """The XNOR/popcount path is bit-exact vs the ±1 matmul path."""
        rng = np.random.default_rng(seed)
        w = rng.standard_normal((neurons, n_bits))
        x = rng.standard_normal(n_bits)
        reference = binary_dot(binarize(w), binarize(x))
        packed = binary_dot_packed(pack_signs(w), pack_signs(x), n_bits)
        np.testing.assert_array_equal(reference, packed)

    def test_packed_batched(self):
        rng = np.random.default_rng(3)
        w = rng.standard_normal((4, 20))
        x = rng.standard_normal((6, 20))
        reference = binary_dot(binarize(w), binarize(x))
        packed = binary_dot_packed(pack_signs(w), pack_signs(x), 20)
        assert packed.shape == (6, 4)
        np.testing.assert_array_equal(reference, packed)

    def test_padding_cancels(self):
        """Non-multiple-of-64 widths must not corrupt the dot product."""
        w = np.ones((1, 3))
        x = np.ones(3)
        assert binary_dot_packed(pack_signs(w), pack_signs(x), 3)[0] == 3

    def test_packed_words_are_uint64(self):
        packed = pack_signs(np.ones((2, 70)))
        assert packed.dtype == np.uint64
        assert packed.shape == (2, 2)  # 70 bits -> two 64-bit words

    @pytest.mark.parametrize("n_bits", [1, 63, 64, 65, 127, 128, 129, 200])
    def test_word_boundary_widths(self, n_bits):
        """Widths straddling 64-bit word boundaries stay bit-exact."""
        rng = np.random.default_rng(n_bits)
        w = rng.standard_normal((7, n_bits))
        x = rng.standard_normal((3, n_bits))
        reference = binary_dot(binarize(w), binarize(x))
        packed = binary_dot_packed(pack_signs(w), pack_signs(x), n_bits)
        np.testing.assert_array_equal(reference, packed)


class TestSignAgreement:
    """The popcount correlation signal == the float ±1 dot product.

    The vectorized predictor thresholds on the packed popcount output;
    these properties pin it to the mathematical definition: the dot
    product of the float-binarized sign vectors.
    """

    @given(
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_popcount_equals_float_dot(self, n_bits, neurons, seed):
        rng = np.random.default_rng(seed)
        w = rng.standard_normal((neurons, n_bits))
        x = rng.standard_normal((2, n_bits))
        float_dot = binarize(x).astype(np.float64) @ binarize(w).astype(np.float64).T
        packed = binary_dot_packed(pack_signs(w), pack_signs(x), n_bits)
        np.testing.assert_array_equal(float_dot, packed.astype(np.float64))

    @given(st.integers(min_value=1, max_value=300))
    @settings(max_examples=30, deadline=None)
    def test_self_agreement_is_full(self, n_bits):
        """A sign vector dotted with itself yields exactly n_bits."""
        rng = np.random.default_rng(n_bits)
        v = rng.standard_normal((1, n_bits))
        packed = pack_signs(v)
        assert binary_dot_packed(packed, packed[0], n_bits)[0] == n_bits


class TestPaddedBitLength:
    @pytest.mark.parametrize(
        "n,expected", [(1, 64), (64, 64), (65, 128), (2048, 2048)]
    )
    def test_values(self, n, expected):
        assert padded_bit_length(n) == expected

    def test_invalid(self):
        with pytest.raises(ValueError):
            padded_bit_length(0)
