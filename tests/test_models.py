"""Tests for the four benchmark models (forward shapes, training signal,
analysis hooks, memoization compatibility)."""

import numpy as np
import pytest

from repro.core.engine import MemoizationScheme, memoized
from repro.core.stats import ReuseStats
from repro.datasets.sentiment import SentimentDataset
from repro.datasets.speech import SpeechDataset
from repro.datasets.translation import TranslationDataset
from repro.models.sentiment_model import SentimentModel
from repro.models.speech_model import SpeechModel
from repro.models.translation_model import TranslationModel
from repro.nn.optim import Adam


@pytest.fixture
def rng():
    return np.random.default_rng(43)


class TestSentimentModel:
    @pytest.fixture
    def setup(self, rng):
        dataset = SentimentDataset(num_documents=24, doc_length=10, seed=1)
        model = SentimentModel(dataset.vocab_size, 8, 10, rng=rng)
        return model, dataset

    def test_forward_shape(self, setup):
        model, dataset = setup
        assert model(dataset.tokens).shape == (24, 2)

    def test_predict_labels(self, setup):
        model, dataset = setup
        preds = model.predict(dataset.tokens)
        assert set(np.unique(preds)) <= {0, 1}

    def test_loss_decreases_with_training(self, setup):
        model, dataset = setup
        optimizer = Adam(model.parameters(), lr=5e-3)
        batch = (dataset.tokens, dataset.labels)
        losses = []
        for _ in range(15):
            model.zero_grad()
            losses.append(model.compute_loss(batch))
            optimizer.step()
        assert losses[-1] < losses[0] * 0.8

    def test_analysis_hooks(self, setup):
        model, dataset = setup
        hidden = model.collect_hidden(dataset.tokens[:4])
        assert len(hidden) == 1
        assert hidden[0].shape == (4, dataset.doc_length, 10)
        pairs = model.layer_io(dataset.tokens[:4])
        assert pairs[0][0] is model.lstm

    def test_memoizable(self, setup):
        model, dataset = setup
        stats = ReuseStats()
        with memoized(model, MemoizationScheme(theta=0.5), stats):
            model.predict(dataset.tokens[:4])
        assert stats.total_evaluations > 0


class TestSpeechModel:
    @pytest.fixture
    def dataset(self):
        return SpeechDataset(num_utterances=8, num_phonemes=5, seed=2)

    def test_deepspeech_factory_shape(self, dataset, rng):
        model = SpeechModel.deepspeech(dataset.feature_dim, 10, 2, 5, rng=rng)
        out = model(dataset.features[:3])
        assert out.shape == (3, dataset.num_frames, 5)

    def test_eesen_factory_shape(self, dataset, rng):
        model = SpeechModel.eesen(dataset.feature_dim, 6, 2, 5, rng=rng)
        out = model(dataset.features[:3])
        assert out.shape == (3, dataset.num_frames, 5)

    def test_transcribe_collapses(self, dataset, rng):
        model = SpeechModel.deepspeech(dataset.feature_dim, 10, 1, 5, rng=rng)
        transcripts = model.transcribe(dataset.features[:2])
        for t in transcripts:
            assert all(a != b for a, b in zip(t, t[1:]))

    def test_evaluate_returns_wer(self, dataset, rng):
        model = SpeechModel.deepspeech(dataset.feature_dim, 10, 1, 5, rng=rng)
        score = model.evaluate(dataset.features[:4], dataset.references(np.arange(4)))
        assert score >= 0.0

    def test_loss_decreases_with_training(self, dataset, rng):
        model = SpeechModel.deepspeech(dataset.feature_dim, 12, 1, 5, rng=rng)
        optimizer = Adam(model.parameters(), lr=5e-3)
        batch = (dataset.features, dataset.frame_labels)
        losses = []
        for _ in range(10):
            model.zero_grad()
            losses.append(model.compute_loss(batch))
            optimizer.step()
        assert losses[-1] < losses[0] * 0.9

    def test_analysis_hooks_bidirectional(self, dataset, rng):
        model = SpeechModel.eesen(dataset.feature_dim, 6, 2, 5, rng=rng)
        hidden = model.collect_hidden(dataset.features[:2])
        assert len(hidden) == 4  # 2 bi-layers x 2 directions
        pairs = model.layer_io(dataset.features[:2])
        assert len(pairs) == 4

    def test_memoizable(self, dataset, rng):
        model = SpeechModel.eesen(dataset.feature_dim, 6, 1, 5, rng=rng)
        stats = ReuseStats()
        with memoized(model, MemoizationScheme(theta=0.3), stats):
            model.transcribe(dataset.features[:2])
        # Both directions of the bidirectional layer recorded.
        layers = {layer for (layer, _) in stats.total}
        assert len(layers) == 2


class TestTranslationModel:
    @pytest.fixture
    def setup(self, rng):
        dataset = TranslationDataset(num_pairs=16, vocab_size=5, length=4, seed=3)
        model = TranslationModel(
            dataset.vocab_size, dataset.target_vocab_size, 8, 12, rng=rng
        )
        return model, dataset

    def test_teacher_forced_shape(self, setup):
        model, dataset = setup
        dec_in, _ = dataset.decoder_io(np.arange(4))
        logits = model(dataset.source[:4], dec_in)
        assert logits.shape == (4, 5, dataset.target_vocab_size)

    def test_translate_stops_at_eos_or_max(self, setup):
        model, dataset = setup
        hyps = model.translate(dataset.source[:4], max_len=6)
        assert len(hyps) == 4
        assert all(len(h) <= 6 for h in hyps)

    def test_loss_decreases_with_training(self, setup):
        model, dataset = setup
        optimizer = Adam(model.parameters(), lr=8e-3)
        dec_in, dec_tgt = dataset.decoder_io(np.arange(16))
        batch = (dataset.source, dec_in, dec_tgt)
        losses = []
        for _ in range(30):
            model.zero_grad()
            losses.append(model.compute_loss(batch))
            optimizer.step()
        assert losses[-1] < losses[0] * 0.75

    def test_encoder_receives_gradient(self, setup):
        """The context-vector path must train the encoder."""
        model, dataset = setup
        dec_in, dec_tgt = dataset.decoder_io(np.arange(8))
        model.zero_grad()
        model.compute_loss((dataset.source[:8], dec_in, dec_tgt))
        grad_norm = float(np.abs(model.encoder.cell.w_ix.grad).sum())
        assert grad_norm > 0.0

    def test_evaluate_returns_bleu(self, setup):
        model, dataset = setup
        score = model.evaluate(
            dataset.source[:4], dataset.references(np.arange(4)), max_len=6
        )
        assert 0.0 <= score <= 100.0

    def test_memoizable_through_greedy_decode(self, setup):
        model, dataset = setup
        stats = ReuseStats()
        with memoized(model, MemoizationScheme(theta=0.4), stats):
            model.translate(dataset.source[:4], max_len=6)
        layers = {layer for (layer, _) in stats.total}
        assert layers == {"encoder", "decoder"}

    def test_analysis_hooks(self, setup):
        model, dataset = setup
        dec_in, _ = dataset.decoder_io(np.arange(4))
        hidden = model.collect_hidden(dataset.source[:4], dec_in)
        assert len(hidden) == 2
        pairs = model.layer_io(dataset.source[:4], dec_in)
        assert pairs[0][0] is model.encoder
        assert pairs[1][0] is model.decoder
