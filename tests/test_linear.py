"""Unit tests and gradient checks for the Linear layer."""

import numpy as np
import pytest

from repro.nn.activations import sigmoid, tanh
from repro.nn.linear import Linear

from helpers import assert_grad_close, numeric_grad


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestForward:
    def test_shape(self, rng):
        layer = Linear(4, 3, rng=rng)
        out = layer(rng.standard_normal((5, 4)))
        assert out.shape == (5, 3)

    def test_handles_time_axis(self, rng):
        layer = Linear(4, 3, rng=rng)
        out = layer(rng.standard_normal((2, 6, 4)))
        assert out.shape == (2, 6, 3)

    def test_matches_manual_matmul(self, rng):
        layer = Linear(4, 3, rng=rng)
        x = rng.standard_normal((5, 4))
        np.testing.assert_allclose(
            layer(x), x @ layer.weight.value.T + layer.bias.value
        )

    def test_no_bias(self, rng):
        layer = Linear(4, 3, rng=rng, bias=False)
        x = rng.standard_normal((5, 4))
        np.testing.assert_allclose(layer(x), x @ layer.weight.value.T)
        assert "bias" not in dict(layer.named_parameters())

    def test_activation_applied(self, rng):
        layer = Linear(4, 3, activation=tanh, rng=rng)
        x = rng.standard_normal((5, 4))
        np.testing.assert_allclose(
            layer(x), np.tanh(x @ layer.weight.value.T + layer.bias.value)
        )

    def test_wrong_input_dim_raises(self, rng):
        with pytest.raises(ValueError, match="expected last dim"):
            Linear(4, 3, rng=rng)(rng.standard_normal((5, 7)))

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            Linear(0, 3)


class TestBackward:
    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            Linear(4, 3, rng=rng).backward(np.zeros((5, 3)))

    @pytest.mark.parametrize("activation", [None, tanh, sigmoid])
    def test_input_grad_matches_numeric(self, rng, activation):
        kwargs = {"activation": activation} if activation else {}
        layer = Linear(4, 3, rng=rng, **kwargs)
        x = rng.standard_normal((5, 4))
        probe = rng.standard_normal((5, 3))

        def loss(v):
            return float(np.sum(layer.forward(v) * probe))

        layer.forward(x)
        analytic = layer.backward(probe)
        assert_grad_close(analytic, numeric_grad(loss, x))

    def test_weight_grad_matches_numeric(self, rng):
        layer = Linear(3, 2, activation=tanh, rng=rng)
        x = rng.standard_normal((4, 3))
        probe = rng.standard_normal((4, 2))

        def loss(w):
            saved = layer.weight.value
            layer.weight.value = w
            out = float(np.sum(layer.forward(x) * probe))
            layer.weight.value = saved
            return out

        layer.forward(x)
        layer.backward(probe)
        assert_grad_close(
            layer.weight.grad, numeric_grad(loss, layer.weight.value.copy())
        )

    def test_bias_grad_matches_numeric(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.standard_normal((4, 3))
        probe = rng.standard_normal((4, 2))

        def loss(b):
            saved = layer.bias.value
            layer.bias.value = b
            out = float(np.sum(layer.forward(x) * probe))
            layer.bias.value = saved
            return out

        layer.forward(x)
        layer.backward(probe)
        assert_grad_close(layer.bias.grad, numeric_grad(loss, layer.bias.value.copy()))

    def test_grads_accumulate_across_calls(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.standard_normal((4, 3))
        g = np.ones((4, 2))
        layer.forward(x)
        layer.backward(g)
        first = layer.weight.grad.copy()
        layer.forward(x)
        layer.backward(g)
        np.testing.assert_allclose(layer.weight.grad, 2.0 * first)

    def test_time_axis_backward(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.standard_normal((2, 5, 3))
        probe = rng.standard_normal((2, 5, 2))

        def loss(v):
            return float(np.sum(layer.forward(v) * probe))

        layer.forward(x)
        analytic = layer.backward(probe)
        assert_grad_close(analytic, numeric_grad(loss, x))
