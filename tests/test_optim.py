"""Tests for SGD and Adam optimizers."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam


def quadratic_params():
    """A single parameter whose loss is ||p - target||^2."""
    return Parameter(np.array([5.0, -3.0])), np.array([1.0, 2.0])


def run_steps(optimizer, param, target, steps):
    for _ in range(steps):
        optimizer.zero_grad()
        param.grad += 2.0 * (param.value - target)
        optimizer.step()


class TestSGD:
    def test_converges_on_quadratic(self):
        param, target = quadratic_params()
        run_steps(SGD([param], lr=0.1), param, target, 200)
        np.testing.assert_allclose(param.value, target, atol=1e-6)

    def test_momentum_converges(self):
        param, target = quadratic_params()
        run_steps(SGD([param], lr=0.05, momentum=0.9), param, target, 300)
        np.testing.assert_allclose(param.value, target, atol=1e-5)

    def test_single_step_formula(self):
        param = Parameter(np.array([1.0]))
        opt = SGD([param], lr=0.5)
        param.grad += np.array([2.0])
        opt.step()
        np.testing.assert_allclose(param.value, [0.0])

    def test_invalid_args(self):
        param = Parameter(np.array([1.0]))
        with pytest.raises(ValueError):
            SGD([param], lr=0.0)
        with pytest.raises(ValueError):
            SGD([param], momentum=1.0)
        with pytest.raises(ValueError):
            SGD([])

    def test_clip_norm_limits_update(self):
        param = Parameter(np.array([0.0]))
        opt = SGD([param], lr=1.0, clip_norm=1.0)
        param.grad += np.array([100.0])
        opt.step()
        np.testing.assert_allclose(param.value, [-1.0])


class TestAdam:
    def test_converges_on_quadratic(self):
        param, target = quadratic_params()
        run_steps(Adam([param], lr=0.1), param, target, 500)
        np.testing.assert_allclose(param.value, target, atol=1e-4)

    def test_first_step_is_lr_sized(self):
        """With bias correction the first Adam step ~= lr * sign(grad)."""
        param = Parameter(np.array([0.0]))
        opt = Adam([param], lr=0.01)
        param.grad += np.array([123.0])
        opt.step()
        np.testing.assert_allclose(param.value, [-0.01], rtol=1e-4)

    def test_invalid_args(self):
        param = Parameter(np.array([1.0]))
        with pytest.raises(ValueError):
            Adam([param], lr=-1.0)
        with pytest.raises(ValueError):
            Adam([param], beta1=1.0)

    def test_zero_grad(self):
        param = Parameter(np.array([1.0]))
        opt = Adam([param])
        param.grad += 7.0
        opt.zero_grad()
        np.testing.assert_array_equal(param.grad, [0.0])

    def test_clip_norm_is_global(self):
        p1 = Parameter(np.array([0.0]))
        p2 = Parameter(np.array([0.0]))
        opt = SGD([p1, p2], lr=1.0, clip_norm=5.0)
        p1.grad += np.array([3.0])
        p2.grad += np.array([4.0])
        opt.step()  # norm is exactly 5: no clipping
        np.testing.assert_allclose(p1.value, [-3.0])
        np.testing.assert_allclose(p2.value, [-4.0])
