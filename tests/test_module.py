"""Unit tests for the Module/Parameter registry."""

import numpy as np
import pytest

from repro.nn.module import Module, Parameter


class Leaf(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.ones((2, 3)))
        self.bias = Parameter(np.zeros(3))


class Tree(Module):
    def __init__(self):
        super().__init__()
        self.first = Leaf()
        self.second = Leaf()
        self.gain = Parameter(np.array([2.0]))


class TestParameter:
    def test_grad_starts_zero(self):
        p = Parameter(np.ones((3,)))
        np.testing.assert_array_equal(p.grad, np.zeros(3))

    def test_zero_grad_resets(self):
        p = Parameter(np.ones((3,)))
        p.grad += 5.0
        p.zero_grad()
        np.testing.assert_array_equal(p.grad, np.zeros(3))

    def test_value_cast_to_float64(self):
        p = Parameter(np.ones((2,), dtype=np.float32))
        assert p.value.dtype == np.float64

    def test_shape(self):
        assert Parameter(np.zeros((4, 5))).shape == (4, 5)


class TestRegistry:
    def test_named_parameters_ordered_and_nested(self):
        names = [name for name, _ in Tree().named_parameters()]
        assert names == [
            "gain",
            "first.weight",
            "first.bias",
            "second.weight",
            "second.bias",
        ]

    def test_num_parameters(self):
        assert Tree().num_parameters() == 2 * (6 + 3) + 1

    def test_zero_grad_recurses(self):
        tree = Tree()
        for p in tree.parameters():
            p.grad += 1.0
        tree.zero_grad()
        assert all(np.all(p.grad == 0.0) for p in tree.parameters())

    def test_children(self):
        tree = Tree()
        assert len(list(tree.children())) == 2


class TestStateDict:
    def test_roundtrip(self):
        src, dst = Tree(), Tree()
        for p in src.parameters():
            p.value += 3.0
        dst.load_state_dict(src.state_dict())
        for (n1, p1), (n2, p2) in zip(src.named_parameters(), dst.named_parameters()):
            assert n1 == n2
            np.testing.assert_array_equal(p1.value, p2.value)

    def test_state_dict_is_a_copy(self):
        tree = Tree()
        state = tree.state_dict()
        state["gain"][0] = 99.0
        assert tree.gain.value[0] == 2.0

    def test_missing_key_raises(self):
        tree = Tree()
        state = tree.state_dict()
        del state["gain"]
        with pytest.raises(KeyError, match="gain"):
            tree.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        tree = Tree()
        state = tree.state_dict()
        state["gain"] = np.zeros((7,))
        with pytest.raises(ValueError, match="shape mismatch"):
            tree.load_state_dict(state)

    def test_load_resets_grads(self):
        tree = Tree()
        tree.gain.grad += 4.0
        tree.load_state_dict(tree.state_dict())
        np.testing.assert_array_equal(tree.gain.grad, [0.0])
