"""Tests for the sweep execution subsystem (repro.runner).

Covers job hashing/serialization, cache hit/miss semantics, cache
invalidation on config change, corrupted-cache recovery, and bitwise
determinism of the parallel path against the serial baseline.
"""

import json

import pytest

from repro.analysis.sweep import end_to_end, network_sweep
from repro.core.engine import MemoizationScheme
from repro.core.stats import ReuseStats
from repro.models.benchmark import MemoizedResult
from repro.models.zoo import load_benchmark
from repro.runner import (
    CACHE_VERSION,
    ParallelRunner,
    ResultCache,
    SweepJob,
    result_from_payload,
    result_to_payload,
    scheme_from_payload,
)

THETAS = (0.0, 0.2)


def make_job(**overrides) -> SweepJob:
    kwargs = dict(network="imdb", thetas=THETAS)
    kwargs.update(overrides)
    return SweepJob(**kwargs)


def results_equal(a: MemoizedResult, b: MemoizedResult) -> bool:
    return (
        a.quality == b.quality
        and a.quality_loss == b.quality_loss
        and a.reuse_fraction == b.reuse_fraction
        and a.stats.reused == b.stats.reused
        and a.stats.total == b.stats.total
    )


class TestSweepJob:
    def test_unknown_network_rejected(self):
        with pytest.raises(ValueError, match="network"):
            make_job(network="resnet")

    def test_unknown_predictor_rejected(self):
        with pytest.raises(ValueError, match="bnn"):
            make_job(predictor="magic")

    def test_empty_thetas_rejected(self):
        with pytest.raises(ValueError, match="thetas"):
            make_job(thetas=())

    def test_negative_theta_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            make_job(thetas=(0.1, -0.2))

    def test_thetas_coerced_to_float_tuple(self):
        job = make_job(thetas=[0, 1])
        assert job.thetas == (0.0, 1.0)

    def test_point_key_is_stable(self):
        assert make_job().point_key(0.2) == make_job().point_key(0.2)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"network": "eesen"},
            {"predictor": "oracle"},
            {"scale": "bench"},
            {"seed": 1},
            {"throttle": False},
            {"use_packed": True},
            {"calibration": True},
            {"layer_thetas": (("lstm", 0.1),)},
        ],
    )
    def test_point_key_depends_on_config(self, overrides):
        assert make_job().point_key(0.2) != make_job(**overrides).point_key(0.2)

    def test_point_key_depends_on_theta(self):
        job = make_job()
        assert job.point_key(0.0) != job.point_key(0.2)

    def test_payload_is_json_serializable(self):
        payload = make_job(layer_thetas=(("lstm", 0.1),)).point_payload(0.2)
        assert json.loads(json.dumps(payload)) == payload
        assert payload["cache_version"] == CACHE_VERSION

    def test_scheme_roundtrip_through_payload(self):
        job = make_job(predictor="oracle", throttle=False)
        payload = job.point_payload(0.2)
        assert scheme_from_payload(payload) == job.scheme(0.2)

    def test_layer_thetas_sorted_for_hashing(self):
        a = make_job(layer_thetas=(("b", 0.2), ("a", 0.1)))
        b = make_job(layer_thetas=(("a", 0.1), ("b", 0.2)))
        assert a.point_key(0.0) == b.point_key(0.0)

    def test_from_benchmark_copies_identity(self):
        bench = load_benchmark("imdb", scale="tiny", trained=False)
        scheme = MemoizationScheme(predictor="oracle", throttle=False)
        job = SweepJob.from_benchmark(bench, scheme, THETAS, calibration=True)
        assert job.network == "imdb"
        assert job.scale == "tiny"
        assert job.seed == bench.seed
        assert job.predictor == "oracle"
        assert not job.throttle
        assert job.calibration

    def test_for_theta_restricts_grid(self):
        assert make_job().for_theta(0.2).thetas == (0.2,)

    def test_spec_hash_covers_grid(self):
        assert make_job().spec_hash() != make_job(thetas=(0.0,)).spec_hash()


class TestResultPayload:
    def test_roundtrip(self):
        stats = ReuseStats()
        stats.reused[("lstm", "i")] = 3
        stats.total[("lstm", "i")] = 10
        result = MemoizedResult(
            quality=0.875, quality_loss=1.25, reuse_fraction=0.3, stats=stats
        )
        restored = result_from_payload(result_to_payload(result))
        assert results_equal(result, restored)

    def test_malformed_payload_raises(self):
        with pytest.raises((KeyError, TypeError, ValueError)):
            result_from_payload({"quality": 1.0})


class TestResultCache:
    def test_missing_key_is_none(self, tmp_path):
        assert ResultCache(tmp_path).get("ab" * 32) is None

    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, {"x": 1.5})
        assert cache.get("ab" * 32) == {"x": 1.5}
        assert "ab" * 32 in cache
        assert len(cache) == 1

    def test_corrupted_file_discarded(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" * 32
        cache.put(key, {"x": 1})
        cache.path_for(key).write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None
        assert key not in cache  # corrupt entry deleted

    def test_non_dict_json_discarded(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" * 32
        cache.put(key, {"x": 1})
        cache.path_for(key).write_text("[1, 2]", encoding="utf-8")
        assert cache.get(key) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, {})
        cache.put("cd" * 32, {})
        assert cache.clear() == 2
        assert len(cache) == 0


class TestRunnerCacheSemantics:
    def test_cold_then_warm(self, tmp_path):
        job = make_job()
        cold = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        first = cold.run(job)
        assert cold.last_report.misses == len(THETAS)
        assert cold.last_report.hits == 0

        warm = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        second = warm.run(job)
        assert warm.last_report.evaluated == 0
        assert warm.last_report.hits == len(THETAS)
        for a, b in zip(first, second):
            assert results_equal(a, b)

    def test_config_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = ParallelRunner(jobs=1, cache=cache)
        runner.run(make_job())
        runner.run(make_job(predictor="oracle"))
        assert runner.last_report.misses == len(THETAS)
        assert runner.last_report.hits == 0

    def test_corrupted_entry_reevaluated(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = ParallelRunner(jobs=1, cache=cache)
        job = make_job()
        first = runner.run(job)
        cache.path_for(job.point_key(THETAS[0])).write_text(
            "garbage", encoding="utf-8"
        )
        again = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        second = again.run(job)
        assert again.last_report.hits == len(THETAS) - 1
        assert again.last_report.misses == 1
        for a, b in zip(first, second):
            assert results_equal(a, b)

    def test_stale_schema_entry_reevaluated(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = ParallelRunner(jobs=1, cache=cache)
        job = make_job()
        first = runner.run(job)
        # Valid JSON dict, but not a result payload (e.g. older schema).
        cache.put(job.point_key(THETAS[0]), {"schema": "v0"})
        second = ParallelRunner(jobs=1, cache=cache).run(job)
        for a, b in zip(first, second):
            assert results_equal(a, b)

    def test_mismatched_benchmark_rejected(self):
        runner = ParallelRunner(jobs=1)
        bench = load_benchmark("imdb", scale="tiny", trained=False)
        with pytest.raises(ValueError, match="identity"):
            runner.run(make_job(network="eesen"), benchmark=bench)

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            ParallelRunner(jobs=0)


class TestParallelDeterminism:
    def test_parallel_matches_serial_bitwise(self):
        job = make_job()
        serial = ParallelRunner(jobs=1).run(job)
        with ParallelRunner(jobs=2) as runner:
            parallel = runner.run(job)
            assert runner.last_report.workers == 2
        for a, b in zip(serial, parallel):
            assert results_equal(a, b)

    def test_parallel_populates_cache_identically(self, tmp_path):
        job = make_job()
        with ParallelRunner(jobs=2, cache=ResultCache(tmp_path)) as par:
            first = par.run(job)
        warm = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        second = warm.run(job)
        assert warm.last_report.evaluated == 0
        for a, b in zip(first, second):
            assert results_equal(a, b)

    def test_pool_persists_across_runs_until_close(self):
        with ParallelRunner(jobs=2) as runner:
            runner.run(make_job(predictor="oracle"))
            pool = runner._pool
            assert pool is not None
            runner.run(make_job(predictor="oracle", calibration=True))
            assert runner._pool is pool  # reused, not rebuilt
        assert runner._pool is None
        runner.close()  # idempotent


class TestAnalysisIntegration:
    def test_network_sweep_with_runner_matches_default(self, tmp_path):
        bench = load_benchmark("imdb", scale="tiny", trained=False)
        scheme = MemoizationScheme()
        baseline = network_sweep(bench, scheme, thetas=THETAS)
        runner = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        routed = network_sweep(bench, scheme, thetas=THETAS, runner=runner)
        assert baseline.thetas == routed.thetas
        assert baseline.losses == routed.losses
        assert baseline.reuses == routed.reuses

    def test_end_to_end_warm_cache_runs_nothing(self, tmp_path):
        bench = load_benchmark("imdb", scale="tiny", trained=False)
        cold = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        first = end_to_end(bench, 2.0, thetas=THETAS, runner=cold)
        warm = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        second = end_to_end(bench, 2.0, thetas=THETAS, runner=warm)
        assert warm.misses == 0
        assert warm.hits == len(THETAS) + 1  # sweep points + test point
        assert first.theta == second.theta
        assert first.speedup == second.speedup
        assert results_equal(first.test_result, second.test_result)
