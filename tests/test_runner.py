"""Tests for the sweep execution subsystem (repro.runner).

Covers job hashing/serialization, cache hit/miss semantics, cache
invalidation on config change (including CACHE_VERSION staleness and
sweep-point vs eval-shard key separation), corrupted-cache recovery,
and bitwise determinism of the parallel and sharded paths against the
serial baseline.
"""

import json

import pytest

import repro.runner.job as job_module
from repro.analysis.sweep import end_to_end, network_sweep
from repro.core.engine import MemoizationScheme
from repro.core.stats import ReuseStats
from repro.metrics import AccuracyAccumulator
from repro.models.benchmark import MemoizedResult
from repro.models.zoo import load_benchmark
from repro.runner import (
    CACHE_VERSION,
    EvalShardJob,
    ParallelRunner,
    ResultCache,
    SweepJob,
    job_from_payload,
    payload_key,
    result_from_payload,
    result_to_payload,
    scheme_from_payload,
)

THETAS = (0.0, 0.2)


def make_job(**overrides) -> SweepJob:
    kwargs = dict(network="imdb", thetas=THETAS)
    kwargs.update(overrides)
    return SweepJob(**kwargs)


def make_shard_job(**overrides) -> EvalShardJob:
    kwargs = dict(network="imdb", theta=0.2, shard_index=0, shard_count=2)
    kwargs.update(overrides)
    return EvalShardJob(**kwargs)


def results_equal(a: MemoizedResult, b: MemoizedResult) -> bool:
    return (
        a.quality == b.quality
        and a.quality_loss == b.quality_loss
        and a.reuse_fraction == b.reuse_fraction
        and a.stats.reused == b.stats.reused
        and a.stats.total == b.stats.total
    )


class TestSweepJob:
    def test_unknown_network_rejected(self):
        with pytest.raises(ValueError, match="network"):
            make_job(network="resnet")

    def test_unknown_predictor_rejected(self):
        with pytest.raises(ValueError, match="bnn"):
            make_job(predictor="magic")

    def test_empty_thetas_rejected(self):
        with pytest.raises(ValueError, match="thetas"):
            make_job(thetas=())

    def test_negative_theta_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            make_job(thetas=(0.1, -0.2))

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_nonfinite_theta_rejected(self, bad):
        # NaN slips past a bare `< 0` gate (every NaN comparison is
        # False) and these values arrive over the wire via payloads.
        with pytest.raises(ValueError, match="finite"):
            make_job(thetas=(0.1, bad))
        with pytest.raises(ValueError, match="finite"):
            make_job(layer_thetas=(("lstm", bad),))

    def test_nonfinite_theta_rejected_from_payload(self):
        payload = make_job(thetas=(0.1,)).point_payload(0.1)
        payload["theta"] = float("nan")  # what json.loads('NaN') yields
        with pytest.raises(ValueError, match="finite"):
            job_from_payload(payload)

    def test_thetas_coerced_to_float_tuple(self):
        job = make_job(thetas=[0, 1])
        assert job.thetas == (0.0, 1.0)

    def test_point_key_is_stable(self):
        assert make_job().point_key(0.2) == make_job().point_key(0.2)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"network": "eesen"},
            {"predictor": "oracle"},
            {"scale": "bench"},
            {"seed": 1},
            {"throttle": False},
            {"use_packed": True},
            {"calibration": True},
            {"layer_thetas": (("lstm", 0.1),)},
        ],
    )
    def test_point_key_depends_on_config(self, overrides):
        assert make_job().point_key(0.2) != make_job(**overrides).point_key(0.2)

    def test_point_key_depends_on_theta(self):
        job = make_job()
        assert job.point_key(0.0) != job.point_key(0.2)

    def test_payload_is_json_serializable(self):
        payload = make_job(layer_thetas=(("lstm", 0.1),)).point_payload(0.2)
        assert json.loads(json.dumps(payload)) == payload
        assert payload["cache_version"] == CACHE_VERSION

    def test_scheme_roundtrip_through_payload(self):
        job = make_job(predictor="oracle", throttle=False)
        payload = job.point_payload(0.2)
        assert scheme_from_payload(payload) == job.scheme(0.2)

    def test_layer_thetas_sorted_for_hashing(self):
        a = make_job(layer_thetas=(("b", 0.2), ("a", 0.1)))
        b = make_job(layer_thetas=(("a", 0.1), ("b", 0.2)))
        assert a.point_key(0.0) == b.point_key(0.0)

    def test_from_benchmark_copies_identity(self):
        bench = load_benchmark("imdb", scale="tiny", trained=False)
        scheme = MemoizationScheme(predictor="oracle", throttle=False)
        job = SweepJob.from_benchmark(bench, scheme, THETAS, calibration=True)
        assert job.network == "imdb"
        assert job.scale == "tiny"
        assert job.seed == bench.seed
        assert job.predictor == "oracle"
        assert not job.throttle
        assert job.calibration

    def test_for_theta_restricts_grid(self):
        assert make_job().for_theta(0.2).thetas == (0.2,)

    def test_spec_hash_covers_grid(self):
        assert make_job().spec_hash() != make_job(thetas=(0.0,)).spec_hash()


class TestEvalShardJob:
    def test_from_sweep_point_copies_config(self):
        job = make_job(predictor="oracle", throttle=False, calibration=True)
        shard = EvalShardJob.from_sweep_point(job, 0.2, 1, 4)
        assert shard.network == job.network
        assert shard.predictor == "oracle"
        assert not shard.throttle
        assert shard.calibration
        assert shard.theta == 0.2
        assert shard.shard == (1, 4)

    def test_invalid_shard_rejected(self):
        with pytest.raises(ValueError, match="shard_count"):
            make_shard_job(shard_count=0)
        with pytest.raises(ValueError, match="shard_index"):
            make_shard_job(shard_index=2, shard_count=2)
        with pytest.raises(ValueError, match="shard_index"):
            make_shard_job(shard_index=-1)

    def test_invalid_network_and_theta_rejected(self):
        with pytest.raises(ValueError, match="network"):
            make_shard_job(network="resnet")
        with pytest.raises(ValueError, match="non-negative"):
            make_shard_job(theta=-0.1)

    def test_payload_is_json_serializable(self):
        payload = make_shard_job(layer_thetas=(("lstm", 0.1),)).payload()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["kind"] == "eval_shard"
        assert payload["cache_version"] == CACHE_VERSION

    def test_key_depends_on_shard(self):
        assert make_shard_job().key() != make_shard_job(shard_index=1).key()
        assert make_shard_job().key() != make_shard_job(shard_count=3).key()

    def test_scheme_roundtrip_through_payload(self):
        shard = make_shard_job(predictor="oracle", throttle=False)
        assert scheme_from_payload(shard.payload()) == MemoizationScheme(
            theta=0.2, predictor="oracle", throttle=False
        )


class TestJobPayloadRoundTrip:
    """Every job kind survives payload serialization exactly."""

    def test_sweep_point_roundtrip(self):
        job = make_job(
            predictor="oracle",
            throttle=False,
            calibration=True,
            layer_thetas=(("lstm", 0.1), ("out", 0.4)),
        )
        payload = job.point_payload(0.2)
        rebuilt = job_from_payload(json.loads(json.dumps(payload)))
        assert isinstance(rebuilt, SweepJob)
        assert rebuilt == job.for_theta(0.2)
        assert rebuilt.point_payload(0.2) == payload  # idempotent

    def test_eval_shard_roundtrip(self):
        shard = make_shard_job(
            predictor="oracle",
            shard_index=1,
            shard_count=3,
            layer_thetas=(("lstm", 0.1),),
        )
        payload = shard.payload()
        rebuilt = job_from_payload(json.loads(json.dumps(payload)))
        assert isinstance(rebuilt, EvalShardJob)
        assert rebuilt == shard
        assert rebuilt.payload() == payload  # idempotent

    def test_kind_discriminator_preserved(self):
        point = job_from_payload(make_job().point_payload(0.2))
        assert point.point_payload(0.2)["kind"] == "sweep_point"
        shard = job_from_payload(make_shard_job().payload())
        assert shard.payload()["kind"] == "eval_shard"

    def test_unknown_kind_is_a_clear_valueerror(self):
        payload = make_job().point_payload(0.2)
        payload["kind"] = "teleport"
        with pytest.raises(ValueError, match="unknown job kind 'teleport'"):
            job_from_payload(payload)

    def test_missing_kind_is_a_clear_valueerror(self):
        payload = make_job().point_payload(0.2)
        del payload["kind"]
        with pytest.raises(ValueError, match="unknown job kind"):
            job_from_payload(payload)

    def test_foreign_cache_version_rejected(self):
        payload = make_job().point_payload(0.2)
        payload["cache_version"] = CACHE_VERSION + 1
        with pytest.raises(ValueError, match="cache_version"):
            job_from_payload(payload)

    def test_payload_key_matches_job_keys(self):
        job = make_job()
        assert payload_key(job.point_payload(0.2)) == job.point_key(0.2)
        shard = make_shard_job()
        assert payload_key(shard.payload()) == shard.key()


class TestCacheKeyCollisions:
    """A shard partial and a whole point with identical parameters must
    never share a cache key, and entries written by a different
    CACHE_VERSION must be invisible."""

    def test_shard_and_point_keys_differ_for_identical_parameters(self):
        job = make_job()
        # Even the degenerate 1-shard job (same evaluated rows as the
        # whole point) must key separately: its payload schema differs.
        shard = EvalShardJob.from_sweep_point(job, 0.2, 0, 1)
        assert shard.key() != job.point_key(0.2)

    def test_all_shard_keys_distinct_from_all_point_keys(self):
        job = make_job()
        point_keys = {job.point_key(theta) for theta in job.thetas}
        shard_keys = {
            EvalShardJob.from_sweep_point(job, theta, i, n).key()
            for theta in job.thetas
            for n in (1, 2, 4)
            for i in range(n)
        }
        assert not (point_keys & shard_keys)
        assert len(shard_keys) == len(job.thetas) * (1 + 2 + 4)

    def test_point_key_changes_with_cache_version(self, monkeypatch):
        before = make_job().point_key(0.2)
        shard_before = make_shard_job().key()
        monkeypatch.setattr(job_module, "CACHE_VERSION", CACHE_VERSION + 1)
        assert make_job().point_key(0.2) != before
        assert make_shard_job().key() != shard_before

    def test_stale_cache_version_entries_ignored(self, tmp_path, monkeypatch):
        """Entries persisted under an older CACHE_VERSION are never read."""
        cache = ResultCache(tmp_path)
        job = make_job()
        first = ParallelRunner(jobs=1, cache=cache).run(job)
        # Simulate a code upgrade: keys now embed a newer version.
        monkeypatch.setattr(job_module, "CACHE_VERSION", CACHE_VERSION + 1)
        runner = ParallelRunner(jobs=1, cache=cache)
        second = runner.run(make_job())
        assert runner.last_report.hits == 0
        assert runner.last_report.misses == len(THETAS)
        for a, b in zip(first, second):
            assert results_equal(a, b)  # same semantics, fresh entries


class TestResultPayload:
    def test_roundtrip(self):
        stats = ReuseStats()
        stats.reused[("lstm", "i")] = 3
        stats.total[("lstm", "i")] = 10
        result = MemoizedResult(
            quality=0.875, quality_loss=1.25, reuse_fraction=0.3, stats=stats
        )
        restored = result_from_payload(result_to_payload(result))
        assert results_equal(result, restored)

    def test_malformed_payload_raises(self):
        with pytest.raises((KeyError, TypeError, ValueError)):
            result_from_payload({"quality": 1.0})

    def test_shard_partial_roundtrip_keeps_metric_and_base(self):
        stats = ReuseStats()
        stats.total[("lstm", "i")] = 10
        metric = AccuracyAccumulator(hits=7, total=9)
        result = MemoizedResult(
            quality=77.7,
            quality_loss=0.3,
            reuse_fraction=0.0,
            stats=stats,
            metric=metric,
            base_quality=78.0,
        )
        restored = result_from_payload(
            json.loads(json.dumps(result_to_payload(result)))
        )
        assert results_equal(result, restored)
        assert restored.metric == metric
        assert restored.base_quality == 78.0

    def test_whole_point_payload_has_no_shard_fields(self):
        result = MemoizedResult(
            quality=1.0, quality_loss=0.0, reuse_fraction=0.0, stats=ReuseStats()
        )
        payload = result_to_payload(result)
        assert "metric" not in payload
        assert "base_quality" not in payload
        restored = result_from_payload(payload)
        assert restored.metric is None and restored.base_quality is None


class TestResultCache:
    def test_missing_key_is_none(self, tmp_path):
        assert ResultCache(tmp_path).get("ab" * 32) is None

    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, {"x": 1.5})
        assert cache.get("ab" * 32) == {"x": 1.5}
        assert "ab" * 32 in cache
        assert len(cache) == 1

    def test_corrupted_file_discarded(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" * 32
        cache.put(key, {"x": 1})
        cache.path_for(key).write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None
        assert key not in cache  # corrupt entry deleted

    def test_membership_agrees_with_get_on_truncated_entry(self, tmp_path):
        """A corrupt entry that get() would discard must not be `in` the
        cache — a crashed writer's truncated JSON used to satisfy
        __contains__ while get() treated it as a miss."""
        cache = ResultCache(tmp_path)
        key = "ef" * 32
        cache.put(key, {"quality": 1.0, "stats": {}})
        # Truncate mid-payload, as a crash between write and rename
        # never could but a corrupted disk or manual edit can.
        cache.path_for(key).write_text('{"quality": 1.0, "sta', encoding="utf-8")
        assert key not in cache
        assert cache.get(key) is None
        assert not cache.path_for(key).is_file()  # discarded, like get()

    def test_membership_agrees_with_get_on_non_dict_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "0a" * 32
        cache.put(key, {"x": 1})
        cache.path_for(key).write_text("[1, 2, 3]", encoding="utf-8")
        assert key not in cache
        assert cache.get(key) is None

    def test_membership_still_true_for_valid_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "1b" * 32
        assert key not in cache
        cache.put(key, {"x": 1})
        assert key in cache

    def test_non_dict_json_discarded(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" * 32
        cache.put(key, {"x": 1})
        cache.path_for(key).write_text("[1, 2]", encoding="utf-8")
        assert cache.get(key) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, {})
        cache.put("cd" * 32, {})
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_discard(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" * 32
        cache.put(key, {"x": 1})
        cache.discard(key)
        assert key not in cache
        cache.discard(key)  # idempotent on missing entries


class TestRunnerCacheSemantics:
    def test_cold_then_warm(self, tmp_path):
        job = make_job()
        cold = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        first = cold.run(job)
        assert cold.last_report.misses == len(THETAS)
        assert cold.last_report.hits == 0

        warm = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        second = warm.run(job)
        assert warm.last_report.evaluated == 0
        assert warm.last_report.hits == len(THETAS)
        for a, b in zip(first, second):
            assert results_equal(a, b)

    def test_config_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = ParallelRunner(jobs=1, cache=cache)
        runner.run(make_job())
        runner.run(make_job(predictor="oracle"))
        assert runner.last_report.misses == len(THETAS)
        assert runner.last_report.hits == 0

    def test_corrupted_entry_reevaluated(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = ParallelRunner(jobs=1, cache=cache)
        job = make_job()
        first = runner.run(job)
        cache.path_for(job.point_key(THETAS[0])).write_text(
            "garbage", encoding="utf-8"
        )
        again = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        second = again.run(job)
        assert again.last_report.hits == len(THETAS) - 1
        assert again.last_report.misses == 1
        for a, b in zip(first, second):
            assert results_equal(a, b)

    def test_stale_schema_entry_reevaluated(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = ParallelRunner(jobs=1, cache=cache)
        job = make_job()
        first = runner.run(job)
        # Valid JSON dict, but not a result payload (e.g. older schema).
        cache.put(job.point_key(THETAS[0]), {"schema": "v0"})
        second = ParallelRunner(jobs=1, cache=cache).run(job)
        for a, b in zip(first, second):
            assert results_equal(a, b)

    def test_mismatched_benchmark_rejected(self):
        runner = ParallelRunner(jobs=1)
        bench = load_benchmark("imdb", scale="tiny", trained=False)
        with pytest.raises(ValueError, match="identity"):
            runner.run(make_job(network="eesen"), benchmark=bench)

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            ParallelRunner(jobs=0)


class TestParallelDeterminism:
    def test_parallel_matches_serial_bitwise(self):
        job = make_job()
        serial = ParallelRunner(jobs=1).run(job)
        with ParallelRunner(jobs=2) as runner:
            parallel = runner.run(job)
            assert runner.last_report.workers == 2
        for a, b in zip(serial, parallel):
            assert results_equal(a, b)

    def test_parallel_populates_cache_identically(self, tmp_path):
        job = make_job()
        with ParallelRunner(jobs=2, cache=ResultCache(tmp_path)) as par:
            first = par.run(job)
        warm = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        second = warm.run(job)
        assert warm.last_report.evaluated == 0
        for a, b in zip(first, second):
            assert results_equal(a, b)

    def test_pool_persists_across_runs_until_close(self):
        with ParallelRunner(jobs=2) as runner:
            runner.run(make_job(predictor="oracle"))
            pool = runner.backend._pool
            assert pool is not None
            runner.run(make_job(predictor="oracle", calibration=True))
            assert runner.backend._pool is pool  # reused, not rebuilt
        assert runner.backend._pool is None
        runner.close()  # idempotent


class TestShardedRunner:
    """run(..., shards=N) must be bitwise identical to the serial path
    and interoperate with the whole-point cache population."""

    def test_sharded_matches_serial_bitwise(self):
        job = make_job()
        serial = ParallelRunner(jobs=1).run(job)
        for shards in (2, 4, 7):
            sharded = ParallelRunner(jobs=1).run(job, shards=shards)
            for a, b in zip(serial, sharded):
                assert results_equal(a, b)

    def test_parallel_sharded_matches_serial_bitwise(self):
        job = make_job()
        serial = ParallelRunner(jobs=1).run(job)
        with ParallelRunner(jobs=2) as runner:
            sharded = runner.run(job, shards=3)
            assert runner.last_report.workers == 2
            assert runner.last_report.misses == len(THETAS) * 3
        for a, b in zip(serial, sharded):
            assert results_equal(a, b)

    def test_shards_must_be_positive(self):
        with pytest.raises(ValueError, match="shards"):
            ParallelRunner(jobs=1).run(make_job(), shards=0)

    def test_warm_shard_cache_runs_nothing(self, tmp_path):
        job = make_job()
        cold = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        first = cold.run(job, shards=3)
        assert cold.last_report.misses == len(THETAS) * 3
        warm = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        second = warm.run(job, shards=3)
        assert warm.last_report.misses == 0
        for a, b in zip(first, second):
            assert results_equal(a, b)

    def test_sharded_run_populates_whole_point_cache(self, tmp_path):
        """An unsharded run after a sharded one evaluates nothing."""
        job = make_job()
        sharded = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        first = sharded.run(job, shards=4)
        unsharded = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        second = unsharded.run(job)
        assert unsharded.last_report.evaluated == 0
        assert unsharded.last_report.hits == len(THETAS)
        for a, b in zip(first, second):
            assert results_equal(a, b)

    def test_whole_point_cache_short_circuits_sharded_run(self, tmp_path):
        """A sharded run resolves from whole-point entries when present."""
        job = make_job()
        ParallelRunner(jobs=1, cache=ResultCache(tmp_path)).run(job)
        runner = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        results = runner.run(job, shards=5)
        assert runner.last_report.misses == 0
        assert runner.last_report.hits == len(THETAS)
        serial = ParallelRunner(jobs=1).run(job)
        for a, b in zip(serial, results):
            assert results_equal(a, b)

    def test_partial_shard_cache_reevaluates_only_missing(self, tmp_path):
        job = make_job(thetas=(0.2,))
        cache = ResultCache(tmp_path)
        cold = ParallelRunner(jobs=1, cache=cache)
        first = cold.run(job, shards=3)
        # Drop the whole-point entry and one shard partial.
        cache.path_for(job.point_key(0.2)).unlink()
        shard_key = EvalShardJob.from_sweep_point(job, 0.2, 1, 3).key()
        cache.path_for(shard_key).unlink()
        again = ParallelRunner(jobs=1, cache=cache)
        second = again.run(job, shards=3)
        assert again.last_report.hits == 2
        assert again.last_report.misses == 1
        for a, b in zip(first, second):
            assert results_equal(a, b)

    def test_sweep_supports_shards(self):
        bench = load_benchmark("imdb", scale="tiny", trained=False)
        job = make_job()
        baseline = ParallelRunner(jobs=1).sweep(job, benchmark=bench)
        sharded = ParallelRunner(jobs=1).sweep(job, benchmark=bench, shards=4)
        assert baseline.thetas == sharded.thetas
        assert baseline.losses == sharded.losses
        assert baseline.reuses == sharded.reuses


class TestAnalysisIntegration:
    def test_network_sweep_with_runner_matches_default(self, tmp_path):
        bench = load_benchmark("imdb", scale="tiny", trained=False)
        scheme = MemoizationScheme()
        baseline = network_sweep(bench, scheme, thetas=THETAS)
        runner = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        routed = network_sweep(bench, scheme, thetas=THETAS, runner=runner)
        assert baseline.thetas == routed.thetas
        assert baseline.losses == routed.losses
        assert baseline.reuses == routed.reuses

    def test_network_sweep_sharded_matches_default(self):
        bench = load_benchmark("imdb", scale="tiny", trained=False)
        scheme = MemoizationScheme()
        baseline = network_sweep(bench, scheme, thetas=THETAS)
        sharded = network_sweep(bench, scheme, thetas=THETAS, shards=4)
        assert baseline.thetas == sharded.thetas
        assert baseline.losses == sharded.losses
        assert baseline.reuses == sharded.reuses

    def test_end_to_end_sharded_matches_default(self, tmp_path):
        bench = load_benchmark("imdb", scale="tiny", trained=False)
        baseline = end_to_end(bench, 2.0, thetas=THETAS)
        sharded = end_to_end(bench, 2.0, thetas=THETAS, shards=3)
        assert sharded.theta == baseline.theta
        assert sharded.speedup == baseline.speedup
        assert results_equal(sharded.test_result, baseline.test_result)

    def test_end_to_end_warm_cache_runs_nothing(self, tmp_path):
        bench = load_benchmark("imdb", scale="tiny", trained=False)
        cold = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        first = end_to_end(bench, 2.0, thetas=THETAS, runner=cold)
        warm = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        second = end_to_end(bench, 2.0, thetas=THETAS, runner=warm)
        assert warm.misses == 0
        assert warm.hits == len(THETAS) + 1  # sweep points + test point
        assert first.theta == second.theta
        assert first.speedup == second.speedup
        assert results_equal(first.test_result, second.test_result)
