"""Tests for sweeps, frontiers, figure rendering and the e2e pipeline."""

import pytest

from repro.analysis.figures import render_series, render_table
from repro.analysis.sweep import end_to_end, frontier, network_sweep
from repro.core.calibration import ThresholdSweep
from repro.core.engine import MemoizationScheme
from repro.models.zoo import load_benchmark


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(["name", "value"], [["a", 1.5], ["bb", 20]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert "1.50" in lines[2]

    def test_ragged_rows_raise(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only one"]])

    def test_empty_rows_ok(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestRenderSeries:
    def test_pairs(self):
        text = render_series("reuse", [0.1, 0.2], [30.0, 40.0], unit="%")
        assert "(0.10, 30.00)" in text
        assert "[%]" in text

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            render_series("x", [1.0], [1.0, 2.0])


class TestFrontier:
    def test_maps_targets_to_points(self):
        sweep = ThresholdSweep()
        sweep.add(0.1, loss=0.5, reuse=0.2)
        sweep.add(0.3, loss=1.5, reuse=0.4)
        result = frontier(sweep, [1.0, 2.0])
        assert result[1.0].theta == 0.1
        assert result[2.0].theta == 0.3

    def test_unreachable_target_is_none(self):
        sweep = ThresholdSweep()
        sweep.add(0.1, loss=9.0, reuse=0.2)
        assert frontier(sweep, [1.0])[1.0] is None


class TestNetworkSweep:
    @pytest.fixture(scope="class")
    def bench(self):
        return load_benchmark("imdb", scale="tiny")

    def test_sweep_points(self, bench):
        sweep = network_sweep(
            bench, MemoizationScheme(), thetas=(0.0, 0.3, 0.6)
        )
        assert sweep.thetas == [0.0, 0.3, 0.6]
        assert all(r >= 0.0 for r in sweep.reuses)
        # Reuse grows (weakly) with theta.
        assert sweep.reuses[0] <= sweep.reuses[-1] + 1e-9

    def test_oracle_sweep_zero_loss_at_zero_theta(self, bench):
        sweep = network_sweep(
            bench, MemoizationScheme(predictor="oracle"), thetas=(0.0,)
        )
        assert sweep.losses[0] == 0.0


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def result(self):
        bench = load_benchmark("imdb", scale="tiny")
        return end_to_end(bench, loss_target=2.0, thetas=(0.0, 0.2, 0.4))

    def test_fields(self, result):
        assert result.network == "imdb"
        assert result.theta in (0.0, 0.2, 0.4)
        assert 0.0 <= result.reuse_percent <= 100.0
        assert result.quality_loss >= 0.0

    def test_accelerator_quantities(self, result):
        assert result.speedup > 1.0
        assert result.energy_savings_percent > 0.0

    def test_calibration_sweep_recorded(self, result):
        assert len(result.calibration_sweep.points) == 3
