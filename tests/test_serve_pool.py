"""Tests for concurrent serving: the replica pool and the coalescer.

The load-bearing properties:

- A replica is a weight-sharing structural clone: same Parameter
  objects, fresh object graph, so a forward through any replica is
  bitwise the forward through the source model.
- K concurrent requests against an N-replica pool all answer bitwise
  identical to the offline batch path — whichever replica served them,
  and whether or not the coalescer stacked them into shared forwards.
- `PUT /theta` retunes the *whole pool* atomically: one version bump,
  every replica on the new scheme, and a failed retune leaves every
  replica on the old one.
- The serve-tier bugfix sweep: boolean/non-finite thresholds are
  rejected at the door, idle sessions are evicted instead of leaking,
  and `/metrics` reports reuse counters consistent with the
  scheme_version alongside them.
"""

import math
import threading
import time

import numpy as np
import pytest

from repro.core.engine import (
    MemoizationScheme,
    apply_memoization,
    iter_recurrent_layers,
    memoized,
    restore,
)
from repro.core.stats import ReuseStats, ThreadSafeReuseStats
from repro.models.zoo import load_benchmark
from repro.nn.module import Parameter, clone_with_shared_parameters
from repro.serve import (
    InferenceServer,
    ServeClient,
    ServeError,
    ServeState,
    parse_layer_thetas,
    run_loadgen,
)
from repro.serve.loadgen import expected_outputs, scheme_from_info
from repro.serve.state import SessionError

THETA = 0.05


@pytest.fixture
def imdb():
    return load_benchmark("imdb", scale="tiny")


@pytest.fixture
def speech():
    return load_benchmark("deepspeech2", scale="tiny")


def pooled_state(benchmark, scheme=None, **kwargs):
    return ServeState(
        benchmark, scheme or MemoizationScheme(theta=THETA), **kwargs
    )


class TestCloneWithSharedParameters:
    def test_parameters_are_shared_modules_are_not(self, imdb):
        model = imdb.model
        clone = clone_with_shared_parameters(model)
        assert clone is not model
        source_params = dict(model.named_parameters())
        clone_params = dict(clone.named_parameters())
        assert list(clone_params) == list(source_params)
        for name, param in source_params.items():
            assert clone_params[name] is param
        source_children = dict(model._children)
        for name, child in clone._children.items():
            assert child is not source_children[name]

    def test_clone_forward_is_bitwise_source_forward(self, imdb):
        rows = imdb.dataset.tokens[np.asarray(imdb.test_idx[:4])]
        clone = clone_with_shared_parameters(imdb.model)
        np.testing.assert_array_equal(
            clone.predict(rows), imdb.model.predict(rows)
        )

    def test_wrapping_the_clone_leaves_the_source_unwrapped(self, imdb):
        clone = clone_with_shared_parameters(imdb.model)
        source_layers = dict(
            (name, layer) for layer, name in iter_recurrent_layers(imdb.model)
        )
        replacements = apply_memoization(
            clone, MemoizationScheme(theta=THETA), ReuseStats()
        )
        try:
            for layer, name in iter_recurrent_layers(imdb.model):
                assert source_layers[name] is layer  # source untouched
            # The clone's recurrent layers are now wrappers (deregistered
            # from its child walk); the source still walks all of them.
            assert list(iter_recurrent_layers(clone)) == []
            assert len(source_layers) > 0
        finally:
            restore(replacements)

    def test_aliased_submodules_stay_aliased(self):
        from repro.nn.module import Module

        class Leaf(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.zeros(3))

        class Tree(Module):
            def __init__(self):
                super().__init__()
                self.a = Leaf()
                self.b = self.a

        tree = Tree()
        clone = clone_with_shared_parameters(tree)
        assert clone.a is clone.b
        assert clone.a is not tree.a
        assert clone.a.w is tree.a.w


class TestRestoreOrdering:
    def test_round_trip_preserves_child_registry_order(self, speech):
        stack = speech.model.stack
        before = list(stack._children)
        replacements = apply_memoization(
            speech.model, MemoizationScheme(theta=THETA), ReuseStats()
        )
        restore(replacements)
        assert list(stack._children) == before
        assert [name for _, name in iter_recurrent_layers(speech.model)] == [
            name
            for name in (f"stack.{child}" for child in before)
        ]

    def test_round_trip_preserves_named_parameter_order(self, imdb):
        before = [name for name, _ in imdb.model.named_parameters()]
        with memoized(imdb.model, MemoizationScheme(theta=THETA), ReuseStats()):
            pass
        assert [name for name, _ in imdb.model.named_parameters()] == before


class TestReplicaPool:
    def test_pool_replicas_answer_bitwise_like_offline_path(self, imdb):
        indices = [int(i) for i in imdb.test_idx[:8]]
        scheme = MemoizationScheme(theta=THETA)
        expected = expected_outputs(imdb, scheme, indices)
        state = pooled_state(imdb, scheme, replicas=3, coalesce_ms=0.0)
        try:
            outputs = []
            errors = []

            def one(index, position):
                try:
                    reply = state.infer([imdb.dataset.tokens[index].tolist()])
                    outputs[position] = reply["outputs"][0]
                # checks: allow-broad-except hammer thread collects errors for the main-thread assert
                except Exception as exc:  # pragma: no cover - test plumbing
                    errors.append(exc)

            outputs = [None] * len(indices)
            threads = [
                threading.Thread(target=one, args=(index, position))
                for position, index in enumerate(indices)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            assert outputs == expected
            metrics = state.metrics()
            assert metrics["pool"]["replicas"] == 3
            assert metrics["pool"]["available"] == 3
            assert metrics["inference"]["requests"] == len(indices)
            # coalesce_ms=0 means one request per forward, always.
            assert metrics["coalesce"]["batches"] == len(indices)
            assert metrics["coalesce"]["coalesced_batches"] == 0
        finally:
            state.unwrap()

    def test_coalescer_stacks_waiting_jobs_into_one_forward(self, imdb):
        indices = [int(i) for i in imdb.test_idx[:4]]
        scheme = MemoizationScheme(theta=THETA)
        expected = expected_outputs(imdb, scheme, indices)
        state = pooled_state(imdb, scheme, replicas=1, coalesce_ms=1.0)
        try:
            # Hold the only replica hostage: every request must park its
            # job on the pending queue and spin on the empty pool.
            replica = state._pool.get()
            outputs = [None] * len(indices)

            def one(index, position):
                reply = state.infer([imdb.dataset.tokens[index].tolist()])
                outputs[position] = reply["outputs"][0]

            threads = [
                threading.Thread(target=one, args=(index, position))
                for position, index in enumerate(indices)
            ]
            for thread in threads:
                thread.start()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                with state._pending_cond:
                    if len(state._pending) == len(indices):
                        break
                time.sleep(0.005)
            with state._pending_cond:
                assert len(state._pending) == len(indices)
            # Releasing the replica lets exactly one leader claim it and
            # serve the whole backlog as one stacked forward.
            state._pool.put(replica)
            for thread in threads:
                thread.join()
            assert outputs == expected
            metrics = state.metrics()
            assert metrics["coalesce"]["batches"] == 1
            assert metrics["coalesce"]["coalesced_batches"] == 1
            assert metrics["coalesce"]["max_batch_jobs"] == len(indices)
            assert metrics["coalesce"]["batch_jobs_hist"] == {
                str(len(indices)): 1
            }
        finally:
            state.unwrap()

    def test_ragged_rows_still_serve(self, speech):
        indices = [int(i) for i in speech.test_idx[:2]]
        scheme = MemoizationScheme(theta=THETA)
        state = pooled_state(speech, scheme, replicas=2)
        try:
            short = speech.dataset.features[indices[0]][:3].tolist()
            full = speech.dataset.features[indices[1]].tolist()
            reply = state.infer([short, full])
            assert len(reply["outputs"]) == 2
        finally:
            state.unwrap()


class TestPoolRetune:
    def test_retune_swaps_every_replica_and_bumps_version_once(self, imdb):
        state = pooled_state(imdb, replicas=3)
        try:
            before = state.scheme_version
            info = state.retune({"theta": 0.4})
            assert info["scheme_version"] == before + 1
            for replica in state._replicas:
                assert replica.scheme_version == before + 1
                assert replica.scheme.theta == 0.4
            assert state._pool.qsize() == 3
        finally:
            state.unwrap()

    def test_failed_retune_leaves_every_replica_on_old_scheme(self, imdb):
        state = pooled_state(imdb, replicas=3)
        try:
            before_version = state.scheme_version
            before_scheme = state.scheme
            with pytest.raises(ValueError):
                state.retune({"predictor": "nonsense"})
            assert state.scheme_version == before_version
            for replica in state._replicas:
                assert replica.scheme is before_scheme
                assert replica.scheme_version == before_version
            assert state._pool.qsize() == 3
            # And the pool still serves.
            row = imdb.dataset.tokens[int(imdb.test_idx[0])].tolist()
            assert state.infer([row])["scheme_version"] == before_version
        finally:
            state.unwrap()

    def test_responses_attribute_to_a_served_version(self, imdb):
        """Under a retune racing live traffic, every reply's outputs
        match the offline path *at the version the reply claims*."""
        indices = [int(i) for i in imdb.test_idx[:6]]
        schemes = {
            1: MemoizationScheme(theta=THETA),
            2: MemoizationScheme(theta=0.5),
        }
        expected = {
            version: dict(zip(indices, expected_outputs(imdb, scheme, indices)))
            for version, scheme in schemes.items()
        }
        state = pooled_state(imdb, schemes[1], replicas=2, coalesce_ms=0.0)
        try:
            results = []
            errors = []
            lock = threading.Lock()

            def traffic():
                for index in indices:
                    try:
                        reply = state.infer(
                            [imdb.dataset.tokens[index].tolist()]
                        )
                    # checks: allow-broad-except hammer thread collects errors for the main-thread assert
                    except Exception as exc:  # pragma: no cover
                        with lock:
                            errors.append(exc)
                        return
                    with lock:
                        results.append(
                            (index, reply["scheme_version"],
                             reply["outputs"][0])
                        )

            threads = [threading.Thread(target=traffic) for _ in range(4)]
            for thread in threads:
                thread.start()
            state.retune({"theta": 0.5})
            for thread in threads:
                thread.join()
            assert not errors
            versions_seen = {version for _, version, _ in results}
            assert versions_seen <= {1, 2}
            for index, version, output in results:
                assert output == expected[version][index]
        finally:
            state.unwrap()


class TestHammer:
    """K threads of mixed /infer + session traffic across a live PUT
    /theta against a replica pool, every row diffed bitwise against the
    offline reference keyed by the scheme_version that served it."""

    def test_mixed_traffic_stays_bitwise_across_live_retune(self, speech):
        indices = [int(i) for i in speech.test_idx[:4]]
        schemes = {
            1: MemoizationScheme(theta=THETA),
            2: MemoizationScheme(theta=0.3),
        }
        expected = {
            version: dict(
                zip(indices, expected_outputs(speech, scheme, indices))
            )
            for version, scheme in schemes.items()
        }
        state = pooled_state(
            speech, schemes[1], replicas=2, coalesce_ms=1.0
        )
        server = InferenceServer(state, quiet=True)
        server.serve_in_thread()
        try:
            url = server.url
            mismatches = []
            errors = []
            lock = threading.Lock()

            def infer_traffic(rounds):
                client = ServeClient(url)
                for round_index in range(rounds):
                    index = indices[round_index % len(indices)]
                    row = speech.dataset.features[index].tolist()
                    try:
                        reply = client.post(
                            "/api/v1/infer", {"input": row}
                        )
                    except ServeError as exc:
                        with lock:
                            errors.append(str(exc))
                        return
                    output = reply["outputs"][0]
                    version = reply["scheme_version"]
                    if output != expected[version][index]:
                        with lock:
                            mismatches.append((index, version))

            def session_traffic(rounds):
                client = ServeClient(url)
                for round_index in range(rounds):
                    index = indices[round_index % len(indices)]
                    frames = speech.dataset.features[index]
                    try:
                        opened = client.post("/api/v1/session/open", {})
                        sid = opened["session"]
                        split = frames.shape[0] // 2
                        decoded = []
                        for chunk in (frames[:split], frames[split:]):
                            reply = client.post(
                                "/api/v1/infer",
                                {"session": sid, "input": chunk.tolist()},
                            )
                            decoded.extend(reply["outputs"][0])
                        client.post("/api/v1/session/close", {"session": sid})
                    except ServeError as exc:
                        with lock:
                            errors.append(str(exc))
                        return
                    version = opened["scheme_version"]
                    # A session's chunked decode, collapse aside, must
                    # match the one-shot transcript pre-collapse length.
                    if len(decoded) != frames.shape[0]:
                        with lock:
                            mismatches.append(("session", index, version))

            threads = [
                threading.Thread(target=infer_traffic, args=(6,))
                for _ in range(3)
            ] + [threading.Thread(target=session_traffic, args=(3,))]
            for thread in threads:
                thread.start()
            time.sleep(0.05)
            ServeClient(url).put("/api/v1/theta", {"theta": 0.3})
            for thread in threads:
                thread.join()
            assert not errors
            assert not mismatches
            metrics = ServeClient(url).get("/api/v1/metrics")
            assert metrics["scheme"]["scheme_version"] == 2
            assert metrics["pool"]["replicas"] == 2
        finally:
            server.stop()
            state.unwrap()


class TestRetuneValidation:
    """Bugfix: booleans are not thresholds, and neither is NaN."""

    def test_boolean_theta_is_rejected(self, imdb):
        state = pooled_state(imdb)
        try:
            with pytest.raises(ValueError, match="number"):
                state.retune({"theta": True})
            assert state.scheme.theta == THETA
        finally:
            state.unwrap()

    def test_non_finite_theta_is_rejected(self, imdb):
        state = pooled_state(imdb)
        try:
            for bad in (float("nan"), float("inf"), float("-inf")):
                with pytest.raises(ValueError, match="finite"):
                    state.retune({"theta": bad})
            assert state.scheme.theta == THETA
        finally:
            state.unwrap()

    def test_boolean_and_non_finite_layer_thetas_are_rejected(self, imdb):
        state = pooled_state(imdb)
        layer = state.layer_names[0]
        try:
            with pytest.raises(ValueError, match="number"):
                state.retune({"layer_thetas": {layer: False}})
            with pytest.raises(ValueError, match="finite"):
                state.retune({"layer_thetas": {layer: float("nan")}})
            assert state.scheme.layer_thetas is None
        finally:
            state.unwrap()

    def test_non_finite_values_rejected_over_http(self, imdb):
        """Python's json.loads accepts NaN/Infinity tokens, so the hole
        is remotely reachable — the server must 400 it."""
        state = pooled_state(imdb)
        server = InferenceServer(state, quiet=True)
        server.serve_in_thread()
        try:
            client = ServeClient(server.url)
            for bad in (float("nan"), float("inf"), True):
                with pytest.raises(ServeError) as err:
                    client.put("/api/v1/theta", {"theta": bad})
                assert err.value.status == 400
            assert client.get("/api/v1/theta")["theta"] == THETA
        finally:
            server.stop()
            state.unwrap()

    def test_parse_layer_thetas_rejects_non_finite(self):
        with pytest.raises(ValueError, match="finite"):
            parse_layer_thetas(["stack.layer0=nan"])
        with pytest.raises(ValueError, match="finite"):
            parse_layer_thetas(["stack.layer0=inf"])

    def test_scheme_constructor_rejects_non_finite(self):
        with pytest.raises(ValueError):
            MemoizationScheme(theta=float("nan"))
        with pytest.raises(ValueError):
            MemoizationScheme(theta=float("inf"))
        with pytest.raises(ValueError):
            MemoizationScheme(
                theta=0.1, layer_thetas={"stack.layer0": float("nan")}
            )


class TestSessionTTL:
    """Bugfix: abandoned sessions are evicted, not leaked forever."""

    def test_idle_sessions_are_evicted_on_open(self, speech):
        state = pooled_state(speech, session_ttl=0.05)
        try:
            opened = state.open_session()
            state.sessions[opened["session"]].last_used -= 1.0
            reopened = state.open_session()
            assert opened["session"] not in state.sessions
            assert reopened["session"] in state.sessions
            assert state.sessions_evicted == 1
        finally:
            state.unwrap()

    def test_eviction_unblocks_a_full_session_table(self, speech):
        state = pooled_state(speech, max_sessions=2, session_ttl=0.05)
        try:
            stale = [state.open_session()["session"] for _ in range(2)]
            for sid in stale:
                state.sessions[sid].last_used -= 1.0
            # Before the fix this raised "too many open sessions" forever.
            fresh = state.open_session()
            assert fresh["session"] in state.sessions
            assert state.sessions_evicted == 2
        finally:
            state.unwrap()

    def test_closing_an_evicted_session_is_404(self, speech):
        state = pooled_state(speech, session_ttl=0.05)
        try:
            opened = state.open_session()
            state.sessions[opened["session"]].last_used -= 1.0
            with pytest.raises(SessionError):
                state.close_session(opened["session"])
        finally:
            state.unwrap()

    def test_feed_refreshes_the_stamp(self, speech):
        state = pooled_state(speech, session_ttl=60.0)
        try:
            opened = state.open_session()
            sid = opened["session"]
            state.sessions[sid].last_used -= 30.0
            chunk = speech.dataset.features[int(speech.test_idx[0])][:2]
            state.session_feed(sid, chunk.tolist())
            assert time.monotonic() - state.sessions[sid].last_used < 5.0
        finally:
            state.unwrap()

    def test_non_positive_ttl_disables_eviction(self, speech):
        state = pooled_state(speech, session_ttl=0.0)
        try:
            opened = state.open_session()
            state.sessions[opened["session"]].last_used -= 10_000.0
            state.open_session()
            assert opened["session"] in state.sessions
            assert state.sessions_evicted == 0
        finally:
            state.unwrap()


class TestMetricsConsistency:
    """Bugfix: /metrics takes one view under the state lock."""

    def test_snapshots_are_read_under_the_state_lock(self, imdb):
        state = pooled_state(imdb)

        held_during_snapshot = []

        class Probe(ThreadSafeReuseStats):
            def snapshot(inner):  # noqa: N805 - probe shim
                held_during_snapshot.append(state.lock._is_owned())
                return super().snapshot()

        probe = Probe()
        state.stats = probe
        for replica in state._replicas:
            replica.stats = probe
        try:
            state.metrics()
            assert held_during_snapshot
            assert all(held_during_snapshot)
        finally:
            state.unwrap()

    def test_metrics_aggregate_reuse_across_replicas(self, imdb):
        indices = [int(i) for i in imdb.test_idx[:4]]
        state = pooled_state(imdb, replicas=2, coalesce_ms=0.0)
        try:
            for index in indices:
                state.infer([imdb.dataset.tokens[index].tolist()])
            metrics = state.metrics()
            per_replica = metrics["pool"]["per_replica"]
            assert len(per_replica) == 2
            total_evals = metrics["reuse"]["total_evaluations"]
            assert total_evals > 0
            assert total_evals == sum(
                replica.stats.total_evaluations for replica in state._replicas
            ) + state.stats.total_evaluations
        finally:
            state.unwrap()


class TestLoadgenRetune:
    def test_loadgen_mid_run_retune_verifies_per_version(self, imdb):
        state = pooled_state(imdb, replicas=2, coalesce_ms=1.0)
        server = InferenceServer(state, quiet=True)
        server.serve_in_thread()
        try:
            summary = run_loadgen(
                server.url,
                "imdb",
                requests=10,
                concurrency=4,
                batch=2,
                verify=True,
                theta=THETA,
                retune_theta=0.5,
            )
            assert summary["errors"] == []
            assert summary["completed"] == 10
            assert summary["verify"]["mismatches"] == 0
            assert summary["verify"]["checked"] == 20
            # Both sides of the retune must have seen traffic.
            assert len(summary["verify"]["versions"]) == 2
            assert summary["pool"]["replicas"] == 2
        finally:
            server.stop()
            state.unwrap()


class TestStateValidation:
    def test_bad_pool_parameters_are_rejected(self, imdb):
        with pytest.raises(ValueError, match="replicas"):
            ServeState(imdb, MemoizationScheme(theta=THETA), replicas=0)
        with pytest.raises(ValueError, match="coalesce"):
            ServeState(
                imdb, MemoizationScheme(theta=THETA), coalesce_ms=-1.0
            )
