"""Shared test utilities: finite-difference gradient checking."""

from __future__ import annotations

from typing import Callable

import numpy as np

Array = np.ndarray


def numeric_grad(fn: Callable[[Array], float], x: Array, eps: float = 1e-6) -> Array:
    """Central-difference gradient of a scalar function at ``x``."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for idx in range(flat.size):
        original = flat[idx]
        flat[idx] = original + eps
        plus = fn(x)
        flat[idx] = original - eps
        minus = fn(x)
        flat[idx] = original
        grad_flat[idx] = (plus - minus) / (2.0 * eps)
    return grad


def assert_grad_close(
    analytic: Array, numeric: Array, rtol: float = 1e-4, atol: float = 1e-6
) -> None:
    """Assert analytic and numeric gradients agree."""
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)
