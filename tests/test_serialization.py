"""Tests for .npz model state persistence."""

import numpy as np
import pytest

from repro.nn.linear import Linear
from repro.nn.lstm import LSTMLayer
from repro.nn.module import Module
from repro.nn.rnn import RNNStack
from repro.nn.serialization import load_state, save_state


class TestRoundtrip:
    def test_linear(self, tmp_path):
        rng = np.random.default_rng(0)
        source = Linear(4, 3, rng=rng)
        target = Linear(4, 3, rng=np.random.default_rng(99))
        path = tmp_path / "model.npz"
        save_state(source, path)
        load_state(target, path)
        np.testing.assert_array_equal(source.weight.value, target.weight.value)
        np.testing.assert_array_equal(source.bias.value, target.bias.value)

    def test_deep_stack(self, tmp_path):
        rng = np.random.default_rng(1)
        source = RNNStack([LSTMLayer(4, 6, rng=rng), LSTMLayer(6, 5, rng=rng)])
        target = RNNStack(
            [
                LSTMLayer(4, 6, rng=np.random.default_rng(7)),
                LSTMLayer(6, 5, rng=np.random.default_rng(8)),
            ]
        )
        path = tmp_path / "stack.npz"
        save_state(source, path)
        load_state(target, path)
        x = rng.standard_normal((2, 5, 4))
        np.testing.assert_array_equal(source(x), target(x))

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "model.npz"
        save_state(Linear(2, 2), path)
        assert path.exists()


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_state(Linear(2, 2), tmp_path / "nope.npz")

    def test_architecture_mismatch(self, tmp_path):
        path = tmp_path / "model.npz"
        save_state(Linear(4, 3), path)
        with pytest.raises(ValueError):
            load_state(Linear(3, 4), path)

    def test_empty_module(self, tmp_path):
        class Empty(Module):
            pass

        with pytest.raises(ValueError):
            save_state(Empty(), tmp_path / "empty.npz")
