"""Tests for the BinaryGate mirror (paper Figure 9)."""

import numpy as np
import pytest

from repro.core.binarization import binarize, binary_dot
from repro.core.bnn import BinaryGate
from repro.metrics.correlation import pearson
from repro.nn.lstm import LSTMCell


@pytest.fixture
def rng():
    return np.random.default_rng(19)


class TestConstruction:
    def test_mirrors_concatenated_weights(self, rng):
        w_x = rng.standard_normal((4, 3))
        w_h = rng.standard_normal((4, 5))
        gate = BinaryGate(w_x, w_h)
        np.testing.assert_array_equal(
            gate.weights_bin, binarize(np.concatenate([w_x, w_h], axis=1))
        )
        assert gate.n_bits == 8
        assert gate.neurons == 4

    def test_rejects_mismatched_rows(self, rng):
        with pytest.raises(ValueError):
            BinaryGate(rng.standard_normal((4, 3)), rng.standard_normal((5, 3)))

    def test_rejects_1d(self, rng):
        with pytest.raises(ValueError):
            BinaryGate(rng.standard_normal(4), rng.standard_normal((4, 3)))

    def test_storage_bits(self, rng):
        gate = BinaryGate(rng.standard_normal((4, 3)), rng.standard_normal((4, 5)))
        assert gate.storage_bits == 4 * 8


class TestEvaluate:
    def test_matches_reference_dot(self, rng):
        w_x = rng.standard_normal((6, 4))
        w_h = rng.standard_normal((6, 6))
        gate = BinaryGate(w_x, w_h)
        x = rng.standard_normal((2, 4))
        h = rng.standard_normal((2, 6))
        expected = binary_dot(
            gate.weights_bin, binarize(np.concatenate([x, h], axis=-1))
        )
        np.testing.assert_array_equal(gate.evaluate(x, h), expected)

    def test_packed_path_equivalent(self, rng):
        w_x = rng.standard_normal((6, 4))
        w_h = rng.standard_normal((6, 7))
        plain = BinaryGate(w_x, w_h, use_packed=False)
        packed = BinaryGate(w_x, w_h, use_packed=True)
        x = rng.standard_normal((3, 4))
        h = rng.standard_normal((3, 7))
        np.testing.assert_array_equal(plain.evaluate(x, h), packed.evaluate(x, h))

    def test_wrong_operand_width_raises(self, rng):
        gate = BinaryGate(rng.standard_normal((4, 3)), rng.standard_normal((4, 5)))
        with pytest.raises(ValueError):
            gate.evaluate(rng.standard_normal((1, 3)), rng.standard_normal((1, 4)))

    def test_output_is_integer_valued(self, rng):
        gate = BinaryGate(rng.standard_normal((4, 3)), rng.standard_normal((4, 5)))
        out = gate.evaluate(rng.standard_normal((2, 3)), rng.standard_normal((2, 5)))
        assert out.dtype == np.int32


class TestDotProductPreservation:
    """Anderson & Berg's property the predictor relies on (§3.1.2)."""

    def test_bnn_correlates_with_full_precision(self, rng):
        """Pooled correlation should be clearly positive on a real gate."""
        cell = LSTMCell(24, 32, rng=rng)
        w_x, w_h, _ = cell.gate_weights("i")
        gate = BinaryGate(w_x, w_h)
        samples_full = []
        samples_bin = []
        for _ in range(200):
            x = rng.standard_normal((1, 24))
            h = np.tanh(rng.standard_normal((1, 32)))
            samples_full.append((x @ w_x.T + h @ w_h.T).ravel())
            samples_bin.append(gate.evaluate(x, h).ravel().astype(float))
        r = pearson(np.concatenate(samples_full), np.concatenate(samples_bin))
        assert r > 0.5, f"expected strong BNN/RNN correlation, got {r:.3f}"
