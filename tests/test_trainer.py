"""Tests for the generic trainer, using a tiny linear-regression model."""

import numpy as np
import pytest

from repro.nn.linear import Linear
from repro.nn.optim import SGD
from repro.nn.trainer import Trainer, TrainingLog


class RegressionModel:
    """Minimal TrainableModel: fit y = x @ w."""

    def __init__(self, rng):
        self.layer = Linear(3, 1, rng=rng)

    def zero_grad(self):
        self.layer.zero_grad()

    def compute_loss(self, batch):
        x, y = batch
        pred = self.layer(x)
        diff = pred - y
        self.layer.backward(2.0 * diff / diff.size)
        return float(np.mean(diff * diff))


@pytest.fixture
def problem():
    rng = np.random.default_rng(23)
    true_w = np.array([[1.0, -2.0, 0.5]])
    x = rng.standard_normal((64, 3))
    y = x @ true_w.T
    return rng, x, y, true_w


class TestTrainer:
    def test_loss_decreases(self, problem):
        rng, x, y, _ = problem
        model = RegressionModel(rng)
        trainer = Trainer(model, SGD(model.layer.parameters(), lr=0.1))
        log = trainer.fit(lambda epoch: [(x, y)], epochs=30)
        assert log.improved
        assert log.final_loss < log.epoch_losses[0] * 0.1

    def test_recovers_weights(self, problem):
        rng, x, y, true_w = problem
        model = RegressionModel(rng)
        trainer = Trainer(model, SGD(model.layer.parameters(), lr=0.2))
        trainer.fit(lambda epoch: [(x, y)], epochs=200)
        np.testing.assert_allclose(model.layer.weight.value, true_w, atol=1e-3)

    def test_eval_fn_recorded(self, problem):
        rng, x, y, _ = problem
        model = RegressionModel(rng)
        trainer = Trainer(
            model, SGD(model.layer.parameters(), lr=0.1), eval_fn=lambda: 0.75
        )
        log = trainer.fit(lambda epoch: [(x, y)], epochs=3)
        assert log.eval_metrics == [0.75, 0.75, 0.75]

    def test_batch_provider_gets_epoch_index(self, problem):
        rng, x, y, _ = problem
        seen = []

        def provider(epoch):
            seen.append(epoch)
            return [(x, y)]

        model = RegressionModel(rng)
        Trainer(model, SGD(model.layer.parameters(), lr=0.01)).fit(provider, epochs=3)
        assert seen == [0, 1, 2]

    def test_empty_epoch_raises(self, problem):
        rng, x, y, _ = problem
        model = RegressionModel(rng)
        trainer = Trainer(model, SGD(model.layer.parameters(), lr=0.01))
        with pytest.raises(ValueError):
            trainer.fit(lambda epoch: [], epochs=1)

    def test_zero_epochs_raises(self, problem):
        rng, x, y, _ = problem
        model = RegressionModel(rng)
        trainer = Trainer(model, SGD(model.layer.parameters(), lr=0.01))
        with pytest.raises(ValueError):
            trainer.fit(lambda epoch: [(x, y)], epochs=0)


class TestTrainingLog:
    def test_final_loss_empty_raises(self):
        with pytest.raises(ValueError):
            TrainingLog().final_loss

    def test_improved_needs_two_epochs(self):
        log = TrainingLog(epoch_losses=[1.0])
        assert not log.improved
