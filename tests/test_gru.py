"""Gradient checks and behavioural tests for the GRU."""

import numpy as np
import pytest

from repro.nn.activations import sigmoid, tanh
from repro.nn.gru import GRU_GATES, GRUCell, GRULayer

from helpers import assert_grad_close, numeric_grad


@pytest.fixture
def rng():
    return np.random.default_rng(5)


class TestCellForward:
    def test_step_shapes(self, rng):
        cell = GRUCell(4, 6, rng=rng)
        h, cache = cell.step(rng.standard_normal((2, 4)), np.zeros((2, 6)))
        assert h.shape == (2, 6)
        assert set(cache) >= {"z", "r", "g"}

    def test_matches_reference_equations(self, rng):
        cell = GRUCell(3, 5, rng=rng)
        x = rng.standard_normal((1, 3))
        h_prev = rng.standard_normal((1, 5))
        h, _ = cell.step(x, h_prev)

        def lin(name, rec):
            w_x, w_h, b = cell.gate_weights(name)
            return x @ w_x.T + rec @ w_h.T + b

        z = sigmoid(lin("z", h_prev))
        r = sigmoid(lin("r", h_prev))
        g = tanh(lin("g", r * h_prev))
        h_ref = (1.0 - z) * h_prev + z * g
        np.testing.assert_allclose(h, h_ref)

    def test_preacts_hook(self, rng):
        cell = GRUCell(3, 5, rng=rng)
        x = rng.standard_normal((1, 3))
        h_prev = rng.standard_normal((1, 5))
        pre = cell.zr_preacts(x, h_prev)
        z = sigmoid(pre["z"] + cell.b_z.value)
        r = sigmoid(pre["r"] + cell.b_r.value)
        pre["g"] = cell.g_preact(x, r * h_prev)
        del z
        h_direct, _ = cell.step(x, h_prev)
        h_hooked, _ = cell.step(x, h_prev, preacts=pre)
        np.testing.assert_allclose(h_direct, h_hooked)

    def test_gate_names(self, rng):
        assert GRUCell(3, 5, rng=rng).gate_names == GRU_GATES

    def test_unknown_gate_raises(self, rng):
        with pytest.raises(KeyError):
            GRUCell(3, 5, rng=rng).gate_weights("o")

    def test_interpolation_property(self, rng):
        """h_t must lie between h_{t-1} and the candidate g (elementwise)."""
        cell = GRUCell(3, 5, rng=rng)
        x = rng.standard_normal((4, 3))
        h_prev = rng.standard_normal((4, 5))
        h, cache = cell.step(x, h_prev)
        low = np.minimum(h_prev, cache["g"])
        high = np.maximum(h_prev, cache["g"])
        assert np.all(h >= low - 1e-12) and np.all(h <= high + 1e-12)


class TestLayerForward:
    def test_output_shape(self, rng):
        layer = GRULayer(4, 6, rng=rng)
        assert layer(rng.standard_normal((2, 7, 4))).shape == (2, 7, 6)

    def test_rejects_non_3d(self, rng):
        with pytest.raises(ValueError):
            GRULayer(4, 6, rng=rng)(rng.standard_normal((7, 4)))

    def test_initial_state_used(self, rng):
        layer = GRULayer(4, 6, rng=rng)
        x = rng.standard_normal((1, 3, 4))
        h0 = rng.standard_normal((1, 6))
        assert not np.allclose(layer(x), layer(x, h0=h0))


class TestLayerGradients:
    def _setup(self, rng):
        layer = GRULayer(3, 4, rng=rng)
        x = rng.standard_normal((2, 4, 3))
        probe = rng.standard_normal((2, 4, 4))
        return layer, x, probe

    def test_input_gradient(self, rng):
        layer, x, probe = self._setup(rng)

        def loss(v):
            return float(np.sum(layer.forward(v) * probe))

        layer.forward(x)
        analytic = layer.backward(probe)
        assert_grad_close(analytic, numeric_grad(loss, x), rtol=1e-3, atol=1e-6)

    @pytest.mark.parametrize(
        "pname", ["w_zx", "w_zh", "w_rx", "w_rh", "w_gx", "w_gh", "b_z", "b_r", "b_g"]
    )
    def test_weight_gradients(self, rng, pname):
        layer, x, probe = self._setup(rng)
        param = getattr(layer.cell, pname)

        def loss(w):
            saved = param.value
            param.value = w
            out = float(np.sum(layer.forward(x) * probe))
            param.value = saved
            return out

        layer.forward(x)
        layer.backward(probe)
        assert_grad_close(
            param.grad, numeric_grad(loss, param.value.copy()), rtol=1e-3, atol=1e-6
        )

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            GRULayer(3, 4, rng=rng).backward(np.zeros((1, 2, 4)))
