"""The ``repro serve`` HTTP surface: online fuzzy-memoized inference.

A thin JSON-over-HTTP shell around :class:`~repro.serve.state.ServeState`,
built on the same hardened plumbing as the sweep coordinator
(:mod:`repro.runner.transport.http_common`): Bearer-token auth, capped
and gzip-aware body reads, gzip replies, per-route request counters.

Endpoints (all under ``/api/v1``):

==========================  =======  ====================================
``/health``                 GET      liveness + model identity
``/infer``                  POST     ``{inputs: [row, ...]}`` or
                                     ``{input: row}``; with ``session``
                                     feeds a streaming session chunk
``/theta``                  GET      the live scheme (+ layer names)
``/theta``                  PUT      retune: ``{theta, layer_thetas,
                                     predictor, throttle}`` (any subset)
``/metrics``                GET      counters, latency histogram, reuse
``/events``                 GET      bounded structured event ring
``/session/open``           POST     open a streaming session
``/session/close``          POST     ``{session}`` -> final transcript
==========================  =======  ====================================

plus ``/metrics.prom`` (GET, *not* under ``/api/v1``): the same
telemetry as Prometheus text exposition, through the same auth.

Every reply echoes ``X-Repro-Request-Id`` and every ``/infer`` response
body repeats it next to per-stage ``timings_ms``, so a client can line
its own latency up against the server's span breakdown — and find the
same id again in ``/api/v1/events``.

Rows are JSON: token lists for sentiment/translation models, frame
matrices (``T x F`` number lists) for speech.  Every inference response
carries the ``scheme_version`` it was served under, so a client
sweeping thresholds live can attribute each prediction to its scheme.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.prom import PROM_CONTENT_TYPE, render
from repro.runner.transport.http_common import (
    MAX_BODY_BYTES,
    JsonApiHandler,
    JsonApiServer,
    RawReply,
    RequestError,
)
from repro.serve.state import ServeState, SessionError

#: Default ``repro serve`` port (distinct from the coordinator's 8642).
DEFAULT_SERVE_PORT = 8765


class InferenceHandler(JsonApiHandler):
    """Routes one request to the owning server's :class:`ServeState`."""

    server: "InferenceServer"
    server_version = "repro-serve/1"

    @property
    def state(self) -> ServeState:
        return self.server.state

    def _ep_health(self, body: Dict[str, object]) -> Dict[str, object]:
        del body
        state = self.state
        return {
            "ok": True,
            "model": state.benchmark.name,
            "scale": state.benchmark.scale,
            "seed": state.benchmark.seed,
            "task": state.adapter.kind,
            "streamable": state.adapter.streamable,
            "scheme_version": state.scheme_version,
            "replicas": state.replica_count,
            "coalesce_ms": state.coalesce_ms,
        }

    def _ep_infer(self, body: Dict[str, object]) -> Dict[str, object]:
        session_id = body.get("session")
        if "input" in body and "inputs" in body:
            raise RequestError(400, "pass either 'input' or 'inputs', not both")
        if "input" in body:
            rows = [body["input"]]
        else:
            rows = body.get("inputs")
        try:
            if session_id is not None:
                if not isinstance(rows, list) or len(rows) != 1:
                    raise ValueError(
                        "a session request feeds exactly one chunk "
                        "('input', or a one-row 'inputs')"
                    )
                result = self.state.session_feed(
                    session_id, rows[0], request_id=self.request_id
                )
            else:
                result = self.state.infer(rows, request_id=self.request_id)
        except SessionError as exc:
            raise RequestError(404, str(exc.args[0])) from exc
        except ValueError as exc:
            raise RequestError(400, str(exc)) from exc
        result["request_id"] = self.request_id
        return result

    def _ep_theta_get(self, body: Dict[str, object]) -> Dict[str, object]:
        del body
        return self.state.scheme_info()

    def _ep_theta_put(self, body: Dict[str, object]) -> Dict[str, object]:
        try:
            info = self.state.retune(body)
        except ValueError as exc:
            raise RequestError(400, str(exc)) from exc
        self._log_event(
            f"retuned to theta={info['theta']} "
            f"(scheme_version {info['scheme_version']})"
        )
        return info

    def _ep_metrics(self, body: Dict[str, object]) -> Dict[str, object]:
        del body
        return self.state.metrics(request_counts=self.server.request_counts)

    def _ep_metrics_prom(self, body: Dict[str, object]) -> RawReply:
        del body
        self.state.sync_registry()
        return RawReply(render(self.server.registry), PROM_CONTENT_TYPE)

    def _ep_events(self, body: Dict[str, object]) -> Dict[str, object]:
        del body
        return self.server.events.snapshot()

    def _ep_session_open(self, body: Dict[str, object]) -> Dict[str, object]:
        del body
        try:
            opened = self.state.open_session()
        except ValueError as exc:
            raise RequestError(400, str(exc)) from exc
        self._log_event(f"session {opened['session']} opened")
        return opened

    def _ep_session_close(self, body: Dict[str, object]) -> Dict[str, object]:
        try:
            closed = self.state.close_session(body.get("session"))
        except SessionError as exc:
            raise RequestError(404, str(exc.args[0])) from exc
        except ValueError as exc:
            raise RequestError(400, str(exc)) from exc
        self._log_event(f"session {closed['session']} closed")
        return closed


_ROUTES = {
    "/api/v1/health": ("GET", InferenceHandler._ep_health),
    "/api/v1/infer": ("POST", InferenceHandler._ep_infer),
    "/api/v1/theta": {
        "GET": InferenceHandler._ep_theta_get,
        "PUT": InferenceHandler._ep_theta_put,
    },
    "/api/v1/metrics": ("GET", InferenceHandler._ep_metrics),
    "/api/v1/events": ("GET", InferenceHandler._ep_events),
    "/metrics.prom": ("GET", InferenceHandler._ep_metrics_prom),
    "/api/v1/session/open": ("POST", InferenceHandler._ep_session_open),
    "/api/v1/session/close": ("POST", InferenceHandler._ep_session_close),
}


class InferenceServer(JsonApiServer):
    """One warm memoized model served over HTTP.

    Args:
        state: the :class:`ServeState` to serve (model already wrapped).
        host / port: bind address; port ``0`` picks an ephemeral port.
        token: shared secret; ``None`` serves unauthenticated (loopback
            testing).  Production deployments should always set one.
        quiet: suppress event log lines (tests).
        max_body_bytes: per-request body cap (decompressed size for
            gzip requests).
    """

    log_name = "serve"

    def __init__(
        self,
        state: ServeState,
        host: str = "127.0.0.1",
        port: int = 0,
        token: Optional[str] = None,
        quiet: bool = False,
        max_body_bytes: int = MAX_BODY_BYTES,
    ):
        self.state = state
        # Share the state's registry and event log: HTTP request counts,
        # engine counters and server events land in one exposition.
        super().__init__(
            host,
            port,
            InferenceHandler,
            _ROUTES,
            token=token,
            quiet=quiet,
            max_body_bytes=max_body_bytes,
            registry=state.registry,
            events=state.events,
        )
