"""Serving state: one warm memoized model answering many requests.

:class:`ServeState` is everything behind the HTTP surface of ``repro
serve``: the trained benchmark model wrapped with fuzzy memoization
exactly once at startup, a lock that serializes model access (numpy
inference releases the GIL mid-GEMM, and the memoized wrappers carry
per-sequence decision state, so concurrent forwards through one model
would corrupt each other), cumulative thread-safe reuse statistics, a
bounded latency histogram, and the streaming sessions.

Request rows are evaluated exactly like the batch evaluation path
(:meth:`repro.models.benchmark.Benchmark.evaluate_memoized`): every
forward starts a fresh sequence, and the repo's row-independence
invariant — per-row model computation is bitwise independent of which
other rows share a batch — makes a served row identical to the same row
inside any offline batch at the same scheme.  The memo *buffers* stay
allocated between requests (``begin_sequence`` reallocates only on a
batch-shape change), so a warm server does no per-request allocation for
its steady-state traffic shape.

Live retuning swaps the whole scheme atomically under the model lock
(:func:`repro.core.engine.swap_scheme`): requests already holding the
lock finish under the scheme they started with; every response reports
the ``scheme_version`` it was served under so clients can attribute
predictions to thresholds.

Streaming sessions give one caller a *private* memoized view of the
recurrent stack: fresh wrappers over the same weights, with predictor
and memo state that persists across chunk requests instead of resetting
per request — the session-scoped warm memo of the paper's deployment
story.  A chunked transcription is bitwise identical to the one-shot
forward of the concatenated frames, because chunking only splits the
timestep loop around preserved state.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import (
    MemoizationScheme,
    _iter_recurrent_children,
    apply_memoization,
    swap_scheme,
)
from repro.core.layers import wrap_layer
from repro.core.stats import ThreadSafeReuseStats
from repro.datasets.speech import collapse
from repro.models.benchmark import Benchmark
from repro.nn.rnn import Bidirectional

Array = np.ndarray

#: Upper bound on rows per ``/infer`` request: enough for any sane
#: client batch, small enough that one request cannot monopolise the
#: model lock for an unbounded stretch.
MAX_INFER_ROWS = 256

#: Latency bucket upper bounds in milliseconds: log-spaced from 0.25 ms
#: to ~2 minutes, covering sub-millisecond tiny-model hits through
#: lock-queued bench-scale batches.  The histogram is fixed-size, so
#: metrics memory is bounded for the life of the server.
LATENCY_BOUNDS_MS = tuple(0.25 * 2**i for i in range(19))


class LatencyHistogram:
    """Fixed-bucket latency histogram, safe for concurrent observers."""

    def __init__(self, bounds_ms: Sequence[float] = LATENCY_BOUNDS_MS):
        self.bounds_ms = tuple(bounds_ms)
        self._counts = [0] * (len(self.bounds_ms) + 1)  # +1: overflow
        self._count = 0
        self._sum_ms = 0.0
        self._max_ms = 0.0
        self._lock = threading.Lock()

    def observe(self, latency_ms: float) -> None:
        index = int(np.searchsorted(self.bounds_ms, latency_ms, side="left"))
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum_ms += latency_ms
            self._max_ms = max(self._max_ms, latency_ms)

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready view: cumulative bucket counts plus summary stats."""
        with self._lock:
            counts = list(self._counts)
            count = self._count
            total = self._sum_ms
            peak = self._max_ms
        cumulative = 0
        buckets = []
        for bound, bucket in zip(self.bounds_ms, counts):
            cumulative += bucket
            buckets.append({"le_ms": bound, "count": cumulative})
        return {
            "count": count,
            "sum_ms": total,
            "mean_ms": (total / count) if count else 0.0,
            "max_ms": peak,
            "overflow": counts[-1],
            "buckets": buckets,
        }


# -- task adapters -----------------------------------------------------------


class TaskAdapter:
    """Validates request rows and runs them through the benchmark model.

    One adapter per application domain; ``validate_row`` raises
    :class:`ValueError` with a client-worthy message (the HTTP layer maps
    it to a 400), ``infer`` turns validated rows into JSON-serializable
    outputs.  Rows of equal shape are stacked into one forward (bitwise
    identical to per-row evaluation, by the row-independence invariant);
    ragged batches fall back to row-at-a-time.
    """

    kind = "generic"
    streamable = False

    def __init__(self, benchmark: Benchmark):
        self.benchmark = benchmark
        self.model = benchmark.model

    def validate_row(self, row: object) -> Array:
        raise NotImplementedError

    def infer(self, rows: List[Array]) -> List[object]:
        if all(row.shape == rows[0].shape for row in rows):
            return self._infer_batch(np.stack(rows))
        outputs: List[object] = []
        for row in rows:
            outputs.extend(self._infer_batch(row[None]))
        return outputs

    def _infer_batch(self, batch: Array) -> List[object]:
        raise NotImplementedError


def _validate_token_row(row: object, vocab: int, what: str) -> Array:
    if not isinstance(row, list) or not row:
        raise ValueError(f"each {what} row must be a non-empty list of ints")
    if not all(isinstance(token, int) and not isinstance(token, bool)
               for token in row):
        raise ValueError(f"{what} tokens must be integers")
    if not all(0 <= token < vocab for token in row):
        raise ValueError(f"{what} tokens must be in [0, {vocab})")
    return np.asarray(row, dtype=np.int64)


class SentimentAdapter(TaskAdapter):
    """IMDB-style: token rows in, one class label per row out."""

    kind = "sentiment"

    def validate_row(self, row: object) -> Array:
        return _validate_token_row(row, self.benchmark.dataset.vocab_size,
                                   "token")

    def _infer_batch(self, batch: Array) -> List[object]:
        return [int(label) for label in self.model.predict(batch)]


class SpeechAdapter(TaskAdapter):
    """Speech: (T, F) feature-frame rows in, collapse-decoded
    transcripts out.  Streamable when the stack is unidirectional."""

    kind = "speech"

    def __init__(self, benchmark: Benchmark):
        super().__init__(benchmark)
        self.feature_dim = benchmark.dataset.feature_dim
        self.streamable = not any(
            isinstance(layer, Bidirectional) for layer in self.model.stack.layers
        )

    def validate_row(self, row: object) -> Array:
        try:
            frames = np.asarray(row, dtype=np.float64)
        except (TypeError, ValueError):
            raise ValueError("each speech row must be a (frames x features) "
                             "array of numbers")
        if frames.ndim != 2 or frames.shape[0] < 1:
            raise ValueError("each speech row must be a non-empty "
                             "(frames x features) array")
        if frames.shape[1] != self.feature_dim:
            raise ValueError(
                f"speech rows must have {self.feature_dim} features per "
                f"frame, got {frames.shape[1]}"
            )
        if not np.isfinite(frames).all():
            raise ValueError("speech rows must be finite numbers")
        return frames

    def _infer_batch(self, batch: Array) -> List[object]:
        return [list(transcript) for transcript in self.model.transcribe(batch)]


class TranslationAdapter(TaskAdapter):
    """MNMT-style: source-token rows in, decoded target rows out.

    Decoding always runs ``early_stop=False`` with the evaluation path's
    step budget, so a served row sees exactly the decoder-step count it
    would inside any offline batch — the precondition for bitwise
    equality with ``evaluate_memoized``.
    """

    kind = "translation"

    def __init__(self, benchmark: Benchmark):
        super().__init__(benchmark)
        self.max_len = benchmark.dataset.length + 2

    def validate_row(self, row: object) -> Array:
        return _validate_token_row(row, self.benchmark.dataset.vocab_size,
                                   "source")

    def _infer_batch(self, batch: Array) -> List[object]:
        hypotheses = self.model.translate(
            batch, max_len=self.max_len, early_stop=False
        )
        return [list(hypothesis) for hypothesis in hypotheses]


_ADAPTERS = {
    "imdb": SentimentAdapter,
    "deepspeech2": SpeechAdapter,
    "eesen": SpeechAdapter,
    "mnmt": TranslationAdapter,
}


def make_adapter(benchmark: Benchmark) -> TaskAdapter:
    try:
        adapter = _ADAPTERS[benchmark.name]
    except KeyError:
        raise ValueError(
            f"no serving adapter for benchmark {benchmark.name!r}; "
            f"known: {sorted(_ADAPTERS)}"
        ) from None
    return adapter(benchmark)


# -- streaming sessions ------------------------------------------------------


class StreamSession:
    """One caller's private memoized view of the recurrent stack.

    Wrappers are built over the *original* layers (same weights as the
    server's shared wrappers) but with their own predictors and memo
    tables, started once at open: chunk requests thread the recurrent
    state through, so the memo stays warm across requests instead of
    resetting — and the concatenation of all chunks is bitwise identical
    to a one-shot forward of the full utterance.
    """

    def __init__(self, session_id: str, wrappers: List[object],
                 scheme_version: int, theta: float):
        self.session_id = session_id
        self.wrappers = wrappers
        self.states = [wrapper.start_state(1) for wrapper in wrappers]
        self.scheme_version = scheme_version
        self.theta = theta
        self.decoded: List[int] = []
        self.frames_fed = 0


class SessionError(KeyError):
    """Unknown or already-closed session id (HTTP 404)."""


# -- the state object --------------------------------------------------------


class ServeState:
    """Everything one ``repro serve`` process owns.

    Args:
        benchmark: a zoo benchmark; trained on construction if needed
            (the one expensive startup step — requests only run forwards).
        scheme: the initial memoization scheme.
        max_sessions: open streaming sessions allowed at once (keeps an
            abandoning client from accumulating per-session state).
    """

    def __init__(
        self,
        benchmark: Benchmark,
        scheme: MemoizationScheme,
        max_sessions: int = 64,
    ):
        benchmark.ensure_trained()
        self.benchmark = benchmark
        self.adapter = make_adapter(benchmark)
        self.stats = ThreadSafeReuseStats()
        self.lock = threading.RLock()
        self.scheme = scheme
        self.scheme_version = 1
        # Layer names in walk order, captured before wrapping (the walk
        # only sees unwrapped layers); zip-aligned with `replacements`
        # after apply_memoization, and stable across scheme swaps.
        self.layer_names = [
            dotted for _, _, _, dotted in _iter_recurrent_children(benchmark.model)
        ]
        self.replacements = apply_memoization(
            benchmark.model, scheme, self.stats
        )
        self.latency = LatencyHistogram()
        self.started_at = time.time()
        self.infer_requests = 0
        self.rows_served = 0
        self.max_sessions = max_sessions
        self.sessions: Dict[str, StreamSession] = {}
        self.sessions_opened = 0
        self.sessions_closed = 0

    # -- inference ----------------------------------------------------------

    def infer(self, raw_rows: Sequence[object]) -> Dict[str, object]:
        """Validate and evaluate a batch of rows under the live scheme."""
        if not isinstance(raw_rows, list) or not raw_rows:
            raise ValueError("inputs must be a non-empty list of rows")
        if len(raw_rows) > MAX_INFER_ROWS:
            raise ValueError(
                f"at most {MAX_INFER_ROWS} rows per request, "
                f"got {len(raw_rows)}"
            )
        rows = [self.adapter.validate_row(row) for row in raw_rows]
        start = time.perf_counter()
        with self.lock:
            version = self.scheme_version
            theta = self.scheme.theta
            outputs = self.adapter.infer(rows)
            self.infer_requests += 1
            self.rows_served += len(rows)
        self.latency.observe(1000.0 * (time.perf_counter() - start))
        return {
            "outputs": outputs,
            "scheme_version": version,
            "theta": theta,
            "model": self.benchmark.name,
        }

    # -- live retuning ------------------------------------------------------

    def scheme_info(self) -> Dict[str, object]:
        with self.lock:
            scheme = self.scheme
            return {
                "theta": scheme.theta,
                "predictor": scheme.predictor,
                "throttle": scheme.throttle,
                "vectorized": scheme.vectorized,
                "layer_thetas": (
                    dict(scheme.layer_thetas) if scheme.layer_thetas else None
                ),
                "layers": list(self.layer_names),
                "scheme_version": self.scheme_version,
            }

    def retune(self, updates: Mapping[str, object]) -> Dict[str, object]:
        """Atomically re-wrap the model under an updated scheme.

        ``updates`` may set ``theta``, ``layer_thetas`` (a mapping, or
        ``None`` to clear the overrides), ``predictor`` and ``throttle``.
        Validation is :class:`MemoizationScheme`'s own (a bad update
        raises :class:`ValueError` before the model is touched, and a
        failed swap rolls back to the old scheme).  In-flight requests
        hold the model lock, so they finish under the scheme they
        started with; the bumped ``scheme_version`` marks the boundary.
        """
        allowed = {"theta", "layer_thetas", "predictor", "throttle"}
        unknown = set(updates) - allowed
        if unknown:
            raise ValueError(
                f"unknown scheme field(s) {sorted(unknown)}; "
                f"retunable: {sorted(allowed)}"
            )
        if not updates:
            raise ValueError(f"nothing to retune; retunable: {sorted(allowed)}")
        changes = dict(updates)
        if "theta" in changes and not isinstance(
            changes["theta"], (int, float)
        ):
            raise ValueError("theta must be a number")
        if "layer_thetas" in changes and changes["layer_thetas"] is not None:
            overrides = changes["layer_thetas"]
            if not isinstance(overrides, dict) or not all(
                isinstance(name, str) and isinstance(value, (int, float))
                for name, value in overrides.items()
            ):
                raise ValueError(
                    "layer_thetas must map layer names to numbers, or null"
                )
            unknown_layers = set(overrides) - set(self.layer_names)
            if unknown_layers:
                raise ValueError(
                    f"unknown layer(s) {sorted(unknown_layers)}; "
                    f"this model has {self.layer_names}"
                )
        if "predictor" in changes and not isinstance(changes["predictor"], str):
            raise ValueError("predictor must be a string")
        if "throttle" in changes and not isinstance(changes["throttle"], bool):
            raise ValueError("throttle must be a boolean")
        with self.lock:
            new_scheme = replace(self.scheme, **changes)  # may raise ValueError
            swap_scheme(
                self.benchmark.model,
                self.replacements,
                self.scheme,
                new_scheme,
                self.stats,
            )
            self.scheme = new_scheme
            self.scheme_version += 1
            return self.scheme_info()

    # -- streaming sessions -------------------------------------------------

    def open_session(self) -> Dict[str, object]:
        if not self.adapter.streamable:
            raise ValueError(
                f"model {self.benchmark.name!r} does not support streaming "
                "sessions (only unidirectional speech stacks do)"
            )
        with self.lock:
            if len(self.sessions) >= self.max_sessions:
                raise ValueError(
                    f"too many open sessions (limit {self.max_sessions}); "
                    "close one first"
                )
            session_id = os.urandom(8).hex()
            scheme = self.scheme
            wrappers = [
                wrap_layer(
                    record.original,
                    scheme.with_theta(scheme.theta_for(dotted)).make_predictor,
                    self.stats,
                    name=dotted,
                    vectorized=scheme.vectorized,
                )
                for record, dotted in zip(self.replacements, self.layer_names)
            ]
            session = StreamSession(
                session_id, wrappers, self.scheme_version, scheme.theta
            )
            self.sessions[session_id] = session
            self.sessions_opened += 1
        return {
            "session": session_id,
            "scheme_version": session.scheme_version,
            "theta": session.theta,
            "model": self.benchmark.name,
        }

    def _session(self, session_id: object) -> StreamSession:
        if not isinstance(session_id, str):
            raise ValueError("session must be a string id")
        try:
            return self.sessions[session_id]
        except KeyError:
            raise SessionError(f"unknown session {session_id!r}") from None

    def session_feed(self, session_id: object, chunk: object) -> Dict[str, object]:
        """Run one chunk of frames through a session's warm stack."""
        frames = self.adapter.validate_row(chunk)
        start = time.perf_counter()
        with self.lock:
            session = self._session(session_id)
            hidden = frames[None]  # (1, T, F)
            steps = hidden.shape[1]
            for index, wrapper in enumerate(session.wrappers):
                out = np.empty((1, steps, wrapper.hidden_size))
                state = session.states[index]
                for t in range(steps):
                    out[:, t, :], state = wrapper.step(hidden[:, t, :], state)
                session.states[index] = state
                hidden = out
            logits = self.benchmark.model.classifier(hidden)
            predictions = [int(p) for p in logits.argmax(axis=-1)[0]]
            session.decoded.extend(predictions)
            session.frames_fed += steps
            self.infer_requests += 1
            self.rows_served += 1
        self.latency.observe(1000.0 * (time.perf_counter() - start))
        return {
            "outputs": [predictions],
            "session": session.session_id,
            "frames": session.frames_fed,
            "scheme_version": session.scheme_version,
            "theta": session.theta,
            "model": self.benchmark.name,
        }

    def close_session(self, session_id: object) -> Dict[str, object]:
        """Close a session; returns the collapse-decoded transcript."""
        with self.lock:
            session = self._session(session_id)
            del self.sessions[session_id]
            self.sessions_closed += 1
        return {
            "session": session.session_id,
            "transcript": list(collapse(session.decoded)),
            "frames": session.frames_fed,
            "scheme_version": session.scheme_version,
        }

    # -- metrics ------------------------------------------------------------

    def metrics(
        self, request_counts: Optional[Mapping[str, int]] = None
    ) -> Dict[str, object]:
        stats = self.stats.snapshot()
        with self.lock:
            scheme_info = {
                "theta": self.scheme.theta,
                "predictor": self.scheme.predictor,
                "throttle": self.scheme.throttle,
                "scheme_version": self.scheme_version,
            }
            inference = {
                "requests": self.infer_requests,
                "rows": self.rows_served,
            }
            sessions = {
                "open": len(self.sessions),
                "opened": self.sessions_opened,
                "closed": self.sessions_closed,
            }
        return {
            "model": {
                "name": self.benchmark.name,
                "scale": self.benchmark.scale,
                "seed": self.benchmark.seed,
                "base_quality": self.benchmark.base_quality,
                "quality_metric": self.benchmark.spec.quality_metric,
            },
            "scheme": scheme_info,
            "uptime_s": time.time() - self.started_at,
            "requests": dict(request_counts or {}),
            "inference": {**inference, "latency_ms": self.latency.snapshot()},
            "reuse": {
                "overall_fraction": stats.reuse_fraction(),
                "by_layer": stats.by_layer(),
                "total_evaluations": stats.total_evaluations,
                "total_reused": stats.total_reused,
            },
            "sessions": sessions,
        }

    # -- shutdown helper ----------------------------------------------------

    def unwrap(self) -> None:
        """Restore the original model layers (tests re-use the model)."""
        from repro.core.engine import restore

        with self.lock:
            restore(self.replacements)
            self.replacements = []


def parse_layer_thetas(pairs: Sequence[str]) -> Dict[str, float]:
    """Parse CLI ``LAYER=THETA`` override pairs."""
    overrides: Dict[str, float] = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or not name:
            raise ValueError(f"expected LAYER=THETA, got {pair!r}")
        try:
            overrides[name] = float(value)
        except ValueError:
            raise ValueError(f"bad threshold in {pair!r}") from None
    return overrides
