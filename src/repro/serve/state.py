"""Serving state: a pool of warm memoized replicas answering many requests.

:class:`ServeState` is everything behind the HTTP surface of ``repro
serve``.  Since PR 8 the compute side is a **replica pool**: N
structural clones of the trained model (same weight arrays, private
:class:`~repro.core.layers.MemoizedRecurrentLayer` wrappers and memo
state per clone — see
:func:`repro.nn.module.clone_with_shared_parameters`) sit in a
:class:`queue.Queue`; a request checks a replica out, runs its forward,
and puts it back, so K concurrent ``/infer`` requests run up to N
forwards genuinely in parallel.  The repo's row-independence invariant —
per-row model computation is bitwise independent of which other rows
share a batch, and of which wrapper instance computes it — makes every
replica's answer bitwise identical to the single-model path of PR 7 and
to the offline batch evaluation
(:meth:`repro.models.benchmark.Benchmark.evaluate_memoized`).

On top of the pool sits a **coalescing batcher**.  Requests do not go
straight to a replica: each validated request becomes a job on a shared
pending queue, and whichever request thread checks out a replica first
acts as the *leader* — it drains every waiting equal-shape job (bounded
by :data:`MAX_INFER_ROWS`), stacks their rows into one forward, and
unstacks the outputs per job.  While all other replicas are busy and
requests are visibly coalescing, the leader holds a short gather window
(``coalesce_ms``) for stragglers; a lone request never waits.  This is
the few-builders/many-front-ends topology of the DAQ event-builder
papers: many cheap HTTP acceptor threads feeding a small set of compute
replicas.  Coalescing is latency policy only — by row independence the
stacked forward is bitwise the per-request forwards.

Live retuning swaps the scheme across the *whole pool* atomically: the
retune checks out every replica (waiting for in-flight forwards, which
therefore finish under the scheme of the replica they checked out),
re-wraps each under the new scheme via
:func:`repro.core.engine.swap_scheme`, bumps ``scheme_version`` once,
and returns the pool.  Every response reports the ``scheme_version`` it
was served under so clients can attribute predictions to thresholds.

Streaming sessions give one caller a *private* memoized view of the
recurrent stack: fresh wrappers over the same weights, with predictor
and memo state that persists across chunk requests instead of resetting
per request.  Sessions carry a ``last_used`` stamp and are evicted after
``session_ttl`` seconds idle, so abandoned clients cannot permanently
exhaust ``max_sessions``.  A chunked transcription is bitwise identical
to the one-shot forward of the concatenated frames, because chunking
only splits the timestep loop around preserved state.
"""

from __future__ import annotations

import math
import os
import queue
import threading
import time
from dataclasses import replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import (
    MemoizationScheme,
    apply_memoization,
    iter_recurrent_layers,
    restore,
    swap_scheme,
)
from repro.core.layers import wrap_layer
from repro.core.stats import ReuseStats, ThreadSafeReuseStats
from repro.datasets.speech import collapse
from repro.models.benchmark import Benchmark
from repro.nn.module import clone_with_shared_parameters
from repro.nn.rnn import Bidirectional
from repro.obs import EventLog, Histogram, MetricsRegistry

Array = np.ndarray

#: Upper bound on rows per ``/infer`` request *and* per coalesced
#: forward: enough for any sane client batch, small enough that one
#: forward cannot monopolise a replica for an unbounded stretch.
MAX_INFER_ROWS = 256

#: Default gather window for the coalescing batcher, in milliseconds.
#: Only consulted when every other replica is busy and at least two
#: jobs already coalesced — a lone request is never delayed by it.
#: Zero disables coalescing entirely (one request per forward).
DEFAULT_COALESCE_MS = 2.0

#: Default idle TTL for streaming sessions, in seconds (~10 min).  A
#: non-positive TTL disables eviction.
DEFAULT_SESSION_TTL = 600.0

#: Safety-net sleep for a request thread waiting on a replica.  The real
#: wake path is the pending condition — leaders notify it whenever they
#: return a replica or finish jobs — so this bound is only reached if a
#: wakeup is lost.
_POOL_WAIT_S = 0.05

#: Latency bucket upper bounds in milliseconds: log-spaced from 0.25 ms
#: to ~2 minutes, covering sub-millisecond tiny-model hits through
#: queued bench-scale batches.  The histogram is fixed-size, so metrics
#: memory is bounded for the life of the server.
LATENCY_BOUNDS_MS = tuple(0.25 * 2**i for i in range(19))


class LatencyHistogram(Histogram):
    """Fixed-bucket latency histogram, safe for concurrent observers.

    Since PR 9 this is the registry :class:`~repro.obs.Histogram` under
    its original name and constructor: ``observe(ms)`` and
    ``snapshot()`` keep their PR 7 signatures and the snapshot shape is
    unchanged, but the same series now also renders into the Prometheus
    exposition at ``/metrics.prom``.
    """

    def __init__(self, bounds_ms: Sequence[float] = LATENCY_BOUNDS_MS):
        super().__init__(
            "repro_request_latency_ms",
            "End-to-end inference latency in milliseconds.",
            bounds_ms=bounds_ms,
        )


# -- task adapters -----------------------------------------------------------


class TaskAdapter:
    """Validates request rows and runs them through a benchmark model.

    One adapter per application domain; ``validate_row`` raises
    :class:`ValueError` with a client-worthy message (the HTTP layer maps
    it to a 400), ``infer`` turns validated rows into JSON-serializable
    outputs.  Rows of equal shape are stacked into one forward (bitwise
    identical to per-row evaluation, by the row-independence invariant);
    ragged batches fall back to row-at-a-time.

    ``infer`` takes the model to run explicitly so one adapter serves
    every replica in the pool; without one it falls back to the
    benchmark's own (unwrapped — no memoization) model.
    """

    kind = "generic"
    streamable = False

    def __init__(self, benchmark: Benchmark):
        self.benchmark = benchmark
        self.model = benchmark.model

    def validate_row(self, row: object) -> Array:
        raise NotImplementedError

    def infer(self, rows: List[Array], model=None) -> List[object]:
        model = self.model if model is None else model
        if all(row.shape == rows[0].shape for row in rows):
            return self._infer_batch(np.stack(rows), model)
        outputs: List[object] = []
        for row in rows:
            outputs.extend(self._infer_batch(row[None], model))
        return outputs

    def _infer_batch(self, batch: Array, model) -> List[object]:
        raise NotImplementedError


def _validate_token_row(row: object, vocab: int, what: str) -> Array:
    if not isinstance(row, list) or not row:
        raise ValueError(f"each {what} row must be a non-empty list of ints")
    if not all(isinstance(token, int) and not isinstance(token, bool)
               for token in row):
        raise ValueError(f"{what} tokens must be integers")
    if not all(0 <= token < vocab for token in row):
        raise ValueError(f"{what} tokens must be in [0, {vocab})")
    return np.asarray(row, dtype=np.int64)


class SentimentAdapter(TaskAdapter):
    """IMDB-style: token rows in, one class label per row out."""

    kind = "sentiment"

    def validate_row(self, row: object) -> Array:
        return _validate_token_row(row, self.benchmark.dataset.vocab_size,
                                   "token")

    def _infer_batch(self, batch: Array, model) -> List[object]:
        return [int(label) for label in model.predict(batch)]


class SpeechAdapter(TaskAdapter):
    """Speech: (T, F) feature-frame rows in, collapse-decoded
    transcripts out.  Streamable when the stack is unidirectional."""

    kind = "speech"

    def __init__(self, benchmark: Benchmark):
        super().__init__(benchmark)
        self.feature_dim = benchmark.dataset.feature_dim
        self.streamable = not any(
            isinstance(layer, Bidirectional) for layer in self.model.stack.layers
        )

    def validate_row(self, row: object) -> Array:
        try:
            frames = np.asarray(row, dtype=np.float64)
        except (TypeError, ValueError):
            raise ValueError("each speech row must be a (frames x features) "
                             "array of numbers") from None
        if frames.ndim != 2 or frames.shape[0] < 1:
            raise ValueError("each speech row must be a non-empty "
                             "(frames x features) array")
        if frames.shape[1] != self.feature_dim:
            raise ValueError(
                f"speech rows must have {self.feature_dim} features per "
                f"frame, got {frames.shape[1]}"
            )
        if not np.isfinite(frames).all():
            raise ValueError("speech rows must be finite numbers")
        return frames

    def _infer_batch(self, batch: Array, model) -> List[object]:
        return [list(transcript) for transcript in model.transcribe(batch)]


class TranslationAdapter(TaskAdapter):
    """MNMT-style: source-token rows in, decoded target rows out.

    Decoding always runs ``early_stop=False`` with the evaluation path's
    step budget, so a served row sees exactly the decoder-step count it
    would inside any offline batch — the precondition for bitwise
    equality with ``evaluate_memoized``.
    """

    kind = "translation"

    def __init__(self, benchmark: Benchmark):
        super().__init__(benchmark)
        self.max_len = benchmark.dataset.length + 2

    def validate_row(self, row: object) -> Array:
        return _validate_token_row(row, self.benchmark.dataset.vocab_size,
                                   "source")

    def _infer_batch(self, batch: Array, model) -> List[object]:
        hypotheses = model.translate(
            batch, max_len=self.max_len, early_stop=False
        )
        return [list(hypothesis) for hypothesis in hypotheses]


_ADAPTERS = {
    "imdb": SentimentAdapter,
    "deepspeech2": SpeechAdapter,
    "eesen": SpeechAdapter,
    "mnmt": TranslationAdapter,
}


def make_adapter(benchmark: Benchmark) -> TaskAdapter:
    try:
        adapter = _ADAPTERS[benchmark.name]
    except KeyError:
        raise ValueError(
            f"no serving adapter for benchmark {benchmark.name!r}; "
            f"known: {sorted(_ADAPTERS)}"
        ) from None
    return adapter(benchmark)


# -- the replica pool --------------------------------------------------------


class Replica:
    """One independently-wrapped compute copy of the served model.

    The model is a structural clone sharing every weight array with the
    benchmark's trained model; memoization wrappers, predictors and memo
    tables are private, as is the :class:`ThreadSafeReuseStats` the
    wrappers record into — so replicas never contend on a stats lock in
    the inference hot path.  Exclusive use is guaranteed by pool
    checkout, and ``scheme``/``scheme_version`` are only rewritten by a
    retune that holds the checkout.
    """

    def __init__(
        self,
        index: int,
        model,
        scheme: MemoizationScheme,
        scheme_version: int,
    ):
        self.index = index
        self.model = clone_with_shared_parameters(model)
        self.stats = ThreadSafeReuseStats()
        self.replacements = apply_memoization(self.model, scheme, self.stats)
        self.scheme = scheme
        self.scheme_version = scheme_version
        self.requests_served = 0
        self.rows_served = 0
        self.batches_served = 0


class _InferJob:
    """One ``/infer`` request waiting for (or holding) its outputs."""

    __slots__ = (
        "rows", "shape_key", "done", "outputs", "error",
        "scheme_version", "theta", "started",
        "request_id", "claimed", "forward_start", "forward_end", "finished",
    )

    def __init__(self, rows: List[Array], request_id: Optional[str] = None):
        self.rows = rows
        first = rows[0].shape
        # Equal-shape rows stack with other jobs; ragged jobs ride alone
        # (the adapter already falls back to row-at-a-time for them).
        self.shape_key: Optional[Tuple[int, ...]] = (
            first if all(row.shape == first for row in rows) else None
        )
        self.done = threading.Event()
        self.outputs: Optional[List[object]] = None
        self.error: Optional[BaseException] = None
        self.scheme_version = 0
        self.theta = 0.0
        self.request_id = request_id
        # Span timestamps (perf_counter).  ``started`` stamps job
        # creation; the leader stamps ``claimed`` (popped off pending),
        # ``forward_start``/``forward_end`` (around the stacked forward)
        # and ``finished`` (outputs sliced back); the request thread
        # turns the contiguous segments into ``timings_ms``.
        self.started = time.perf_counter()
        self.claimed = 0.0
        self.forward_start = 0.0
        self.forward_end = 0.0
        self.finished = 0.0


# -- streaming sessions ------------------------------------------------------


class StreamSession:
    """One caller's private memoized view of the recurrent stack.

    Wrappers are built over the *original* layers (same weights as the
    pool's replicas) but with their own predictors and memo tables,
    started once at open: chunk requests thread the recurrent state
    through, so the memo stays warm across requests instead of resetting
    — and the concatenation of all chunks is bitwise identical to a
    one-shot forward of the full utterance.

    ``last_used`` drives idle eviction; ``lock`` serializes feeds into
    this session (feeds into *different* sessions run concurrently).
    """

    def __init__(self, session_id: str, wrappers: List[object],
                 scheme_version: int, theta: float):
        self.session_id = session_id
        self.wrappers = wrappers
        self.states = [wrapper.start_state(1) for wrapper in wrappers]
        self.scheme_version = scheme_version
        self.theta = theta
        self.decoded: List[int] = []
        self.frames_fed = 0
        # Monotonic: last_used feeds idle-TTL spans, which must not
        # jump when NTP steps the wall clock.
        self.last_used = time.monotonic()
        self.lock = threading.Lock()


class SessionError(KeyError):
    """Unknown or already-closed session id (HTTP 404)."""


def _require_finite_number(value: object, what: str) -> None:
    """Reject bools (an ``int`` subclass!) and non-finite floats."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"{what} must be a number")
    if not math.isfinite(value):
        raise ValueError(f"{what} must be finite")


# -- the state object --------------------------------------------------------


class ServeState:
    """Everything one ``repro serve`` process owns.

    Args:
        benchmark: a zoo benchmark; trained on construction if needed
            (the one expensive startup step — requests only run forwards).
            The benchmark's own model is never wrapped: replicas are
            weight-sharing clones, so offline evaluation of the same
            benchmark can proceed concurrently with serving.
        scheme: the initial memoization scheme.
        max_sessions: open streaming sessions allowed at once.
        replicas: compute copies in the pool (>= 1).
        coalesce_ms: gather window of the coalescing batcher; ``0``
            disables coalescing entirely (one request per forward — the
            single-model baseline behaviour).
        session_ttl: seconds a streaming session may sit idle before it
            is evicted; non-positive disables eviction.
    """

    def __init__(
        self,
        benchmark: Benchmark,
        scheme: MemoizationScheme,
        max_sessions: int = 64,
        replicas: int = 1,
        coalesce_ms: float = DEFAULT_COALESCE_MS,
        session_ttl: float = DEFAULT_SESSION_TTL,
    ):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if coalesce_ms < 0:
            raise ValueError("coalesce_ms must be non-negative")
        benchmark.ensure_trained()
        self.benchmark = benchmark
        self.adapter = make_adapter(benchmark)
        #: Streaming-session wrappers record here; replica stats live on
        #: the replicas and are merged in at read time.
        self.stats = ThreadSafeReuseStats()
        self.lock = threading.RLock()
        self.scheme = scheme  # guarded-by: lock
        self.scheme_version = 1  # guarded-by: lock
        #: (layer, dotted_name) in walk order over the *unwrapped* model
        #: — the template sessions and clones are wrapped from.
        self._recurrent_layers = list(iter_recurrent_layers(benchmark.model))
        self.layer_names = [dotted for _, dotted in self._recurrent_layers]
        self._replicas = [
            Replica(index, benchmark.model, scheme, self.scheme_version)
            for index in range(replicas)
        ]
        self._pool: "queue.Queue[Replica]" = queue.Queue()
        for replica in self._replicas:
            self._pool.put(replica)
        self.coalesce_ms = float(coalesce_ms)
        self._coalesce_s = self.coalesce_ms / 1000.0
        self._pending: List[_InferJob] = []  # guarded-by: _pending_cond
        self._pending_cond = threading.Condition()
        #: Guards the plain counters below.  Leaders take only this lock
        #: while holding a replica — never ``self.lock``, which a retune
        #: holds while draining the pool (lock-order discipline that
        #: keeps retune/serve deadlock-free).
        self._counters_lock = threading.Lock()
        #: One registry + event log per served process.  The HTTP shell
        #: is handed both, so engine metrics, request counters and
        #: events share one ``/metrics.prom`` / ``/api/v1/events``.
        self.registry = MetricsRegistry()
        self.events = EventLog()
        self.latency = LatencyHistogram()
        self.registry.register(self.latency)
        self.stage_latency = self.registry.histogram(
            "repro_infer_stage_ms",
            "Per-request span timings by pipeline stage, in milliseconds.",
            label_names=("stage",),
        )
        self.started_at = time.monotonic()  # feeds uptime_s spans
        self.infer_requests = 0  # guarded-by: _counters_lock
        self.rows_served = 0  # guarded-by: _counters_lock
        self.batches = 0  # guarded-by: _counters_lock
        self.coalesced_batches = 0  # guarded-by: _counters_lock
        self.max_batch_jobs = 0  # guarded-by: _counters_lock
        self.max_batch_rows = 0  # guarded-by: _counters_lock
        self.batch_jobs_hist: Dict[int, int] = {}  # guarded-by: _counters_lock
        self.max_sessions = max_sessions
        self.session_ttl = float(session_ttl)
        self.sessions: Dict[str, StreamSession] = {}  # guarded-by: lock
        self.sessions_opened = 0  # guarded-by: lock
        self.sessions_closed = 0  # guarded-by: lock
        self.sessions_evicted = 0  # guarded-by: lock

    @property
    def replica_count(self) -> int:
        return len(self._replicas)

    # -- inference ----------------------------------------------------------

    def infer(
        self,
        raw_rows: Sequence[object],
        request_id: Optional[str] = None,
    ) -> Dict[str, object]:
        """Validate and evaluate a batch of rows under the live scheme.

        The request becomes a job on the pending queue; this thread then
        competes for a replica and, when it gets one, serves *whatever
        is pending* (possibly several coalesced requests, possibly not
        its own — another leader may already have taken it).  Either
        way it returns once its own job is done.
        """
        accepted = time.perf_counter()
        if not isinstance(raw_rows, list) or not raw_rows:
            raise ValueError("inputs must be a non-empty list of rows")
        if len(raw_rows) > MAX_INFER_ROWS:
            raise ValueError(
                f"at most {MAX_INFER_ROWS} rows per request, "
                f"got {len(raw_rows)}"
            )
        rows = [self.adapter.validate_row(row) for row in raw_rows]
        job = _InferJob(rows, request_id=request_id)
        with self._pending_cond:
            self._pending.append(job)
            self._pending_cond.notify_all()  # wake gather-window leaders
        while not job.done.is_set():
            replica = None
            with self._pending_cond:
                if job.done.is_set():
                    break
                try:
                    replica = self._pool.get_nowait()
                except queue.Empty:
                    # No free replica: sleep until a leader returns one
                    # (it notifies this condition) or finishes our job.
                    # The timeout is a safety net, not the wake path.
                    self._pending_cond.wait(_POOL_WAIT_S)
            if replica is None:
                continue
            try:
                self._run_one_batch(replica)
            finally:
                with self._pending_cond:
                    self._pool.put(replica)
                    self._pending_cond.notify_all()
        if job.error is not None:
            raise job.error
        end = time.perf_counter()
        self.latency.observe(1000.0 * (end - job.started))
        timings_ms = self._finish_spans(job, accepted, end)
        self.events.emit(
            "infer",
            request_id=request_id,
            rows=len(rows),
            scheme_version=job.scheme_version,
            total_ms=timings_ms["total"],
        )
        return {
            "outputs": job.outputs,
            "scheme_version": job.scheme_version,
            "theta": job.theta,
            "model": self.benchmark.name,
            "timings_ms": timings_ms,
        }

    def _finish_spans(
        self, job: _InferJob, accepted: float, end: float
    ) -> Dict[str, float]:
        """Turn a finished job's timestamps into per-stage milliseconds.

        The stages are *contiguous segments* of one wall-clock interval
        — ``accepted`` through ``end`` — so their sum IS the measured
        total, exactly, with nothing double-counted or unattributed.
        Each stage also lands in the ``repro_infer_stage_ms`` histogram.
        """
        claimed = job.claimed or job.started
        forward_start = job.forward_start or claimed
        forward_end = job.forward_end or forward_start
        finished = job.finished or forward_end
        spans = (
            ("validate", job.started - accepted),
            ("queue_wait", claimed - job.started),
            ("gather", forward_start - claimed),
            ("forward", forward_end - forward_start),
            ("finalize", finished - forward_end),
            ("collect", end - finished),
        )
        timings_ms: Dict[str, float] = {}
        total = 0.0
        for stage, seconds in spans:
            stage_ms = 1000.0 * max(0.0, seconds)
            timings_ms[stage] = stage_ms
            total += stage_ms
            self.stage_latency.observe(stage_ms, labels=(stage,))
        timings_ms["total"] = total
        return timings_ms

    def _gather_batch(self) -> List[_InferJob]:
        """Claim a coalesced batch of pending jobs for one forward.

        The head of the pending queue defines the batch: every waiting
        job with the same row shape joins it (FIFO, skipping
        incompatible shapes) until :data:`MAX_INFER_ROWS`.  A ragged job
        rides alone.  The gather window is only held when this is the
        last free replica *and* at least two jobs already coalesced —
        evidence of real concurrency; a lone request is never delayed.
        """
        batch: List[_InferJob] = []
        total_rows = 0
        deadline = None
        with self._pending_cond:
            if self._coalesce_s <= 0:
                # Coalescing off: one job per forward — the PR 7-style
                # baseline the replica-sweep bench compares against.
                if not self._pending:
                    return []
                job = self._pending.pop(0)
                job.claimed = time.perf_counter()
                return [job]
            while True:
                index = 0
                while index < len(self._pending) and total_rows < MAX_INFER_ROWS:
                    job = self._pending[index]
                    if not batch:
                        del self._pending[index]
                        job.claimed = time.perf_counter()
                        batch.append(job)
                        total_rows += len(job.rows)
                        if job.shape_key is None:
                            return batch
                        continue
                    if (
                        job.shape_key == batch[0].shape_key
                        and total_rows + len(job.rows) <= MAX_INFER_ROWS
                    ):
                        del self._pending[index]
                        job.claimed = time.perf_counter()
                        batch.append(job)
                        total_rows += len(job.rows)
                        continue
                    index += 1
                if not batch:
                    return []
                if (
                    len(batch) < 2
                    or total_rows >= MAX_INFER_ROWS
                    or self._pool.qsize() > 0
                ):
                    return batch
                if deadline is None:
                    deadline = time.monotonic() + self._coalesce_s
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return batch
                self._pending_cond.wait(remaining)

    def _run_one_batch(self, replica: Replica) -> None:
        """Serve one coalesced batch (possibly empty) on ``replica``."""
        batch = self._gather_batch()
        if not batch:
            return
        all_rows = [row for job in batch for row in job.rows]
        forward_start = time.perf_counter()
        for job in batch:
            job.forward_start = forward_start
        try:
            outputs = self.adapter.infer(all_rows, model=replica.model)
        except BaseException as exc:
            for job in batch:
                job.error = exc
                job.done.set()
            raise
        forward_end = time.perf_counter()
        for job in batch:
            job.forward_end = forward_end
        version = replica.scheme_version
        theta = replica.scheme.theta
        total_rows = len(all_rows)
        with self._counters_lock:
            self.infer_requests += len(batch)
            self.rows_served += total_rows
            self.batches += 1
            if len(batch) > 1:
                self.coalesced_batches += 1
            self.max_batch_jobs = max(self.max_batch_jobs, len(batch))
            self.max_batch_rows = max(self.max_batch_rows, total_rows)
            self.batch_jobs_hist[len(batch)] = (
                self.batch_jobs_hist.get(len(batch), 0) + 1
            )
            replica.requests_served += len(batch)
            replica.rows_served += total_rows
            replica.batches_served += 1
        cursor = 0
        for job in batch:
            job.outputs = outputs[cursor:cursor + len(job.rows)]
            cursor += len(job.rows)
            job.scheme_version = version
            job.theta = theta
            job.finished = time.perf_counter()
            job.done.set()

    # -- live retuning ------------------------------------------------------

    def scheme_info(self) -> Dict[str, object]:
        with self.lock:
            scheme = self.scheme
            return {
                "theta": scheme.theta,
                "predictor": scheme.predictor,
                "throttle": scheme.throttle,
                "vectorized": scheme.vectorized,
                "layer_thetas": (
                    dict(scheme.layer_thetas) if scheme.layer_thetas else None
                ),
                "layers": list(self.layer_names),
                "scheme_version": self.scheme_version,
            }

    def retune(self, updates: Mapping[str, object]) -> Dict[str, object]:
        """Atomically re-wrap every replica under an updated scheme.

        ``updates`` may set ``theta``, ``layer_thetas`` (a mapping, or
        ``None`` to clear the overrides), ``predictor`` and ``throttle``.
        The retune checks out the whole pool — in-flight requests finish
        under their checkout's scheme first — swaps each replica via
        :func:`swap_scheme`, bumps ``scheme_version`` exactly once, and
        returns the replicas.  A failed swap restores every
        already-swapped replica to the old scheme before the exception
        propagates, so the pool is never mixed-scheme.
        """
        allowed = {"theta", "layer_thetas", "predictor", "throttle"}
        unknown = set(updates) - allowed
        if unknown:
            raise ValueError(
                f"unknown scheme field(s) {sorted(unknown)}; "
                f"retunable: {sorted(allowed)}"
            )
        if not updates:
            raise ValueError(f"nothing to retune; retunable: {sorted(allowed)}")
        changes = dict(updates)
        if "theta" in changes:
            _require_finite_number(changes["theta"], "theta")
        if "layer_thetas" in changes and changes["layer_thetas"] is not None:
            overrides = changes["layer_thetas"]
            if not isinstance(overrides, dict):
                raise ValueError(
                    "layer_thetas must map layer names to numbers, or null"
                )
            for name, value in overrides.items():
                if not isinstance(name, str):
                    raise ValueError(
                        "layer_thetas must map layer names to numbers, or null"
                    )
                _require_finite_number(value, f"layer_thetas[{name!r}]")
            unknown_layers = set(overrides) - set(self.layer_names)
            if unknown_layers:
                raise ValueError(
                    f"unknown layer(s) {sorted(unknown_layers)}; "
                    f"this model has {self.layer_names}"
                )
        if "predictor" in changes and not isinstance(changes["predictor"], str):
            raise ValueError("predictor must be a string")
        if "throttle" in changes and not isinstance(changes["throttle"], bool):
            raise ValueError("throttle must be a boolean")
        with self.lock:
            new_scheme = replace(self.scheme, **changes)  # may raise ValueError
            checked_out = [self._pool.get() for _ in self._replicas]
            try:
                swapped: List[Replica] = []
                try:
                    for replica in checked_out:
                        swap_scheme(
                            replica.model,
                            replica.replacements,
                            replica.scheme,
                            new_scheme,
                            replica.stats,
                        )
                        swapped.append(replica)
                except Exception:
                    # Pool-wide atomicity: un-swap the ones that made it.
                    for replica in swapped:
                        swap_scheme(
                            replica.model,
                            replica.replacements,
                            new_scheme,
                            replica.scheme,
                            replica.stats,
                        )
                    raise
                version = self.scheme_version + 1
                for replica in checked_out:
                    replica.scheme = new_scheme
                    replica.scheme_version = version
            finally:
                with self._pending_cond:
                    for replica in checked_out:
                        self._pool.put(replica)
                    self._pending_cond.notify_all()
            self.scheme = new_scheme
            self.scheme_version = version
            self.events.emit(
                "retune",
                scheme_version=version,
                theta=new_scheme.theta,
                predictor=new_scheme.predictor,
                changed=sorted(changes),
            )
            return self.scheme_info()

    # -- streaming sessions -------------------------------------------------

    # checks: holds-lock lock
    def _evict_idle_sessions(self, now: float) -> None:
        """Drop sessions idle past the TTL (caller holds ``self.lock``).

        A session whose lock is held is mid-feed and therefore not idle,
        whatever its stamp says — skip it; the feed refreshes the stamp.
        """
        if self.session_ttl <= 0:
            return
        for session_id, session in list(self.sessions.items()):
            if (
                now - session.last_used > self.session_ttl
                and not session.lock.locked()
            ):
                del self.sessions[session_id]
                self.sessions_evicted += 1
                self.events.emit(
                    "session_evicted",
                    session=session_id,
                    idle_s=round(now - session.last_used, 3),
                )

    def open_session(self) -> Dict[str, object]:
        if not self.adapter.streamable:
            raise ValueError(
                f"model {self.benchmark.name!r} does not support streaming "
                "sessions (only unidirectional speech stacks do)"
            )
        now = time.monotonic()
        with self.lock:
            self._evict_idle_sessions(now)
            if len(self.sessions) >= self.max_sessions:
                raise ValueError(
                    f"too many open sessions (limit {self.max_sessions}); "
                    "close one first"
                )
            session_id = os.urandom(8).hex()
            scheme = self.scheme
            wrappers = [
                wrap_layer(
                    layer,
                    scheme.with_theta(scheme.theta_for(dotted)).make_predictor,
                    self.stats,
                    name=dotted,
                    vectorized=scheme.vectorized,
                )
                for layer, dotted in self._recurrent_layers
            ]
            session = StreamSession(
                session_id, wrappers, self.scheme_version, scheme.theta
            )
            self.sessions[session_id] = session
            self.sessions_opened += 1
        self.events.emit(
            "session_opened",
            session=session_id,
            scheme_version=session.scheme_version,
        )
        return {
            "session": session_id,
            "scheme_version": session.scheme_version,
            "theta": session.theta,
            "model": self.benchmark.name,
        }

    # checks: holds-lock lock
    def _session(self, session_id: object) -> StreamSession:
        if not isinstance(session_id, str):
            raise ValueError("session must be a string id")
        try:
            return self.sessions[session_id]
        except KeyError:
            raise SessionError(f"unknown session {session_id!r}") from None

    def session_feed(
        self,
        session_id: object,
        chunk: object,
        request_id: Optional[str] = None,
    ) -> Dict[str, object]:
        """Run one chunk of frames through a session's warm stack.

        Feeds into different sessions run concurrently (each session's
        wrappers are private); feeds into one session serialize on its
        lock.  The classifier belongs to the shared unwrapped model and
        is a pure function of its weights, so sharing it is race-free.
        """
        accepted = time.perf_counter()
        frames = self.adapter.validate_row(chunk)
        start = time.perf_counter()
        now = time.monotonic()
        with self.lock:
            self._evict_idle_sessions(now)
            session = self._session(session_id)
            session.last_used = now
        with session.lock:
            forward_start = time.perf_counter()
            hidden = frames[None]  # (1, T, F)
            steps = hidden.shape[1]
            for index, wrapper in enumerate(session.wrappers):
                out = np.empty((1, steps, wrapper.hidden_size))
                state = session.states[index]
                for t in range(steps):
                    out[:, t, :], state = wrapper.step(hidden[:, t, :], state)
                session.states[index] = state
                hidden = out
            logits = self.benchmark.model.classifier(hidden)
            predictions = [int(p) for p in logits.argmax(axis=-1)[0]]
            session.decoded.extend(predictions)
            session.frames_fed += steps
            session.last_used = time.monotonic()
        forward_end = time.perf_counter()
        with self._counters_lock:
            self.infer_requests += 1
            self.rows_served += 1
        end = time.perf_counter()
        self.latency.observe(1000.0 * (end - start))
        # Same contiguous-segment discipline as the batched path, with
        # session-shaped stages: the sum is exactly ``accepted -> end``.
        spans = (
            ("validate", start - accepted),
            ("session_wait", forward_start - start),
            ("forward", forward_end - forward_start),
            ("finalize", end - forward_end),
        )
        timings_ms: Dict[str, float] = {}
        total = 0.0
        for stage, seconds in spans:
            stage_ms = 1000.0 * max(0.0, seconds)
            timings_ms[stage] = stage_ms
            total += stage_ms
            self.stage_latency.observe(stage_ms, labels=(stage,))
        timings_ms["total"] = total
        self.events.emit(
            "infer",
            request_id=request_id,
            session=session.session_id,
            rows=1,
            scheme_version=session.scheme_version,
            total_ms=timings_ms["total"],
        )
        return {
            "outputs": [predictions],
            "session": session.session_id,
            "frames": session.frames_fed,
            "scheme_version": session.scheme_version,
            "theta": session.theta,
            "model": self.benchmark.name,
            "timings_ms": timings_ms,
        }

    def close_session(self, session_id: object) -> Dict[str, object]:
        """Close a session; returns the collapse-decoded transcript.

        A session evicted for idleness is gone from the table, so
        closing it reports the same 404 :class:`SessionError` as any
        unknown id.
        """
        with self.lock:
            self._evict_idle_sessions(time.monotonic())
            session = self._session(session_id)
            del self.sessions[session_id]
            self.sessions_closed += 1
        self.events.emit(
            "session_closed",
            session=session.session_id,
            frames=session.frames_fed,
        )
        return {
            "session": session.session_id,
            "transcript": list(collapse(session.decoded)),
            "frames": session.frames_fed,
            "scheme_version": session.scheme_version,
        }

    # -- metrics ------------------------------------------------------------

    def aggregate_stats(self) -> ReuseStats:
        """Fleet-wide reuse counters: every replica plus the sessions."""
        return ReuseStats.merged(
            [replica.stats.snapshot() for replica in self._replicas]
            + [self.stats.snapshot()]
        )

    def metrics(
        self, request_counts: Optional[Mapping[str, int]] = None
    ) -> Dict[str, object]:
        """One consistent view of counters, reuse, pool and sessions.

        Everything is read under ``self.lock``: a retune also holds that
        lock for its whole pool swap, so the reuse counters, the scheme
        and the ``scheme_version`` reported here always belong together.
        """
        with self.lock:
            replica_snapshots = [
                replica.stats.snapshot() for replica in self._replicas
            ]
            session_snapshot = self.stats.snapshot()
            stats = ReuseStats.merged(replica_snapshots + [session_snapshot])
            scheme_info = {
                "theta": self.scheme.theta,
                "predictor": self.scheme.predictor,
                "throttle": self.scheme.throttle,
                "scheme_version": self.scheme_version,
            }
            sessions = {
                "open": len(self.sessions),
                "opened": self.sessions_opened,
                "closed": self.sessions_closed,
                "evicted": self.sessions_evicted,
                "ttl_s": self.session_ttl,
            }
            available = self._pool.qsize()
            with self._counters_lock:
                inference = {
                    "requests": self.infer_requests,
                    "rows": self.rows_served,
                }
                pool = {
                    "replicas": len(self._replicas),
                    "available": available,
                    "busy": len(self._replicas) - available,
                    "per_replica": [
                        {
                            "replica": replica.index,
                            "requests": replica.requests_served,
                            "rows": replica.rows_served,
                            "batches": replica.batches_served,
                            "reuse_fraction": snapshot.reuse_fraction(),
                        }
                        for replica, snapshot in zip(
                            self._replicas, replica_snapshots
                        )
                    ],
                }
                coalesce = {
                    "window_ms": self.coalesce_ms,
                    "batches": self.batches,
                    "coalesced_batches": self.coalesced_batches,
                    "max_batch_jobs": self.max_batch_jobs,
                    "max_batch_rows": self.max_batch_rows,
                    "batch_jobs_hist": {
                        str(jobs): count
                        for jobs, count in sorted(self.batch_jobs_hist.items())
                    },
                }
        return {
            "model": {
                "name": self.benchmark.name,
                "scale": self.benchmark.scale,
                "seed": self.benchmark.seed,
                "base_quality": self.benchmark.base_quality,
                "quality_metric": self.benchmark.spec.quality_metric,
            },
            "scheme": scheme_info,
            "uptime_s": time.monotonic() - self.started_at,
            "requests": dict(request_counts or {}),
            "inference": {**inference, "latency_ms": self.latency.snapshot()},
            "pool": pool,
            "coalesce": coalesce,
            "reuse": {
                "overall_fraction": stats.reuse_fraction(),
                "by_layer": stats.by_layer(),
                "total_evaluations": stats.total_evaluations,
                "total_reused": stats.total_reused,
            },
            "sessions": sessions,
        }

    def sync_registry(self) -> Dict[str, object]:
        """Mirror the engine counters into the registry for a scrape.

        The serving counters live under ``_counters_lock`` (the hot
        path), not in the registry; a ``/metrics.prom`` scrape copies
        one consistent :meth:`metrics` snapshot into registry counters
        (``set_total`` — monotonic) and gauges.  Returns the snapshot so
        a caller can render both views from the same numbers.
        """
        snapshot = self.metrics()
        registry = self.registry
        inference = snapshot["inference"]
        pool = snapshot["pool"]
        coalesce = snapshot["coalesce"]
        reuse = snapshot["reuse"]
        sessions = snapshot["sessions"]
        scheme = snapshot["scheme"]
        for name, help_text, value in (
            ("repro_infer_requests_total",
             "Inference requests served.", inference["requests"]),
            ("repro_infer_rows_total",
             "Inference rows served.", inference["rows"]),
            ("repro_batches_total",
             "Forwards run by the replica pool.", coalesce["batches"]),
            ("repro_coalesced_batches_total",
             "Forwards that coalesced 2+ requests.",
             coalesce["coalesced_batches"]),
            ("repro_sessions_opened_total",
             "Streaming sessions opened.", sessions["opened"]),
            ("repro_sessions_closed_total",
             "Streaming sessions closed by the client.", sessions["closed"]),
            ("repro_sessions_evicted_total",
             "Streaming sessions evicted for idleness.", sessions["evicted"]),
            ("repro_reuse_evaluations_total",
             "Neuron evaluations considered for reuse.",
             reuse["total_evaluations"]),
            ("repro_reuse_reused_total",
             "Neuron evaluations answered from the memo.",
             reuse["total_reused"]),
        ):
            registry.counter(name, help_text).set_total(value)
        for name, help_text, value in (
            ("repro_pool_replicas",
             "Compute replicas in the pool.", pool["replicas"]),
            ("repro_pool_available",
             "Replicas currently idle.", pool["available"]),
            ("repro_pool_busy",
             "Replicas currently serving a forward.", pool["busy"]),
            ("repro_sessions_open",
             "Streaming sessions currently open.", sessions["open"]),
            ("repro_reuse_fraction",
             "Fleet-wide fraction of evaluations reused.",
             reuse["overall_fraction"]),
            ("repro_scheme_version",
             "Version of the live memoization scheme.",
             scheme["scheme_version"]),
            ("repro_scheme_theta",
             "Global threshold of the live scheme.", scheme["theta"]),
            ("repro_uptime_seconds",
             "Seconds since the server came up.", snapshot["uptime_s"]),
        ):
            registry.gauge(name, help_text).set(value)
        return snapshot

    # -- shutdown helper ----------------------------------------------------

    def unwrap(self) -> None:
        """Dispose the replica pool (waits for in-flight forwards).

        The shared benchmark model is never wrapped, so there is nothing
        to restore on it — each checked-back-in clone is unwrapped and
        the pool refilled so a late caller cannot block forever.
        """
        with self.lock:
            drained = [self._pool.get() for _ in self._replicas]
            for replica in drained:
                restore(replica.replacements)
                replica.replacements = []
            with self._pending_cond:
                for replica in drained:
                    self._pool.put(replica)
                self._pending_cond.notify_all()


def parse_layer_thetas(pairs: Sequence[str]) -> Dict[str, float]:
    """Parse CLI ``LAYER=THETA`` override pairs.

    Thresholds must parse as *finite* floats: ``nan``/``inf`` are real
    ``float()`` values that every downstream comparison silently
    mishandles, so they are rejected here at the door.
    """
    overrides: Dict[str, float] = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or not name:
            raise ValueError(f"expected LAYER=THETA, got {pair!r}")
        try:
            threshold = float(value)
        except ValueError:
            raise ValueError(f"bad threshold in {pair!r}") from None
        if not math.isfinite(threshold):
            raise ValueError(f"threshold must be finite in {pair!r}")
        overrides[name] = threshold
    return overrides
