"""Online fuzzy-memoized inference: ``repro serve`` and its load generator.

The serving stack answers the deployment question behind the paper's
memoization story: the model is loaded and wrapped *once*, memo buffers
stay warm across requests, and the reuse threshold is retunable live —
per layer — without a restart.  See :mod:`repro.serve.server` for the
HTTP surface and :mod:`repro.serve.state` for the serving semantics.
"""

from repro.serve.loadgen import ServeClient, ServeError, run_loadgen
from repro.serve.server import DEFAULT_SERVE_PORT, InferenceServer
from repro.serve.state import (
    DEFAULT_COALESCE_MS,
    DEFAULT_SESSION_TTL,
    MAX_INFER_ROWS,
    ServeState,
    parse_layer_thetas,
)

__all__ = [
    "DEFAULT_COALESCE_MS",
    "DEFAULT_SERVE_PORT",
    "DEFAULT_SESSION_TTL",
    "MAX_INFER_ROWS",
    "InferenceServer",
    "ServeClient",
    "ServeError",
    "ServeState",
    "parse_layer_thetas",
    "run_loadgen",
]
