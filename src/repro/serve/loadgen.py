"""Load generator and JSON client for a ``repro serve`` endpoint.

``repro loadgen`` drives a running server with deterministic traffic
drawn from the benchmark's own test split: ``--requests`` requests of
``--batch`` rows each, spread over ``--concurrency`` threads, then
reports client-side latency percentiles (exact, not histogram
estimates), throughput, and the server's reuse metrics.

With ``--verify`` it also trains the *same* benchmark locally (training
is deterministic in ``(network, scale, seed)``, so the local weights are
bitwise the server's weights), evaluates every row it sent through the
offline batch path under the server's live scheme, and diffs the served
predictions bitwise — the end-to-end proof that serving one row at a
time through a warm shared model equals the paper's batch evaluation.
Every response is attributed to the ``scheme_version`` it was served
under and verified against that version's scheme, so verification holds
even across a live retune — including the one ``--retune-theta`` lets
the loadgen itself fire halfway through the run.
"""

from __future__ import annotations

import gzip
import json
import threading
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.engine import MemoizationScheme, memoized
from repro.core.stats import ReuseStats
from repro.models.benchmark import Benchmark
from repro.models.zoo import build_benchmark
from repro.obs import REQUEST_ID_HEADER, new_request_id

Array = np.ndarray


class ServeError(Exception):
    """An HTTP error from the inference server."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeClient:
    """Minimal stdlib JSON client for the ``repro serve`` API."""

    def __init__(
        self, url: str, token: Optional[str] = None, timeout: float = 60.0
    ):
        self.url = url.rstrip("/")
        self.token = token
        self.timeout = timeout
        #: The id the server echoed on the most recent reply — the
        #: handle for finding this client's requests in the server's
        #: ``/api/v1/events``.
        self.last_request_id: Optional[str] = None

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        data = None
        request_id = new_request_id()
        headers = {"Accept-Encoding": "gzip", REQUEST_ID_HEADER: request_id}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        request = urllib.request.Request(
            self.url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                raw = reply.read()
                self.last_request_id = (
                    reply.headers.get(REQUEST_ID_HEADER) or request_id
                )
                if reply.headers.get("Content-Encoding", "") == "gzip":
                    raw = gzip.decompress(raw)
        except urllib.error.HTTPError as exc:
            detail = exc.read()
            try:
                message = json.loads(detail).get("error", "")
            except (json.JSONDecodeError, UnicodeDecodeError, AttributeError):
                message = detail.decode("utf-8", "replace")
            raise ServeError(exc.code, message or exc.reason) from None
        except urllib.error.URLError as exc:
            raise ServeError(0, f"cannot reach {self.url}: {exc.reason}") from exc
        return json.loads(raw)

    def get(self, path: str) -> Dict[str, object]:
        return self.request("GET", path)

    def post(self, path: str, payload: Dict[str, object]) -> Dict[str, object]:
        return self.request("POST", path, payload)

    def put(self, path: str, payload: Dict[str, object]) -> Dict[str, object]:
        return self.request("PUT", path, payload)


# -- deterministic traffic ---------------------------------------------------


def _row_payload(benchmark: Benchmark, index: int) -> list:
    """One test-split row as the JSON the server expects."""
    name = benchmark.name
    if name == "imdb":
        return benchmark.dataset.tokens[index].tolist()
    if name in ("deepspeech2", "eesen"):
        return benchmark.dataset.features[index].tolist()
    if name == "mnmt":
        return benchmark.dataset.source[index].tolist()
    raise ValueError(f"no loadgen traffic source for benchmark {name!r}")


def expected_outputs(
    benchmark: Benchmark, scheme: MemoizationScheme, indices: Sequence[int]
) -> List[object]:
    """The offline batch path's predictions for ``indices``.

    One memoized batch evaluation over all rows at once — exactly the
    :meth:`~repro.models.benchmark.Benchmark.evaluate_memoized` inference
    path, producing the reference the served predictions must match
    bitwise (row independence makes the batch/serve split irrelevant).
    """
    benchmark.ensure_trained()
    indices = np.asarray(indices, dtype=np.int64)
    model = benchmark.model
    name = benchmark.name
    with memoized(model, scheme, ReuseStats()):
        if name == "imdb":
            return [int(p) for p in model.predict(benchmark.dataset.tokens[indices])]
        if name in ("deepspeech2", "eesen"):
            return [
                list(t)
                for t in model.transcribe(benchmark.dataset.features[indices])
            ]
        if name == "mnmt":
            return [
                list(h)
                for h in model.translate(
                    benchmark.dataset.source[indices],
                    max_len=benchmark.dataset.length + 2,
                    early_stop=False,
                )
            ]
    raise ValueError(f"no verification path for benchmark {name!r}")


def scheme_from_info(info: Dict[str, object]) -> MemoizationScheme:
    """Rebuild a :class:`MemoizationScheme` from a ``GET /theta`` reply."""
    return MemoizationScheme(
        # checks: allow-nonfinite MemoizationScheme.__post_init__ rejects non-finite thetas
        theta=float(info["theta"]),
        predictor=str(info["predictor"]),
        throttle=bool(info["throttle"]),
        vectorized=bool(info.get("vectorized", True)),
        layer_thetas=info.get("layer_thetas") or None,
    )


def _percentiles(latencies_ms: Sequence[float]) -> Dict[str, float]:
    values = np.asarray(latencies_ms, dtype=np.float64)
    return {
        "p50": float(np.percentile(values, 50)),
        "p95": float(np.percentile(values, 95)),
        "p99": float(np.percentile(values, 99)),
        "mean": float(values.mean()),
        "max": float(values.max()),
    }


def run_loadgen(
    url: str,
    network: str,
    scale: str = "tiny",
    seed: int = 0,
    requests: int = 32,
    concurrency: int = 4,
    batch: int = 4,
    token: Optional[str] = None,
    verify: bool = False,
    theta: Optional[float] = None,
    retune_theta: Optional[float] = None,
    timeout: float = 60.0,
    out: Optional[str] = None,
) -> Dict[str, object]:
    """Drive a running server; return the traffic + latency summary.

    The traffic is deterministic in ``(network, scale, seed, requests,
    batch)``: request ``i`` carries test-split rows ``i*batch ..
    i*batch+batch-1`` (mod split size), regardless of which thread sends
    it — so two runs against equal servers see identical predictions.

    Args:
        theta: if given, ``PUT /theta`` this global threshold first.
        retune_theta: if given, fire ``PUT /theta`` to this threshold
            from inside the run once about half the requests have
            completed — the live-retune stressor.  The loadgen records
            the scheme each version was served under, so ``verify``
            still checks every row bitwise.
        verify: train the benchmark locally (deterministic, bitwise the
            server's weights) and diff every served prediction against
            the offline batch path under the scheme version that served
            it.
        out: if given, also write the returned summary to this path as
            JSON — the machine-readable loadgen report CI archives.
    """
    if requests < 1:
        raise ValueError("requests must be >= 1")
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    if batch < 1:
        raise ValueError("batch must be >= 1")
    client = ServeClient(url, token=token, timeout=timeout)
    health = client.get("/api/v1/health")
    if health.get("model") != network:
        raise ServeError(
            0,
            f"server at {url} serves {health.get('model')!r}, "
            f"loadgen was asked for {network!r}",
        )
    if theta is not None:
        client.put("/api/v1/theta", {"theta": theta})
    scheme_info = client.get("/api/v1/theta")
    #: scheme_version -> the GET/PUT /theta reply that version came from;
    #: verification rebuilds each version's scheme from here.
    scheme_infos: Dict[int, Dict[str, object]] = {
        int(scheme_info["scheme_version"]): scheme_info
    }

    # A fresh (never cached) instance: --verify wraps its model, which
    # must not collide with a same-process server holding the cached one.
    benchmark = build_benchmark(network, scale=scale, seed=seed)
    test_idx = np.asarray(benchmark.test_idx)
    plan = [
        [int(test_idx[(i * batch + j) % len(test_idx)]) for j in range(batch)]
        for i in range(requests)
    ]
    payloads = {
        index: _row_payload(benchmark, index)
        for index in sorted({i for row in plan for i in row})
    }

    next_request = iter(range(requests))
    counter_lock = threading.Lock()
    latencies_ms: List[float] = [0.0] * requests
    responses: List[Optional[Dict[str, object]]] = [None] * requests
    errors: List[str] = []
    # The mid-run retune fires right before request `retune_at` is sent.
    # A worker pulls a new index only after finishing its previous one,
    # so when index retune_at is drawn at least `retune_at - concurrency
    # + 1` requests have already completed under the old scheme — and
    # the PUT returns (pool fully swapped) before request retune_at goes
    # out, so both scheme versions deterministically see traffic.
    retune_at = (
        min(requests - 1, max(concurrency, requests // 2))
        if retune_theta is not None
        else None
    )

    def worker() -> None:
        thread_client = ServeClient(url, token=token, timeout=timeout)
        while True:
            with counter_lock:
                i = next(next_request, None)
            if i is None:
                return
            if i == retune_at:
                try:
                    info = thread_client.put(
                        "/api/v1/theta", {"theta": retune_theta}
                    )
                except ServeError as exc:
                    with counter_lock:
                        errors.append(f"mid-run retune: {exc}")
                else:
                    with counter_lock:
                        scheme_infos[int(info["scheme_version"])] = info
            body = {"inputs": [payloads[index] for index in plan[i]]}
            start = time.perf_counter()
            try:
                reply = thread_client.post("/api/v1/infer", body)
            except ServeError as exc:
                with counter_lock:
                    errors.append(f"request {i}: {exc}")
                continue
            latencies_ms[i] = 1000.0 * (time.perf_counter() - start)
            responses[i] = reply

        # (unreached)

    started = time.perf_counter()
    threads = [
        threading.Thread(target=worker, daemon=True)
        for _ in range(min(concurrency, requests))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - started

    completed = [i for i in range(requests) if responses[i] is not None]
    served_versions = sorted(
        {int(responses[i]["scheme_version"]) for i in completed}
    )
    by_scheme_version: Dict[str, int] = {}
    for i in completed:
        version = str(int(responses[i]["scheme_version"]))
        by_scheme_version[version] = by_scheme_version.get(version, 0) + 1
    # A handful of traced requests: the server-minted request id plus
    # the server's own span breakdown, next to the client's measured
    # latency — enough to find the same requests in /api/v1/events.
    requests_sampled = [
        {
            "request": i,
            "request_id": responses[i].get("request_id"),
            "client_latency_ms": latencies_ms[i],
            "timings_ms": responses[i].get("timings_ms"),
        }
        for i in completed[:5]
    ]
    stage_totals: Dict[str, float] = {}
    stage_counts: Dict[str, int] = {}
    for i in completed:
        for stage, value in (responses[i].get("timings_ms") or {}).items():
            stage_totals[stage] = stage_totals.get(stage, 0.0) + float(value)
            stage_counts[stage] = stage_counts.get(stage, 0) + 1
    server_timings_ms = {
        stage: stage_totals[stage] / stage_counts[stage]
        for stage in sorted(stage_totals)
    }
    summary: Dict[str, object] = {
        "url": url,
        "network": network,
        "scale": scale,
        "seed": seed,
        "requests": requests,
        "completed": len(completed),
        "concurrency": concurrency,
        "batch": batch,
        "wall_s": wall_s,
        "req_per_s": len(completed) / wall_s if wall_s > 0 else 0.0,
        "rows_per_s": len(completed) * batch / wall_s if wall_s > 0 else 0.0,
        "scheme": scheme_info,
        "scheme_versions": served_versions,
        "by_scheme_version": by_scheme_version,
        "requests_sampled": requests_sampled,
        "server_timings_ms": server_timings_ms,
        "errors": errors,
    }
    if retune_theta is not None:
        summary["retune_theta"] = retune_theta
    if completed:
        summary["latency_ms"] = _percentiles(
            [latencies_ms[i] for i in completed]
        )
    metrics = client.get("/api/v1/metrics")
    summary["reuse"] = metrics["reuse"]
    summary["pool"] = metrics.get("pool")
    summary["coalesce"] = metrics.get("coalesce")

    if verify:
        # Group served rows by the scheme version that answered them and
        # verify each group against the offline batch path under *that*
        # version's scheme — bitwise equivalence must hold on both sides
        # of any live retune.
        unknown = [v for v in served_versions if v not in scheme_infos]
        if unknown:
            raise ServeError(
                0,
                f"responses carry scheme version(s) {unknown} this "
                "loadgen never observed via /theta (an external retune "
                "raced the run); cannot attribute them to a threshold "
                "for verification",
            )
        checked = 0
        mismatches = []
        for version in served_versions:
            in_version = [
                i for i in completed
                if int(responses[i]["scheme_version"]) == version
            ]
            unique = sorted({idx for i in in_version for idx in plan[i]})
            scheme = scheme_from_info(scheme_infos[version])
            expected = dict(
                zip(unique, expected_outputs(benchmark, scheme, unique))
            )
            for i in in_version:
                for index, output in zip(plan[i], responses[i]["outputs"]):
                    checked += 1
                    if output != expected[index]:
                        mismatches.append(
                            {"request": i, "row": index,
                             "scheme_version": version,
                             "served": output, "expected": expected[index]}
                        )
        summary["verify"] = {
            "checked": checked,
            "versions": served_versions,
            "mismatches": len(mismatches),
            "examples": mismatches[:5],
        }
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return summary
