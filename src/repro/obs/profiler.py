"""Opt-in engine profiling: phase-level timing inside the memoized core.

The engine hot path (:class:`~repro.core.layers.MemoizedRecurrentLayer`)
checks one module attribute — :data:`ACTIVE` — per dispatch.  When it is
``None`` (the default, always, unless a caller explicitly installs a
profiler) the fast path runs untouched: no timestamps, no locks, no
allocations.  ``benchmarks/bench_obs_overhead.py`` pins that claim with
a floor-asserted <2% disabled-overhead budget against a hook-free
baseline.

When a :class:`Profiler` is installed (usually via the :func:`profiled`
context manager), the wrapper runs a *mirror* of the vectorized phase
body with ``perf_counter`` fences around the predictor evaluation and
the memo-table substitution — same calls in the same order, so enabling
profiling cannot change a single bit of the computation — and records,
per (layer, phase): predictor seconds, substitution seconds, reuse
counts, and per-step wall time (compute time is the step total minus
the instrumented parts).  :class:`~repro.core.memo.MemoTable` reports
buffer (re)allocations from its cold path.

Profiling is process-global by design: one ``repro serve`` process owns
one model, and a scoped install/uninstall pair is how benchmarks and
tests flip it.  Installation is not thread-fenced — install before the
traffic you want profiled, not concurrently with it.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

#: The live profiler, or ``None`` (the zero-cost default).  The engine
#: reads this attribute once per dispatch; everything else in this
#: module is off the hot path.
ACTIVE: Optional["Profiler"] = None


class _PhaseRecord:
    __slots__ = (
        "gates", "calls", "predict_s", "substitute_s", "reused", "total"
    )

    def __init__(self, gates: Tuple[str, ...]):
        self.gates = gates
        self.calls = 0
        self.predict_s = 0.0
        self.substitute_s = 0.0
        self.reused = 0
        self.total = 0


class Profiler:
    """Accumulates phase/step/table measurements from the engine."""

    def __init__(self):
        self._lock = threading.Lock()
        self._phases: Dict[Tuple[str, int], _PhaseRecord] = {}
        self._steps: Dict[str, List[float]] = {}  # layer -> [calls, seconds]
        self._tables: List[Dict[str, object]] = []

    # -- recording (called by the engine, only when installed) ---------------

    def record_phase(
        self,
        layer: str,
        phase_index: int,
        gates: Tuple[str, ...],
        predict_s: float,
        substitute_s: float,
        reused: int,
        total: int,
    ) -> None:
        key = (layer, phase_index)
        with self._lock:
            record = self._phases.get(key)
            if record is None:
                record = self._phases[key] = _PhaseRecord(tuple(gates))
            record.calls += 1
            record.predict_s += predict_s
            record.substitute_s += substitute_s
            record.reused += reused
            record.total += total

    def record_step(self, layer: str, seconds: float) -> None:
        with self._lock:
            entry = self._steps.get(layer)
            if entry is None:
                entry = self._steps[layer] = [0.0, 0.0]
            entry[0] += 1
            entry[1] += seconds

    def record_table(
        self, layer: str, phase_index: int, batch: int, neurons: int
    ) -> None:
        """A memo-table buffer (re)allocation — the cold path only."""
        with self._lock:
            self._tables.append(
                {
                    "layer": layer,
                    "phase": phase_index,
                    "batch": batch,
                    "neurons": neurons,
                }
            )

    # -- reading -------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready per-layer breakdown of where engine time went."""
        with self._lock:
            phases = {
                key: (
                    record.gates, record.calls, record.predict_s,
                    record.substitute_s, record.reused, record.total,
                )
                for key, record in self._phases.items()
            }
            steps = {layer: tuple(entry) for layer, entry in self._steps.items()}
            tables = [dict(entry) for entry in self._tables]
        layers: Dict[str, Dict[str, object]] = {}
        for (layer, phase_index), values in sorted(phases.items()):
            gates, calls, predict_s, substitute_s, reused, total = values
            entry = layers.setdefault(
                layer, {"steps": 0, "step_s": 0.0, "phases": {}}
            )
            entry["phases"][str(phase_index)] = {
                "gates": list(gates),
                "calls": calls,
                "predict_s": predict_s,
                "substitute_s": substitute_s,
                "reused": reused,
                "total": total,
                "reuse_fraction": (reused / total) if total else 0.0,
            }
        for layer, (calls, seconds) in steps.items():
            entry = layers.setdefault(
                layer, {"steps": 0, "step_s": 0.0, "phases": {}}
            )
            entry["steps"] = int(calls)
            entry["step_s"] = seconds
            instrumented = sum(
                phase["predict_s"] + phase["substitute_s"]
                for phase in entry["phases"].values()
            )
            # Whatever the step spent outside the predictor and the
            # memo substitution is the cell's own compute (matmuls,
            # activations) plus loop overhead.
            entry["compute_s"] = max(0.0, seconds - instrumented)
        return {"layers": layers, "table_allocations": tables}


def install(profiler: Profiler) -> None:
    global ACTIVE
    ACTIVE = profiler


def uninstall() -> None:
    global ACTIVE
    ACTIVE = None


@contextmanager
def profiled(profiler: Optional[Profiler] = None):
    """Install ``profiler`` (or a fresh one) for the duration of the block.

    Restores whatever was installed before — nesting works, and an
    exception cannot leave a stale profiler hot.
    """
    global ACTIVE
    active = profiler if profiler is not None else Profiler()
    previous = ACTIVE
    ACTIVE = active
    try:
        yield active
    finally:
        ACTIVE = previous
