"""``repro top``: a one-screen text dashboard over a running server.

Fetches one consistent snapshot over HTTP — ``/api/v1/metrics`` from an
inference server, falling back to ``/api/v1/stats`` for a coordinator —
and renders the numbers an operator reaches for first: pool occupancy,
request rate, latency percentiles and reuse fraction for the serving
tier; queue depths and per-owner worker throughput for the coordinator.
``repro top --watch`` redraws in place.

Deliberately self-contained on ``urllib`` so ``repro top`` works from a
box that has the CLI but none of the serving stack loaded; percentiles
are interpolated from the scraped histogram buckets rather than fetched,
since the servers only export bucket counts.
"""

from __future__ import annotations

import gzip
import json
import math
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.tracing import REQUEST_ID_HEADER, new_request_id

DEFAULT_TIMEOUT = 10.0


class TopError(RuntimeError):
    """The target server could not be scraped or was not recognised."""


def _num(mapping, key: str, default: float = 0.0) -> float:
    """A *finite* float plucked from a scraped payload.

    ``json.loads`` accepts ``NaN``/``Infinity``, and a NaN from a
    hostile or half-written reply would poison bar widths, sort orders
    and rate math silently (every NaN comparison is False) — clamp
    anything non-finite or non-numeric to ``default``.
    """
    try:
        value = float(mapping.get(key, default))
    except (TypeError, ValueError):
        return default
    return value if math.isfinite(value) else default


def _fetch_json(
    url: str, token: Optional[str], timeout: float
) -> Dict[str, object]:
    headers = {
        "Accept": "application/json",
        "Accept-Encoding": "gzip",
        REQUEST_ID_HEADER: new_request_id(),
    }
    if token:
        headers["Authorization"] = f"Bearer {token}"
    request = urllib.request.Request(url, headers=headers, method="GET")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            body = response.read()
            if response.headers.get("Content-Encoding") == "gzip":
                body = gzip.decompress(body)
    except urllib.error.HTTPError as exc:
        if exc.code == 404:
            raise FileNotFoundError(url) from exc
        detail = ""
        try:
            payload = json.loads(exc.read().decode("utf-8"))
            detail = f": {payload.get('error', '')}"
        except Exception:  # checks: allow-broad-except best-effort parse of a failed reply's body
            pass
        raise TopError(f"HTTP {exc.code} from {url}{detail}") from exc
    except (urllib.error.URLError, OSError) as exc:
        raise TopError(f"cannot reach {url}: {exc}") from exc
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TopError(f"non-JSON reply from {url}") from exc


def percentile_from_buckets(
    snapshot: Dict[str, object], quantile: float
) -> float:
    """Estimate a quantile from a cumulative-bucket histogram snapshot.

    Linear interpolation inside the winning bucket (lower edge 0 for the
    first).  Observations past the last bound carry no upper edge, so a
    quantile landing in the overflow region reports the observed max.
    """
    count = int(snapshot.get("count", 0))
    if count <= 0:
        return 0.0
    target = quantile * count
    previous_bound = 0.0
    previous_cumulative = 0
    for bucket in snapshot.get("buckets", ()):
        cumulative = int(bucket["count"])
        bound = _num(bucket, "le_ms")
        if cumulative >= target:
            in_bucket = cumulative - previous_cumulative
            if in_bucket <= 0:
                return bound
            fraction = (target - previous_cumulative) / in_bucket
            return previous_bound + fraction * (bound - previous_bound)
        previous_bound = bound
        previous_cumulative = cumulative
    return _num(snapshot, "max_ms", previous_bound)


def _bar(fraction: float, width: int = 20) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "[" + "#" * filled + "." * (width - filled) + "]"


def _fmt_uptime(seconds: float) -> str:
    seconds = int(seconds)
    hours, rem = divmod(seconds, 3600)
    minutes, secs = divmod(rem, 60)
    if hours:
        return f"{hours}h{minutes:02d}m{secs:02d}s"
    if minutes:
        return f"{minutes}m{secs:02d}s"
    return f"{secs}s"


def render_serve(metrics: Dict[str, object]) -> str:
    """The serving-tier dashboard from an ``/api/v1/metrics`` payload."""
    model = metrics.get("model", {})
    scheme = metrics.get("scheme", {})
    inference = metrics.get("inference", {})
    latency = inference.get("latency_ms", {})
    pool = metrics.get("pool", {})
    coalesce = metrics.get("coalesce", {})
    reuse = metrics.get("reuse", {})
    sessions = metrics.get("sessions", {})
    uptime = _num(metrics, "uptime_s")
    requests = int(inference.get("requests", 0))
    rate = requests / uptime if uptime > 0 else 0.0
    replicas = int(pool.get("replicas", 0)) or 1
    busy = int(pool.get("busy", 0))
    reuse_fraction = _num(reuse, "overall_fraction")
    lines = [
        (
            f"serve  {model.get('name', '?')}/{model.get('scale', '?')}"
            f"  scheme v{scheme.get('scheme_version', '?')}"
            f"  theta={scheme.get('theta', '?')}"
            f"  predictor={scheme.get('predictor', '?')}"
            f"  up {_fmt_uptime(uptime)}"
        ),
        (
            f"requests  {requests}  ({rate:.1f} req/s)"
            f"   rows {int(inference.get('rows', 0))}"
        ),
        (
            "latency   "
            f"p50 {percentile_from_buckets(latency, 0.50):.2f} ms"
            f"   p95 {percentile_from_buckets(latency, 0.95):.2f} ms"
            f"   p99 {percentile_from_buckets(latency, 0.99):.2f} ms"
            f"   max {_num(latency, 'max_ms'):.2f} ms"
        ),
        (
            f"pool      {_bar(busy / replicas)} {busy}/{replicas} busy"
            f"   coalesced {int(coalesce.get('coalesced_batches', 0))}"
            f"/{int(coalesce.get('batches', 0))} batches"
        ),
        (
            f"reuse     {_bar(reuse_fraction)} {100.0 * reuse_fraction:.1f}%"
            f"  ({int(reuse.get('total_reused', 0))}"
            f"/{int(reuse.get('total_evaluations', 0))} evals)"
        ),
        (
            f"sessions  open {int(sessions.get('open', 0))}"
            f"   opened {int(sessions.get('opened', 0))}"
            f"   evicted {int(sessions.get('evicted', 0))}"
        ),
    ]
    per_replica = pool.get("per_replica") or []
    if per_replica:
        cells = "  ".join(
            f"r{entry.get('replica')}:{entry.get('requests', 0)}req"
            f"/{100.0 * _num(entry, 'reuse_fraction'):.0f}%"
            for entry in per_replica
        )
        lines.append(f"replicas  {cells}")
    return "\n".join(lines)


def render_coordinator(stats: Dict[str, object]) -> str:
    """The coordinator dashboard from an ``/api/v1/stats`` payload."""
    owners = stats.get("owners") or []
    lines = [
        (
            f"coordinator  pending {int(stats.get('pending', 0))}"
            f"   active {int(stats.get('active', 0))}"
            f"   failed {int(stats.get('failed', 0))}"
            f"   results {int(stats.get('results', 0))}"
            f"   lease_ttl {_num(stats, 'lease_ttl'):.0f}s"
        ),
        f"workers      {len(owners)} active owner(s)",
    ]
    throughput = stats.get("throughput") or {}
    if throughput:
        lines.append("owner                     done  fail   rate/s")
        for owner in sorted(throughput):
            entry = throughput[owner]
            lines.append(
                f"{owner[:24]:<24} {int(entry.get('completed', 0)):>6}"
                f" {int(entry.get('failed', 0)):>5}"
                f" {_num(entry, 'rate_per_s'):>8.2f}"
            )
    elif owners:
        lines.extend(f"  {owner}" for owner in owners)
    return "\n".join(lines)


def run_top(
    url: str, token: Optional[str] = None, timeout: float = DEFAULT_TIMEOUT
) -> str:
    """Scrape ``url`` and render the matching dashboard.

    Tries the serving tier's ``/api/v1/metrics`` first and falls back to
    the coordinator's ``/api/v1/stats`` on 404, so one command works
    against either server.
    """
    base = url.rstrip("/")
    try:
        return render_serve(_fetch_json(f"{base}/api/v1/metrics", token, timeout))
    except FileNotFoundError:
        pass
    try:
        return render_coordinator(
            _fetch_json(f"{base}/api/v1/stats", token, timeout)
        )
    except FileNotFoundError:
        raise TopError(
            f"{url} answers neither /api/v1/metrics nor /api/v1/stats"
        ) from None
