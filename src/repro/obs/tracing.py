"""Request-id tracing: mint, validate, and carry one id across tiers.

Every request through :class:`~repro.runner.transport.http_common
.JsonApiHandler` gets an ``X-Repro-Request-Id``: minted server-side when
the client sent none, adopted when the client sent a well-formed one.
The id is echoed on every reply and threaded through the event log and
``/infer`` response bodies, so one id follows a request across
submit -> claim -> complete (the coordinator) and
infer -> coalesce -> forward (the serving tier).

Client-supplied ids are validated, never trusted: an id that is not a
short path-and-log-safe token is *replaced* (the request still traces,
under a server-minted id) rather than rejected — tracing must never be
able to fail a request.
"""

from __future__ import annotations

import re
import uuid
from typing import Optional

#: The header carrying the id, both directions.
REQUEST_ID_HEADER = "X-Repro-Request-Id"

#: Accepted id shape: short, printable, safe to embed in log lines,
#: JSON events and filenames without escaping.
_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


def new_request_id() -> str:
    """A fresh 16-hex-char id (collision-safe at any realistic rate)."""
    return uuid.uuid4().hex[:16]


def valid_request_id(candidate: object) -> bool:
    return isinstance(candidate, str) and bool(_REQUEST_ID_RE.match(candidate))


def ensure_request_id(candidate: Optional[object]) -> str:
    """``candidate`` if it is a well-formed id, else a fresh mint."""
    if valid_request_id(candidate):
        return candidate  # type: ignore[return-value]
    return new_request_id()
