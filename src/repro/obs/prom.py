"""Prometheus text exposition for a :class:`MetricsRegistry`.

:func:`render` turns a registry into the plain-text exposition format
(version 0.0.4) Prometheus scrapes: ``# HELP`` / ``# TYPE`` comments
followed by one sample line per labeled series, histograms expanded
into cumulative ``_bucket{le=...}`` series plus ``_sum`` / ``_count``.
Both servers mount it at ``/metrics.prom``.

:func:`validate_exposition` is the matching lint: CI scrapes each
server's ``/metrics.prom`` and runs ``python -m repro.obs.prom FILE``
over the dump, which checks every line's shape, rejects duplicate
series, and demands the mandatory ``+Inf`` bucket on histograms —
the format contract, enforced without a prometheus dependency.
"""

from __future__ import annotations

import math
import re
import sys
from typing import Dict, Iterable, Set, Tuple

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    Labels,
    MetricsRegistry,
)

#: Content type of the exposition, sent by the ``/metrics.prom`` routes.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN))$"
)
_LABEL_PAIR_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$'
)


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _label_str(names: Tuple[str, ...], values: Labels) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape(value)}"' for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


def _render_metric(metric) -> Iterable[str]:
    if metric.help:
        yield f"# HELP {metric.name} {_escape(metric.help)}"
    yield f"# TYPE {metric.name} {metric.kind}"
    if isinstance(metric, Histogram):
        for labels in sorted(metric.series_labels()):
            snap = metric.snapshot(labels)
            names = metric.label_names
            for bucket in snap["buckets"]:
                series = _label_str(
                    names + ("le",), labels + (str(bucket["le_ms"]),)
                )
                yield f"{metric.name}_bucket{series} {bucket['count']}"
            inf = _label_str(names + ("le",), labels + ("+Inf",))
            yield f"{metric.name}_bucket{inf} {snap['count']}"
            suffix = _label_str(names, labels)
            # checks: allow-nonfinite our own snapshot; Prometheus text exposition permits NaN
            yield f"{metric.name}_sum{suffix} {_format_value(float(snap['sum_ms']))}"
            yield f"{metric.name}_count{suffix} {snap['count']}"
    elif isinstance(metric, (Counter, Gauge)):
        for labels, value in sorted(metric.series().items()):
            series = _label_str(metric.label_names, labels)
            yield f"{metric.name}{series} {_format_value(float(value))}"


def render(registry: MetricsRegistry) -> str:
    """The registry's current state as Prometheus text exposition."""
    lines = []
    for metric in registry.collect():
        lines.extend(_render_metric(metric))
    return "\n".join(lines) + "\n"


def validate_exposition(text: str) -> int:
    """Check ``text`` is well-formed exposition; returns the sample count.

    Raises :class:`ValueError` naming the offending line on: malformed
    sample lines, malformed label pairs, duplicate series (same name
    and label set twice), samples for a name never declared by ``#
    TYPE``, and histograms missing their ``+Inf`` bucket.
    """
    typed: Dict[str, str] = {}
    seen: Set[str] = set()
    histogram_inf: Dict[str, bool] = {}
    samples = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: malformed comment {line!r}")
            if parts[1] == "TYPE":
                typed[parts[2]] = parts[3] if len(parts) > 3 else ""
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name = match.group("name")
        labels = match.group("labels") or ""
        if labels:
            inner = labels[1:-1]
            if inner:
                for pair in _split_pairs(inner, lineno):
                    if not _LABEL_PAIR_RE.match(pair):
                        raise ValueError(
                            f"line {lineno}: malformed label pair {pair!r}"
                        )
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = name[: -len(suffix)]
            if name.endswith(suffix) and typed.get(trimmed) == "histogram":
                base = trimmed
                break
        if base not in typed:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no # TYPE declaration"
            )
        if typed[base] == "histogram" and name == base:
            raise ValueError(
                f"line {lineno}: histogram {base!r} exposes a bare sample"
            )
        series = f"{name}{labels}"
        if series in seen:
            raise ValueError(f"line {lineno}: duplicate series {series!r}")
        seen.add(series)
        if typed.get(base) == "histogram":
            histogram_inf.setdefault(base, False)
            if name == f"{base}_bucket" and 'le="+Inf"' in labels:
                histogram_inf[base] = True
        samples += 1
    missing = [name for name, has_inf in histogram_inf.items() if not has_inf]
    if missing:
        raise ValueError(f"histogram(s) missing +Inf bucket: {missing}")
    return samples


def _split_pairs(inner: str, lineno: int):
    """Split ``k="v",k2="v2"`` on commas outside quoted values."""
    pairs = []
    current = []
    in_quotes = False
    escaped = False
    for char in inner:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            pairs.append("".join(current))
            current = []
            continue
        current.append(char)
    if in_quotes:
        raise ValueError(f"line {lineno}: unterminated label value")
    if current:
        pairs.append("".join(current))
    return pairs


def main(argv=None) -> int:
    """``python -m repro.obs.prom [FILE]``: validate an exposition dump."""
    argv = sys.argv[1:] if argv is None else list(argv)
    if len(argv) > 1:
        print("usage: python -m repro.obs.prom [FILE]", file=sys.stderr)
        return 2
    if argv and argv[0] != "-":
        with open(argv[0], encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = sys.stdin.read()
    try:
        samples = validate_exposition(text)
    except ValueError as exc:
        print(f"invalid exposition: {exc}", file=sys.stderr)
        return 1
    print(f"ok: {samples} sample(s)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    raise SystemExit(main())
