"""Unified telemetry: metrics registry, request tracing, event log, profiler.

``repro.obs`` is a *leaf* package — it imports nothing from the rest of
``repro`` (only the stdlib), so every tier (core engine, serving tier,
coordinator, transport client, CLI) can depend on it without cycles.
``repro.obs.top`` (the dashboard CLI) is intentionally not imported
here: it is pulled in lazily by the ``repro top`` subcommand.
"""

from repro.obs.events import DEFAULT_EVENT_CAPACITY, EventLog
from repro.obs.profiler import Profiler, install, profiled, uninstall
from repro.obs.registry import (
    DEFAULT_BOUNDS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracing import (
    REQUEST_ID_HEADER,
    ensure_request_id,
    new_request_id,
    valid_request_id,
)

__all__ = [
    "DEFAULT_BOUNDS_MS",
    "DEFAULT_EVENT_CAPACITY",
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Profiler",
    "REQUEST_ID_HEADER",
    "ensure_request_id",
    "install",
    "new_request_id",
    "profiled",
    "uninstall",
    "valid_request_id",
]
