"""Bounded structured event log: a ring buffer of JSON events.

Every notable state transition a server goes through — retunes, session
evictions, lease expiries, quarantines, worker joins — lands here as a
small JSON object, and ``/api/v1/events`` serves the buffer's current
contents.  The ring is fixed-capacity (``deque(maxlen=...)``), so the
event log is bounded for the life of the process no matter the traffic:
old events fall off the front and are *counted* (``dropped``) rather
than silently vanishing, and every event carries a monotonically
increasing ``seq`` so a poller can detect the gap.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional

#: Default ring capacity.  Big enough to hold the interesting recent
#: history of a busy server, small enough that an events dump is one
#: modest JSON reply.
DEFAULT_EVENT_CAPACITY = 512


class EventLog:
    """Thread-safe fixed-capacity ring of structured events."""

    def __init__(self, capacity: int = DEFAULT_EVENT_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._ring: Deque[Dict[str, object]] = deque(maxlen=self.capacity)  # guarded-by: _lock
        self._seq = 0  # guarded-by: _lock
        self._lock = threading.Lock()

    def emit(self, kind: str, **fields: object) -> Dict[str, object]:
        """Append one event; returns the stored record."""
        with self._lock:
            self._seq += 1
            event: Dict[str, object] = {
                "seq": self._seq,
                # checks: allow-wall-clock event timestamps correlate with external logs
                "ts": time.time(),
                "kind": str(kind),
            }
            event.update(fields)
            self._ring.append(event)
            return event

    @property
    def total(self) -> int:
        """Events emitted over the process lifetime (not just retained)."""
        with self._lock:
            return self._seq

    def snapshot(
        self, limit: Optional[int] = None, kind: Optional[str] = None
    ) -> Dict[str, object]:
        """JSON-ready view: retained events (oldest first) plus accounting."""
        with self._lock:
            events: List[Dict[str, object]] = [
                dict(event) for event in self._ring
            ]
            total = self._seq
        retained = len(events)
        if kind is not None:
            events = [event for event in events if event["kind"] == kind]
        if limit is not None and limit >= 0:
            events = events[-limit:]
        return {
            "events": events,
            "capacity": self.capacity,
            "total": total,
            "dropped": total - retained,
        }
