"""Process-wide metrics primitives: counters, gauges, histograms.

One :class:`MetricsRegistry` per server process owns every metric that
process exposes.  Each metric holds *labeled series*: a series is keyed
by a tuple of label values (the empty tuple for an unlabeled metric),
so one ``Counter`` named ``repro_http_requests_total`` with label names
``("path",)`` carries one monotonic count per endpoint.  All mutation
and all reads are lock-protected per metric, so request handler
threads, the coalescing batcher's leader threads and a scraper can hit
the same registry concurrently without torn counts.

Histograms are millisecond-valued by repo convention (latency, span
stages) and keep the exact JSON snapshot shape the serving tier has
exposed since PR 7 — ``{"count", "sum_ms", "mean_ms", "max_ms",
"overflow", "buckets": [{"le_ms", "count"}]}`` with *cumulative* bucket
counts — so registry-backed metrics are bit-compatible with the
pre-registry ``/metrics`` payload.  The Prometheus text exposition
(:mod:`repro.obs.prom`) renders the same series without a second
bookkeeping path.
"""

from __future__ import annotations

import re
import threading
from typing import Dict, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds in milliseconds: log-spaced
#: from 0.25 ms to ~2 minutes (the PR 7 latency-histogram geometry).
DEFAULT_BOUNDS_MS = tuple(0.25 * 2**i for i in range(19))

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

Labels = Tuple[str, ...]


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


class Metric:
    """Shared shell: a named metric holding labeled series."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str = "", label_names: Sequence[str] = ()
    ):
        self.name = _check_name(name)
        self.help = help
        self.label_names = tuple(label_names)
        for label in self.label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self._lock = threading.Lock()

    def _labels(self, labels: Sequence[str]) -> Labels:
        labels = tuple(str(value) for value in labels)
        if len(labels) != len(self.label_names):
            raise ValueError(
                f"metric {self.name} takes labels {self.label_names}, "
                f"got {labels!r}"
            )
        return labels


class Counter(Metric):
    """A monotonically increasing count per labeled series.

    :meth:`inc` is the normal write path.  :meth:`set_total` exists for
    *mirrored* counters — monotonic counts maintained elsewhere (e.g.
    ``ServeState.rows_served`` under its own lock) that a scrape copies
    into the registry; it never lowers the stored value, preserving the
    monotonic contract a Prometheus counter promises.
    """

    kind = "counter"

    def __init__(
        self, name: str, help: str = "", label_names: Sequence[str] = ()
    ):
        super().__init__(name, help, label_names)
        self._series: Dict[Labels, float] = {}  # guarded-by: _lock

    def inc(self, amount: float = 1, labels: Sequence[str] = ()) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._labels(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def set_total(self, value: float, labels: Sequence[str] = ()) -> None:
        """Mirror an externally maintained monotonic count (never lowers)."""
        key = self._labels(labels)
        with self._lock:
            self._series[key] = max(self._series.get(key, 0), value)

    def value(self, labels: Sequence[str] = ()) -> float:
        key = self._labels(labels)
        with self._lock:
            return self._series.get(key, 0)

    def series(self) -> Dict[Labels, float]:
        with self._lock:
            return dict(self._series)


class Gauge(Metric):
    """A point-in-time value per labeled series (may go up or down)."""

    kind = "gauge"

    def __init__(
        self, name: str, help: str = "", label_names: Sequence[str] = ()
    ):
        super().__init__(name, help, label_names)
        self._series: Dict[Labels, float] = {}  # guarded-by: _lock

    def set(self, value: float, labels: Sequence[str] = ()) -> None:
        key = self._labels(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1, labels: Sequence[str] = ()) -> None:
        key = self._labels(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, labels: Sequence[str] = ()) -> float:
        key = self._labels(labels)
        with self._lock:
            return self._series.get(key, 0.0)

    def series(self) -> Dict[Labels, float]:
        with self._lock:
            return dict(self._series)


class _HistogramSeries:
    """One series' buckets + summary; mutated under the metric lock."""

    __slots__ = ("counts", "count", "sum", "max")

    def __init__(self, buckets: int):
        self.counts = [0] * buckets
        self.count = 0
        self.sum = 0.0
        self.max = 0.0


class Histogram(Metric):
    """Fixed-bucket histogram, safe for concurrent observers.

    ``bounds_ms`` are bucket *upper* bounds; one extra overflow bucket
    catches everything past the last bound, so metrics memory stays
    bounded for the life of the process.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str = "histogram_ms",
        help: str = "",
        bounds_ms: Sequence[float] = DEFAULT_BOUNDS_MS,
        label_names: Sequence[str] = (),
    ):
        super().__init__(name, help, label_names)
        self.bounds_ms = tuple(float(bound) for bound in bounds_ms)
        if not self.bounds_ms:
            raise ValueError("histogram needs at least one bucket bound")
        if list(self.bounds_ms) != sorted(self.bounds_ms):
            raise ValueError("histogram bounds must be ascending")
        self._series: Dict[Labels, _HistogramSeries] = {}  # guarded-by: _lock

    def _bucket_index(self, value: float) -> int:
        # Equivalent to searchsorted(side="left"): first bound >= value.
        for index, bound in enumerate(self.bounds_ms):
            if value <= bound:
                return index
        return len(self.bounds_ms)

    def observe(self, value_ms: float, labels: Sequence[str] = ()) -> None:
        key = self._labels(labels)
        index = self._bucket_index(value_ms)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(
                    len(self.bounds_ms) + 1
                )
            series.counts[index] += 1
            series.count += 1
            series.sum += value_ms
            series.max = max(series.max, value_ms)

    def snapshot(self, labels: Sequence[str] = ()) -> Dict[str, object]:
        """JSON-ready view of one series: cumulative buckets + summary.

        The exact shape the serving tier's ``/metrics`` has always
        exposed; an unobserved series snapshots as all-zero.
        """
        key = self._labels(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                counts = [0] * (len(self.bounds_ms) + 1)
                count, total, peak = 0, 0.0, 0.0
            else:
                counts = list(series.counts)
                count = series.count
                total = series.sum
                peak = series.max
        cumulative = 0
        buckets = []
        for bound, bucket in zip(self.bounds_ms, counts):
            cumulative += bucket
            buckets.append({"le_ms": bound, "count": cumulative})
        return {
            "count": count,
            "sum_ms": total,
            "mean_ms": (total / count) if count else 0.0,
            "max_ms": peak,
            "overflow": counts[-1],
            "buckets": buckets,
        }

    def series_labels(self) -> List[Labels]:
        with self._lock:
            return list(self._series)


class MetricsRegistry:
    """Get-or-create home for every metric one process exposes.

    ``counter`` / ``gauge`` / ``histogram`` return the existing metric
    when the name is already registered (so independent call sites share
    series) and raise when the name is registered under a different
    metric kind — a name collision is a bug, not a merge.
    """

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}  # guarded-by: _lock
        self._lock = threading.Lock()

    def register(self, metric: Metric) -> Metric:
        """Adopt an externally constructed metric (e.g. a subclass)."""
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if existing is not metric:
                    raise ValueError(
                        f"metric {metric.name!r} already registered"
                    )
                return existing
            self._metrics[metric.name] = metric
            return metric

    def _get_or_create(self, cls, name: str, **kwargs) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is not None:
                if not isinstance(metric, cls) or metric.kind != cls.kind:
                    raise ValueError(
                        f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
                    )
                return metric
            metric = cls(name, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", label_names: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(
            Counter, name, help=help, label_names=label_names
        )

    def gauge(
        self, name: str, help: str = "", label_names: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(
            Gauge, name, help=help, label_names=label_names
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        bounds_ms: Sequence[float] = DEFAULT_BOUNDS_MS,
        label_names: Sequence[str] = (),
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help=help, bounds_ms=bounds_ms,
            label_names=label_names,
        )

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def collect(self) -> List[Metric]:
        """A stable snapshot of the registered metrics, in creation order."""
        with self._lock:
            return list(self._metrics.values())
