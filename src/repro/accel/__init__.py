"""Analytical cycle/energy/area simulator of the E-PUR accelerator.

Models §3.3 of the paper: the baseline E-PUR (4 computation units, each
a 16-lane FP16 dot-product unit plus a multi-functional unit, fed from
2 MiB weight buffers) and E-PUR+BM, which adds the fuzzy memoization
unit (sign buffer, 2048-bit binary dot-product unit, memoization buffer,
comparator).  See DESIGN.md for the substitution notes on the energy
constants.
"""

from repro.accel.area import DEFAULT_AREA_MODEL, AreaModel
from repro.accel.config import DEFAULT_CONFIG, EPURConfig, FMUConfig
from repro.accel.energy import (
    DEFAULT_ENERGY_TABLE,
    EnergyReport,
    EnergyTable,
    baseline_energy,
    memoized_energy,
)
from repro.accel.eventsim import (
    EventSimReport,
    collect_layer_dims,
    gate_pass_cycles,
    replay_trace,
)
from repro.accel.epur import (
    Comparison,
    SimulationResult,
    compare,
    simulate_baseline,
    simulate_memoized,
)
from repro.accel.timing import (
    TimingReport,
    baseline_timing,
    memoized_timing,
    neuron_dot_cycles,
    saved_cycles_per_reuse,
)
from repro.accel.trace import ReuseTrace

__all__ = [
    "AreaModel",
    "Comparison",
    "DEFAULT_AREA_MODEL",
    "DEFAULT_CONFIG",
    "DEFAULT_ENERGY_TABLE",
    "EPURConfig",
    "EnergyReport",
    "EnergyTable",
    "EventSimReport",
    "FMUConfig",
    "collect_layer_dims",
    "gate_pass_cycles",
    "replay_trace",
    "ReuseTrace",
    "SimulationResult",
    "TimingReport",
    "baseline_energy",
    "baseline_timing",
    "compare",
    "memoized_energy",
    "memoized_timing",
    "neuron_dot_cycles",
    "saved_cycles_per_reuse",
    "simulate_baseline",
    "simulate_memoized",
]
