"""Top-level E-PUR simulation: compare baseline against E-PUR+BM.

``simulate_baseline`` / ``simulate_memoized`` produce a combined
:class:`SimulationResult` (cycles + energy breakdown) for one network at
its Table 1 geometry; ``compare`` packages the two into the quantities
the paper's Figures 17-19 report (energy savings, speedup, breakdown).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.accel.config import DEFAULT_CONFIG, EPURConfig
from repro.accel.energy import (
    DEFAULT_ENERGY_TABLE,
    EnergyReport,
    EnergyTable,
    baseline_energy,
    memoized_energy,
)
from repro.accel.timing import (
    TimingReport,
    baseline_timing,
    memoized_timing,
)
from repro.accel.trace import ReuseTrace
from repro.models.specs import NetworkSpec


@dataclass(frozen=True)
class SimulationResult:
    """Timing + energy of one inference on one configuration."""

    spec: NetworkSpec
    timing: TimingReport
    energy: EnergyReport

    @property
    def total_cycles(self) -> int:
        return self.timing.total_cycles

    @property
    def total_energy(self) -> float:
        return self.energy.total


@dataclass(frozen=True)
class Comparison:
    """E-PUR+BM vs E-PUR, as reported in Figures 17-19."""

    baseline: SimulationResult
    memoized: SimulationResult
    trace: ReuseTrace

    @property
    def speedup(self) -> float:
        return self.memoized.timing.speedup_over(self.baseline.timing)

    @property
    def energy_savings_percent(self) -> float:
        return 100.0 * self.memoized.energy.savings_over(self.baseline.energy)

    @property
    def reuse_percent(self) -> float:
        return 100.0 * self.trace.mean_reuse()

    def breakdown_percent(self) -> Dict[str, Dict[str, float]]:
        """Figure 18 view: component energies as % of *baseline* total."""
        base_total = self.baseline.energy.total
        return {
            "epur": {
                name: 100.0 * value / base_total
                for name, value in self.baseline.energy.by_component.items()
            },
            "epur_bm": {
                name: 100.0 * value / base_total
                for name, value in self.memoized.energy.by_component.items()
            },
        }


def simulate_baseline(
    spec: NetworkSpec,
    config: EPURConfig = DEFAULT_CONFIG,
    table: EnergyTable = DEFAULT_ENERGY_TABLE,
) -> SimulationResult:
    timing = baseline_timing(spec, config)
    energy = baseline_energy(spec, config, table, timing=timing)
    return SimulationResult(spec, timing, energy)


def simulate_memoized(
    spec: NetworkSpec,
    trace: ReuseTrace,
    config: EPURConfig = DEFAULT_CONFIG,
    table: EnergyTable = DEFAULT_ENERGY_TABLE,
) -> SimulationResult:
    timing = memoized_timing(spec, config, trace)
    energy = memoized_energy(spec, config, trace, table, timing=timing)
    return SimulationResult(spec, timing, energy)


def compare(
    spec: NetworkSpec,
    trace: ReuseTrace,
    config: EPURConfig = DEFAULT_CONFIG,
    table: EnergyTable = DEFAULT_ENERGY_TABLE,
) -> Comparison:
    """Full baseline-vs-memoized comparison for one network."""
    return Comparison(
        baseline=simulate_baseline(spec, config, table),
        memoized=simulate_memoized(spec, trace, config, table),
        trace=trace,
    )
