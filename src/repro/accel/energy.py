"""Energy model of E-PUR and E-PUR+BM (paper §4-§5).

The paper obtains component energies from Synopsys Design Compiler,
CACTI and Micron's LPDDR4 power model; none are available offline, so
this module carries an explicit constants table with 28 nm-plausible
per-access/per-op energies of the correct relative magnitude (large SRAM
reads dominate MACs; DRAM dwarfs both per byte; binary ops are ~two
orders cheaper than FP16 MACs).  DESIGN.md records this substitution.
Absolute joules are not the reproduction target — the breakdown shape
(Figure 18) and the relative savings (Figure 17) are.

Component groups follow Figure 18: ``scratchpad`` (weight/input/
intermediate buffers), ``operations`` (DPU MACs + MU ops), ``dram``
(LPDDR4 weight streaming) and ``fmu`` (sign reads, BDPU, memoization
buffer, comparison) — with leakage folded into each group, as the paper
does ("static and dynamic energy").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.accel.config import EPURConfig
from repro.accel.timing import TimingReport, baseline_timing, memoized_timing
from repro.accel.trace import ReuseTrace
from repro.models.specs import NetworkSpec

PJ = 1e-12
MW = 1e-3


@dataclass(frozen=True)
class EnergyTable:
    """Per-event energies (joules) and leakage powers (watts), 28 nm.

    Attributes follow the event taxonomy in the module docstring.  The
    defaults are calibrated so the *baseline* breakdown matches Figure
    18's shape: scratchpad reads dominate, then operations, then DRAM.
    """

    mac_fp16: float = 0.9 * PJ  # FP16 multiply-accumulate
    mu_op: float = 1.1 * PJ  # MU scalar op (bias/peephole/activation step)
    weight_read_per_byte: float = 1.3 * PJ  # 2 MiB weight buffer
    input_read_per_byte: float = 0.35 * PJ  # 8 KiB input buffer
    intermediate_per_byte: float = 0.9 * PJ  # 6 MiB intermediate memory
    sign_read_per_bit: float = 0.17 * PJ  # split-off sign buffer
    xnor_popcount_per_bit: float = 0.012 * PJ  # BDPU
    memo_access: float = 3.0 * PJ  # memo buffer read+write (eDRAM, 8 KiB)
    cmp_op: float = 1.5 * PJ  # CMP unit relative-error update
    dram_per_byte: float = 42.0 * PJ  # LPDDR4 streaming
    leak_scratchpad: float = 18.0 * MW
    leak_operations: float = 7.0 * MW
    leak_fmu: float = 0.8 * MW

    #: MU scalar ops needed to finish one neuron (bias + peephole +
    #: activation + cell-state update share).
    mu_ops_per_neuron: int = 6


DEFAULT_ENERGY_TABLE = EnergyTable()


@dataclass
class EnergyReport:
    """Energy (J) by Figure 18 component group, for one inference."""

    by_component: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.by_component.values())

    def fraction(self, component: str) -> float:
        return self.by_component[component] / self.total

    def savings_over(self, baseline: "EnergyReport") -> float:
        """Fractional energy saved relative to ``baseline`` (0-1)."""
        if baseline.total <= 0:
            raise ValueError("baseline energy must be positive")
        return 1.0 - self.total / baseline.total


def _network_weight_bytes(spec: NetworkSpec, config: EPURConfig) -> int:
    """Total synaptic weight footprint of the network."""
    bytes_per_weight = config.weight_bits // 8
    total = 0
    for input_size in spec.layer_input_sizes():
        per_gate = spec.neurons * (input_size + spec.neurons)
        total += per_gate * spec.gates_per_cell * bytes_per_weight
    return total


def baseline_energy(
    spec: NetworkSpec,
    config: EPURConfig,
    table: EnergyTable = DEFAULT_ENERGY_TABLE,
    timing: TimingReport | None = None,
) -> EnergyReport:
    """E-PUR energy for one full-sequence inference."""
    timing = timing or baseline_timing(spec, config)
    bytes_per_weight = config.weight_bits // 8
    steps = spec.avg_sequence_length

    scratchpad = 0.0
    operations = 0.0
    for input_size in spec.layer_input_sizes():
        operands = input_size + spec.neurons
        neuron_evals = steps * spec.gates_per_cell * spec.neurons
        scratchpad += neuron_evals * operands * bytes_per_weight * (
            table.weight_read_per_byte
        )
        scratchpad += neuron_evals * operands * bytes_per_weight * (
            table.input_read_per_byte
        )
        # Intermediate memory: h_t written once per cell neuron/timestep,
        # inputs staged once per timestep.
        scratchpad += steps * spec.neurons * bytes_per_weight * (
            table.intermediate_per_byte
        )
        scratchpad += steps * operands * bytes_per_weight * (
            table.intermediate_per_byte
        )
        operations += neuron_evals * operands * table.mac_fp16
        operations += neuron_evals * table.mu_ops_per_neuron * table.mu_op

    seconds = timing.seconds
    scratchpad += table.leak_scratchpad * seconds
    operations += table.leak_operations * seconds
    dram = _network_weight_bytes(spec, config) * table.dram_per_byte
    return EnergyReport(
        {
            "scratchpad": scratchpad,
            "operations": operations,
            "dram": dram,
            "fmu": 0.0,
        }
    )


def memoized_energy(
    spec: NetworkSpec,
    config: EPURConfig,
    trace: ReuseTrace,
    table: EnergyTable = DEFAULT_ENERGY_TABLE,
    timing: TimingReport | None = None,
) -> EnergyReport:
    """E-PUR+BM energy for one full-sequence inference.

    Per neuron and timestep the FMU always reads the sign bits, runs the
    BDPU and updates the memoization buffer; only non-reused neurons pay
    the remaining-bits weight read, the input read, the MACs — the MU
    still finishes every neuron (reused values bypass only the DPU).
    """
    if trace.num_layers != spec.layers:
        raise ValueError(
            f"trace has {trace.num_layers} layers but spec has {spec.layers}"
        )
    timing = timing or memoized_timing(spec, config, trace)
    bytes_per_weight = config.weight_bits // 8
    steps = spec.avg_sequence_length

    scratchpad = 0.0
    operations = 0.0
    fmu = 0.0
    for input_size, reuse in zip(spec.layer_input_sizes(), trace.layer_reuse):
        operands = input_size + spec.neurons
        neuron_evals = steps * spec.gates_per_cell * spec.neurons
        full_evals = neuron_evals * (1.0 - reuse)

        # Always-on FMU work.
        fmu += neuron_evals * operands * table.sign_read_per_bit
        fmu += neuron_evals * operands * table.xnor_popcount_per_bit
        fmu += neuron_evals * (table.memo_access + table.cmp_op)

        # Full evaluations read the remaining (non-sign) weight bits.
        remaining_bits = config.weight_bits - 1
        scratchpad += full_evals * operands * (remaining_bits / 8.0) * (
            table.weight_read_per_byte
        )
        scratchpad += full_evals * operands * bytes_per_weight * (
            table.input_read_per_byte
        )
        scratchpad += steps * spec.neurons * bytes_per_weight * (
            table.intermediate_per_byte
        )
        scratchpad += steps * operands * bytes_per_weight * (
            table.intermediate_per_byte
        )
        operations += full_evals * operands * table.mac_fp16
        operations += neuron_evals * table.mu_ops_per_neuron * table.mu_op

    seconds = timing.seconds
    scratchpad += table.leak_scratchpad * seconds
    operations += table.leak_operations * seconds
    fmu += table.leak_fmu * seconds
    dram = _network_weight_bytes(spec, config) * table.dram_per_byte
    return EnergyReport(
        {
            "scratchpad": scratchpad,
            "operations": operations,
            "dram": dram,
            "fmu": fmu,
        }
    )
