"""Area model (paper §5: 64.6 mm² baseline, 66.8 mm² with memoization).

Component areas are an explicit table calibrated to the paper's two
totals: the baseline breaks down into the four CUs' weight buffers (the
dominant term — 8 MiB of SRAM), the intermediate-results memory, the
DPU/MU datapaths and control.  E-PUR+BM adds the FMU datapath, the
memoization scratchpads and the overhead of splitting the weight buffer
into sign + remainder arrays (the paper attributes the largest share,
~3 % of the 4 % total, to the extra scratchpad memory).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class AreaModel:
    """Component areas in mm² at 28 nm."""

    baseline_components: Dict[str, float] = field(
        default_factory=lambda: {
            "weight_buffers": 33.2,  # 4 x 2 MiB SRAM
            "intermediate_memory": 21.4,  # 6 MiB SRAM
            "dpu_mu_datapath": 7.6,  # 4 x (16-lane FP16 DPU + MU)
            "control": 2.4,
        }
    )
    memoization_components: Dict[str, float] = field(
        default_factory=lambda: {
            "memo_scratchpad": 1.9,  # memoization buffers + split sign arrays
            "fmu_datapath": 0.3,  # BDPU + CMP logic
        }
    )

    @property
    def baseline_mm2(self) -> float:
        return sum(self.baseline_components.values())

    @property
    def memoized_mm2(self) -> float:
        return self.baseline_mm2 + sum(self.memoization_components.values())

    @property
    def overhead_fraction(self) -> float:
        return self.memoized_mm2 / self.baseline_mm2 - 1.0

    def breakdown(self) -> Dict[str, float]:
        """All components of E-PUR+BM."""
        merged = dict(self.baseline_components)
        merged.update(self.memoization_components)
        return merged


DEFAULT_AREA_MODEL = AreaModel()
