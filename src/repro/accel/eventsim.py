"""Event-level pipeline simulator for one computation unit per gate.

The analytical model in :mod:`repro.accel.timing` assumes a fixed
per-layer reuse *fraction*; this simulator instead replays the exact
per-neuron reuse masks recorded by a functional run
(:class:`~repro.core.stats.DetailedReuseStats`) through the FMU/DPU
pipeline of §3.3.2:

- the FMU issues one binary-neuron decision per ``issue_cycles``
  (after a ``latency_cycles`` pipeline fill per gate pass);
- the DPU evaluates non-reused neurons sequentially, each taking the
  gate's dot-product latency, starting no earlier than its decision;
- the MU tail finishes the gate pass.

Gates run on parallel CUs (the slowest gate bounds the cell step);
layers and timesteps are sequential.  The cross-check bench asserts
that, fed the same traces, this model and the analytical one agree on
speedup within a few percent — clustering of reuse within a gate pass is
what they can legitimately disagree about.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.accel.config import DEFAULT_CONFIG, EPURConfig
from repro.core.stats import DetailedReuseStats

Array = np.ndarray

#: MU tail per gate pass (same constant as the analytical model).
_MU_TAIL_CYCLES = 4


@dataclass(frozen=True)
class GatePassResult:
    """Cycle accounting for one gate over one timestep and sequence."""

    cycles: int
    dpu_busy_cycles: int
    evaluated: int
    reused: int


@dataclass
class EventSimReport:
    """Totals over a replayed trace."""

    total_cycles: int
    dpu_busy_cycles: int
    evaluated_neurons: int
    reused_neurons: int
    capacity_cycles: int = 0  # total_cycles x parallel CUs occupied

    @property
    def dpu_utilization(self) -> float:
        """Fraction of CU-cycles the DPUs spent on surviving dot products."""
        if self.capacity_cycles == 0:
            return 0.0
        return self.dpu_busy_cycles / self.capacity_cycles

    @property
    def reuse_fraction(self) -> float:
        total = self.evaluated_neurons + self.reused_neurons
        return self.reused_neurons / total if total else 0.0

    def speedup_over(self, baseline: "EventSimReport") -> float:
        if self.total_cycles <= 0:
            raise ValueError("cannot compute speedup of an empty run")
        return baseline.total_cycles / self.total_cycles


def gate_pass_cycles(
    reuse_mask: Array, dot_cycles: int, config: EPURConfig
) -> GatePassResult:
    """One gate pass (all neurons of one gate, one timestep, one sequence).

    Vectorised pipeline recurrence: the DPU finish time after the k-th
    evaluated neuron is ``max_j (decision_j + (k - j + 1) * dot)`` where
    ``decision_j`` is when the FMU delivered the j-th surviving neuron's
    verdict.
    """
    mask = np.asarray(reuse_mask, dtype=bool).reshape(-1)
    neurons = mask.size
    issue = config.fmu.issue_cycles
    fill = config.fmu.latency_cycles
    fmu_done = fill + neurons * issue

    evaluated_idx = np.flatnonzero(~mask)
    evaluated = evaluated_idx.size
    dpu_busy = evaluated * dot_cycles
    if evaluated == 0:
        cycles = fmu_done + _MU_TAIL_CYCLES
        return GatePassResult(cycles, 0, 0, neurons)

    decisions = fill + (evaluated_idx + 1) * issue
    k = np.arange(evaluated)
    # Finish time of the last eval: each candidate start j pays the
    # remaining (evaluated - j) dot latencies back to back.
    finish = np.max(decisions + (evaluated - k) * dot_cycles)
    cycles = int(max(finish, fmu_done)) + _MU_TAIL_CYCLES
    return GatePassResult(cycles, dpu_busy, evaluated, neurons - evaluated)


def baseline_gate_pass_cycles(neurons: int, dot_cycles: int) -> int:
    """Gate pass on plain E-PUR: no FMU, every neuron evaluated."""
    return neurons * dot_cycles + _MU_TAIL_CYCLES


def replay_trace(
    stats: DetailedReuseStats,
    layer_dims: Dict[str, Tuple[int, int]],
    config: EPURConfig = DEFAULT_CONFIG,
) -> Tuple[EventSimReport, EventSimReport]:
    """Replay a functional run's masks through the pipeline model.

    Args:
        stats: detailed stats recorded under :func:`repro.core.memoized`.
        layer_dims: ``layer name -> (input_size, hidden_size)`` of the
            functional (scaled) model; see :func:`collect_layer_dims`.

    Returns:
        ``(memoized_report, baseline_report)`` over the same workload.
    """
    by_layer: Dict[str, List[str]] = {}
    for layer, gate in stats.masks:
        by_layer.setdefault(layer, []).append(gate)
    if not by_layer:
        raise ValueError("stats contain no recorded masks")

    memo = EventSimReport(0, 0, 0, 0)
    base = EventSimReport(0, 0, 0, 0)
    for layer, gates in by_layer.items():
        if layer not in layer_dims:
            raise KeyError(f"no dimensions recorded for layer {layer!r}")
        input_size, hidden = layer_dims[layer]
        dot = math.ceil((input_size + hidden) / config.dpu_width)
        steps = stats.timesteps(layer, gates[0])
        for t in range(steps):
            batch = stats.masks[(layer, gates[0])][t].shape[0]
            for b in range(batch):
                gate_cycles = []
                for gate in gates:
                    mask = stats.masks[(layer, gate)][t][b]
                    result = gate_pass_cycles(mask, dot, config)
                    gate_cycles.append(result.cycles)
                    memo.dpu_busy_cycles += result.dpu_busy_cycles
                    memo.evaluated_neurons += result.evaluated
                    memo.reused_neurons += result.reused
                    base.dpu_busy_cycles += mask.size * dot
                    base.evaluated_neurons += mask.size
                # Gates run on parallel CUs: the slowest bounds the step.
                step_cycles = max(gate_cycles)
                memo.total_cycles += step_cycles
                memo.capacity_cycles += step_cycles * len(gates)
                base_step = baseline_gate_pass_cycles(
                    stats.masks[(layer, gates[0])][t][b].size, dot
                )
                base.total_cycles += base_step
                base.capacity_cycles += base_step * len(gates)
    return memo, base


def collect_layer_dims(model) -> Dict[str, Tuple[int, int]]:
    """Map every recurrent layer's dotted name to (input, hidden) sizes.

    Mirrors the naming used by :func:`repro.core.engine.apply_memoization`
    so the dims line up with :class:`DetailedReuseStats` keys.
    """
    from repro.core.engine import _iter_recurrent_children

    dims: Dict[str, Tuple[int, int]] = {}
    for _, _, layer, dotted in _iter_recurrent_children(model):
        dims[dotted] = (layer.input_size, layer.hidden_size)
    if not dims:
        raise ValueError("model contains no recurrent layers")
    return dims
