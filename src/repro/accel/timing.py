"""Cycle-level timing model of E-PUR and E-PUR+BM (paper §3.3).

Execution model (from §3.3.1): the four gates of a cell are evaluated in
parallel, one per computation unit, while the neurons *within* a gate are
sequential.  Each neuron's dot product takes ``ceil((E + R) / dpu_width)``
DPU cycles (E forward operands, R recurrent operands); the MU's bias,
peephole and activation work is overlapped with the next neuron's DPU
work and only contributes a fixed pipeline tail.

With memoization (§3.3.2), every neuron first spends the FMU issue slot
(the BDPU is pipelined; its 5-cycle latency contributes a per-gate fill,
not a per-neuron stall), then either skips the DPU entirely (reuse) or
pays the full dot-product latency.  This reproduces §5's observation that
each avoided evaluation saves 16-80 cycles depending on the RNN while
the scheme costs a small constant per neuron.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.accel.config import EPURConfig
from repro.accel.trace import ReuseTrace
from repro.models.specs import NetworkSpec

#: MU pipeline tail per gate per timestep (bias/peephole/activation of
#: the final neuron, not overlapped with anything).
_MU_TAIL_CYCLES = 4


def neuron_dot_cycles(input_size: int, hidden_size: int, config: EPURConfig) -> int:
    """DPU cycles for one neuron's forward + recurrent dot product."""
    if input_size <= 0 or hidden_size <= 0:
        raise ValueError("sizes must be positive")
    return math.ceil((input_size + hidden_size) / config.dpu_width)


@dataclass(frozen=True)
class TimingReport:
    """Cycle breakdown for one full-sequence inference."""

    total_cycles: int
    per_layer_cycles: List[int]
    frequency_hz: float

    @property
    def seconds(self) -> float:
        return self.total_cycles / self.frequency_hz

    def speedup_over(self, other: "TimingReport") -> float:
        """How much faster *this* report is than ``other``."""
        if self.total_cycles <= 0:
            raise ValueError("cannot compute speedup of an empty run")
        return other.total_cycles / self.total_cycles


def baseline_timing(spec: NetworkSpec, config: EPURConfig) -> TimingReport:
    """Cycles for E-PUR without memoization."""
    per_layer = []
    for input_size in spec.layer_input_sizes():
        dot = neuron_dot_cycles(input_size, spec.neurons, config)
        per_timestep = spec.neurons * dot + _MU_TAIL_CYCLES
        per_layer.append(per_timestep * spec.avg_sequence_length)
    return TimingReport(sum(per_layer), per_layer, config.frequency_hz)


def memoized_timing(
    spec: NetworkSpec, config: EPURConfig, trace: ReuseTrace
) -> TimingReport:
    """Cycles for E-PUR+BM given per-layer reuse fractions."""
    if trace.num_layers != spec.layers:
        raise ValueError(
            f"trace has {trace.num_layers} layers but spec has {spec.layers}"
        )
    per_layer = []
    for input_size, reuse in zip(spec.layer_input_sizes(), trace.layer_reuse):
        dot = neuron_dot_cycles(input_size, spec.neurons, config)
        evaluated = spec.neurons * (1.0 - reuse)
        per_timestep = (
            spec.neurons * config.fmu.issue_cycles  # BDPU issue per neuron
            + config.fmu.latency_cycles  # pipeline fill per gate-step
            + math.ceil(evaluated * dot)  # surviving full evaluations
            + _MU_TAIL_CYCLES
        )
        per_layer.append(per_timestep * spec.avg_sequence_length)
    return TimingReport(sum(per_layer), per_layer, config.frequency_hz)


def saved_cycles_per_reuse(spec: NetworkSpec, config: EPURConfig) -> List[int]:
    """Cycles one avoided evaluation saves in each layer (§5: 16-80)."""
    return [
        neuron_dot_cycles(input_size, spec.neurons, config)
        for input_size in spec.layer_input_sizes()
    ]
