"""E-PUR accelerator configuration (paper Table 2).

Default values are Table 2 verbatim: a 28 nm, 500 MHz accelerator with
four computation units (one per LSTM gate), 2 MiB weight buffer per CU,
8 KiB input buffers, a 6 MiB intermediate-results memory, and the fuzzy
memoization unit (FMU) with a 2048-bit binary dot-product unit, 5-cycle
latency and an 8 KiB memoization buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

KIB = 1024
MIB = 1024 * 1024


@dataclass(frozen=True)
class FMUConfig:
    """Fuzzy Memoization Unit parameters (Table 2, bottom half)."""

    bdpu_width_bits: int = 2048
    latency_cycles: int = 5
    #: Pipelined issue interval: the BDPU accepts a new neuron each cycle
    #: (its 5-cycle latency is fill, not occupancy).  §5 discusses the
    #: per-neuron overhead; the ablation bench varies this.
    issue_cycles: int = 1
    integer_width_bytes: int = 2
    memo_buffer_bytes: int = 8 * KIB

    def __post_init__(self):
        if self.bdpu_width_bits <= 0 or self.latency_cycles < 0:
            raise ValueError("invalid FMU configuration")
        if self.issue_cycles <= 0:
            raise ValueError("issue_cycles must be positive")


@dataclass(frozen=True)
class EPURConfig:
    """Top-level accelerator parameters (Table 2, top half)."""

    technology_nm: int = 28
    frequency_hz: float = 500e6
    num_cus: int = 4
    dpu_width: int = 16  # MAC lanes per dot-product unit
    weight_buffer_bytes: int = 2 * MIB  # per CU
    input_buffer_bytes: int = 8 * KIB  # per CU
    intermediate_memory_bytes: int = 6 * MIB
    weight_bits: int = 16  # FP16 weights
    fmu: FMUConfig = field(default_factory=FMUConfig)

    def __post_init__(self):
        if self.dpu_width <= 0:
            raise ValueError("dpu_width must be positive")
        if self.num_cus <= 0:
            raise ValueError("num_cus must be positive")
        if self.weight_bits not in (16, 32):
            raise ValueError("E-PUR supports 16- or 32-bit weights")
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")

    @property
    def cycle_seconds(self) -> float:
        return 1.0 / self.frequency_hz

    @property
    def total_weight_buffer_bytes(self) -> int:
        return self.num_cus * self.weight_buffer_bytes


#: The configuration used throughout the paper's evaluation.
DEFAULT_CONFIG = EPURConfig()
