"""Reuse traces: the bridge from functional memoized inference to the
accelerator model.

A :class:`ReuseTrace` carries the per-layer reuse fractions the cycle and
energy models consume.  It can be built three ways: from a functional
:class:`~repro.core.stats.ReuseStats` run (preferred), from a single
uniform fraction (what-if analyses), or per-layer explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.stats import ReuseStats
from repro.models.specs import NetworkSpec


@dataclass(frozen=True)
class ReuseTrace:
    """Per-directional-layer reuse fractions for one network inference."""

    layer_reuse: Sequence[float]

    def __post_init__(self):
        if not self.layer_reuse:
            raise ValueError("trace needs at least one layer")
        for fraction in self.layer_reuse:
            if not 0.0 <= fraction <= 1.0:
                raise ValueError(f"reuse fraction {fraction} outside [0, 1]")

    @property
    def num_layers(self) -> int:
        return len(self.layer_reuse)

    def mean_reuse(self) -> float:
        return sum(self.layer_reuse) / len(self.layer_reuse)

    @classmethod
    def uniform(cls, reuse_fraction: float, num_layers: int) -> "ReuseTrace":
        """Same reuse on every layer."""
        return cls(tuple([reuse_fraction] * num_layers))

    @classmethod
    def zero(cls, num_layers: int) -> "ReuseTrace":
        """The baseline (no memoization)."""
        return cls.uniform(0.0, num_layers)

    @classmethod
    def from_stats(cls, stats: ReuseStats, spec: NetworkSpec) -> "ReuseTrace":
        """Project functional reuse statistics onto the paper geometry.

        The functional models are scaled down (fewer layers than the
        paper network), so per-layer fractions are mapped onto the spec's
        directional layers by proportional position; this preserves the
        depth profile of reuse (early layers see raw inputs, late layers
        see slowly-varying hidden states).
        """
        measured = [stats.by_layer()[name] for name in sorted(stats.by_layer())]
        if not measured:
            raise ValueError("stats contain no recorded layers")
        layers = []
        for i in range(spec.layers):
            source = int(i * len(measured) / spec.layers)
            layers.append(measured[source])
        return cls(tuple(layers))
