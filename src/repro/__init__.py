"""repro — Neuron-Level Fuzzy Memoization in RNNs (MICRO-52 2019).

A full reproduction of Silfa et al.'s neuron-level fuzzy memoization
scheme: a from-scratch numpy RNN substrate (:mod:`repro.nn`), the
memoization engine with its BNN predictor (:mod:`repro.core`), the four
Table 1 benchmark networks (:mod:`repro.models`) on synthetic workloads
(:mod:`repro.datasets`), the E-PUR accelerator model (:mod:`repro.accel`)
and the experiment pipelines (:mod:`repro.analysis`).

Quickstart::

    from repro.core import MemoizationScheme, ReuseStats, memoized
    from repro.models import load_benchmark

    bench = load_benchmark("eesen")          # trains in a few seconds
    result = bench.evaluate_memoized(MemoizationScheme(theta=0.1))
    print(result.reuse_percent, result.quality_loss)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
