"""Contiguous, preallocated memo tables for the vectorized engine.

The paper's memoization buffer holds, per gate neuron, the output of the
last full evaluation.  The scalar reference path keeps that state inside
each predictor; the vectorized engine instead owns one :class:`MemoTable`
per gate *phase* — a single C-contiguous ``(B, G*H)`` float64 array
covering every gate of the phase, allocated once per batch shape and
updated in place.

The update exploits an identity of the reuse rule: the substituted
outputs ``where(reuse, memo, fresh)`` and the refreshed memo
``where(reuse, memo, fresh)`` are the *same* array, so one buffer serves
as both and the per-timestep work is a single masked in-place copy.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.obs import profiler as _profiler

Array = np.ndarray


class MemoTable:
    """Preallocated memo buffer for one gate phase.

    Attributes:
        neurons: total neuron count covered (sum of gate widths).
        values: the ``(B, neurons)`` buffer, or ``None`` before the first
            :meth:`begin_sequence`.  After the first :meth:`substitute`
            of a sequence it always holds the memoized pre-activations.
        profile_key: optional ``(layer, phase_index)`` identity reported
            to an installed :class:`~repro.obs.profiler.Profiler` when
            the buffer is (re)allocated.
    """

    def __init__(self, neurons: int, profile_key: Optional[Tuple[str, int]] = None):
        if neurons <= 0:
            raise ValueError("neurons must be positive")
        self.neurons = neurons
        self.values: Optional[Array] = None
        self._fresh = True
        self.profile_key = profile_key

    def begin_sequence(self, batch: int) -> None:
        """Mark the memo empty; reallocate only if the batch shape changed."""
        if self.values is None or self.values.shape[0] != batch:
            self.values = np.empty((batch, self.neurons))
            # Allocation is the cold path (once per batch shape), so the
            # profiler check costs nothing on the per-timestep path.
            if self.profile_key is not None and _profiler.ACTIVE is not None:
                layer, phase_index = self.profile_key
                _profiler.ACTIVE.record_table(layer, phase_index, batch, self.neurons)
        self._fresh = True

    @property
    def memo(self) -> Optional[Array]:
        """Memoized pre-activations, or ``None`` on a fresh sequence."""
        return None if self._fresh else self.values

    def substitute(self, reuse_mask: Array, fresh: Array) -> Array:
        """Fold ``fresh`` pre-activations into the memo; return the outputs.

        Where ``reuse_mask`` is True the memoized value stands (the full
        evaluation is logically skipped); elsewhere ``fresh`` replaces it.
        The returned array is the live buffer — valid until the next
        :meth:`substitute`/:meth:`begin_sequence`, which matches the
        one-timestep lifetime of gate pre-activations.

        Raises:
            RuntimeError: if :meth:`begin_sequence` has never been
                called — the buffer does not exist yet, and failing
                loudly beats the opaque ``NoneType`` item-assignment
                error the raw buffer access would produce.
        """
        if self.values is None:
            raise RuntimeError(
                "begin_sequence was not called: the memo table has no "
                "buffer to substitute into"
            )
        if self._fresh:
            self.values[...] = fresh
            self._fresh = False
        else:
            np.copyto(self.values, fresh, where=~reuse_mask)
        return self.values
