"""Binary gate mirrors of trained full-precision gates (paper Figure 9).

A :class:`BinaryGate` is created by binarizing a gate's concatenated
forward/recurrent weight matrix ``[W_x | W_h]``.  At inference time it
binarizes the concatenated operand ``[x_t ; h_{t-1}]`` and produces the
integer dot product of Equation 8 for every neuron — the signal the
memoization predictor thresholds on.

A gate may mirror a *stack* of gates: the vectorized engine concatenates
the per-gate weight matrices of a whole phase along the neuron axis and
builds one ``BinaryGate`` over the stack, so a single XNOR/popcount pass
(:meth:`BinaryGate.evaluate_packed`) covers every gate of the cell.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.binarization import (
    binarize,
    binary_dot,
    binary_dot_packed,
    pack_signs,
)

Array = np.ndarray


class BinaryGate:
    """The BNN mirror of one RNN gate (or one stacked gate phase).

    Args:
        w_x: full-precision forward weights ``(H, E)``.
        w_h: full-precision recurrent weights ``(H, R)``.
        use_packed: route :meth:`evaluate` through the XNOR/popcount path
            instead of the ±1 matmul (identical results; the packed path
            mirrors the hardware BDPU).  Packed weights are built lazily
            either way, so :meth:`evaluate_packed` is always available.
    """

    def __init__(self, w_x: Array, w_h: Array, use_packed: bool = False):
        w_x = np.asarray(w_x)
        w_h = np.asarray(w_h)
        if w_x.ndim != 2 or w_h.ndim != 2:
            raise ValueError("gate weights must be 2-D")
        if w_x.shape[0] != w_h.shape[0]:
            raise ValueError(
                f"forward/recurrent neuron counts differ: "
                f"{w_x.shape[0]} vs {w_h.shape[0]}"
            )
        self.neurons = w_x.shape[0]
        self.input_size = w_x.shape[1]
        self.recurrent_size = w_h.shape[1]
        self.n_bits = self.input_size + self.recurrent_size
        self.use_packed = use_packed
        full = np.concatenate([w_x, w_h], axis=1)
        self.weights_bin = binarize(full)
        self._weights_packed: Optional[Array] = (
            pack_signs(full) if use_packed else None
        )

    @property
    def packed_weights(self) -> Array:
        """uint64-packed weight signs, built on first use and cached.

        ``weights_bin`` is ±1 with the same ``>= 0`` convention as the raw
        weights, so packing it reproduces ``pack_signs(full)`` exactly.
        """
        if self._weights_packed is None:
            self._weights_packed = pack_signs(self.weights_bin)
        return self._weights_packed

    def evaluate(self, x: Array, h: Array) -> Array:
        """Binary dot products for operands ``x`` (B, E) and ``h`` (B, R).

        Returns:
            int32 array of shape ``(B, H)`` (or ``(H,)`` for 1-D input).
        """
        x = np.asarray(x)
        h = np.asarray(h)
        return self.evaluate_operand(np.concatenate([x, h], axis=-1))

    def evaluate_operand(self, operand: Array) -> Array:
        """Binary dot products for an already-concatenated ``[x ; h]``.

        Honors ``use_packed`` (matmul vs popcount — bit-identical).
        """
        operand = np.asarray(operand)
        if operand.shape[-1] != self.n_bits:
            raise ValueError(
                f"operand width {operand.shape[-1]} != expected {self.n_bits}"
            )
        if self.use_packed:
            return binary_dot_packed(
                self.packed_weights, pack_signs(operand), self.n_bits
            )
        return binary_dot(self.weights_bin, binarize(operand))

    def evaluate_packed(self, packed_operand: Array) -> Array:
        """Popcount evaluation of pre-packed operand signs.

        The fast path of the vectorized engine: the caller packs the
        concatenated operand once per phase (``pack_signs``) and this
        reduces to ``n_bits - 2 * popcount(w XOR x)`` per neuron,
        regardless of ``use_packed`` (the integers are identical).
        """
        return binary_dot_packed(self.packed_weights, packed_operand, self.n_bits)

    @property
    def storage_bits(self) -> int:
        """Sign-buffer footprint of this gate in bits."""
        return self.neurons * self.n_bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BinaryGate(neurons={self.neurons}, n_bits={self.n_bits}, "
            f"packed={self.use_packed})"
        )
