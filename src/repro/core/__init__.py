"""Neuron-level fuzzy memoization — the paper's contribution.

Public surface:

- :func:`binarize` / :class:`BinaryGate` — Equations 7-8 and Figure 9.
- :class:`MemoizationScheme` + :func:`memoized` — apply the scheme to any
  model built on :mod:`repro.nn`.
- Predictors (:class:`BNNGatePredictor`, :class:`OracleGatePredictor`,
  :class:`InputSimilarityGatePredictor`) — Figures 6 and 10.
- :class:`ReuseStats` / :func:`output_change_profile` — measurement.
- :func:`calibrate_threshold` — §3.2.1 threshold selection.
- :mod:`repro.core.correlation` — Figures 7-8 analysis.
"""

from repro.core.binarization import (
    binarize,
    binarize_bits,
    binary_dot,
    binary_dot_packed,
    pack_signs,
)
from repro.core.bnn import BinaryGate
from repro.core.calibration import (
    SweepPoint,
    ThresholdSweep,
    calibrate_per_layer,
    calibrate_threshold,
    sweep_thresholds,
)
from repro.core.correlation import (
    CorrelationSamples,
    collect_gate_samples,
    correlation_histogram,
    fraction_above,
    layer_correlations,
)
from repro.core.engine import (
    MemoizationScheme,
    apply_memoization,
    memoized,
    restore,
)
from repro.core.layers import (
    MemoizedGRULayer,
    MemoizedLSTMLayer,
    MemoizedRecurrentLayer,
    wrap_layer,
)
from repro.core.memo import MemoTable
from repro.core.quantization import (
    LinearQuantizer,
    quantize_fp16,
    quantize_module,
)
from repro.core.predictors import (
    BNNGatePredictor,
    GatePredictor,
    InputSimilarityGatePredictor,
    OracleGatePredictor,
    StepDecision,
)
from repro.core.stats import (
    DetailedReuseStats,
    ReuseStats,
    output_change_profile,
    profile_summary,
    relative_change,
)

__all__ = [
    "BNNGatePredictor",
    "DetailedReuseStats",
    "LinearQuantizer",
    "quantize_fp16",
    "quantize_module",
    "BinaryGate",
    "CorrelationSamples",
    "GatePredictor",
    "InputSimilarityGatePredictor",
    "MemoTable",
    "MemoizationScheme",
    "MemoizedGRULayer",
    "MemoizedLSTMLayer",
    "MemoizedRecurrentLayer",
    "OracleGatePredictor",
    "ReuseStats",
    "StepDecision",
    "SweepPoint",
    "ThresholdSweep",
    "apply_memoization",
    "binarize",
    "binarize_bits",
    "binary_dot",
    "binary_dot_packed",
    "calibrate_per_layer",
    "calibrate_threshold",
    "collect_gate_samples",
    "correlation_histogram",
    "fraction_above",
    "layer_correlations",
    "memoized",
    "output_change_profile",
    "pack_signs",
    "profile_summary",
    "relative_change",
    "restore",
    "sweep_thresholds",
    "wrap_layer",
]
