"""Reuse accounting and neuron-output similarity profiling.

``ReuseStats`` counts, for every (layer, gate), how many neuron
evaluations were skipped thanks to memoization — the paper's
"computation reuse" percentage.  ``output_change_profile`` reproduces the
measurement behind Figure 5: the relative change of each neuron's output
between consecutive input elements.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

import numpy as np

Array = np.ndarray
Key = Tuple[str, str]  # (layer name, gate name)


@dataclass
class ReuseStats:
    """Counts of reused vs total neuron evaluations, keyed by layer/gate."""

    reused: Dict[Key, int] = field(default_factory=dict)
    total: Dict[Key, int] = field(default_factory=dict)

    def record(self, layer: str, gate: str, reuse_mask: Array) -> None:
        """Record one timestep's decisions for one gate.

        ``reuse_mask`` is a boolean array over (batch x neurons); every
        entry is one potential neuron evaluation.
        """
        key = (layer, gate)
        mask = np.asarray(reuse_mask, dtype=bool)
        self.reused[key] = self.reused.get(key, 0) + int(mask.sum())
        self.total[key] = self.total.get(key, 0) + int(mask.size)

    def reset(self) -> None:
        self.reused.clear()
        self.total.clear()

    # -- queries -------------------------------------------------------------

    @property
    def total_evaluations(self) -> int:
        return sum(self.total.values())

    @property
    def total_reused(self) -> int:
        return sum(self.reused.values())

    def reuse_fraction(self) -> float:
        """Overall fraction of neuron evaluations avoided (0-1)."""
        total = self.total_evaluations
        if total == 0:
            return 0.0
        return self.total_reused / total

    def reuse_percent(self) -> float:
        return 100.0 * self.reuse_fraction()

    def by_layer(self) -> Dict[str, float]:
        """Reuse fraction aggregated per layer."""
        layers: Dict[str, List[int]] = {}
        for (layer, _), count in self.total.items():
            acc = layers.setdefault(layer, [0, 0])
            acc[1] += count
        for (layer, _), count in self.reused.items():
            layers[layer][0] += count
        return {
            layer: (reused / total if total else 0.0)
            for layer, (reused, total) in layers.items()
        }

    def by_gate(self) -> Dict[str, float]:
        """Reuse fraction aggregated per gate name (across layers)."""
        gates: Dict[str, List[int]] = {}
        for (_, gate), count in self.total.items():
            acc = gates.setdefault(gate, [0, 0])
            acc[1] += count
        for (_, gate), count in self.reused.items():
            gates[gate][0] += count
        return {
            gate: (reused / total if total else 0.0)
            for gate, (reused, total) in gates.items()
        }

    def merge(self, other: "ReuseStats") -> None:
        """Fold ``other``'s counts into this instance (exact integer sums).

        Merging is associative and order-independent, so any partition of
        an evaluation (e.g. the runner's per-batch shards) merges to the
        same counts as the unsharded run.
        """
        for key, count in other.total.items():
            self.total[key] = self.total.get(key, 0) + count
        for key, count in other.reused.items():
            self.reused[key] = self.reused.get(key, 0) + count

    def snapshot(self) -> "ReuseStats":
        """A detached copy of the current counters.

        The returned instance is a plain :class:`ReuseStats` whose dicts
        share nothing with this one, so readers can aggregate at leisure
        while recording continues.  On the thread-safe subclass the copy
        is taken under the lock — an atomic, consistent view.
        """
        copy = ReuseStats()
        copy.reused = dict(self.reused)
        copy.total = dict(self.total)
        return copy

    @classmethod
    def merged(cls, parts: Iterable["ReuseStats"]) -> "ReuseStats":
        """One :class:`ReuseStats` folding every instance in ``parts``.

        The aggregation primitive behind multi-replica serving metrics:
        each replica records into its own stats (no cross-replica lock
        contention on the inference hot path) and readers merge detached
        snapshots into a single fleet-wide view.  Exact integer sums, so
        any partition of the traffic merges to the same counts.
        """
        merged = cls()
        for part in parts:
            merged.merge(part)
        return merged


class ThreadSafeReuseStats(ReuseStats):
    """A :class:`ReuseStats` safe to record into from many threads.

    ``repro serve`` answers concurrent requests against one cumulative
    stats instance; the base class's read-modify-write counter updates
    would lose increments under that interleaving.  Every mutation and
    the :meth:`snapshot` read are serialized on an internal lock.  The
    lock is deliberately *not* part of the dataclass state: snapshots
    and merges hand out plain :class:`ReuseStats` semantics.
    """

    def __init__(self):
        super().__init__()
        self._lock = threading.RLock()

    def record(self, layer: str, gate: str, reuse_mask: Array) -> None:
        with self._lock:
            super().record(layer, gate, reuse_mask)

    def merge(self, other: "ReuseStats") -> None:
        with self._lock:
            super().merge(other)

    def reset(self) -> None:
        with self._lock:
            super().reset()

    def snapshot(self) -> ReuseStats:
        with self._lock:
            return super().snapshot()


class DetailedReuseStats(ReuseStats):
    """ReuseStats that additionally keeps every per-timestep reuse mask.

    The masks drive the event-level pipeline simulator
    (:mod:`repro.accel.eventsim`), which needs to know *which* neurons
    were skipped in each cycle-accurate gate pass, not just how many.
    Masks are stored per ``(layer, gate)`` in timestep order, each of
    shape ``(batch, neurons)``.
    """

    def __init__(self):
        super().__init__()
        self.masks: Dict[Key, List[Array]] = {}

    def record(self, layer: str, gate: str, reuse_mask: Array) -> None:
        super().record(layer, gate, reuse_mask)
        mask = np.asarray(reuse_mask, dtype=bool)
        if mask.ndim == 1:
            mask = mask[None, :]
        self.masks.setdefault((layer, gate), []).append(mask.copy())

    def reset(self) -> None:
        super().reset()
        self.masks.clear()

    def merge(self, other: "ReuseStats") -> None:
        """Fold counts *and* per-timestep masks into this instance.

        The base-class ``merge`` only sums counts; inheriting it verbatim
        would silently drop the mask detail this subclass exists for
        (mirroring how ``reset`` clears both).  Masks from ``other`` are
        appended after this instance's masks per ``(layer, gate)``,
        treating them as subsequent gate passes — consistent with how
        sequential ``record`` calls would have interleaved.  Merging a
        plain :class:`ReuseStats` only contributes counts.
        """
        super().merge(other)
        if isinstance(other, DetailedReuseStats):
            for key, masks in other.masks.items():
                ours = self.masks.setdefault(key, [])
                ours.extend(mask.copy() for mask in masks)

    def timesteps(self, layer: str, gate: str) -> int:
        return len(self.masks.get((layer, gate), []))


def relative_change(
    current: Array, previous: Array, floor: float = 1e-8
) -> Array:
    """``|current - previous| / max(|current|, floor)`` elementwise."""
    current = np.asarray(current, dtype=np.float64)
    previous = np.asarray(previous, dtype=np.float64)
    return np.abs(current - previous) / np.maximum(np.abs(current), floor)


def output_change_profile(
    hidden_sequences: Iterable[Array], clip_percent: float = 100.0
) -> Array:
    """Figure 5 measurement: per-neuron mean relative output change.

    Args:
        hidden_sequences: iterable of hidden-state tensors, each shaped
            ``(B, T, H)`` (one per layer/direction).  Neuron identity is
            the last axis; changes are measured along time.
        clip_percent: clip individual relative changes at this value (in
            percent) so near-zero outputs do not dominate the mean.

    Returns:
        1-D array of per-neuron mean relative change **in percent**,
        sorted ascending (ready to plot as a CDF over neurons).
    """
    per_neuron: List[Array] = []
    for seq in hidden_sequences:
        seq = np.asarray(seq, dtype=np.float64)
        if seq.ndim != 3:
            raise ValueError(f"expected (B, T, H) hidden states, got {seq.shape}")
        if seq.shape[1] < 2:
            raise ValueError("need at least two timesteps to measure change")
        change = relative_change(seq[:, 1:, :], seq[:, :-1, :]) * 100.0
        change = np.minimum(change, clip_percent)
        per_neuron.append(change.mean(axis=(0, 1)))
    if not per_neuron:
        raise ValueError("no hidden sequences supplied")
    profile = np.concatenate(per_neuron)
    return np.sort(profile)


def profile_summary(profile: Array) -> Dict[str, float]:
    """Summary stats the paper quotes from Figure 5 (mean, quartile)."""
    profile = np.asarray(profile)
    return {
        "mean_percent": float(profile.mean()),
        "p25_percent": float(np.percentile(profile, 25)),
        "median_percent": float(np.percentile(profile, 50)),
        "fraction_below_10pct": float(np.mean(profile <= 10.0)),
    }
