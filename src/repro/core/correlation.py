"""BNN vs full-precision output correlation (paper Figures 7 and 8).

The memoization predictor is sound only because the binarized mirror of a
gate produces outputs that track the full-precision outputs (Anderson &
Berg's dot-product preservation).  These utilities measure that claim on
our networks: for every neuron they collect (full-precision, binary)
output pairs over a test run and compute per-neuron Pearson correlations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.core.bnn import BinaryGate
from repro.metrics.correlation import pearson
from repro.nn.gru import GRULayer
from repro.nn.lstm import LSTMLayer

Array = np.ndarray
RecurrentLayer = Union[LSTMLayer, GRULayer]


@dataclass
class CorrelationSamples:
    """Paired (full-precision, binary) outputs for one gate.

    Shapes are ``(samples, neurons)`` with samples pooled over batch and
    time.
    """

    full: Array
    binary: Array

    def per_neuron(self) -> Array:
        """Pearson correlation per neuron, shape ``(neurons,)``."""
        return np.array(
            [
                pearson(self.full[:, n], self.binary[:, n])
                for n in range(self.full.shape[1])
            ]
        )

    def pooled(self) -> float:
        """Correlation over all neurons pooled together (Figure 7 view)."""
        return pearson(self.full.reshape(-1), self.binary.reshape(-1))


def collect_gate_samples(
    layer: RecurrentLayer, inputs: Array
) -> Dict[str, CorrelationSamples]:
    """Run ``inputs`` (B, T, E) through ``layer``, pairing full-precision
    and binary pre-activations for every gate.

    The binary mirrors are built with Figure 9's construction (sign
    binarization of the gate's concatenated weights).
    """
    inputs = np.asarray(inputs, dtype=np.float64)
    if inputs.ndim != 3:
        raise ValueError(f"expected (B, T, E) inputs, got {inputs.shape}")
    cell = layer.cell
    is_lstm = isinstance(layer, LSTMLayer)
    mirrors = {}
    for gate in cell.gate_names:
        w_x, w_h, _ = cell.gate_weights(gate)
        mirrors[gate] = BinaryGate(w_x, w_h)

    full_samples: Dict[str, List[Array]] = {g: [] for g in cell.gate_names}
    bin_samples: Dict[str, List[Array]] = {g: [] for g in cell.gate_names}

    batch, steps, _ = inputs.shape
    state = layer.start_state(batch)
    for t in range(steps):
        x_t = inputs[:, t, :]
        h_prev = state[0] if is_lstm else state
        if is_lstm:
            pre = cell.gate_preacts(x_t, h_prev)
            operands = {g: (x_t, h_prev) for g in cell.gate_names}
        else:
            pre = cell.zr_preacts(x_t, h_prev)
            # Resolve the reset gate to build the candidate's operand.
            from repro.nn.activations import sigmoid

            r = sigmoid(pre["r"] + cell.b_r.value)
            reset_h = r * h_prev
            pre["g"] = cell.g_preact(x_t, reset_h)
            operands = {
                "z": (x_t, h_prev),
                "r": (x_t, h_prev),
                "g": (x_t, reset_h),
            }
        for gate in cell.gate_names:
            full_samples[gate].append(pre[gate])
            x_op, h_op = operands[gate]
            bin_samples[gate].append(mirrors[gate].evaluate(x_op, h_op))
        _, state = layer.step(x_t, state)

    return {
        gate: CorrelationSamples(
            full=np.concatenate(full_samples[gate], axis=0),
            binary=np.concatenate(bin_samples[gate], axis=0).astype(np.float64),
        )
        for gate in cell.gate_names
    }


def layer_correlations(layer: RecurrentLayer, inputs: Array) -> Array:
    """Per-neuron correlations pooled over all gates of ``layer``."""
    samples = collect_gate_samples(layer, inputs)
    return np.concatenate([s.per_neuron() for s in samples.values()])


def correlation_histogram(
    correlations: Array, bins: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
) -> Tuple[Array, Array]:
    """Figure 8 histogram: percentage of neurons per correlation bin.

    Negative correlations are clipped to 0 (they occupy the lowest bin,
    matching the paper's axis).
    """
    correlations = np.clip(np.asarray(correlations, dtype=np.float64), 0.0, 1.0)
    edges = np.asarray(bins, dtype=np.float64)
    counts, _ = np.histogram(correlations, bins=edges)
    if correlations.size == 0:
        raise ValueError("no correlations supplied")
    percent = 100.0 * counts / correlations.size
    return percent, edges


def fraction_above(correlations: Array, threshold: float) -> float:
    """Fraction of neurons with correlation above ``threshold``.

    The paper quotes "85% of neurons have R > 0.8" for three networks.
    """
    correlations = np.asarray(correlations)
    if correlations.size == 0:
        raise ValueError("no correlations supplied")
    return float(np.mean(correlations > threshold))
