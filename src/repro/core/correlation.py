"""BNN vs full-precision output correlation (paper Figures 7 and 8).

The memoization predictor is sound only because the binarized mirror of a
gate produces outputs that track the full-precision outputs (Anderson &
Berg's dot-product preservation).  These utilities measure that claim on
our networks: for every neuron they collect (full-precision, binary)
output pairs over a test run and compute per-neuron Pearson correlations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.core.bnn import BinaryGate
from repro.metrics.correlation import pearson
from repro.nn.cells import GatedCell, GatePhase
from repro.nn.gru import GRULayer
from repro.nn.lstm import LSTMLayer
from repro.nn.rnn import RNNLayer

Array = np.ndarray
RecurrentLayer = Union[LSTMLayer, GRULayer, RNNLayer]


@dataclass
class CorrelationSamples:
    """Paired (full-precision, binary) outputs for one gate.

    Shapes are ``(samples, neurons)`` with samples pooled over batch and
    time.
    """

    full: Array
    binary: Array

    def per_neuron(self) -> Array:
        """Pearson correlation per neuron, shape ``(neurons,)``."""
        return np.array(
            [
                pearson(self.full[:, n], self.binary[:, n])
                for n in range(self.full.shape[1])
            ]
        )

    def pooled(self) -> float:
        """Correlation over all neurons pooled together (Figure 7 view)."""
        return pearson(self.full.reshape(-1), self.binary.reshape(-1))


class _RecordingHook:
    """A pure-observer :class:`~repro.nn.cells.MemoHook`.

    For every gate phase it captures the full-precision pre-activation
    blocks and evaluates each gate's binary mirror on the phase operand
    (which for the GRU candidate is the resolved ``r_t * h_{t-1}`` —
    exactly what the hardware FMU would binarize), returning ``preacts``
    untouched so the trajectory is the layer's own.
    """

    def __init__(self, cell: GatedCell):
        self.mirrors = {}
        for gate in cell.gate_names:
            w_x, w_h, _ = cell.gate_weights(gate)
            self.mirrors[gate] = BinaryGate(w_x, w_h)
        self.full: Dict[str, List[Array]] = {g: [] for g in cell.gate_names}
        self.binary: Dict[str, List[Array]] = {g: [] for g in cell.gate_names}

    def on_gates(
        self,
        cell: GatedCell,
        phase: GatePhase,
        x: Array,
        h: Array,
        preacts: Array,
    ) -> Array:
        hidden = cell.hidden_size
        for i, gate in enumerate(phase.gates):
            self.full[gate].append(preacts[:, i * hidden : (i + 1) * hidden].copy())
            self.binary[gate].append(self.mirrors[gate].evaluate(x, h))
        return preacts


def collect_gate_samples(
    layer: RecurrentLayer, inputs: Array
) -> Dict[str, CorrelationSamples]:
    """Run ``inputs`` (B, T, E) through ``layer``, pairing full-precision
    and binary pre-activations for every gate.

    The binary mirrors are built with Figure 9's construction (sign
    binarization of the gate's concatenated weights).  Collection rides
    the cell's own ``step_hooked`` path via a recording hook, so it works
    for any :class:`~repro.nn.cells.GatedCell` without special-casing.
    """
    inputs = np.asarray(inputs, dtype=np.float64)
    if inputs.ndim != 3:
        raise ValueError(f"expected (B, T, E) inputs, got {inputs.shape}")
    cell = layer.cell
    hook = _RecordingHook(cell)
    batch, steps, _ = inputs.shape
    state = layer.start_state(batch)
    for t in range(steps):
        _, state = layer.step(inputs[:, t, :], state, hook=hook)

    return {
        gate: CorrelationSamples(
            full=np.concatenate(hook.full[gate], axis=0),
            binary=np.concatenate(hook.binary[gate], axis=0).astype(np.float64),
        )
        for gate in cell.gate_names
    }


def layer_correlations(layer: RecurrentLayer, inputs: Array) -> Array:
    """Per-neuron correlations pooled over all gates of ``layer``."""
    samples = collect_gate_samples(layer, inputs)
    return np.concatenate([s.per_neuron() for s in samples.values()])


def correlation_histogram(
    correlations: Array, bins: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
) -> Tuple[Array, Array]:
    """Figure 8 histogram: percentage of neurons per correlation bin.

    Negative correlations are clipped to 0 (they occupy the lowest bin,
    matching the paper's axis).
    """
    correlations = np.clip(np.asarray(correlations, dtype=np.float64), 0.0, 1.0)
    edges = np.asarray(bins, dtype=np.float64)
    counts, _ = np.histogram(correlations, bins=edges)
    if correlations.size == 0:
        raise ValueError("no correlations supplied")
    percent = 100.0 * counts / correlations.size
    return percent, edges


def fraction_above(correlations: Array, threshold: float) -> float:
    """Fraction of neurons with correlation above ``threshold``.

    The paper quotes "85% of neurons have R > 0.8" for three networks.
    """
    correlations = np.asarray(correlations)
    if correlations.size == 0:
        raise ValueError("no correlations supplied")
    return float(np.mean(correlations > threshold))
