"""Memoization predictors: who decides when a neuron's cached output is
reused.

Three predictors are implemented:

- :class:`OracleGatePredictor` — the idealised predictor of Figure 6
  (Equations 9-11): it knows the true current output and reuses whenever
  the true relative error is under the threshold.  It upper-bounds what
  any practical predictor can achieve.
- :class:`BNNGatePredictor` — the paper's contribution (Figure 10,
  Equations 12-17): a binary mirror of the gate is always evaluated, and
  the *accumulated* relative change of the binary output since the last
  full evaluation (the throttling mechanism, Eq. 13) gates reuse.
- :class:`InputSimilarityGatePredictor` — the strawman discussed in the
  introduction: reuse when the gate's *input* changed little.  It ignores
  the weights, which is exactly why the paper rejects it.

All predictors share the same stepping contract so the memoized layers
can swap them freely.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core.bnn import BinaryGate

Array = np.ndarray
ComputeFull = Callable[[], Array]

#: Relative-error floor: |denominator| values below this are treated as
#: "output too small to compare", forcing a full evaluation.
_DENOM_FLOOR = 1e-12


@dataclass
class StepDecision:
    """Result of one predictor step for one gate.

    Attributes:
        outputs: the gate pre-activations to use, shape ``(B, H)`` —
            memoized values where reused, fresh values elsewhere.
        reuse_mask: boolean ``(B, H)``; True where the cached value was
            reused (i.e. the full-precision evaluation was avoided).
    """

    outputs: Array
    reuse_mask: Array


class GatePredictor(ABC):
    """Per-gate memoization state machine."""

    @abstractmethod
    def begin_sequence(self, batch: int) -> None:
        """Reset all memoization state for a new batch of sequences."""

    @abstractmethod
    def step(self, x: Array, h: Array, compute_full: ComputeFull) -> StepDecision:
        """Decide reuse for one timestep.

        Args:
            x: the gate's forward operand ``(B, E)``.
            h: the gate's recurrent operand ``(B, R)``.
            compute_full: computes the true pre-activations ``(B, H)``.
                The functional simulator may call it even for reused
                neurons (cost accounting is logical, via ``reuse_mask``),
                but a predictor must treat its result as unavailable when
                deciding — only the oracle may peek.
        """


class OracleGatePredictor(GatePredictor):
    """Figure 6: reuse when the *true* relative output error is <= theta.

    ``delta = |(y_t - y_m) / y_t|``; reuse keeps ``y_m`` unchanged, a full
    evaluation replaces it (Equations 9-11).  No accumulation is applied —
    the oracle already sees the true drift.
    """

    def __init__(self, theta: float):
        if theta < 0:
            raise ValueError("theta must be non-negative")
        self.theta = theta
        self._y_m: Optional[Array] = None

    def begin_sequence(self, batch: int) -> None:
        self._y_m = None

    def step(self, x: Array, h: Array, compute_full: ComputeFull) -> StepDecision:
        y_t = compute_full()
        if self._y_m is None:
            self._y_m = y_t.copy()
            return StepDecision(y_t, np.zeros(y_t.shape, dtype=bool))
        denom = np.maximum(np.abs(y_t), _DENOM_FLOOR)
        delta = np.abs(y_t - self._y_m) / denom
        reuse = delta <= self.theta
        outputs = np.where(reuse, self._y_m, y_t)
        self._y_m = np.where(reuse, self._y_m, y_t)
        return StepDecision(outputs, reuse)


class BNNGatePredictor(GatePredictor):
    """Figure 10: the BNN-based predictor with throttling.

    State per neuron (Equations 12-17):

    - ``y_m``  — memoized full-precision pre-activation,
    - ``y_b_m`` — memoized binary output (updated only on full evals),
    - ``delta`` — accumulated relative binary change since the last full
      evaluation.  With ``throttle=False`` the accumulator is replaced by
      the instantaneous ``epsilon`` (the ablation of Figure 11).
    """

    def __init__(
        self,
        binary_gate: BinaryGate,
        theta: float,
        throttle: bool = True,
    ):
        if theta < 0:
            raise ValueError("theta must be non-negative")
        self.gate = binary_gate
        self.theta = theta
        self.throttle = throttle
        self._y_m: Optional[Array] = None
        self._y_b_m: Optional[Array] = None
        self._delta: Optional[Array] = None

    def begin_sequence(self, batch: int) -> None:
        self._y_m = None
        self._y_b_m = None
        self._delta = None

    def step(self, x: Array, h: Array, compute_full: ComputeFull) -> StepDecision:
        y_b = self.gate.evaluate(x, h).astype(np.float64)
        if self._y_m is None:
            y_t = compute_full()
            self._y_m = y_t.copy()
            self._y_b_m = y_b.copy()
            self._delta = np.zeros_like(y_b)
            return StepDecision(y_t, np.zeros(y_t.shape, dtype=bool))

        # Eq. 12: relative difference between current and memoized binary
        # outputs.  A zero binary output cannot be compared relatively;
        # treat an exact match as zero change, anything else as "changed".
        diff = np.abs(y_b - self._y_b_m)
        denom = np.abs(y_b)
        epsilon = np.where(
            diff == 0.0, 0.0, diff / np.maximum(denom, 1.0)
        )
        # Eq. 13: throttling accumulates epsilon across consecutive reuses.
        delta_candidate = self._delta + epsilon if self.throttle else epsilon
        reuse = delta_candidate <= self.theta  # Eq. 14

        y_t = compute_full()
        outputs = np.where(reuse, self._y_m, y_t)
        # Eq. 15-17: full evaluations refresh the memo and clear delta;
        # reuses keep the memo and carry the accumulated delta.
        self._y_m = np.where(reuse, self._y_m, y_t)
        self._y_b_m = np.where(reuse, self._y_b_m, y_b)
        self._delta = np.where(reuse, delta_candidate, 0.0)
        return StepDecision(outputs, reuse)


class InputSimilarityGatePredictor(GatePredictor):
    """Ablation: reuse when the gate *input* vector barely changed.

    The decision is per gate (all neurons share the input), computed as
    the L1 relative change of the concatenated operand ``[x ; h]`` against
    the operand memoized at the last full evaluation.  Small input changes
    multiplied by large weights still flip outputs — the failure mode the
    paper calls out — so this predictor trades accuracy for reuse much
    worse than the BNN, which the ablation bench demonstrates.
    """

    def __init__(self, theta: float, neurons: int):
        if theta < 0:
            raise ValueError("theta must be non-negative")
        if neurons <= 0:
            raise ValueError("neurons must be positive")
        self.theta = theta
        self.neurons = neurons
        self._y_m: Optional[Array] = None
        self._u_m: Optional[Array] = None

    def begin_sequence(self, batch: int) -> None:
        self._y_m = None
        self._u_m = None

    def step(self, x: Array, h: Array, compute_full: ComputeFull) -> StepDecision:
        operand = np.concatenate([x, h], axis=-1)
        if self._y_m is None:
            y_t = compute_full()
            self._y_m = y_t.copy()
            self._u_m = operand.copy()
            return StepDecision(y_t, np.zeros(y_t.shape, dtype=bool))
        num = np.abs(operand - self._u_m).sum(axis=-1)
        den = np.maximum(np.abs(operand).sum(axis=-1), _DENOM_FLOOR)
        change = num / den  # (B,)
        reuse_rows = change <= self.theta
        reuse = np.repeat(reuse_rows[:, None], self.neurons, axis=1)
        y_t = compute_full()
        outputs = np.where(reuse, self._y_m, y_t)
        self._y_m = np.where(reuse, self._y_m, y_t)
        self._u_m = np.where(reuse_rows[:, None], self._u_m, operand)
        return StepDecision(outputs, reuse)
