"""Memoization predictors: who decides when a neuron's cached output is
reused.

Three predictors are implemented:

- :class:`OracleGatePredictor` — the idealised predictor of Figure 6
  (Equations 9-11): it knows the true current output and reuses whenever
  the true relative error is under the threshold.  It upper-bounds what
  any practical predictor can achieve.
- :class:`BNNGatePredictor` — the paper's contribution (Figure 10,
  Equations 12-17): a binary mirror of the gate is always evaluated, and
  the *accumulated* relative change of the binary output since the last
  full evaluation (the throttling mechanism, Eq. 13) gates reuse.
- :class:`InputSimilarityGatePredictor` — the strawman discussed in the
  introduction: reuse when the gate's *input* changed little.  It ignores
  the weights, which is exactly why the paper rejects it.

The core contract is :meth:`GatePredictor.predict_many`: one vectorized
call covering every neuron of a gate phase (and every sequence in the
batch) that returns a boolean reuse mask.  The engine feeds it
pre-packed uint64 sign words (for the BNN), the raw operand (for the
input-similarity strawman) or the current/memoized pre-activations (for
the oracle); predictors own only their *decision* state, while the memo
tables live with the engine (:class:`repro.core.memo.MemoTable`).

The single-row :meth:`GatePredictor.predict` and the legacy
:meth:`GatePredictor.step` closure interface remain as thin wrappers
around ``predict_many`` so existing call sites keep working; both are
deprecated in favour of the batched call.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, FrozenSet, Optional

import numpy as np

from repro.core.bnn import BinaryGate

Array = np.ndarray
ComputeFull = Callable[[], Array]

#: Relative-error floor: |denominator| values below this are treated as
#: "output too small to compare", forcing a full evaluation.
_DENOM_FLOOR = 1e-12


@dataclass
class StepDecision:
    """Result of one predictor step for one gate.

    Attributes:
        outputs: the gate pre-activations to use, shape ``(B, H)`` —
            memoized values where reused, fresh values elsewhere.
        reuse_mask: boolean ``(B, H)``; True where the cached value was
            reused (i.e. the full-precision evaluation was avoided).
    """

    outputs: Array
    reuse_mask: Array


class GatePredictor(ABC):
    """Reuse decision-maker for one gate (or one stacked gate phase).

    Subclasses implement :meth:`predict_many` — the vectorized contract —
    and declare in ``REQUIRES`` which inputs they consume so callers only
    materialise what is needed:

    - ``"packed"``: uint64-packed sign words of the operand ``[x ; h]``
      (see :func:`repro.core.binarization.pack_signs`),
    - ``"operand"``: the raw concatenated operand itself.

    The true pre-activations (``preacts``) and the engine-held memo
    (``memo``) are always offered; only the oracle may base its decision
    on them.
    """

    #: Which operand forms :meth:`predict_many` consumes.
    REQUIRES: FrozenSet[str] = frozenset()

    theta: float

    _memo: Optional[Array] = None

    def begin_sequence(self, batch: int) -> None:
        """Reset all memoization state for a new batch of sequences."""
        self._memo = None
        self._reset(batch)

    def _reset(self, batch: int) -> None:
        """Clear subclass decision state; default no-op."""

    @abstractmethod
    def predict_many(
        self,
        packed_signs: Optional[Array] = None,
        *,
        preacts: Optional[Array] = None,
        operand: Optional[Array] = None,
        memo: Optional[Array] = None,
    ) -> Array:
        """Vectorized reuse decision for one timestep.

        Args:
            packed_signs: ``(B, W)`` uint64 sign words of the operand —
                required iff ``"packed" in REQUIRES`` (the BNN falls back
                to ``operand`` when absent).
            preacts: the true pre-activations ``(B, N)``.  Practical
                predictors must ignore it; the oracle thresholds on it.
            operand: the raw concatenated operand ``(B, D)`` — required
                iff ``"operand" in REQUIRES``.
            memo: the engine-held memoized pre-activations, or ``None``
                on the first timestep of a sequence.

        Returns:
            Boolean reuse mask ``(B, N)``; all-False on the first call
            after :meth:`begin_sequence` (nothing is memoized yet).
        """

    def predict(
        self,
        packed_signs: Optional[Array] = None,
        *,
        preacts: Optional[Array] = None,
        operand: Optional[Array] = None,
        memo: Optional[Array] = None,
    ) -> Array:
        """Single-row convenience wrapper around :meth:`predict_many`.

        .. deprecated:: PR6
            Kept for scalar call sites and tests; new code should batch
            decisions through :meth:`predict_many`.
        """
        warnings.warn(
            "GatePredictor.predict is deprecated since PR6; batch "
            "decisions through predict_many instead",
            DeprecationWarning,
            stacklevel=2,
        )

        def lift(a: Optional[Array]) -> Optional[Array]:
            return None if a is None else np.asarray(a)[None, ...]

        mask = self.predict_many(
            lift(packed_signs),
            preacts=lift(preacts),
            operand=lift(operand),
            memo=lift(memo),
        )
        return mask[0]

    def step(self, x: Array, h: Array, compute_full: ComputeFull) -> StepDecision:
        """Legacy closure interface: decide reuse for one gate timestep.

        .. deprecated:: PR6
            The scalar reference path.  It owns a private memo (the
            vectorized engine keeps memo tables outside the predictor)
            and is bitwise identical to the batched path.

        Args:
            x: the gate's forward operand ``(B, E)``.
            h: the gate's recurrent operand ``(B, R)``.
            compute_full: computes the true pre-activations ``(B, H)``.
                The functional simulator may call it even for reused
                neurons (cost accounting is logical, via ``reuse_mask``),
                but a predictor must treat its result as unavailable when
                deciding — only the oracle may peek.
        """
        warnings.warn(
            "GatePredictor.step is deprecated since PR6; batch decisions "
            "through predict_many instead",
            DeprecationWarning,
            stacklevel=2,
        )
        y_t = compute_full()
        operand = None
        if self.REQUIRES:
            operand = np.concatenate([np.asarray(x), np.asarray(h)], axis=-1)
        mask = self.predict_many(operand=operand, preacts=y_t, memo=self._memo)
        if self._memo is None:
            self._memo = y_t.copy()
            return StepDecision(y_t, np.zeros(y_t.shape, dtype=bool))
        outputs = np.where(mask, self._memo, y_t)
        self._memo = outputs
        return StepDecision(outputs, mask)


class OracleGatePredictor(GatePredictor):
    """Figure 6: reuse when the *true* relative output error is <= theta.

    ``delta = |(y_t - y_m) / y_t|``; reuse keeps ``y_m`` unchanged, a full
    evaluation replaces it (Equations 9-11).  No accumulation is applied —
    the oracle already sees the true drift.  Stateless beyond the memo:
    the decision is a pure function of ``(preacts, memo)``.
    """

    def __init__(self, theta: float):
        if theta < 0:
            raise ValueError("theta must be non-negative")
        self.theta = theta

    def predict_many(
        self,
        packed_signs: Optional[Array] = None,
        *,
        preacts: Optional[Array] = None,
        operand: Optional[Array] = None,
        memo: Optional[Array] = None,
    ) -> Array:
        if preacts is None:
            raise ValueError("oracle prediction requires the true preacts")
        if memo is None:
            return np.zeros(preacts.shape, dtype=bool)
        denom = np.maximum(np.abs(preacts), _DENOM_FLOOR)
        delta = np.abs(preacts - memo) / denom
        return delta <= self.theta


class BNNGatePredictor(GatePredictor):
    """Figure 10: the BNN-based predictor with throttling.

    State per neuron (Equations 12-17):

    - ``y_b_m`` — memoized binary output (updated only on full evals),
    - ``delta`` — accumulated relative binary change since the last full
      evaluation.  With ``throttle=False`` the accumulator is replaced by
      the instantaneous ``epsilon`` (the ablation of Figure 11).

    The vectorized fast path feeds :meth:`predict_many` pre-packed uint64
    sign words so the binary mirror is a XNOR/popcount over whole gate
    phases; the legacy path reuses the mirror's matmul or packed kernel
    per :class:`repro.core.bnn.BinaryGate` configuration.
    """

    REQUIRES = frozenset({"packed"})

    def __init__(
        self,
        binary_gate: BinaryGate,
        theta: float,
        throttle: bool = True,
    ):
        if theta < 0:
            raise ValueError("theta must be non-negative")
        self.gate = binary_gate
        self.theta = theta
        self.throttle = throttle
        self._y_b_m: Optional[Array] = None
        self._delta: Optional[Array] = None
        self._scratch: Optional[Array] = None

    def _reset(self, batch: int) -> None:
        self._y_b_m = None
        self._delta = None
        self._scratch = None

    def predict_many(
        self,
        packed_signs: Optional[Array] = None,
        *,
        preacts: Optional[Array] = None,
        operand: Optional[Array] = None,
        memo: Optional[Array] = None,
    ) -> Array:
        if packed_signs is not None:
            y_b = self.gate.evaluate_packed(packed_signs)
        elif operand is not None:
            y_b = self.gate.evaluate_operand(operand)
        else:
            raise ValueError("BNN prediction requires packed signs or the operand")
        if self._y_b_m is None:
            self._y_b_m = y_b.astype(np.float64)
            self._delta = np.zeros(y_b.shape)
            self._scratch = np.empty(y_b.shape)
            return np.zeros(y_b.shape, dtype=bool)

        # Eq. 12: relative difference between current and memoized binary
        # outputs.  The denominator is floored at 1 (binary outputs are
        # integers), which also makes an exact match yield exactly zero
        # change — a zero binary output cannot be compared relatively.
        diff = np.subtract(y_b, self._y_b_m, out=self._scratch)
        np.abs(diff, out=diff)
        epsilon = diff / np.maximum(np.abs(y_b), 1)
        # Eq. 13: throttling accumulates epsilon across consecutive reuses.
        if self.throttle:
            delta_candidate = np.add(self._delta, epsilon, out=self._delta)
        else:
            delta_candidate = epsilon
        reuse = delta_candidate <= self.theta  # Eq. 14
        fresh = ~reuse
        # Eq. 15-17: full evaluations refresh the binary memo and clear
        # delta; reuses keep the memo and carry the accumulated delta.
        np.copyto(self._y_b_m, y_b, where=fresh)
        if self.throttle:
            np.copyto(self._delta, 0.0, where=fresh)
        return reuse


class InputSimilarityGatePredictor(GatePredictor):
    """Ablation: reuse when the gate *input* vector barely changed.

    The decision is per gate (all neurons share the input), computed as
    the L1 relative change of the concatenated operand ``[x ; h]`` against
    the operand memoized at the last full evaluation.  Small input changes
    multiplied by large weights still flip outputs — the failure mode the
    paper calls out — so this predictor trades accuracy for reuse much
    worse than the BNN, which the ablation bench demonstrates.
    """

    REQUIRES = frozenset({"operand"})

    def __init__(self, theta: float, neurons: int):
        if theta < 0:
            raise ValueError("theta must be non-negative")
        if neurons <= 0:
            raise ValueError("neurons must be positive")
        self.theta = theta
        self.neurons = neurons
        self._u_m: Optional[Array] = None

    def _reset(self, batch: int) -> None:
        self._u_m = None

    def predict_many(
        self,
        packed_signs: Optional[Array] = None,
        *,
        preacts: Optional[Array] = None,
        operand: Optional[Array] = None,
        memo: Optional[Array] = None,
    ) -> Array:
        if operand is None:
            raise ValueError("input-similarity prediction requires the operand")
        if self._u_m is None:
            self._u_m = operand.copy()
            return np.zeros((operand.shape[0], self.neurons), dtype=bool)
        num = np.abs(operand - self._u_m).sum(axis=-1)
        den = np.maximum(np.abs(operand).sum(axis=-1), _DENOM_FLOOR)
        change = num / den  # (B,)
        reuse_rows = change <= self.theta
        self._u_m = np.where(reuse_rows[:, None], self._u_m, operand)
        return np.repeat(reuse_rows[:, None], self.neurons, axis=1)
