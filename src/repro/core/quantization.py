"""Linear quantization of weights and activations (paper §2.2).

E-PUR computes in FP16/FP32, and the paper's related work reduces memory
footprint with linear quantization.  This module provides the two
quantizers the reproduction uses:

- :func:`quantize_fp16` — round weights through IEEE half precision,
  modelling E-PUR's 16-bit weight storage;
- :class:`LinearQuantizer` — symmetric ``int-N`` linear quantization
  (the scheme in [20, 34] of the paper) with explicit scale handling,
  used by the quantization ablation to show the memoization scheme is
  orthogonal to weight quantization.

``quantize_module`` applies either to every parameter of a
:class:`~repro.nn.module.Module` tree in place (values stay float64 —
the *quantization error* is what matters to the study, not the storage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.nn.module import Module

Array = np.ndarray


def quantize_fp16(values: Array) -> Array:
    """Round through IEEE binary16 and back to float64."""
    return np.asarray(values, dtype=np.float64).astype(np.float16).astype(
        np.float64
    )


@dataclass(frozen=True)
class LinearQuantizer:
    """Symmetric linear quantizer to ``bits``-wide signed integers.

    ``q = clip(round(x / scale), -2^{b-1}+1, 2^{b-1}-1)``; the scale is
    chosen per tensor from its max magnitude (the common post-training
    scheme).  ``dequantize(quantize(x))`` is the value actually used in
    computation.
    """

    bits: int = 8

    def __post_init__(self):
        if not 2 <= self.bits <= 16:
            raise ValueError("bits must be in [2, 16]")

    @property
    def q_max(self) -> int:
        return 2 ** (self.bits - 1) - 1

    def scale_for(self, values: Array) -> float:
        """Per-tensor scale; a zero tensor gets a unit scale."""
        magnitude = float(np.max(np.abs(values))) if np.asarray(values).size else 0.0
        if magnitude == 0.0:
            return 1.0
        return magnitude / self.q_max

    def quantize(self, values: Array) -> Array:
        """Integer codes (int32) for ``values``."""
        scale = self.scale_for(values)
        codes = np.round(np.asarray(values, dtype=np.float64) / scale)
        return np.clip(codes, -self.q_max, self.q_max).astype(np.int32)

    def dequantize(self, codes: Array, scale: float) -> Array:
        return np.asarray(codes, dtype=np.float64) * scale

    def roundtrip(self, values: Array) -> Array:
        """The dequantized view of ``values`` (what inference computes on)."""
        scale = self.scale_for(values)
        return self.dequantize(self.quantize(values), scale)

    def quantization_error(self, values: Array) -> float:
        """RMS error introduced by the roundtrip."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return 0.0
        diff = values - self.roundtrip(values)
        return float(np.sqrt(np.mean(diff * diff)))


def quantize_module(module: Module, scheme: str = "fp16", bits: int = 8) -> Dict[str, float]:
    """Quantize every parameter of ``module`` in place.

    Args:
        scheme: ``"fp16"`` or ``"linear"`` (symmetric int-``bits``).
        bits: integer width for the linear scheme.

    Returns:
        Per-parameter RMS quantization error, keyed by dotted name.

    Raises:
        ValueError: for an unknown scheme.
    """
    if scheme == "fp16":
        transform = quantize_fp16
    elif scheme == "linear":
        quantizer = LinearQuantizer(bits=bits)
        transform = quantizer.roundtrip
    else:
        raise ValueError(f"unknown quantization scheme {scheme!r}")

    errors: Dict[str, float] = {}
    for name, param in module.named_parameters():
        original = param.value
        quantized = transform(original)
        diff = original - quantized
        errors[name] = float(np.sqrt(np.mean(diff * diff))) if diff.size else 0.0
        param.value = quantized
    return errors
