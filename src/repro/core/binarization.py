"""Sign binarization and binary dot products (paper Equations 7 and 8).

Two functionally identical evaluation paths are provided:

- a ±1 int8 matmul (``binary_dot``), the clearest reference; and
- a bit-packed XNOR/popcount path (``pack_signs`` + ``binary_dot_packed``)
  mirroring what the hardware FMU's BDPU actually does: multiply of
  binarized operands is XNOR, the reduction is a popcount adder tree, and
  the signed dot product is recovered as ``n - 2 * popcount(xor)``.

Sign bits are packed into ``uint64`` machine words so a whole gate phase
(every gate of an LSTM/GRU cell, stacked) reduces to a handful of XOR +
popcount operations per neuron — this is the compute path behind the
vectorized memoization engine, and the reason the BNN predictor costs a
popcount rather than an integer matmul.

The test suite asserts both paths agree bit-exactly on random inputs,
including widths that are not multiples of the word size.
"""

from __future__ import annotations

import numpy as np

Array = np.ndarray

#: Width of the packing words.  The FMU's BDPU operates on 2048-bit rows,
#: i.e. 32 of these 64-bit lanes.
_WORD_BITS = 64

#: uint8 bytes per packed word (``np.packbits`` emits bytes; groups of
#: eight bytes are reinterpreted as one ``uint64`` lane).
_BYTES_PER_WORD = _WORD_BITS // 8


def binarize(x: Array) -> Array:
    """Eq. 7: ``+1 if x >= 0 else -1``, as int8."""
    x = np.asarray(x)
    return np.where(x >= 0, 1, -1).astype(np.int8)


def binarize_bits(x: Array) -> Array:
    """Eq. 7 with the hardware storage convention: ``+1 -> 1``, ``-1 -> 0``."""
    x = np.asarray(x)
    return (x >= 0).astype(np.uint8)


def binary_dot(w_bin: Array, x_bin: Array) -> Array:
    """Eq. 8 reference path: integer dot product of ±1 operands.

    Args:
        w_bin: ``(H, D)`` ±1 weights (one row per neuron).
        x_bin: ``(D,)`` or ``(B, D)`` ±1 inputs.

    Returns:
        ``(H,)`` or ``(B, H)`` int32 dot products.
    """
    w_bin = np.asarray(w_bin, dtype=np.int32)
    x_bin = np.asarray(x_bin, dtype=np.int32)
    if x_bin.ndim == 1:
        return w_bin @ x_bin
    return x_bin @ w_bin.T


def pack_signs(x: Array) -> Array:
    """Pack sign bits of ``x`` along the last axis into uint64 words.

    The last axis is padded with zero-bits up to a multiple of 64 (the
    packed dot product corrects for padding via the true bit length).
    Both operands of :func:`binary_dot_packed` must be packed by this
    function: the byte order inside each word is platform-native, which
    cancels in XOR/popcount as long as the two sides agree.
    """
    bits = binarize_bits(x)
    packed = np.packbits(bits, axis=-1)
    remainder = packed.shape[-1] % _BYTES_PER_WORD
    if remainder:
        pad_shape = packed.shape[:-1] + (_BYTES_PER_WORD - remainder,)
        packed = np.concatenate(
            [packed, np.zeros(pad_shape, dtype=np.uint8)], axis=-1
        )
    if not packed.flags["C_CONTIGUOUS"]:
        packed = np.ascontiguousarray(packed)
    return packed.view(np.uint64)


def binary_dot_packed(w_packed: Array, x_packed: Array, n_bits: int) -> Array:
    """Eq. 8 hardware path: XNOR + popcount on packed sign bits.

    ``dot = n_bits - 2 * popcount(w XOR x)`` over the true ``n_bits`` lane
    width.  Padding bits cancel because both operands pad with 0 (XOR of
    equal pads is 0, contributing nothing to the popcount).  The result is
    the exact same integer the ±1 matmul produces, at a fraction of the
    cost: each 64 operand lanes cost one XOR and one popcount.

    Args:
        w_packed: ``(H, W)`` packed weight signs (uint64 words).
        x_packed: ``(W,)`` or ``(B, W)`` packed input signs.
        n_bits: the unpadded operand length D.
    """
    w_packed = np.asarray(w_packed, dtype=np.uint64)
    x_packed = np.asarray(x_packed, dtype=np.uint64)
    if x_packed.ndim == 1:
        xor = np.bitwise_xor(w_packed, x_packed[None, :])
        mismatches = np.bitwise_count(xor).sum(axis=-1, dtype=np.int64)
        return (n_bits - 2 * mismatches).astype(np.int32)
    xor = np.bitwise_xor(w_packed[None, :, :], x_packed[:, None, :])
    mismatches = np.bitwise_count(xor).sum(axis=-1, dtype=np.int64)
    return (n_bits - 2 * mismatches).astype(np.int32)


def padded_bit_length(n_bits: int) -> int:
    """Number of bits actually stored after packing ``n_bits`` lanes."""
    if n_bits <= 0:
        raise ValueError("n_bits must be positive")
    words = (n_bits + _WORD_BITS - 1) // _WORD_BITS
    return words * _WORD_BITS
