"""The memoization engine: configure a scheme, apply it to a whole model.

The entry points are :class:`MemoizationScheme` (which predictor, what
threshold, throttling on/off) and :func:`memoized` — a context manager
that walks any :class:`~repro.nn.module.Module` tree, swaps every
recurrent layer for its memoized wrapper, and restores the originals on
exit.  Model evaluation code does not change at all::

    stats = ReuseStats()
    with memoized(model, MemoizationScheme(theta=0.05), stats):
        metric = evaluate(model, test_set)
    print(stats.reuse_percent())
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.bnn import BinaryGate
from repro.core.layers import WRAPPABLE, wrap_layer
from repro.core.predictors import (
    BNNGatePredictor,
    GatePredictor,
    InputSimilarityGatePredictor,
    OracleGatePredictor,
)
from repro.core.stats import ReuseStats
from repro.nn.module import Module

Array = np.ndarray

PREDICTOR_KINDS = ("bnn", "oracle", "input")


@dataclass(frozen=True)
class MemoizationScheme:
    """Configuration of the fuzzy-memoization scheme.

    Attributes:
        theta: the reuse threshold (the paper's key knob; §3.2.1).
        predictor: one of :data:`PREDICTOR_KINDS` — ``"bnn"`` (the
            contribution), ``"oracle"`` (upper bound), or ``"input"``
            (input-similarity strawman).  Unknown kinds are rejected
            with a :class:`ValueError` at construction time.
        throttle: accumulate relative differences across consecutive
            reuses (Eq. 13).  Only meaningful for the BNN predictor.
        use_packed: evaluate BNNs with the XNOR/popcount bit-packed path.
        vectorized: route timesteps through the batched fast path — one
            phase-level predictor over stacked gate weights, uint64
            packed sign words, contiguous memo tables.  ``False``
            selects the per-gate scalar reference path.  Results are
            bitwise identical either way (the equivalence suites pin
            this), so the flag does not enter cache keys.
        layer_thetas: optional per-layer threshold overrides, keyed by
            the dotted layer name seen in :class:`ReuseStats` (an
            extension beyond the paper's single global threshold; see
            ``calibrate_per_layer``).
    """

    theta: float = 0.05
    predictor: str = "bnn"
    throttle: bool = True
    use_packed: bool = False
    vectorized: bool = True
    layer_thetas: Optional[Mapping[str, float]] = None

    def __post_init__(self):
        # math.isfinite rejects NaN too, which `< 0` would wave through
        # (every comparison against NaN is False) — a NaN threshold makes
        # each reuse test silently false, a live-retune footgun.
        if not math.isfinite(self.theta) or self.theta < 0:
            raise ValueError("theta must be a finite non-negative number")
        if self.predictor not in PREDICTOR_KINDS:
            raise ValueError(
                f"predictor must be one of {PREDICTOR_KINDS}, got "
                f"{self.predictor!r}"
            )
        if self.layer_thetas is not None and any(
            not math.isfinite(value) or value < 0
            for value in self.layer_thetas.values()
        ):
            raise ValueError(
                "layer thresholds must be finite non-negative numbers"
            )

    def with_theta(self, theta: float) -> "MemoizationScheme":
        """Copy of the scheme at a different global threshold."""
        return replace(self, theta=theta)

    def with_layer_thetas(
        self, layer_thetas: Mapping[str, float]
    ) -> "MemoizationScheme":
        """Copy of the scheme with per-layer threshold overrides."""
        return replace(self, layer_thetas=dict(layer_thetas))

    def theta_for(self, layer_name: str) -> float:
        """Effective threshold for a (dotted) layer name."""
        if self.layer_thetas is None:
            return self.theta
        return self.layer_thetas.get(layer_name, self.theta)

    def make_predictor(self, w_x: Array, w_h: Array) -> GatePredictor:
        """Build the predictor for a gate (or stacked gate phase).

        The vectorized engine passes the stacked weights of a whole
        phase; the scalar path passes one gate's weights.  Either way
        the predictor covers ``w_x.shape[0]`` neurons.

        Raises:
            ValueError: if ``predictor`` is not in :data:`PREDICTOR_KINDS`
                (defensive re-check; construction already validates).
        """
        if self.predictor == "oracle":
            return OracleGatePredictor(self.theta)
        if self.predictor == "input":
            return InputSimilarityGatePredictor(self.theta, neurons=w_x.shape[0])
        if self.predictor == "bnn":
            gate = BinaryGate(w_x, w_h, use_packed=self.use_packed)
            return BNNGatePredictor(gate, self.theta, throttle=self.throttle)
        raise ValueError(
            f"predictor must be one of {PREDICTOR_KINDS}, got "
            f"{self.predictor!r}"
        )


@dataclass
class _Replacement:
    parent: Module
    attr: str
    original: object


def _iter_recurrent_children(
    module: Module, prefix: str = ""
) -> Iterator[Tuple[Module, str, object, str]]:
    """Yield ``(parent, attr, layer, dotted_name)`` for wrappable layers."""
    for attr, child in list(module._children.items()):
        dotted = f"{prefix}{attr}"
        if isinstance(child, tuple(WRAPPABLE)):
            yield module, attr, child, dotted
        else:
            yield from _iter_recurrent_children(child, prefix=f"{dotted}.")


def iter_recurrent_layers(model: Module) -> Iterator[Tuple[object, str]]:
    """Yield ``(layer, dotted_name)`` for every wrappable layer in walk
    order — the public face of the engine's wrapping walk, for callers
    (like the serving tier) that build their own wrappers over a model's
    recurrent layers without swapping them in place."""
    for _, _, layer, dotted in _iter_recurrent_children(model):
        yield layer, dotted


def apply_memoization(
    model: Module, scheme: MemoizationScheme, stats: ReuseStats
) -> List[_Replacement]:
    """Swap every recurrent layer in ``model`` for a memoized wrapper.

    Returns the replacement records needed by :func:`restore`.

    The walk is atomic: if wrapping any layer fails (a bad per-layer
    threshold, a predictor construction error), every layer already
    swapped is restored before the exception propagates, so a failed
    application never leaves the model half-memoized.

    Raises:
        ValueError: if the model contains no recurrent layers.
    """
    replacements: List[_Replacement] = []
    try:
        for parent, attr, layer, dotted in _iter_recurrent_children(model):
            layer_scheme = scheme.with_theta(scheme.theta_for(dotted))
            wrapper = wrap_layer(
                layer,
                layer_scheme.make_predictor,
                stats,
                name=dotted,
                vectorized=scheme.vectorized,
            )
            replacements.append(_Replacement(parent, attr, layer))
            # The wrapper is not a Module; remove the child registration so
            # parameter traversal still sees the original weights through the
            # record we keep, then restore re-registers the layer.
            del parent._children[attr]
            object.__setattr__(parent, attr, wrapper)
    except Exception:
        restore(replacements)
        raise
    if not replacements:
        raise ValueError("model contains no recurrent layers to memoize")
    return replacements


def restore(replacements: List[_Replacement]) -> None:
    """Undo :func:`apply_memoization`.

    Re-registering a layer appends it to the parent's child registry, so
    a naive undo would leave ``_children`` (and with it walk order,
    ``named_parameters`` order, and any wrapper built from a later walk)
    permanently reordered after a wrap/restore round trip.  The
    attribute ``__dict__`` keeps its insertion order through the swap —
    wrapping overwrites keys in place — so it is the authority we rebuild
    each touched registry against.
    """
    for record in reversed(replacements):
        setattr(record.parent, record.attr, record.original)
    for parent in {id(r.parent): r.parent for r in replacements}.values():
        ordered = {
            name: parent._children[name]
            for name in vars(parent)
            if name in parent._children
        }
        parent._children.clear()
        parent._children.update(ordered)


def swap_scheme(
    model: Module,
    replacements: List[_Replacement],
    old_scheme: MemoizationScheme,
    new_scheme: MemoizationScheme,
    stats: ReuseStats,
) -> List[_Replacement]:
    """Atomically re-wrap a memoized ``model`` under ``new_scheme``.

    The live-retuning primitive behind ``repro serve``'s theta endpoint:
    ``model`` must currently be wrapped (``replacements`` from the
    earlier :func:`apply_memoization` under ``old_scheme``).  On success
    the fresh replacement records are returned *and* ``replacements`` is
    updated in place, so the caller's handle stays valid either way.  If
    wrapping under ``new_scheme`` fails, the model is re-wrapped under
    ``old_scheme`` and the original exception re-raised — a failed
    retune never leaves the model unwrapped or half-wrapped.
    """
    restore(replacements)
    try:
        fresh = apply_memoization(model, new_scheme, stats)
    except Exception:
        replacements[:] = apply_memoization(model, old_scheme, stats)
        raise
    replacements[:] = fresh
    return replacements


@contextmanager
def memoized(model: Module, scheme: MemoizationScheme, stats: ReuseStats):
    """Context manager: run ``model`` under fuzzy memoization.

    Within the block every recurrent layer routes its gate dot products
    through the scheme's predictor and records decisions into ``stats``.
    """
    replacements = apply_memoization(model, scheme, stats)
    try:
        yield stats
    finally:
        restore(replacements)
