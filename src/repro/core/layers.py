"""Memoized drop-in replacement for the recurrent layers.

:class:`MemoizedRecurrentLayer` shares the wrapped layer's cell (and
therefore its weights) and reproduces its forward contract, but routes
every gate pre-activation through the memoization machinery.  It is the
engine's :class:`~repro.nn.cells.MemoHook`: the cell's ``step_hooked``
offers each gate phase's batched ``(B, G*H)`` pre-activation matrix, the
hook decides reuse for all gates and neurons at once, substitutes
memoized values, and records the decisions into a
:class:`~repro.core.stats.ReuseStats`.

Two modes share the class:

- *vectorized* (default) — one phase-level predictor built from the
  stacked gate weights, one packed sign evaluation and one
  :class:`~repro.core.memo.MemoTable` update per phase.  This is the
  fast path pinned by ``BENCH_eval.json``.
- *scalar* — the per-gate reference path: one predictor per gate driven
  through the legacy :meth:`~repro.core.predictors.GatePredictor.step`
  closure interface.  Kept as the bitwise baseline the equivalence
  suites compare against.

Because every cell is a :class:`~repro.nn.cells.GatedCell`, nothing here
special-cases LSTM vs GRU vs vanilla RNN — the phase decomposition
(``PHASES``) carries all cell-specific structure, including the GRU
candidate gate's reset-gated operand.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, List

import numpy as np

from repro.core.binarization import pack_signs
from repro.obs import profiler as _profiler
from repro.core.memo import MemoTable
from repro.core.predictors import GatePredictor
from repro.core.stats import ReuseStats
from repro.nn.cells import GatedCell, GatePhase
from repro.nn.gru import GRULayer
from repro.nn.lstm import LSTMLayer
from repro.nn.rnn import RNNLayer

Array = np.ndarray
PredictorFactory = Callable[[Array, Array], GatePredictor]


class MemoizedRecurrentLayer:
    """Any :class:`~repro.nn.cells.GatedCell` layer evaluated under
    neuron-level fuzzy memoization.

    For multi-phase cells (GRU) each phase gets its own predictor and
    memo table, and each predictor sees the operand the hardware FMU
    would: the candidate gate's concatenated vector is built after the
    reset gate is resolved.
    """

    def __init__(
        self,
        layer,
        predictor_factory: PredictorFactory,
        stats: ReuseStats,
        name: str = "rnn",
        vectorized: bool = True,
    ):
        self.layer = layer
        self.cell: GatedCell = layer.cell
        self.input_size = layer.input_size
        self.hidden_size = layer.hidden_size
        self.stats = stats
        self.name = name
        self.vectorized = vectorized
        if vectorized:
            #: One predictor + memo table per gate phase, indexed by
            #: ``phase.index``; the predictor covers the stacked weights
            #: of every gate in the phase.
            self._phase_predictors: List[GatePredictor] = []
            self._tables: List[MemoTable] = []
            for phase in self.cell.PHASES:
                w_x, w_h = self.cell.stacked_gate_weights(phase.gates)
                self._phase_predictors.append(predictor_factory(w_x, w_h))
                self._tables.append(
                    MemoTable(w_x.shape[0], profile_key=(name, phase.index))
                )
        else:
            self._predictors: Dict[str, GatePredictor] = {}
            for gate in self.cell.gate_names:
                w_x, w_h, _ = self.cell.gate_weights(gate)
                self._predictors[gate] = predictor_factory(w_x, w_h)

    # -- sequence lifecycle --------------------------------------------------

    def start_state(self, batch: int):
        """Reset memoization state and return the wrapped layer's state."""
        if self.vectorized:
            for predictor, table in zip(self._phase_predictors, self._tables):
                predictor.begin_sequence(batch)
                table.begin_sequence(batch)
        else:
            for predictor in self._predictors.values():
                predictor.begin_sequence(batch)
        return self.layer.start_state(batch)

    def step(self, x_t: Array, state):
        """One memoized timestep; returns ``(h_t, new_state)``."""
        profiler = _profiler.ACTIVE
        if profiler is None:
            return self.layer.step(x_t, state, hook=self)
        start = perf_counter()
        result = self.layer.step(x_t, state, hook=self)
        profiler.record_step(self.name, perf_counter() - start)
        return result

    # -- MemoHook ------------------------------------------------------------

    def on_gates(
        self,
        cell: GatedCell,
        phase: GatePhase,
        x: Array,
        h: Array,
        preacts: Array,
    ) -> Array:
        if self.vectorized:
            profiler = _profiler.ACTIVE
            if profiler is None:
                return self._on_gates_vectorized(phase, x, h, preacts)
            return self._on_gates_profiled(profiler, phase, x, h, preacts)
        return self._on_gates_scalar(phase, x, h, preacts)

    def _on_gates_vectorized(
        self, phase: GatePhase, x: Array, h: Array, preacts: Array
    ) -> Array:
        predictor = self._phase_predictors[phase.index]
        table = self._tables[phase.index]
        packed = operand = None
        if predictor.REQUIRES:
            operand = np.concatenate([x, h], axis=-1)
            if "packed" in predictor.REQUIRES:
                packed = pack_signs(operand)
                if "operand" not in predictor.REQUIRES:
                    operand = None
        mask = predictor.predict_many(
            packed, preacts=preacts, operand=operand, memo=table.memo
        )
        outputs = table.substitute(mask, preacts)
        hidden = self.hidden_size
        for i, gate in enumerate(phase.gates):
            self.stats.record(self.name, gate, mask[:, i * hidden : (i + 1) * hidden])
        return outputs

    def _on_gates_profiled(
        self,
        profiler: "_profiler.Profiler",
        phase: GatePhase,
        x: Array,
        h: Array,
        preacts: Array,
    ) -> Array:
        """:meth:`_on_gates_vectorized` with per-phase timing fences.

        Mirrors the fast path call-for-call (same operations, same
        order, same arrays) so outputs stay bitwise identical; the only
        additions are ``perf_counter`` fences around the predictor and
        the memo substitution, recorded into ``profiler``.
        """
        predictor = self._phase_predictors[phase.index]
        table = self._tables[phase.index]
        packed = operand = None
        if predictor.REQUIRES:
            operand = np.concatenate([x, h], axis=-1)
            if "packed" in predictor.REQUIRES:
                packed = pack_signs(operand)
                if "operand" not in predictor.REQUIRES:
                    operand = None
        t0 = perf_counter()
        mask = predictor.predict_many(
            packed, preacts=preacts, operand=operand, memo=table.memo
        )
        t1 = perf_counter()
        outputs = table.substitute(mask, preacts)
        t2 = perf_counter()
        hidden = self.hidden_size
        for i, gate in enumerate(phase.gates):
            self.stats.record(self.name, gate, mask[:, i * hidden : (i + 1) * hidden])
        profiler.record_phase(
            self.name,
            phase.index,
            phase.gates,
            predict_s=t1 - t0,
            substitute_s=t2 - t1,
            reused=int(mask.sum()),
            total=mask.size,
        )
        return outputs

    def _on_gates_scalar(
        self, phase: GatePhase, x: Array, h: Array, preacts: Array
    ) -> Array:
        hidden = self.hidden_size
        for i, gate in enumerate(phase.gates):
            block = preacts[:, i * hidden : (i + 1) * hidden]
            decision = self._predictors[gate].step(
                x, h, compute_full=lambda block=block: block
            )
            self.stats.record(self.name, gate, decision.reuse_mask)
            preacts[:, i * hidden : (i + 1) * hidden] = decision.outputs
        return preacts

    # -- forward -------------------------------------------------------------

    def forward(self, x: Array) -> Array:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3:
            raise ValueError(f"expected (B, T, E) input, got shape {x.shape}")
        batch, steps, _ = x.shape
        state = self.start_state(batch)
        outputs = np.empty((batch, steps, self.hidden_size))
        for t in range(steps):
            h, state = self.step(x[:, t, :], state)
            outputs[:, t, :] = h
        return outputs

    __call__ = forward


#: Backwards-compatible aliases: the wrapper is cell-agnostic now.
MemoizedLSTMLayer = MemoizedRecurrentLayer
MemoizedGRULayer = MemoizedRecurrentLayer

#: Types the engine knows how to wrap, with their wrapper classes.
WRAPPABLE = {
    LSTMLayer: MemoizedRecurrentLayer,
    GRULayer: MemoizedRecurrentLayer,
    RNNLayer: MemoizedRecurrentLayer,
}


def wrap_layer(
    layer,
    predictor_factory: PredictorFactory,
    stats: ReuseStats,
    name: str,
    vectorized: bool = True,
    _wrappable=None,
):
    """Wrap a recurrent layer in its memoized counterpart."""
    table = _wrappable or WRAPPABLE
    for layer_type, wrapper in table.items():
        if isinstance(layer, layer_type):
            return wrapper(
                layer, predictor_factory, stats, name=name, vectorized=vectorized
            )
    raise TypeError(f"cannot memoize layer of type {type(layer).__name__}")
