"""Memoized drop-in replacements for the recurrent layers.

Each wrapper shares the wrapped layer's cell (and therefore its weights)
and reproduces its forward contract, but routes every gate's dot product
through a :class:`~repro.core.predictors.GatePredictor`: reused neurons
take their cached pre-activation, the rest are evaluated in full.  Reuse
decisions are recorded into a :class:`~repro.core.stats.ReuseStats`.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.core.predictors import GatePredictor
from repro.core.stats import ReuseStats
from repro.nn.activations import sigmoid
from repro.nn.gru import GRULayer
from repro.nn.lstm import LSTMLayer

Array = np.ndarray
PredictorFactory = Callable[[Array, Array], GatePredictor]


class MemoizedLSTMLayer:
    """An :class:`LSTMLayer` evaluated under neuron-level fuzzy memoization."""

    def __init__(
        self,
        layer: LSTMLayer,
        predictor_factory: PredictorFactory,
        stats: ReuseStats,
        name: str = "lstm",
    ):
        self.layer = layer
        self.cell = layer.cell
        self.input_size = layer.input_size
        self.hidden_size = layer.hidden_size
        self.stats = stats
        self.name = name
        self._predictors = {}
        for gate in self.cell.gate_names:
            w_x, w_h, _ = self.cell.gate_weights(gate)
            self._predictors[gate] = predictor_factory(w_x, w_h)

    def start_state(self, batch: int) -> Tuple[Array, Array]:
        for predictor in self._predictors.values():
            predictor.begin_sequence(batch)
        return self.layer.start_state(batch)

    def step(self, x_t: Array, state: Tuple[Array, Array]) -> Tuple[Array, Tuple]:
        h_prev, c_prev = state
        preacts = {}
        for gate, predictor in self._predictors.items():
            w_x, w_h, _ = self.cell.gate_weights(gate)
            decision = predictor.step(
                x_t,
                h_prev,
                compute_full=lambda w_x=w_x, w_h=w_h: x_t @ w_x.T + h_prev @ w_h.T,
            )
            self.stats.record(self.name, gate, decision.reuse_mask)
            preacts[gate] = decision.outputs
        h, c, _ = self.cell.step(x_t, h_prev, c_prev, preacts=preacts)
        return h, (h, c)

    def forward(self, x: Array) -> Array:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3:
            raise ValueError(f"expected (B, T, E) input, got shape {x.shape}")
        batch, steps, _ = x.shape
        state = self.start_state(batch)
        outputs = np.empty((batch, steps, self.hidden_size))
        for t in range(steps):
            h, state = self.step(x[:, t, :], state)
            outputs[:, t, :] = h
        return outputs

    __call__ = forward


class MemoizedGRULayer:
    """A :class:`GRULayer` evaluated under neuron-level fuzzy memoization.

    The candidate gate's recurrent operand is the reset-gated state
    ``r_t * h_{t-1}``; its predictor therefore sees that operand (both for
    binarization and for input-similarity), exactly as the hardware FMU
    would, since the concatenated vector fed to the binary network is
    built after the reset gate is resolved.
    """

    def __init__(
        self,
        layer: GRULayer,
        predictor_factory: PredictorFactory,
        stats: ReuseStats,
        name: str = "gru",
    ):
        self.layer = layer
        self.cell = layer.cell
        self.input_size = layer.input_size
        self.hidden_size = layer.hidden_size
        self.stats = stats
        self.name = name
        self._predictors = {}
        for gate in self.cell.gate_names:
            w_x, w_h, _ = self.cell.gate_weights(gate)
            self._predictors[gate] = predictor_factory(w_x, w_h)

    def start_state(self, batch: int) -> Array:
        for predictor in self._predictors.values():
            predictor.begin_sequence(batch)
        return self.layer.start_state(batch)

    def step(self, x_t: Array, state: Array) -> Tuple[Array, Array]:
        h_prev = state
        preacts = {}
        for gate in ("z", "r"):
            w_x, w_h, _ = self.cell.gate_weights(gate)
            decision = self._predictors[gate].step(
                x_t,
                h_prev,
                compute_full=lambda w_x=w_x, w_h=w_h: x_t @ w_x.T + h_prev @ w_h.T,
            )
            self.stats.record(self.name, gate, decision.reuse_mask)
            preacts[gate] = decision.outputs

        r = sigmoid(preacts["r"] + self.cell.b_r.value)
        reset_h = r * h_prev
        w_gx, w_gh, _ = self.cell.gate_weights("g")
        decision = self._predictors["g"].step(
            x_t,
            reset_h,
            compute_full=lambda: x_t @ w_gx.T + reset_h @ w_gh.T,
        )
        self.stats.record(self.name, "g", decision.reuse_mask)
        preacts["g"] = decision.outputs

        h, _ = self.cell.step(x_t, h_prev, preacts=preacts)
        return h, h

    def forward(self, x: Array) -> Array:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3:
            raise ValueError(f"expected (B, T, E) input, got shape {x.shape}")
        batch, steps, _ = x.shape
        state = self.start_state(batch)
        outputs = np.empty((batch, steps, self.hidden_size))
        for t in range(steps):
            h, state = self.step(x[:, t, :], state)
            outputs[:, t, :] = h
        return outputs

    __call__ = forward


#: Types the engine knows how to wrap, with their wrapper classes.
WRAPPABLE = {
    LSTMLayer: MemoizedLSTMLayer,
    GRULayer: MemoizedGRULayer,
}


def wrap_layer(
    layer,
    predictor_factory: PredictorFactory,
    stats: ReuseStats,
    name: str,
    _wrappable=None,
):
    """Wrap a recurrent layer in its memoized counterpart."""
    table = _wrappable or WRAPPABLE
    for layer_type, wrapper in table.items():
        if isinstance(layer, layer_type):
            return wrapper(layer, predictor_factory, stats, name=name)
    raise TypeError(f"cannot memoize layer of type {type(layer).__name__}")
