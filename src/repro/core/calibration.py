"""Threshold calibration (paper §3.2.1).

For each network the paper explores thresholds on the *training* set,
measures (accuracy loss, computation reuse) per threshold, then picks the
largest-reuse threshold whose loss stays under the target (1% by
default).  ``calibrate_threshold`` implements exactly that selection, and
``ThresholdSweep`` stores the full exploration so the figure benches can
plot the trade-off curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

#: (accuracy_loss, reuse_fraction) produced by evaluating one threshold.
EvalResult = Tuple[float, float]
EvalFn = Callable[[float], EvalResult]


@dataclass(frozen=True)
class SweepPoint:
    """One explored threshold."""

    theta: float
    loss: float
    reuse: float


@dataclass
class ThresholdSweep:
    """The full exploration record for one network/predictor."""

    points: List[SweepPoint] = field(default_factory=list)

    def add(self, theta: float, loss: float, reuse: float) -> None:
        self.points.append(SweepPoint(theta, loss, reuse))

    @property
    def thetas(self) -> List[float]:
        return [p.theta for p in self.points]

    @property
    def losses(self) -> List[float]:
        return [p.loss for p in self.points]

    @property
    def reuses(self) -> List[float]:
        return [p.reuse for p in self.points]

    def best_under_loss(self, max_loss: float) -> Optional[SweepPoint]:
        """Highest-reuse point whose loss is within ``max_loss``."""
        admissible = [p for p in self.points if p.loss <= max_loss]
        if not admissible:
            return None
        return max(admissible, key=lambda p: p.reuse)

    def reuse_at_loss(self, max_loss: float) -> float:
        """Reuse fraction achievable at ``max_loss`` (0.0 if none)."""
        best = self.best_under_loss(max_loss)
        return best.reuse if best is not None else 0.0


def sweep_thresholds(evaluate: EvalFn, thetas: Sequence[float]) -> ThresholdSweep:
    """Evaluate every threshold in ``thetas``.

    Args:
        evaluate: maps a threshold to ``(accuracy_loss, reuse_fraction)``
            — typically a closure running memoized inference on the
            calibration split.
        thetas: thresholds to explore (the paper uses a grid from 0 to
            ~1 depending on the network).
    """
    if not thetas:
        raise ValueError("thetas must be non-empty")
    sweep = ThresholdSweep()
    for theta in thetas:
        if theta < 0:
            raise ValueError("thresholds must be non-negative")
        loss, reuse = evaluate(theta)
        sweep.add(theta, loss, reuse)
    return sweep


#: evaluate(layer_thetas) -> (loss, reuse) for the per-layer calibrator.
LayerEvalFn = Callable[[dict], EvalResult]


def calibrate_per_layer(
    evaluate: LayerEvalFn,
    layer_names: Sequence[str],
    thetas: Sequence[float],
    max_loss: float = 1.0,
) -> Tuple[dict, EvalResult]:
    """Greedy per-layer threshold calibration (extension beyond §3.2.1).

    The paper uses one global threshold; layers differ in how much drift
    they tolerate (deep layers see slowly-varying hidden states, early
    layers see raw inputs), so a per-layer assignment can reuse more at
    the same loss budget.  Coordinate ascent: starting from the smallest
    threshold everywhere, raise one layer's threshold at a time, keeping
    each raise only if the loss stays within budget.

    Args:
        evaluate: maps a ``{layer: theta}`` dict to ``(loss, reuse)``.
        layer_names: dotted layer names (engine naming).
        thetas: ascending candidate thresholds.

    Returns:
        ``(best_assignment, (loss, reuse) at that assignment)``.
    """
    if not layer_names:
        raise ValueError("need at least one layer")
    if not thetas:
        raise ValueError("thetas must be non-empty")
    grid = sorted(thetas)
    assignment = {name: grid[0] for name in layer_names}
    best = evaluate(dict(assignment))
    for name in layer_names:
        for theta in grid[1:]:
            candidate = dict(assignment)
            candidate[name] = theta
            loss, reuse = evaluate(candidate)
            if loss <= max_loss and reuse >= best[1]:
                assignment = candidate
                best = (loss, reuse)
            elif loss > max_loss:
                break
    return assignment, best


def calibrate_threshold(
    evaluate: EvalFn,
    thetas: Sequence[float],
    max_loss: float = 1.0,
) -> Tuple[float, ThresholdSweep]:
    """§3.2.1: pick the highest-reuse threshold within the loss budget.

    Returns:
        ``(theta, sweep)``.  When no explored threshold satisfies the
        budget, the smallest threshold is returned (the most conservative
        setting), mirroring a deployment that must never exceed the loss
        target.
    """
    sweep = sweep_thresholds(evaluate, thetas)
    best = sweep.best_under_loss(max_loss)
    if best is None:
        return min(thetas), sweep
    return best.theta, sweep
