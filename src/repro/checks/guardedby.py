"""GB01 — guarded-by lock discipline.

An attribute assignment annotated ``# guarded-by: <lockname>`` declares
that every subsequent read or write of ``self.<attr>`` anywhere in the
class must happen inside a ``with self.<lockname>:`` block (including
``with self.<cond>:`` for a Condition, which acquires its lock), or in a
method whose header carries ``# checks: holds-lock <lockname>`` — the
project's convention for helpers documented as "caller holds the lock".

``__init__`` is exempt: construction precedes any sharing with other
threads.  Accesses through receivers other than ``self`` (tests poking
``state.sessions``) are out of scope — the discipline is intra-class.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List

from .base import Finding, SourceFile, self_attr, walk_classes

CHECK_IDS = ("GB01",)

_FUNCTION_KINDS = (ast.FunctionDef, ast.AsyncFunctionDef)


def check(src: SourceFile) -> List[Finding]:
    findings: List[Finding] = []
    for cls in walk_classes(src.tree):
        methods = [node for node in cls.body if isinstance(node, _FUNCTION_KINDS)]
        guarded = _collect_guarded(src, methods)
        if not guarded:
            continue
        for fn in methods:
            if fn.name == "__init__":
                continue
            start, end = src.header_range(fn)
            held = frozenset(
                args.split()[0]
                for args in src.directives_in("holds-lock", start, end)
                if args.split()
            )
            auditor = _Auditor(src, cls.name, guarded, findings)
            for stmt in fn.body:
                auditor.visit(stmt, held)
    return findings


def _collect_guarded(src: SourceFile, methods) -> Dict[str, str]:
    """Map attr -> lock from ``# guarded-by`` annotations on assignments."""
    guarded: Dict[str, str] = {}
    for fn in methods:
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            else:
                continue
            lock = None
            for line in range(node.lineno, (node.end_lineno or node.lineno) + 1):
                lock = src.guard_at(line)
                if lock:
                    break
            if not lock:
                continue
            for target in targets:
                attr = self_attr(target)
                if attr:
                    guarded[attr] = lock
    return guarded


class _Auditor:
    """Walks a method body tracking which ``self.<lock>`` locks are held."""

    def __init__(self, src: SourceFile, cls_name: str, guarded: Dict[str, str], out):
        self.src = src
        self.cls_name = cls_name
        self.guarded = guarded
        self.out = out

    def visit(self, node: ast.AST, held: FrozenSet[str]) -> None:
        attr = self_attr(node)
        if attr is not None:
            lock = self.guarded.get(attr)
            if (
                lock is not None
                and lock not in held
                and not self.src.allowed("allow-unguarded", node)
            ):
                self.out.append(
                    Finding(
                        "GB01",
                        self.src.path,
                        node.lineno,
                        f"{self.cls_name}.{attr} is guarded-by {lock!r} "
                        f"but accessed without holding it "
                        f"(wrap in `with self.{lock}:` or annotate the "
                        f"method `# checks: holds-lock {lock}`)",
                    )
                )
            return  # value is just Name('self')
        if isinstance(node, (ast.With, ast.AsyncWith)):
            extended = set(held)
            for item in node.items:
                self.visit(item.context_expr, held)
                name = self_attr(item.context_expr)
                if name:
                    extended.add(name)
                if item.optional_vars is not None:
                    self.visit(item.optional_vars, held)
            new_held = frozenset(extended)
            for stmt in node.body:
                self.visit(stmt, new_held)
            return
        # Nested defs/lambdas inherit the held set: closures fired later
        # may escape the lock, but flagging every helper closure defined
        # under the lock would be all noise.
        for child in ast.iter_child_nodes(node):
            self.visit(child, held)
