"""VT01/VT02 — remotely-reachable validation traps (the PR 8 bug class).

VT01: ``isinstance(x, int)`` (or ``(int, float)``) admits ``bool`` —
``True``/``False`` are ints, so a boolean smuggled through JSON passes a
numeric type gate.  The check is satisfied when the *same statement*
also tests ``isinstance(x, bool)`` (the house pattern), or with
``# checks: allow-bool-int <reason>``.

VT02: ``float(payload["key"])`` / ``float(mapping.get(...))`` without a
finiteness check in the same function — ``json.loads`` happily produces
``NaN``/``Infinity``, and every comparison against NaN is False, so an
unchecked threshold silently disables whatever it gates.  Satisfied when
the enclosing function mentions ``isfinite``, or with
``# checks: allow-nonfinite <reason>`` (used where validation is
delegated to a constructor such as ``SweepJob.__post_init__``).

VT02 applies to production code only: files named ``test_*``,
``bench_*`` or ``conftest.py`` are skipped (tests assert on values they
themselves produced; there is no untrusted wire there).
"""

from __future__ import annotations

import ast
import posixpath
from typing import List

from .base import Finding, SourceFile

CHECK_IDS = ("VT01", "VT02")


def check(src: SourceFile) -> List[Finding]:
    findings: List[Finding] = []
    _check_bool_int(src, findings)
    if not _is_test_file(src.path):
        _check_nonfinite(src, findings)
    return findings


def _is_test_file(path: str) -> bool:
    name = posixpath.basename(path.replace("\\", "/"))
    return name.startswith(("test_", "bench_")) or name == "conftest.py"


def _isinstance_classes(node: ast.Call) -> set:
    names = set()
    classinfo = node.args[1]
    elems = classinfo.elts if isinstance(classinfo, ast.Tuple) else [classinfo]
    for elem in elems:
        if isinstance(elem, ast.Name):
            names.add(elem.id)
    return names


def _check_bool_int(src: SourceFile, out: List[Finding]) -> None:
    for node in ast.walk(src.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "isinstance"
            and len(node.args) == 2
        ):
            continue
        names = _isinstance_classes(node)
        if "int" not in names or "bool" in names:
            continue
        # The house pattern pairs the int gate with a bool exclusion in
        # the same statement: `isinstance(x, (int, float)) and not
        # isinstance(x, bool)` — look for it before flagging.
        target = ast.dump(node.args[0])
        stmt = src.enclosing_statement(node)
        excluded = any(
            isinstance(other, ast.Call)
            and isinstance(other.func, ast.Name)
            and other.func.id == "isinstance"
            and len(other.args) == 2
            and ast.dump(other.args[0]) == target
            and "bool" in _isinstance_classes(other)
            for other in ast.walk(stmt)
        )
        if excluded or src.allowed("allow-bool-int", node):
            continue
        out.append(
            Finding(
                "VT01",
                src.path,
                node.lineno,
                "isinstance(..., int) admits bool (True/False are ints); "
                "pair it with `not isinstance(..., bool)` in the same "
                "statement or annotate `# checks: allow-bool-int <reason>`",
            )
        )


def _check_nonfinite(src: SourceFile, out: List[Finding]) -> None:
    for node in ast.walk(src.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "float"
            and len(node.args) == 1
            and not node.keywords
        ):
            continue
        arg = node.args[0]
        plucked = isinstance(arg, ast.Subscript) or (
            isinstance(arg, ast.Call)
            and isinstance(arg.func, ast.Attribute)
            and arg.func.attr == "get"
        )
        if not plucked:
            continue
        scope = src.enclosing_function(node) or src.tree
        mentions_isfinite = any(
            (isinstance(other, ast.Name) and other.id == "isfinite")
            or (isinstance(other, ast.Attribute) and other.attr == "isfinite")
            for other in ast.walk(scope)
        )
        if mentions_isfinite or src.allowed("allow-nonfinite", node):
            continue
        out.append(
            Finding(
                "VT02",
                src.path,
                node.lineno,
                "float() of a mapping/wire value without a finiteness "
                "check (json.loads accepts NaN/Infinity; NaN defeats "
                "every threshold comparison) — call math.isfinite or "
                "annotate `# checks: allow-nonfinite <reason>`",
            )
        )
