"""BE01 — broad-except hygiene.

A handler for ``except Exception`` (or bare ``except:`` /
``BaseException``) is allowed to exist — servers and drain loops must
survive poison inputs — but it must do one of three things:

* re-raise (any ``raise`` in the handler body counts, including
  wrapping the error in a domain exception),
* record the swallowed error somewhere a human will find it — an
  ``.emit(...)`` call (or a handler's ``._event(...)`` helper) routes
  it to the obs event ring, or
* carry ``# checks: allow-broad-except <reason>`` on the ``except``
  line (or the line above), with a non-empty reason.

Silent ``except Exception: pass`` is how bitwise bugs hide.
"""

from __future__ import annotations

import ast
from typing import List

from .base import Finding, SourceFile

CHECK_IDS = ("BE01",)

_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    exprs = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    return any(
        isinstance(expr, ast.Name) and expr.id in _BROAD_NAMES for expr in exprs
    )


def check(src: SourceFile) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(src.tree):
        if not (isinstance(node, ast.ExceptHandler) and _is_broad(node)):
            continue
        body_ok = any(
            isinstance(inner, ast.Raise)
            or (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Attribute)
                and inner.func.attr in ("emit", "_event")
            )
            for stmt in node.body
            for inner in ast.walk(stmt)
        )
        if body_ok:
            continue
        # The annotation must sit on the `except` line itself (or a
        # comment line directly above), not buried in the handler body.
        reasons = src.directives_in("allow-broad-except", node.lineno, node.lineno)
        if reasons:
            if all(reason.strip() for reason in reasons):
                continue
            message = (
                "`# checks: allow-broad-except` needs a reason "
                "(why is swallowing every Exception safe here?)"
            )
        else:
            message = (
                "broad except swallows errors silently: re-raise, emit to "
                "the obs event ring, or annotate "
                "`# checks: allow-broad-except <reason>`"
            )
        findings.append(Finding("BE01", src.path, node.lineno, message))
    return findings
