"""Project-invariant static analysis for the repro codebase.

Run as ``python -m repro.checks src tests benchmarks``.  Exits non-zero
when any finding is not covered by the baseline file.  Stdlib-only by
design: importable (and runnable in CI) without numpy or any of repro's
runtime dependencies.

Check families (one module each):

======  =======================  ==========================================
ID      module                   invariant
======  =======================  ==========================================
GB01    ``guardedby``            ``# guarded-by:`` attrs accessed only
                                 under their lock / ``holds-lock`` methods
VT01    ``validation``           int gates must exclude bool
VT02    ``validation``           wire floats need a finiteness check
MT01    ``montime``              ``time.time()`` only for true timestamps
EP01-3  ``endpoints``            routes ⇄ ``_ep_*`` handlers in bijection,
                                 handlers return dict/RawReply
BE01    ``broadexcept``          broad excepts re-raise, emit, or justify
======  =======================  ==========================================

:mod:`repro.checks.lockorder` is the sibling *runtime* sanitizer — a
TSan-style lock-order cycle detector behind pytest's
``--lock-sanitizer`` flag (see ``repro.checks.pytest_plugin``).
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from . import broadexcept, endpoints, guardedby, montime, validation
from .base import Finding, SourceFile

__all__ = ["ALL_CHECKS", "Finding", "SourceFile", "run_source"]

ALL_CHECKS: Tuple[Callable[[SourceFile], List[Finding]], ...] = (
    guardedby.check,
    validation.check,
    montime.check,
    endpoints.check,
    broadexcept.check,
)


def run_source(src: SourceFile) -> List[Finding]:
    """All findings for one parsed file, sorted by line."""
    findings: List[Finding] = []
    for check in ALL_CHECKS:
        findings.extend(check(src))
    findings.sort(key=lambda f: (f.line, f.check, f.message))
    return findings
