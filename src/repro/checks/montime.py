"""MT01 — monotonic-time discipline.

``time.time()`` is wall-clock: NTP steps it, VMs suspend it, and two
hosts disagree about it.  Durations, deadlines and latency spans must
use ``time.monotonic()`` / ``time.perf_counter()``.  The only legitimate
wall-clock uses in this codebase are event-ring timestamps (humans
correlate them with logs) and the file-mtime lease math in
``runner/queue.py`` (mtimes are epoch seconds shared across hosts);
those sites carry ``# checks: allow-wall-clock <reason>``.

Both ``time.time()`` and a bare ``time()`` imported via
``from time import time`` are flagged.
"""

from __future__ import annotations

import ast
from typing import List

from .base import Finding, SourceFile

CHECK_IDS = ("MT01",)

_MESSAGE = (
    "time.time() is wall-clock; use time.monotonic()/perf_counter() for "
    "durations and deadlines, or annotate "
    "`# checks: allow-wall-clock <reason>` for true timestamps"
)


def check(src: SourceFile) -> List[Finding]:
    findings: List[Finding] = []
    bare_time_imported = any(
        isinstance(node, ast.ImportFrom)
        and node.module == "time"
        and any(alias.name == "time" for alias in node.names)
        for node in ast.walk(src.tree)
    )
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        is_wall_clock = (
            isinstance(func, ast.Attribute)
            and func.attr == "time"
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        ) or (
            bare_time_imported
            and isinstance(func, ast.Name)
            and func.id == "time"
        )
        if not is_wall_clock:
            continue
        if src.allowed("allow-wall-clock", node):
            continue
        findings.append(Finding("MT01", src.path, node.lineno, _MESSAGE))
    return findings
