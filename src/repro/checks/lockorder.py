"""Runtime lock-order sanitizer (TSan-style deadlock detection).

Deadlocks need two threads and unlucky timing to *manifest*, but the
bug — two locks acquired in opposite orders somewhere in the program —
is visible on any single-threaded run that exercises both paths.  This
module records the global lock-acquisition graph: every time a thread
acquires lock B while holding lock A, the edge A→B is added; a cycle in
that graph is a potential deadlock, reported immediately with both
acquisition sites.

Usage (opt-in, never on by default)::

    san = LockOrderSanitizer()
    san.install()          # patch threading.Lock / threading.RLock
    ...                    # run the workload
    san.uninstall()
    assert not san.violations

or wrap individual locks without patching::

    lock_a = san.wrap(threading.Lock(), label="pool")

``install()`` swaps the ``threading.Lock``/``threading.RLock``
factories for proxy-producing ones, so everything built on top —
``threading.Condition`` (its default lock is ``threading.RLock()``
resolved at call time), ``queue.Queue`` (``threading.Lock()`` +
conditions over it) — is tracked automatically.  Locks created before
``install()`` are invisible; the pytest plugin installs at configure
time, before any repro module constructs state.

Proxy subtleties worth knowing before editing:

* The RLock proxy implements ``_release_save``/``_acquire_restore``/
  ``_is_owned`` (``Condition.wait`` uses them to fully drop a recursive
  lock) and keeps the per-thread recursion count consistent across the
  wait.  The Lock proxy deliberately does *not* define
  ``_release_save`` — ``Condition`` then falls back to plain
  ``release()``/``acquire()``, which the proxy already tracks.
* Reentrant re-acquisition adds no edges (the lock is already held by
  this thread), it only bumps the per-thread count.
* The sanitizer's own bookkeeping uses a raw ``_thread.allocate_lock``
  so tracking never recurses into itself.
"""

from __future__ import annotations

import _thread
import itertools
import os
import threading
import traceback
from typing import Dict, List, Optional, Set, Tuple


class LockOrderError(RuntimeError):
    """Raised in strict mode when an acquisition closes a cycle."""


class LockOrderSanitizer:
    def __init__(self, strict: bool = False):
        self.strict = strict
        #: human-readable reports, one per distinct cycle
        self.violations: List[str] = []
        self._serials = itertools.count(1)
        #: serial -> "label (created at file:line)"
        self._sites: Dict[int, str] = {}
        #: edge (a, b) -> acquisition site where b was taken holding a
        self._edges: Dict[Tuple[int, int], str] = {}
        #: adjacency view of _edges for cycle search
        self._succ: Dict[int, Set[int]] = {}
        self._seen_cycles: Set[frozenset] = set()
        self._mutex = _thread.allocate_lock()
        self._tls = threading.local()
        self._installed = False
        self._orig_lock = None
        self._orig_rlock = None

    # -- wrapping -----------------------------------------------------------

    def wrap(self, raw, label: Optional[str] = None):
        """Wrap one existing lock object in a tracking proxy."""
        if hasattr(raw, "_is_owned"):
            return _RLockProxy(self, raw, self._register(label))
        return _LockProxy(self, raw, self._register(label))

    def _register(self, label: Optional[str]) -> int:
        serial = next(self._serials)
        site = _creation_site()
        self._sites[serial] = f"{label or 'lock'}#{serial} (created {site})"
        return serial

    # -- factory patching ---------------------------------------------------

    def install(self) -> None:
        """Patch threading.Lock/RLock to produce tracked proxies."""
        if self._installed:
            return
        self._orig_lock = threading.Lock
        self._orig_rlock = threading.RLock

        def make_lock():
            return _LockProxy(self, self._orig_lock(), self._register("Lock"))

        def make_rlock():
            return _RLockProxy(self, self._orig_rlock(), self._register("RLock"))

        threading.Lock = make_lock
        threading.RLock = make_rlock
        self._installed = True

    def uninstall(self) -> None:
        if not self._installed:
            return
        threading.Lock = self._orig_lock
        threading.RLock = self._orig_rlock
        self._installed = False

    def __enter__(self) -> "LockOrderSanitizer":
        self.install()
        return self

    def __exit__(self, *exc) -> None:
        self.uninstall()

    # -- per-thread held stack ----------------------------------------------

    def _stack(self) -> List[int]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    # -- recording ----------------------------------------------------------

    def note_acquired(self, serial: int) -> None:
        stack = self._stack()
        if serial in stack:  # reentrant RLock: no new ordering information
            stack.append(serial)
            return
        site = _acquisition_site()
        cycle_report = None
        with self._mutex:
            for prior in dict.fromkeys(stack):  # dedupe, preserve order
                edge = (prior, serial)
                if edge not in self._edges:
                    self._edges[edge] = site
                    self._succ.setdefault(prior, set()).add(serial)
                    cycle = self._find_cycle(serial, prior)
                    if cycle is not None:
                        report = self._render_cycle(cycle)
                        if report is not None:
                            cycle_report = report
        stack.append(serial)
        if cycle_report is not None:
            self.violations.append(cycle_report)
            if self.strict:
                raise LockOrderError(cycle_report)

    def note_released(self, serial: int) -> None:
        stack = self._stack()
        # Locks may be released out of LIFO order (handoffs); drop the
        # most recent occurrence.
        for idx in range(len(stack) - 1, -1, -1):
            if stack[idx] == serial:
                del stack[idx]
                return

    def drop_all(self, serial: int) -> int:
        """Remove every occurrence (Condition.wait on an RLock); returns count."""
        stack = self._stack()
        count = stack.count(serial)
        if count:
            self._tls.stack = [s for s in stack if s != serial]
        return count

    def reacquire(self, serial: int, count: int) -> None:
        """Restore ``count`` recursion levels after a Condition.wait."""
        if count <= 0:
            return
        self.note_acquired(serial)
        self._stack().extend([serial] * (count - 1))

    # -- cycle detection (caller holds self._mutex) -------------------------

    def _find_cycle(self, start: int, target: int) -> Optional[List[int]]:
        """DFS path start→…→target; with edge target→start that is a cycle."""
        path = [start]
        visited = {start}

        def dfs(node: int) -> bool:
            for nxt in sorted(self._succ.get(node, ())):
                if nxt == target:
                    path.append(nxt)
                    return True
                if nxt not in visited:
                    visited.add(nxt)
                    path.append(nxt)
                    if dfs(nxt):
                        return True
                    path.pop()
            return False

        return path if dfs(start) else None

    def _render_cycle(self, cycle: List[int]) -> Optional[str]:
        key = frozenset(cycle)
        if key in self._seen_cycles:
            return None
        self._seen_cycles.add(key)
        lines = ["potential deadlock: lock-order cycle"]
        hops = cycle + [cycle[0]]
        for a, b in zip(hops, hops[1:]):
            site = self._edges.get((a, b), "unknown site")
            lines.append(
                f"  {self._sites.get(a, a)} -> {self._sites.get(b, b)} "
                f"[acquired at {site}]"
            )
        return "\n".join(lines)


class _LockProxy:
    """Tracking wrapper around a non-reentrant lock."""

    def __init__(self, san: LockOrderSanitizer, raw, serial: int):
        self._san = san
        self._raw = raw
        self._serial = serial

    def acquire(self, blocking: bool = True, timeout: float = -1):
        ok = self._raw.acquire(blocking, timeout)
        if ok:
            self._san.note_acquired(self._serial)
        return ok

    def release(self) -> None:
        self._raw.release()
        self._san.note_released(self._serial)

    def locked(self) -> bool:
        return self._raw.locked()

    def __enter__(self):
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<LockProxy {self._san._sites.get(self._serial, self._serial)}>"


class _RLockProxy:
    """Tracking wrapper around an RLock, Condition-compatible."""

    def __init__(self, san: LockOrderSanitizer, raw, serial: int):
        self._san = san
        self._raw = raw
        self._serial = serial

    def acquire(self, blocking: bool = True, timeout: float = -1):
        ok = self._raw.acquire(blocking, timeout)
        if ok:
            self._san.note_acquired(self._serial)
        return ok

    def release(self) -> None:
        self._raw.release()
        self._san.note_released(self._serial)

    def __enter__(self):
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    # Condition.wait support: fully drop the lock, then restore the
    # exact recursion depth afterwards.
    def _release_save(self):
        count = self._san.drop_all(self._serial)
        return (self._raw._release_save(), count)

    def _acquire_restore(self, saved) -> None:
        state, count = saved
        self._raw._acquire_restore(state)
        self._san.reacquire(self._serial, count)

    def _is_owned(self) -> bool:
        return self._raw._is_owned()

    def __repr__(self) -> str:
        return f"<RLockProxy {self._san._sites.get(self._serial, self._serial)}>"


_SELF_FILE = os.path.abspath(__file__)
_THREADING_FILE = os.path.abspath(threading.__file__)


def _creation_site() -> str:
    return _first_foreign_frame()


def _acquisition_site() -> str:
    return _first_foreign_frame()


def _first_foreign_frame() -> str:
    """file:line of the innermost frame outside this module and threading."""
    for frame in reversed(traceback.extract_stack()):
        if os.path.abspath(frame.filename) in (_SELF_FILE, _THREADING_FILE):
            continue
        return f"{frame.filename}:{frame.lineno} in {frame.name}"
    return "unknown"
