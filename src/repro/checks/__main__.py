"""CLI driver: ``python -m repro.checks [paths...] [--baseline FILE]``.

Walks every ``*.py`` under the given paths (files are accepted too),
runs all check families, and prints findings as
``path:line: ID message``.  Exit status: 0 when every finding is in the
baseline (or there are none), 1 on new findings, 2 on usage errors.

``--write-baseline FILE`` records the current findings' fingerprints
(check + path + message, line numbers excluded so ordinary edits don't
invalidate entries) to grandfather them; ``--baseline FILE`` reads the
same file back.  Stale baseline entries — findings that no longer fire —
are reported so the file shrinks over time instead of fossilizing.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Iterator, List

from . import run_source
from .base import Finding, SourceFile

_SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", ".pytest_cache", ".venv"}


def iter_python_files(paths: List[str]) -> Iterator[str]:
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs if d not in _SKIP_DIRS and not d.startswith(".")
            )
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def check_file(path: str) -> List[Finding]:
    rel = os.path.relpath(path).replace(os.sep, "/")
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    try:
        src = SourceFile(rel, text)
    except SyntaxError as exc:
        return [
            Finding("PARSE", rel, exc.lineno or 1, f"file does not parse: {exc.msg}")
        ]
    return run_source(src)


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.checks",
        description="repro project-invariant static analysis",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files/dirs to scan")
    parser.add_argument(
        "--baseline", metavar="FILE", help="JSON file of grandfathered findings"
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write current findings as the new baseline and exit 0",
    )
    args = parser.parse_args(argv)

    paths = args.paths or ["src"]
    for path in paths:
        if not os.path.exists(path):
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2

    findings: List[Finding] = []
    scanned = 0
    for path in iter_python_files(paths):
        scanned += 1
        findings.extend(check_file(path))
    findings.sort(key=lambda f: (f.path, f.line, f.check))

    if args.write_baseline:
        payload = {
            "version": 1,
            "findings": sorted({f.fingerprint() for f in findings}),
        }
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(
            f"wrote {len(payload['findings'])} baseline entries to "
            f"{args.write_baseline}",
            file=sys.stderr,
        )
        return 0

    grandfathered: set = set()
    if args.baseline:
        try:
            with open(args.baseline, encoding="utf-8") as handle:
                data = json.load(handle)
            grandfathered = set(data.get("findings", []))
        except (OSError, ValueError) as exc:
            print(f"error: cannot read baseline {args.baseline}: {exc}", file=sys.stderr)
            return 2

    fresh = [f for f in findings if f.fingerprint() not in grandfathered]
    matched = {f.fingerprint() for f in findings} & grandfathered
    stale = grandfathered - matched

    for finding in fresh:
        print(finding.render())
    if stale:
        print(
            f"note: {len(stale)} stale baseline entr"
            f"{'y' if len(stale) == 1 else 'ies'} no longer fire(s) — "
            f"prune them:",
            file=sys.stderr,
        )
        for entry in sorted(stale):
            print(f"  {entry}", file=sys.stderr)
    suppressed = len(findings) - len(fresh)
    summary = f"checked {scanned} files: {len(fresh)} finding(s)"
    if suppressed:
        summary += f", {suppressed} baselined"
    print(summary, file=sys.stderr)
    return 1 if fresh else 0


if __name__ == "__main__":
    sys.exit(main())
