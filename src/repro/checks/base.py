"""Shared infrastructure for repro's project-invariant static checks.

Every check module exposes ``check(source: SourceFile) -> list[Finding]``
and a short ``CHECK_IDS`` tuple.  :class:`SourceFile` parses one Python
file, builds the AST with parent links, and extracts the two comment
vocabularies the checks consume:

``# guarded-by: <lockname>``
    On an attribute assignment line: every later read/write of that
    attribute must happen under ``with self.<lockname>:`` (see
    :mod:`repro.checks.guardedby`).

``# checks: <directive> <reason...>``
    Suppression/contract annotations (``holds-lock``,
    ``allow-broad-except``, ``allow-wall-clock``, ``allow-bool-int``,
    ``allow-nonfinite``, ``allow-unrouted``).  A comment on its own line
    attaches to the next code line; a trailing comment attaches to its
    own line.

Comments are discovered with :mod:`tokenize`, so annotation-shaped text
inside string literals (e.g. the checker's own test fixtures) is ignored.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

_GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")
_DIRECTIVE_RE = re.compile(r"#\s*checks:\s*([a-z][a-z-]*)\s*(.*?)\s*$")


@dataclass(frozen=True)
class Finding:
    """One violation: a check id, a location, and a message."""

    check: str
    path: str
    line: int
    message: str

    def fingerprint(self) -> str:
        """Stable identity for baseline matching (line numbers drift)."""
        return f"{self.check}::{self.path}::{self.message}"

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.check} {self.message}"


class SourceFile:
    """A parsed Python file plus its checks annotations.

    Raises :class:`SyntaxError` (or :class:`tokenize.TokenError`) if the
    file does not parse; callers turn that into a ``PARSE`` finding.
    """

    def __init__(self, path: str, text: str):
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text)
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        #: effective line -> lock name from ``# guarded-by:``
        self.guards: Dict[int, str] = {}
        #: effective line -> [(directive, args)] from ``# checks:``
        self.directives: Dict[int, List[Tuple[str, str]]] = {}
        self._scan_comments()

    # -- comment scanning ---------------------------------------------------

    def _scan_comments(self) -> None:
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(self.text).readline))
        except tokenize.TokenError:  # ast.parse accepted it; be lenient
            tokens = []
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            row, col = tok.start
            effective = row if self._has_code_before(row, col) else self._next_code_line(row)
            if effective is None:
                continue
            match = _GUARDED_BY_RE.search(tok.string)
            if match:
                self.guards[effective] = match.group(1)
            match = _DIRECTIVE_RE.search(tok.string)
            if match:
                self.directives.setdefault(effective, []).append(
                    (match.group(1), match.group(2))
                )

    def _has_code_before(self, row: int, col: int) -> bool:
        prefix = self.lines[row - 1][:col]
        return bool(prefix.strip())

    def _next_code_line(self, row: int) -> Optional[int]:
        for idx in range(row, len(self.lines)):
            line = self.lines[idx].strip()
            if line and not line.startswith("#"):
                return idx + 1
        return None

    # -- annotation lookups -------------------------------------------------

    def guard_at(self, line: int) -> Optional[str]:
        return self.guards.get(line)

    def directives_in(self, name: str, start: int, end: int) -> List[str]:
        """Args of every ``name`` directive whose effective line is in range."""
        found = []
        for line in range(start, end + 1):
            for directive, args in self.directives.get(line, ()):
                if directive == name:
                    found.append(args)
        return found

    def allowed(self, name: str, node: ast.AST) -> bool:
        """True if a ``# checks: <name> ...`` annotation covers ``node``."""
        end = getattr(node, "end_lineno", None) or node.lineno
        return bool(self.directives_in(name, node.lineno, end))

    # -- tree navigation ----------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def enclosing(self, node: ast.AST, kinds) -> Optional[ast.AST]:
        cursor = self._parents.get(node)
        while cursor is not None:
            if isinstance(cursor, kinds):
                return cursor
            cursor = self._parents.get(cursor)
        return None

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        return self.enclosing(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))

    def enclosing_statement(self, node: ast.AST) -> ast.AST:
        cursor = node
        while not isinstance(cursor, ast.stmt):
            parent = self._parents.get(cursor)
            if parent is None:
                return cursor
            cursor = parent
        return cursor

    @staticmethod
    def header_range(func: ast.AST) -> Tuple[int, int]:
        """Line span of a def's decorators + signature (for holds-lock)."""
        start = func.lineno
        for deco in getattr(func, "decorator_list", ()):
            start = min(start, deco.lineno)
        end = max(func.lineno, func.body[0].lineno - 1) if func.body else func.lineno
        return start, end


def self_attr(node: ast.AST) -> Optional[str]:
    """The attribute name if ``node`` is ``self.<attr>``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def walk_classes(tree: ast.AST) -> Iterator[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node
