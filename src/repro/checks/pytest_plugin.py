"""pytest integration for the runtime lock-order sanitizer.

Loaded by the repo-root ``conftest.py``; also usable standalone via
``pytest -p repro.checks.pytest_plugin`` (the sanitizer self-test runs
a seeded-deadlock file from a temp dir that way).

``pytest --lock-sanitizer`` patches ``threading.Lock``/``RLock`` at
configure time — before any repro module constructs its locks — and at
session end reports every lock-order cycle observed, failing the run
(exit status 1) if any fired.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser) -> None:
    group = parser.getgroup("repro")
    group.addoption(
        "--lock-sanitizer",
        action="store_true",
        default=False,
        help="track lock acquisition order and fail on potential-deadlock "
        "cycles (repro.checks.lockorder)",
    )


def pytest_configure(config) -> None:
    if not config.getoption("--lock-sanitizer"):
        return
    from repro.checks.lockorder import LockOrderSanitizer

    sanitizer = LockOrderSanitizer(strict=False)
    sanitizer.install()
    config._repro_lock_sanitizer = sanitizer


def pytest_unconfigure(config) -> None:
    sanitizer = getattr(config, "_repro_lock_sanitizer", None)
    if sanitizer is not None:
        sanitizer.uninstall()


@pytest.hookimpl(trylast=True)
def pytest_sessionfinish(session, exitstatus) -> None:
    sanitizer = getattr(session.config, "_repro_lock_sanitizer", None)
    if sanitizer is None or not sanitizer.violations:
        return
    reporter = session.config.pluginmanager.get_plugin("terminalreporter")
    lines = ["", "lock-order sanitizer: potential deadlock(s) detected"]
    lines.extend(sanitizer.violations)
    text = "\n".join(lines)
    if reporter is not None:
        reporter.write_line(text, red=True)
    else:  # pragma: no cover - terminalreporter always exists in practice
        print(text)
    session.exitstatus = 1
