"""EP01/EP02/EP03 — HTTP endpoint contract.

The two stdlib servers (``serve/server.py``, ``runner/transport/
server.py``) declare their surface in a module-level ``*ROUTES`` dict
mapping paths to ``Class._ep_*`` handler references, dispatched by the
shared :class:`JsonApiHandler`.  This check keeps table and handlers in
bijection and the handlers pure:

* **EP01** — a routes entry references ``Cls._ep_x`` but ``Cls`` (or a
  base defined in the same module) has no such method: a 404-at-runtime
  typo caught at lint time.
* **EP02** — a ``_ep_*`` method of a routed class appears in no routes
  table: dead surface, or a forgotten route.  Suppress intentionally
  unreachable handlers with ``# checks: allow-unrouted <reason>``.
* **EP03** — a ``_ep_*`` handler must produce its reply by returning a
  dict/``RawReply``: raw socket writes (``self.wfile``,
  ``send_response`` …) bypass the auth/gzip/request-id plumbing in
  ``http_common``, and a bare ``return`` yields a None reply.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from .base import Finding, SourceFile, walk_classes

CHECK_IDS = ("EP01", "EP02", "EP03")

_RAW_WRITE_ATTRS = frozenset(
    {"wfile", "rfile", "send_response", "send_header", "end_headers", "send_error"}
)


def check(src: SourceFile) -> List[Finding]:
    findings: List[Finding] = []
    classes = {cls.name: cls for cls in walk_classes(src.tree)}
    methods: Dict[str, Set[str]] = {}
    for name, cls in classes.items():
        own = {
            node.name
            for node in cls.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for base in cls.bases:  # one level of same-module inheritance
            if isinstance(base, ast.Name) and base.id in classes:
                own |= {
                    node.name
                    for node in classes[base.id].body
                    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                }
        methods[name] = own

    routed: Set[Tuple[str, str]] = set()
    routed_classes: Set[str] = set()
    saw_table = False
    for node in ast.walk(src.tree):
        if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Dict)):
            continue
        names = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if not any(name.endswith("ROUTES") or name == "routes" for name in names):
            continue
        saw_table = True
        for ref in ast.walk(node.value):
            if not (
                isinstance(ref, ast.Attribute)
                and ref.attr.startswith("_ep_")
                and isinstance(ref.value, ast.Name)
            ):
                continue
            cls_name = ref.value.id
            routed.add((cls_name, ref.attr))
            routed_classes.add(cls_name)
            if cls_name in classes and ref.attr not in methods[cls_name]:
                findings.append(
                    Finding(
                        "EP01",
                        src.path,
                        ref.lineno,
                        f"routes entry references {cls_name}.{ref.attr} "
                        f"but no such handler is defined",
                    )
                )
    if not saw_table:
        return findings

    for cls_name in sorted(routed_classes):
        cls = classes.get(cls_name)
        if cls is None:
            continue
        for node in cls.body:
            if not (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name.startswith("_ep_")
            ):
                continue
            if (cls_name, node.name) not in routed:
                start, end = src.header_range(node)
                if not src.directives_in("allow-unrouted", start, end):
                    findings.append(
                        Finding(
                            "EP02",
                            src.path,
                            node.lineno,
                            f"handler {cls_name}.{node.name} appears in no "
                            f"routes table (dead surface or missing route)",
                        )
                    )
            _check_handler_body(src, cls_name, node, findings)
    return findings


def _check_handler_body(
    src: SourceFile, cls_name: str, fn: ast.AST, out: List[Finding]
) -> None:
    returns_value = False
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute) and node.attr in _RAW_WRITE_ATTRS:
            out.append(
                Finding(
                    "EP03",
                    src.path,
                    node.lineno,
                    f"handler {cls_name}.{fn.name} touches `{node.attr}`: "
                    f"reply by returning a dict/RawReply so auth/gzip/"
                    f"request-id plumbing stays on the write path",
                )
            )
        elif isinstance(node, ast.Return):
            if node.value is None:
                out.append(
                    Finding(
                        "EP03",
                        src.path,
                        node.lineno,
                        f"handler {cls_name}.{fn.name} has a bare `return` "
                        f"(reply would be None); return a dict/RawReply",
                    )
                )
            else:
                returns_value = True
    if not returns_value:
        out.append(
            Finding(
                "EP03",
                src.path,
                fn.lineno,
                f"handler {cls_name}.{fn.name} never returns a value; "
                f"every handler must return a dict/RawReply",
            )
        )
