"""Synthetic speech-like frame sequences (DeepSpeech2 / EESEN stand-in).

Real audio frames change slowly — the property Figure 5 measures and the
memoization scheme exploits.  The generator emulates this with a phoneme
model: every utterance is a sequence of phonemes, each held for several
frames; features follow the phoneme's prototype vector with a smooth
attack transition from the previous phoneme and low-amplitude AR(1)
noise.  Labels are per-frame phoneme ids; transcripts are the collapsed
phoneme strings, scored with WER after collapse decoding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

Array = np.ndarray


def collapse(frame_labels: Sequence[int]) -> Tuple[int, ...]:
    """CTC-style collapse: merge consecutive duplicate frame labels."""
    out: List[int] = []
    for label in frame_labels:
        if not out or out[-1] != label:
            out.append(int(label))
    return tuple(out)


@dataclass
class SpeechDataset:
    """Deterministic synthetic speech corpus.

    Attributes:
        num_utterances: corpus size.
        num_phonemes: label alphabet size.
        feature_dim: per-frame feature width (e.g. filterbank energies).
        phones_per_utterance: transcript length.
        frames_per_phone: hold duration of each phoneme.
        attack_frames: frames spent interpolating from the previous
            phoneme (must be < frames_per_phone); larger values make
            consecutive frames more similar, increasing reuse headroom.
        noise: AR(1) noise amplitude on top of the prototype trajectory.
        seed: generator seed.
    """

    num_utterances: int = 64
    num_phonemes: int = 8
    feature_dim: int = 12
    phones_per_utterance: int = 6
    frames_per_phone: int = 8
    attack_frames: int = 3
    noise: float = 0.05
    seed: int = 0

    features: Array = field(init=False, repr=False)
    frame_labels: Array = field(init=False, repr=False)
    transcripts: List[Tuple[int, ...]] = field(init=False, repr=False)

    def __post_init__(self):
        if self.num_phonemes < 2:
            raise ValueError("need at least two phonemes")
        if not 0 <= self.attack_frames < self.frames_per_phone:
            raise ValueError("attack_frames must be < frames_per_phone")
        rng = np.random.default_rng(self.seed)
        prototypes = rng.standard_normal((self.num_phonemes, self.feature_dim))
        steps = self.phones_per_utterance * self.frames_per_phone

        features = np.empty((self.num_utterances, steps, self.feature_dim))
        labels = np.empty((self.num_utterances, steps), dtype=np.int64)
        transcripts: List[Tuple[int, ...]] = []

        for u in range(self.num_utterances):
            phones = self._sample_transcript(rng)
            transcripts.append(tuple(phones))
            frame = 0
            prev_proto = prototypes[phones[0]]
            ar_state = np.zeros(self.feature_dim)
            for phone in phones:
                proto = prototypes[phone]
                for k in range(self.frames_per_phone):
                    if k < self.attack_frames:
                        alpha = (k + 1) / (self.attack_frames + 1)
                        target = (1.0 - alpha) * prev_proto + alpha * proto
                    else:
                        target = proto
                    ar_state = 0.8 * ar_state + self.noise * rng.standard_normal(
                        self.feature_dim
                    )
                    features[u, frame] = target + ar_state
                    labels[u, frame] = phone
                    frame += 1
                prev_proto = proto
        self.features = features
        self.frame_labels = labels
        self.transcripts = transcripts

    def _sample_transcript(self, rng: np.random.Generator) -> List[int]:
        """Phoneme string without immediate repeats (collapse-decodable)."""
        phones = [int(rng.integers(self.num_phonemes))]
        while len(phones) < self.phones_per_utterance:
            candidate = int(rng.integers(self.num_phonemes))
            if candidate != phones[-1]:
                phones.append(candidate)
        return phones

    # -- views ----------------------------------------------------------------

    @property
    def num_frames(self) -> int:
        return self.phones_per_utterance * self.frames_per_phone

    def split(self, test_fraction: float = 0.25) -> Tuple[Array, Array]:
        """Deterministic (train_idx, test_idx) index arrays."""
        rng = np.random.default_rng(self.seed + 1)
        order = rng.permutation(self.num_utterances)
        n_test = max(1, int(round(self.num_utterances * test_fraction)))
        return np.sort(order[n_test:]), np.sort(order[:n_test])

    def decode_frames(self, frame_predictions: Array) -> List[Tuple[int, ...]]:
        """Collapse per-frame argmax predictions into transcripts."""
        frame_predictions = np.asarray(frame_predictions)
        if frame_predictions.ndim != 2:
            raise ValueError("expected (B, T) frame predictions")
        return [collapse(row) for row in frame_predictions]

    def references(self, indices: Array) -> List[Tuple[int, ...]]:
        return [self.transcripts[i] for i in np.asarray(indices)]
