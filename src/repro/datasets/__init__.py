"""Synthetic workload generators standing in for the paper's datasets.

The paper evaluates on LibriSpeech, Tedlium, the IMDB review corpus and
WMT'15 En->De — none of which are available offline.  Each generator here
reproduces the *property the experiment depends on*: temporal smoothness
for the speech tasks (the source of neuron-output redundancy), valence
structure for sentiment, and deterministic transduction for translation.
All are seeded and deterministic.
"""

from repro.datasets.base import Batch, train_test_split
from repro.datasets.sentiment import SentimentDataset
from repro.datasets.speech import SpeechDataset
from repro.datasets.translation import TranslationDataset

__all__ = [
    "Batch",
    "SentimentDataset",
    "SpeechDataset",
    "TranslationDataset",
    "train_test_split",
]
