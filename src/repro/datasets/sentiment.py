"""Synthetic sentiment-classification corpus (IMDB stand-in).

Documents are token streams over a vocabulary partitioned into positive,
negative and neutral words.  A document's label determines the valence
bias of its content words; the realised label is re-derived from the
actual counts so the task is noise-free (the base network can reach high
accuracy, as the real IMDB LSTM does in Table 1).  Token bursts (short
repeats) emulate the local redundancy of natural text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

Array = np.ndarray

NEGATIVE, POSITIVE = 0, 1


@dataclass
class SentimentDataset:
    """Deterministic synthetic sentiment corpus.

    Vocabulary layout: ids ``[0, valence_words)`` are positive words, ids
    ``[valence_words, 2 * valence_words)`` negative, the rest neutral.

    Attributes:
        num_documents: corpus size.
        vocab_size: total vocabulary size.
        valence_words: number of positive words (same count negative).
        doc_length: tokens per document (fixed, for dense batching).
        signal_rate: probability a token is a valence word.
        burst_rate: probability a token repeats the previous token
            (textual redundancy; benefits memoization mildly).
        seed: generator seed.
    """

    num_documents: int = 128
    vocab_size: int = 64
    valence_words: int = 8
    doc_length: int = 24
    signal_rate: float = 0.35
    burst_rate: float = 0.2
    seed: int = 0

    tokens: Array = field(init=False, repr=False)
    labels: Array = field(init=False, repr=False)

    def __post_init__(self):
        if self.vocab_size < 2 * self.valence_words + 1:
            raise ValueError("vocab too small for the valence partition")
        if not 0.0 < self.signal_rate <= 1.0:
            raise ValueError("signal_rate must be in (0, 1]")
        rng = np.random.default_rng(self.seed)
        tokens = np.empty((self.num_documents, self.doc_length), dtype=np.int64)
        labels = np.empty(self.num_documents, dtype=np.int64)
        for d in range(self.num_documents):
            tokens[d], labels[d] = self._sample_document(rng)
        self.tokens = tokens
        self.labels = labels

    def _sample_document(self, rng: np.random.Generator) -> Tuple[Array, int]:
        intended = int(rng.integers(2))
        doc = np.empty(self.doc_length, dtype=np.int64)
        pos_count = neg_count = 0
        for t in range(self.doc_length):
            if t > 0 and rng.random() < self.burst_rate:
                doc[t] = doc[t - 1]
            elif rng.random() < self.signal_rate:
                # Valence word, biased towards the intended label.
                matches = rng.random() < 0.85
                positive = matches if intended == POSITIVE else not matches
                word = int(rng.integers(self.valence_words))
                doc[t] = word if positive else self.valence_words + word
            else:
                doc[t] = int(
                    rng.integers(2 * self.valence_words, self.vocab_size)
                )
            if doc[t] < self.valence_words:
                pos_count += 1
            elif doc[t] < 2 * self.valence_words:
                neg_count += 1
        if pos_count == neg_count:
            # Break ties deterministically by appending-equivalent bias:
            # overwrite the final token with an intended-valence word.
            word = int(rng.integers(self.valence_words))
            doc[-1] = word if intended == POSITIVE else self.valence_words + word
            pos_count += intended == POSITIVE
            neg_count += intended == NEGATIVE
        label = POSITIVE if pos_count > neg_count else NEGATIVE
        return doc, label

    def split(self, test_fraction: float = 0.25) -> Tuple[Array, Array]:
        rng = np.random.default_rng(self.seed + 1)
        order = rng.permutation(self.num_documents)
        n_test = max(1, int(round(self.num_documents * test_fraction)))
        return np.sort(order[n_test:]), np.sort(order[:n_test])

    def valence_of(self, token: int) -> int:
        """+1 positive, -1 negative, 0 neutral (for tests/inspection)."""
        if token < self.valence_words:
            return 1
        if token < 2 * self.valence_words:
            return -1
        return 0
