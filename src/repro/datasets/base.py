"""Shared dataset utilities."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple, TypeVar

import numpy as np

Array = np.ndarray
T = TypeVar("T")


@dataclass(frozen=True)
class Batch:
    """A generic (inputs, targets) batch."""

    inputs: Array
    targets: Array

    @property
    def size(self) -> int:
        return int(self.inputs.shape[0])


def train_test_split(
    items: Sequence[T], test_fraction: float, rng: np.random.Generator
) -> Tuple[List[T], List[T]]:
    """Deterministic shuffled split."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    if len(items) < 2:
        raise ValueError("need at least two items to split")
    order = rng.permutation(len(items))
    n_test = max(1, int(round(len(items) * test_fraction)))
    test_idx = set(order[:n_test].tolist())
    train = [items[i] for i in range(len(items)) if i not in test_idx]
    test = [items[i] for i in range(len(items)) if i in test_idx]
    return train, test


def batched_indices(
    count: int, batch_size: int, rng: np.random.Generator | None = None
) -> Iterator[Array]:
    """Yield index arrays covering ``range(count)`` in batches.

    With an rng, order is shuffled (training); without, it is sequential
    (evaluation).
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    order = np.arange(count) if rng is None else rng.permutation(count)
    for start in range(0, count, batch_size):
        yield order[start : start + batch_size]
