"""Synthetic sequence-transduction corpus (MNMT stand-in).

The "translation" is a deterministic transduction: each source token is
mapped through a fixed random permutation into the target vocabulary and
the sequence order is reversed — the classic seq2seq toy problem.  An
encoder-decoder LSTM must learn both the lexical mapping and the
reordering, exercising the same decode loop (and the same BLEU-loss
mechanics) as a real NMT system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

Array = np.ndarray

#: Special target-side tokens.
PAD, BOS, EOS = 0, 1, 2
NUM_SPECIALS = 3


@dataclass
class TranslationDataset:
    """Deterministic synthetic parallel corpus.

    Source sentences are uniform random token sequences of fixed length;
    target sentences are the reversed, permuted translation plus EOS.

    Source token statistics mimic natural language: a Zipfian unigram
    distribution plus bursty local repetition (``burst_rate``).  The
    repetition matters for the reproduction — consecutive identical
    tokens are the translation-domain analogue of the frame similarity
    the memoization scheme exploits in speech.

    Attributes:
        num_pairs: corpus size.
        vocab_size: source vocabulary size (target adds 3 specials).
        length: source sentence length.
        burst_rate: probability a source token repeats its predecessor.
        seed: generator seed.
    """

    num_pairs: int = 96
    vocab_size: int = 12
    length: int = 7
    burst_rate: float = 0.35
    seed: int = 0

    source: Array = field(init=False, repr=False)
    target: Array = field(init=False, repr=False)
    permutation: Array = field(init=False, repr=False)

    def __post_init__(self):
        if self.vocab_size < 2:
            raise ValueError("vocab_size must be >= 2")
        if self.length < 1:
            raise ValueError("length must be >= 1")
        if not 0.0 <= self.burst_rate < 1.0:
            raise ValueError("burst_rate must be in [0, 1)")
        rng = np.random.default_rng(self.seed)
        self.permutation = rng.permutation(self.vocab_size)
        zipf = 1.0 / np.arange(1, self.vocab_size + 1)
        zipf /= zipf.sum()
        source = np.empty((self.num_pairs, self.length), dtype=np.int64)
        for i in range(self.num_pairs):
            for t in range(self.length):
                if t > 0 and rng.random() < self.burst_rate:
                    source[i, t] = source[i, t - 1]
                else:
                    source[i, t] = rng.choice(self.vocab_size, p=zipf)
        self.source = source
        self.target = np.stack(
            [self.translate_tokens(row) for row in self.source]
        ).astype(np.int64)

    @property
    def target_vocab_size(self) -> int:
        return self.vocab_size + NUM_SPECIALS

    def translate_tokens(self, source_tokens: Array) -> Array:
        """Ground-truth transduction: permute lexically, reverse, add EOS."""
        mapped = self.permutation[np.asarray(source_tokens)] + NUM_SPECIALS
        return np.concatenate([mapped[::-1], [EOS]])

    def decoder_io(self, indices: Array) -> Tuple[Array, Array]:
        """Teacher-forcing pairs: ``(decoder_inputs, decoder_targets)``.

        Inputs are BOS-shifted targets; targets include the EOS.
        """
        tgt = self.target[np.asarray(indices)]
        bos = np.full((tgt.shape[0], 1), BOS, dtype=np.int64)
        return np.concatenate([bos, tgt[:, :-1]], axis=1), tgt

    def split(self, test_fraction: float = 0.25) -> Tuple[Array, Array]:
        rng = np.random.default_rng(self.seed + 1)
        order = rng.permutation(self.num_pairs)
        n_test = max(1, int(round(self.num_pairs * test_fraction)))
        return np.sort(order[n_test:]), np.sort(order[:n_test])

    def references(self, indices: Array) -> List[Tuple[int, ...]]:
        """Target token tuples (without EOS) for BLEU scoring."""
        refs = []
        for i in np.asarray(indices):
            row = self.target[i]
            refs.append(tuple(int(t) for t in row if t != EOS))
        return refs
