"""Table 1: the four benchmark RNNs at their paper geometries.

These specs drive the accelerator model (cycle/energy accounting runs at
the paper's true sizes) and document the scaled-down functional instances
built by :mod:`repro.models.zoo`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class NetworkSpec:
    """One row of Table 1 (plus the geometry the accelerator model needs).

    Attributes:
        name: short identifier.
        app_domain: application domain string from Table 1.
        cell_type: ``"lstm"`` or ``"gru"``.
        layers: number of *directional* recurrent layers (Table 1 counts
            each direction of a bidirectional layer, hence EESEN's 10).
        neurons: neurons (hidden units) per layer and direction.
        bidirectional: whether layers come in forward/backward pairs.
        input_size: feature width feeding the first layer.
        avg_sequence_length: typical input elements per inference.
        base_quality: the unmodified network's quality (Table 1).
        quality_metric: ``"accuracy"`` / ``"wer"`` / ``"bleu"``.
        paper_reuse_percent: computation reuse the paper reports at 1%
            accuracy loss (Table 1's "Reuse" column).
        dataset: dataset named in Table 1.
    """

    name: str
    app_domain: str
    cell_type: str
    layers: int
    neurons: int
    bidirectional: bool
    input_size: int
    avg_sequence_length: int
    base_quality: float
    quality_metric: str
    paper_reuse_percent: float
    dataset: str

    def __post_init__(self):
        if self.cell_type not in ("lstm", "gru"):
            raise ValueError(f"unknown cell type {self.cell_type!r}")
        if self.quality_metric not in ("accuracy", "wer", "bleu"):
            raise ValueError(f"unknown metric {self.quality_metric!r}")
        if self.bidirectional and self.layers % 2:
            raise ValueError("bidirectional networks need an even layer count")

    @property
    def gates_per_cell(self) -> int:
        return 4 if self.cell_type == "lstm" else 3

    def layer_input_sizes(self) -> Tuple[int, ...]:
        """Input width of each directional layer in stack order."""
        sizes = []
        width = self.input_size
        step = 2 if self.bidirectional else 1
        for depth in range(self.layers // step):
            for _ in range(step):
                sizes.append(width)
            width = self.neurons * step
            del depth
        return tuple(sizes)

    @property
    def higher_is_better(self) -> bool:
        return self.quality_metric in ("accuracy", "bleu")


#: Table 1 of the paper, verbatim.
PAPER_NETWORKS: Dict[str, NetworkSpec] = {
    "imdb": NetworkSpec(
        name="imdb",
        app_domain="Sentiment Classification",
        cell_type="lstm",
        layers=1,
        neurons=128,
        bidirectional=False,
        input_size=128,
        avg_sequence_length=230,
        base_quality=86.5,
        quality_metric="accuracy",
        paper_reuse_percent=36.2,
        dataset="IMDB dataset",
    ),
    "deepspeech2": NetworkSpec(
        name="deepspeech2",
        app_domain="Speech Recognition",
        cell_type="gru",
        layers=5,
        neurons=800,
        bidirectional=False,
        input_size=800,
        avg_sequence_length=900,
        base_quality=10.24,
        quality_metric="wer",
        paper_reuse_percent=16.4,
        dataset="LibriSpeech",
    ),
    "eesen": NetworkSpec(
        name="eesen",
        app_domain="Speech Recognition",
        cell_type="lstm",
        layers=10,
        neurons=320,
        bidirectional=True,
        input_size=320,
        avg_sequence_length=500,
        base_quality=23.8,
        quality_metric="wer",
        paper_reuse_percent=30.5,
        dataset="Tedlium V1",
    ),
    "mnmt": NetworkSpec(
        name="mnmt",
        app_domain="Machine Translation",
        cell_type="lstm",
        layers=8,
        neurons=1024,
        bidirectional=False,
        input_size=1024,
        # ~30 source words, but encoder + beam-search decoder passes make
        # the effective number of recurrent steps per weight load larger.
        avg_sequence_length=120,
        base_quality=29.8,
        quality_metric="bleu",
        paper_reuse_percent=19.0,
        dataset="WMT'15 En->Ge",
    ),
}

BENCHMARK_NAMES: Tuple[str, ...] = tuple(PAPER_NETWORKS)
