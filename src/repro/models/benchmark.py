"""Benchmark harness: trained model + dataset + quality/loss conventions.

A :class:`Benchmark` bundles everything the experiments need for one of
the paper's four networks: a scaled functional instance that can be
trained in seconds, its test split, the quality metric, the loss
convention (WER *increases*, accuracy/BLEU *decrease*), and memoized
evaluation under any :class:`~repro.core.engine.MemoizationScheme`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import MemoizationScheme, memoized
from repro.core.stats import ReuseStats
from repro.models.specs import NetworkSpec
from repro.nn.optim import Adam
from repro.nn.trainer import Trainer, TrainingLog

Array = np.ndarray


def split_validation(
    train_indices: Array, seed: int, fraction: float = 0.25
) -> Tuple[Array, Array]:
    """Carve a calibration/validation subset out of the training indices.

    §3.2.1 explores thresholds on training data; our scaled models
    memorise their tiny training sets, which would make the exploration
    blind to memoization damage.  Holding out a slice of the training
    data (never used for weight updates) restores the paper's intent:
    thresholds are chosen without touching the test set.
    """
    train_indices = np.asarray(train_indices)
    if len(train_indices) < 2:
        raise ValueError("need at least two training items to split")
    rng = np.random.default_rng(seed + 17)
    order = rng.permutation(len(train_indices))
    n_val = max(1, int(round(len(train_indices) * fraction)))
    val = np.sort(train_indices[order[:n_val]])
    fit = np.sort(train_indices[order[n_val:]])
    return fit, val


@dataclass(frozen=True)
class MemoizedResult:
    """Outcome of one memoized evaluation."""

    quality: float
    quality_loss: float
    reuse_fraction: float
    stats: ReuseStats

    @property
    def reuse_percent(self) -> float:
        return 100.0 * self.reuse_fraction


class Benchmark(ABC):
    """One of the paper's four networks, scaled to run offline.

    ``(name, scale, seed)`` is the benchmark's reproducible identity:
    the runner's job specs (:class:`repro.runner.SweepJob`) use it to
    rebuild an equivalent instance in worker processes and to key the
    on-disk result cache.
    """

    def __init__(self, spec: NetworkSpec, seed: int = 0, scale: str = "tiny"):
        self.spec = spec
        self.seed = seed
        self.scale = scale
        self.base_quality: Optional[float] = None
        self._trained = False

    @property
    def name(self) -> str:
        return self.spec.name

    # -- subclass surface ---------------------------------------------------

    @property
    @abstractmethod
    def model(self):
        """The underlying repro.nn model."""

    @abstractmethod
    def training_batches(self, epoch: int) -> Sequence[object]:
        """Batches for one training epoch."""

    @abstractmethod
    def evaluate(self) -> float:
        """Quality on the held-out split (metric per spec)."""

    @abstractmethod
    def calibration_evaluate(self) -> float:
        """Quality on the calibration (training) split — §3.2.1 uses the
        training set to pick thresholds."""

    @abstractmethod
    def hidden_sequences(self) -> List[Array]:
        """Per-layer hidden sequences on test inputs (Figure 5)."""

    @abstractmethod
    def layer_io_pairs(self) -> List[Tuple[object, Array]]:
        """(recurrent layer, its input) pairs (Figures 7-8)."""

    @abstractmethod
    def default_epochs(self) -> int:
        """Epoch budget that reaches a useful base quality."""

    def learning_rate(self) -> float:
        return 5e-3

    # -- shared behaviour -----------------------------------------------------

    def train(self, epochs: Optional[int] = None) -> TrainingLog:
        """Train to the base quality; idempotent re-training is allowed."""
        epochs = epochs if epochs is not None else self.default_epochs()
        optimizer = Adam(
            self.model.parameters(), lr=self.learning_rate(), clip_norm=5.0
        )
        log = Trainer(self.model, optimizer).fit(self.training_batches, epochs)
        self._trained = True
        self.base_quality = self.evaluate()
        return log

    def ensure_trained(self) -> None:
        if not self._trained:
            self.train()

    def quality_loss(self, quality: float) -> float:
        """The paper's loss convention vs. the base network.

        Accuracy/BLEU losses are drops; WER loss is an increase.  Losses
        are clamped at zero (noise-induced improvements count as zero).
        """
        if self.base_quality is None:
            raise RuntimeError("train() must run before quality_loss()")
        if self.spec.higher_is_better:
            return max(0.0, self.base_quality - quality)
        return max(0.0, quality - self.base_quality)

    def evaluate_memoized(
        self, scheme: MemoizationScheme, calibration: bool = False
    ) -> MemoizedResult:
        """Quality + reuse under a memoization scheme."""
        self.ensure_trained()
        stats = ReuseStats()
        evaluate = self.calibration_evaluate if calibration else self.evaluate
        with memoized(self.model, scheme, stats):
            quality = evaluate()
        return MemoizedResult(
            quality=quality,
            quality_loss=self.quality_loss(quality),
            reuse_fraction=stats.reuse_fraction(),
            stats=stats,
        )

    def sweep_fn(
        self, scheme: MemoizationScheme, calibration: bool = False
    ) -> Callable[[float], Tuple[float, float]]:
        """Closure for :func:`repro.core.calibration.sweep_thresholds`."""

        def evaluate(theta: float) -> Tuple[float, float]:
            result = self.evaluate_memoized(
                scheme.with_theta(theta), calibration=calibration
            )
            return result.quality_loss, result.reuse_fraction

        return evaluate
