"""Benchmark harness: trained model + dataset + quality/loss conventions.

A :class:`Benchmark` bundles everything the experiments need for one of
the paper's four networks: a scaled functional instance that can be
trained in seconds, its test split, the quality metric, the loss
convention (WER *increases*, accuracy/BLEU *decrease*), and memoized
evaluation under any :class:`~repro.core.engine.MemoizationScheme`.

Evaluation is *shardable*: ``evaluate_memoized(..., shard=(i, n))``
evaluates the ``i``-th of ``n`` deterministic partitions of the split
and returns a partial :class:`MemoizedResult` carrying a mergeable
:class:`~repro.metrics.accumulators.MetricAccumulator`.
:func:`merge_shard_results` reduces the partials to the exact result of
the unsharded run: every per-row model computation is independent of
which other rows share its batch (numpy GEMM rows are bitwise invariant
under batch slicing, predictor state is per row, and decoders never
couple rows), and both the quality metrics and the reuse counters reduce
over exact integer sums.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import MemoizationScheme, memoized
from repro.core.stats import ReuseStats
from repro.metrics.accumulators import MetricAccumulator
from repro.models.specs import NetworkSpec
from repro.nn.optim import Adam
from repro.nn.trainer import Trainer, TrainingLog

Array = np.ndarray

#: ``(shard_index, shard_count)`` — the i-th of n split partitions.
Shard = Tuple[int, int]


def shard_indices(indices: Array, shard_index: int, shard_count: int) -> Array:
    """Deterministic contiguous partition of evaluation indices.

    ``np.array_split`` semantics: shards differ in size by at most one
    row, concatenating the shards in index order restores ``indices``
    exactly, and a ``shard_count`` larger than ``len(indices)`` yields
    empty trailing shards (which evaluate to empty partial results).
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count}")
    if not 0 <= shard_index < shard_count:
        raise ValueError(
            f"shard_index must be in [0, {shard_count}), got {shard_index}"
        )
    return np.array_split(np.asarray(indices), shard_count)[shard_index]


def split_validation(
    train_indices: Array, seed: int, fraction: float = 0.25
) -> Tuple[Array, Array]:
    """Carve a calibration/validation subset out of the training indices.

    §3.2.1 explores thresholds on training data; our scaled models
    memorise their tiny training sets, which would make the exploration
    blind to memoization damage.  Holding out a slice of the training
    data (never used for weight updates) restores the paper's intent:
    thresholds are chosen without touching the test set.
    """
    train_indices = np.asarray(train_indices)
    if len(train_indices) < 2:
        raise ValueError("need at least two training items to split")
    rng = np.random.default_rng(seed + 17)
    order = rng.permutation(len(train_indices))
    n_val = max(1, int(round(len(train_indices) * fraction)))
    val = np.sort(train_indices[order[:n_val]])
    fit = np.sort(train_indices[order[n_val:]])
    return fit, val


@dataclass(frozen=True)
class MemoizedResult:
    """Outcome of one memoized evaluation (whole split or one shard).

    Whole-split results carry the final ``quality``/``quality_loss``.
    Shard partials additionally carry the mergeable ``metric``
    accumulator and the benchmark's ``base_quality`` so
    :func:`merge_shard_results` can reduce them without a live (trained)
    benchmark; their ``quality``/``quality_loss`` fields are the
    *shard-local* values (informational only — corpus metrics such as
    BLEU and WER do not average across shards).
    """

    quality: float
    quality_loss: float
    reuse_fraction: float
    stats: ReuseStats
    metric: Optional[MetricAccumulator] = None
    base_quality: Optional[float] = None

    @property
    def reuse_percent(self) -> float:
        return 100.0 * self.reuse_fraction


class Benchmark(ABC):
    """One of the paper's four networks, scaled to run offline.

    ``(name, scale, seed)`` is the benchmark's reproducible identity:
    the runner's job specs (:class:`repro.runner.SweepJob`) use it to
    rebuild an equivalent instance in worker processes and to key the
    on-disk result cache.
    """

    def __init__(self, spec: NetworkSpec, seed: int = 0, scale: str = "tiny"):
        self.spec = spec
        self.seed = seed
        self.scale = scale
        self.base_quality: Optional[float] = None
        self._trained = False

    @property
    def name(self) -> str:
        return self.spec.name

    # -- subclass surface ---------------------------------------------------

    @property
    @abstractmethod
    def model(self):
        """The underlying repro.nn model."""

    @abstractmethod
    def training_batches(self, epoch: int) -> Sequence[object]:
        """Batches for one training epoch."""

    @abstractmethod
    def quality_accumulator(self, indices: Array) -> MetricAccumulator:
        """Evaluate the rows in ``indices`` into a mergeable accumulator.

        The single evaluation primitive: whole-split quality is
        ``quality_accumulator(all_indices).finalize()``, and a shard's
        partial result is the same call on the shard's index subset.
        Implementations must evaluate each row independently of the
        others in the batch (no cross-row coupling) and must handle an
        empty ``indices`` without invoking the model.
        """

    @abstractmethod
    def hidden_sequences(self) -> List[Array]:
        """Per-layer hidden sequences on test inputs (Figure 5)."""

    @abstractmethod
    def layer_io_pairs(self) -> List[Tuple[object, Array]]:
        """(recurrent layer, its input) pairs (Figures 7-8)."""

    @abstractmethod
    def default_epochs(self) -> int:
        """Epoch budget that reaches a useful base quality."""

    def learning_rate(self) -> float:
        return 5e-3

    # -- shared behaviour -----------------------------------------------------

    def eval_indices(self, calibration: bool = False) -> Array:
        """Row indices of the evaluation split (test or calibration)."""
        return np.asarray(self.val_idx if calibration else self.test_idx)

    def evaluate(self) -> float:
        """Quality on the held-out split (metric per spec)."""
        return self.quality_accumulator(self.eval_indices()).finalize()

    def calibration_evaluate(self) -> float:
        """Quality on the calibration split — §3.2.1 picks thresholds
        without touching the test set."""
        return self.quality_accumulator(self.eval_indices(True)).finalize()

    def train(self, epochs: Optional[int] = None) -> TrainingLog:
        """Train to the base quality; idempotent re-training is allowed."""
        epochs = epochs if epochs is not None else self.default_epochs()
        optimizer = Adam(
            self.model.parameters(), lr=self.learning_rate(), clip_norm=5.0
        )
        log = Trainer(self.model, optimizer).fit(self.training_batches, epochs)
        self._trained = True
        self.base_quality = self.evaluate()
        return log

    def ensure_trained(self) -> None:
        if not self._trained:
            self.train()

    def quality_loss(self, quality: float) -> float:
        """The paper's loss convention vs. the base network.

        Accuracy/BLEU losses are drops; WER loss is an increase.  Losses
        are clamped at zero (noise-induced improvements count as zero).
        """
        if self.base_quality is None:
            raise RuntimeError("train() must run before quality_loss()")
        if self.spec.higher_is_better:
            return max(0.0, self.base_quality - quality)
        return max(0.0, quality - self.base_quality)

    def evaluate_memoized(
        self,
        scheme: MemoizationScheme,
        calibration: bool = False,
        shard: Optional[Shard] = None,
    ) -> MemoizedResult:
        """Quality + reuse under a memoization scheme.

        Args:
            scheme: the memoization configuration to evaluate under.
            calibration: evaluate on the calibration split instead of
                the test split.
            shard: optional ``(shard_index, shard_count)``; evaluates
                only that deterministic partition of the split and
                returns a partial result whose ``metric`` accumulator
                and ``stats`` merge exactly (see
                :func:`merge_shard_results`).  ``None`` evaluates the
                whole split, which is identical to the single shard
                ``(0, 1)``.
        """
        self.ensure_trained()
        indices = self.eval_indices(calibration)
        if shard is not None:
            indices = shard_indices(indices, *shard)
        stats = ReuseStats()
        with memoized(self.model, scheme, stats):
            metric = self.quality_accumulator(indices)
        if len(indices) == 0:
            # Empty shard (shard_count > split size): no local quality;
            # the merged result recomputes it from the summed statistics.
            # Any other finalize() failure is a real error and propagates.
            quality = 0.0
        else:
            quality = metric.finalize()
        return MemoizedResult(
            quality=quality,
            quality_loss=self.quality_loss(quality),
            reuse_fraction=stats.reuse_fraction(),
            stats=stats,
            metric=metric if shard is not None else None,
            base_quality=self.base_quality if shard is not None else None,
        )

    def sweep_fn(
        self, scheme: MemoizationScheme, calibration: bool = False
    ) -> Callable[[float], Tuple[float, float]]:
        """Closure for :func:`repro.core.calibration.sweep_thresholds`."""

        def evaluate(theta: float) -> Tuple[float, float]:
            result = self.evaluate_memoized(
                scheme.with_theta(theta), calibration=calibration
            )
            return result.quality_loss, result.reuse_fraction

        return evaluate


def merge_shard_results(
    results: Sequence[MemoizedResult], higher_is_better: bool
) -> MemoizedResult:
    """Reduce per-shard partial results to the whole-split result.

    Metric accumulators and reuse counters are summed (exact integer
    arithmetic), the merged accumulator is finalized into the corpus
    quality, and the loss convention is re-applied against the shards'
    shared ``base_quality`` — reproducing the unsharded
    :meth:`Benchmark.evaluate_memoized` bitwise.

    Args:
        results: partial results for every shard of one evaluation, in
            shard order; each must carry ``metric`` and ``base_quality``.
        higher_is_better: the benchmark's loss convention
            (:attr:`NetworkSpec.higher_is_better`).

    Raises:
        ValueError: on an empty result list, a result without shard
            fields, or inconsistent ``base_quality`` across shards.
    """
    if not results:
        raise ValueError("need at least one shard result")
    for result in results:
        if result.metric is None or result.base_quality is None:
            raise ValueError(
                "shard results must carry metric and base_quality; got a "
                "whole-split result (was the evaluation run with shard=None?)"
            )
    base_quality = results[0].base_quality
    if any(result.base_quality != base_quality for result in results):
        raise ValueError("shards disagree on base_quality; mixed evaluations?")

    metric = results[0].metric.copy()
    stats = ReuseStats()
    stats.merge(results[0].stats)
    for result in results[1:]:
        metric.merge(result.metric)
        stats.merge(result.stats)
    quality = metric.finalize()
    if higher_is_better:
        quality_loss = max(0.0, base_quality - quality)
    else:
        quality_loss = max(0.0, quality - base_quality)
    return MemoizedResult(
        quality=quality,
        quality_loss=quality_loss,
        reuse_fraction=stats.reuse_fraction(),
        stats=stats,
        metric=metric,
        base_quality=base_quality,
    )
