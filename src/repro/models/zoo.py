"""Concrete, trainable instances of the four Table 1 networks.

The paper's geometries (5x800 GRU, 10x320 BiLSTM, ...) are infeasible to
train offline in numpy, so each benchmark is instantiated at a scaled
geometry that keeps the architecture shape (cell type, directionality,
relative depth).  ``scale="tiny"`` targets test-suite speed,
``scale="bench"`` the reproduction benches.  Instances are cached per
``(name, scale, seed)`` because several benches share a trained model.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.datasets.base import batched_indices
from repro.datasets.sentiment import SentimentDataset
from repro.datasets.speech import SpeechDataset
from repro.datasets.translation import TranslationDataset
from repro.metrics.accumulators import (
    AccuracyAccumulator,
    BLEUAccumulator,
    WERAccumulator,
)
from repro.models.benchmark import Benchmark, split_validation
from repro.models.sentiment_model import SentimentModel
from repro.models.specs import PAPER_NETWORKS, NetworkSpec
from repro.models.speech_model import SpeechModel
from repro.models.translation_model import TranslationModel

Array = np.ndarray

SCALES = ("tiny", "bench")


def _check_scale(scale: str) -> None:
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")


class SentimentBenchmark(Benchmark):
    """IMDB stand-in: Embedding -> 1-layer LSTM -> 2-way classifier."""

    def __init__(self, scale: str = "tiny", seed: int = 0):
        _check_scale(scale)
        super().__init__(PAPER_NETWORKS["imdb"], seed=seed, scale=scale)
        rng = np.random.default_rng(seed)
        big = scale == "bench"
        self.dataset = SentimentDataset(
            num_documents=192 if big else 96,
            vocab_size=64,
            doc_length=30 if big else 20,
            seed=seed,
        )
        self._model = SentimentModel(
            vocab_size=self.dataset.vocab_size,
            embed_dim=16,
            hidden_size=32 if big else 20,
            rng=rng,
        )
        all_train, self.test_idx = self.dataset.split()
        self.train_idx, self.val_idx = split_validation(all_train, seed)
        self.batch_size = 16

    @property
    def model(self) -> SentimentModel:
        return self._model

    def default_epochs(self) -> int:
        return 16

    def training_batches(self, epoch: int):
        rng = np.random.default_rng(self.seed * 1000 + epoch)
        return [
            (self.dataset.tokens[idx], self.dataset.labels[idx])
            for idx in batched_indices(len(self.train_idx), self.batch_size, rng)
            for idx in [self.train_idx[idx]]
        ]

    def quality_accumulator(self, indices: Array) -> AccuracyAccumulator:
        accumulator = AccuracyAccumulator()
        indices = np.asarray(indices)
        if indices.size:
            accumulator.update(
                self.model.predict(self.dataset.tokens[indices]),
                self.dataset.labels[indices],
            )
        return accumulator

    def hidden_sequences(self) -> List[Array]:
        return self.model.collect_hidden(self.dataset.tokens[self.test_idx])

    def layer_io_pairs(self):
        return self.model.layer_io(self.dataset.tokens[self.test_idx])


class _SpeechBenchmark(Benchmark):
    """Shared logic for the two speech networks."""

    def __init__(self, spec: NetworkSpec, scale: str, seed: int):
        _check_scale(scale)
        super().__init__(spec, seed=seed, scale=scale)
        big = scale == "bench"
        self.dataset = SpeechDataset(
            num_utterances=96 if big else 32,
            num_phonemes=10 if big else 8,
            feature_dim=24 if big else 12,
            phones_per_utterance=10 if big else 5,
            frames_per_phone=8 if big else 6,
            noise=0.1 if big else 0.05,
            seed=seed,
        )
        self._model = self._build_model(scale, np.random.default_rng(seed))
        all_train, self.test_idx = self.dataset.split()
        self.train_idx, self.val_idx = split_validation(all_train, seed)
        self.batch_size = 8

    def _build_model(self, scale: str, rng) -> SpeechModel:
        raise NotImplementedError

    @property
    def model(self) -> SpeechModel:
        return self._model

    def default_epochs(self) -> int:
        # The bench-scale corpus converges quickly; training longer
        # sharpens decision boundaries and makes the (saturated) model
        # unnaturally brittle to memoization noise.
        return 15 if self.dataset.num_utterances >= 96 else 30

    def training_batches(self, epoch: int):
        rng = np.random.default_rng(self.seed * 1000 + epoch)
        return [
            (self.dataset.features[idx], self.dataset.frame_labels[idx])
            for idx in batched_indices(len(self.train_idx), self.batch_size, rng)
            for idx in [self.train_idx[idx]]
        ]

    def quality_accumulator(self, indices: Array) -> WERAccumulator:
        accumulator = WERAccumulator()
        indices = np.asarray(indices)
        if indices.size:
            accumulator.update(
                self.dataset.references(indices),
                self.model.transcribe(self.dataset.features[indices]),
            )
        return accumulator

    def hidden_sequences(self) -> List[Array]:
        return self.model.collect_hidden(self.dataset.features[self.test_idx])

    def layer_io_pairs(self):
        return self.model.layer_io(self.dataset.features[self.test_idx])


class DeepSpeechBenchmark(_SpeechBenchmark):
    """DeepSpeech2 stand-in: unidirectional GRU stack."""

    def __init__(self, scale: str = "tiny", seed: int = 0):
        super().__init__(PAPER_NETWORKS["deepspeech2"], scale, seed)

    def _build_model(self, scale: str, rng) -> SpeechModel:
        big = scale == "bench"
        return SpeechModel.deepspeech(
            feature_dim=self.dataset.feature_dim,
            hidden_size=32 if big else 20,
            num_layers=3 if big else 2,
            num_phonemes=self.dataset.num_phonemes,
            rng=rng,
        )


class EESENBenchmark(_SpeechBenchmark):
    """EESEN stand-in: bidirectional LSTM stack."""

    def __init__(self, scale: str = "tiny", seed: int = 0):
        super().__init__(PAPER_NETWORKS["eesen"], scale, seed)

    def _build_model(self, scale: str, rng) -> SpeechModel:
        big = scale == "bench"
        return SpeechModel.eesen(
            feature_dim=self.dataset.feature_dim,
            hidden_size=20 if big else 12,
            num_bi_layers=2 if big else 1,
            num_phonemes=self.dataset.num_phonemes,
            rng=rng,
        )


class TranslationBenchmark(Benchmark):
    """MNMT stand-in: encoder-decoder LSTM scored with BLEU."""

    def __init__(self, scale: str = "tiny", seed: int = 0):
        _check_scale(scale)
        super().__init__(PAPER_NETWORKS["mnmt"], seed=seed, scale=scale)
        big = scale == "bench"
        self.dataset = TranslationDataset(
            num_pairs=400 if big else 300,
            vocab_size=6,
            length=6 if big else 5,
            seed=seed,
        )
        rng = np.random.default_rng(seed)
        self._model = TranslationModel(
            src_vocab=self.dataset.vocab_size,
            tgt_vocab=self.dataset.target_vocab_size,
            embed_dim=16,
            hidden_size=64 if big else 48,
            rng=rng,
        )
        all_train, self.test_idx = self.dataset.split()
        self.train_idx, self.val_idx = split_validation(all_train, seed)
        self.batch_size = 16

    @property
    def model(self) -> TranslationModel:
        return self._model

    def default_epochs(self) -> int:
        return 100

    def learning_rate(self) -> float:
        return 8e-3

    def training_batches(self, epoch: int):
        rng = np.random.default_rng(self.seed * 1000 + epoch)
        batches = []
        for idx in batched_indices(len(self.train_idx), self.batch_size, rng):
            rows = self.train_idx[idx]
            dec_in, dec_tgt = self.dataset.decoder_io(rows)
            batches.append((self.dataset.source[rows], dec_in, dec_tgt))
        return batches

    def quality_accumulator(self, indices: Array) -> BLEUAccumulator:
        accumulator = BLEUAccumulator()
        indices = np.asarray(indices)
        if indices.size:
            # early_stop=False: each row must see a batch-independent
            # number of decoder steps or shard merges would not reproduce
            # the whole-split reuse statistics (see translate()).
            hypotheses = self.model.translate(
                self.dataset.source[indices],
                max_len=self.dataset.length + 2,
                early_stop=False,
            )
            accumulator.update(
                list(self.dataset.references(indices)), hypotheses
            )
        return accumulator

    def hidden_sequences(self) -> List[Array]:
        dec_in, _ = self.dataset.decoder_io(self.test_idx)
        return self.model.collect_hidden(self.dataset.source[self.test_idx], dec_in)

    def layer_io_pairs(self):
        dec_in, _ = self.dataset.decoder_io(self.test_idx)
        return self.model.layer_io(self.dataset.source[self.test_idx], dec_in)


_BUILDERS = {
    "imdb": SentimentBenchmark,
    "deepspeech2": DeepSpeechBenchmark,
    "eesen": EESENBenchmark,
    "mnmt": TranslationBenchmark,
}

_CACHE: Dict[Tuple[str, str, int, bool], Benchmark] = {}


def build_benchmark(name: str, scale: str = "tiny", seed: int = 0) -> Benchmark:
    """Fresh, untrained benchmark instance."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {sorted(_BUILDERS)}"
        ) from None
    return builder(scale=scale, seed=seed)


def load_benchmark(
    name: str, scale: str = "tiny", seed: int = 0, trained: bool = True
) -> Benchmark:
    """Cached (and, by default, trained) benchmark instance.

    Training small numpy RNNs takes seconds but several benches share the
    same models; the cache amortises that within a process.
    """
    key = (name, scale, seed, trained)
    if key not in _CACHE:
        benchmark = build_benchmark(name, scale=scale, seed=seed)
        if trained:
            benchmark.train()
        _CACHE[key] = benchmark
    return _CACHE[key]


def all_benchmarks(scale: str = "tiny", seed: int = 0) -> List[Benchmark]:
    """All four Table 1 networks, trained and cached."""
    return [load_benchmark(name, scale=scale, seed=seed) for name in _BUILDERS]
