"""IMDB-style sentiment classifier: Embedding -> LSTM -> Linear (Table 1)."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.metrics.accuracy import accuracy
from repro.nn.embedding import Embedding
from repro.nn.linear import Linear
from repro.nn.lstm import LSTMLayer
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.module import Module

Array = np.ndarray


class SentimentModel(Module):
    """Single-layer LSTM classifier over token sequences.

    Mirrors the paper's IMDB network shape: one unidirectional LSTM whose
    final hidden state feeds a 2-way softmax classifier.
    """

    def __init__(
        self,
        vocab_size: int,
        embed_dim: int,
        hidden_size: int,
        rng: np.random.Generator | None = None,
        num_classes: int = 2,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.embedding = Embedding(vocab_size, embed_dim, rng=rng)
        self.lstm = LSTMLayer(embed_dim, hidden_size, rng=rng)
        self.classifier = Linear(hidden_size, num_classes, rng=rng)
        self.hidden_size = hidden_size
        self._loss = SoftmaxCrossEntropy()

    # -- inference -------------------------------------------------------------

    def forward(self, token_ids: Array) -> Array:
        """Class logits of shape ``(B, num_classes)``."""
        embedded = self.embedding(np.asarray(token_ids))
        hidden = self.lstm(embedded)
        return self.classifier(hidden[:, -1, :])

    __call__ = forward

    def predict(self, token_ids: Array) -> Array:
        return self.forward(token_ids).argmax(axis=-1)

    def evaluate(self, token_ids: Array, labels: Array) -> float:
        """Test accuracy in percent."""
        return accuracy(self.predict(token_ids), labels)

    # -- training ----------------------------------------------------------------

    def compute_loss(self, batch: Tuple[Array, Array]) -> float:
        token_ids, labels = batch
        embedded = self.embedding(np.asarray(token_ids))
        hidden = self.lstm(embedded)
        logits = self.classifier(hidden[:, -1, :])
        loss = self._loss(logits, np.asarray(labels))
        d_logits = self._loss.backward()
        d_last_h = self.classifier.backward(d_logits)
        d_hidden = np.zeros_like(hidden)
        d_hidden[:, -1, :] = d_last_h
        d_embedded = self.lstm.backward(d_hidden)
        self.embedding.backward(d_embedded)
        return loss

    # -- analysis hooks ------------------------------------------------------------

    def collect_hidden(self, token_ids: Array) -> List[Array]:
        """Hidden-state sequences per recurrent layer (for Figure 5)."""
        embedded = self.embedding(np.asarray(token_ids))
        return [self.lstm(embedded)]

    def layer_io(self, token_ids: Array) -> List[Tuple[LSTMLayer, Array]]:
        """(layer, layer input) pairs (for Figures 7-8 correlation)."""
        embedded = self.embedding(np.asarray(token_ids))
        return [(self.lstm, embedded)]
