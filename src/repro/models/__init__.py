"""The paper's benchmark networks (Table 1) and the benchmark harness."""

from repro.models.benchmark import Benchmark, MemoizedResult
from repro.models.sentiment_model import SentimentModel
from repro.models.specs import BENCHMARK_NAMES, PAPER_NETWORKS, NetworkSpec
from repro.models.speech_model import SpeechModel
from repro.models.translation_model import TranslationModel
from repro.models.zoo import (
    DeepSpeechBenchmark,
    EESENBenchmark,
    SentimentBenchmark,
    TranslationBenchmark,
    all_benchmarks,
    build_benchmark,
    load_benchmark,
)

__all__ = [
    "BENCHMARK_NAMES",
    "Benchmark",
    "DeepSpeechBenchmark",
    "EESENBenchmark",
    "MemoizedResult",
    "NetworkSpec",
    "PAPER_NETWORKS",
    "SentimentBenchmark",
    "SentimentModel",
    "SpeechModel",
    "TranslationBenchmark",
    "TranslationModel",
    "all_benchmarks",
    "build_benchmark",
    "load_benchmark",
]
