"""Framewise speech models: DeepSpeech2 (GRU) and EESEN (BiLSTM) stand-ins.

Both are deep recurrent stacks over feature frames with a per-frame
phoneme classifier; transcripts come from collapse decoding and quality
is WER — matching how the paper's two speech networks are scored.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.datasets.speech import collapse
from repro.metrics.wer import wer
from repro.nn.gru import GRULayer
from repro.nn.linear import Linear
from repro.nn.losses import SequenceCrossEntropy
from repro.nn.lstm import LSTMLayer
from repro.nn.module import Module
from repro.nn.rnn import Bidirectional, RNNStack

Array = np.ndarray


class SpeechModel(Module):
    """Deep RNN stack + framewise classifier, scored with WER."""

    def __init__(self, stack: RNNStack, num_phonemes: int, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.stack = stack
        self.classifier = Linear(stack.output_size, num_phonemes, rng=rng)
        self.num_phonemes = num_phonemes
        self._loss = SequenceCrossEntropy()

    @classmethod
    def deepspeech(
        cls,
        feature_dim: int,
        hidden_size: int,
        num_layers: int,
        num_phonemes: int,
        rng: np.random.Generator | None = None,
    ) -> "SpeechModel":
        """DeepSpeech2 stand-in: unidirectional GRU stack (Table 1)."""
        rng = rng if rng is not None else np.random.default_rng(0)
        layers: List[GRULayer] = []
        in_size = feature_dim
        for _ in range(num_layers):
            layers.append(GRULayer(in_size, hidden_size, rng=rng))
            in_size = hidden_size
        return cls(RNNStack(layers), num_phonemes, rng=rng)

    @classmethod
    def eesen(
        cls,
        feature_dim: int,
        hidden_size: int,
        num_bi_layers: int,
        num_phonemes: int,
        rng: np.random.Generator | None = None,
    ) -> "SpeechModel":
        """EESEN stand-in: bidirectional LSTM stack (Table 1)."""
        rng = rng if rng is not None else np.random.default_rng(0)
        layers: List[Bidirectional] = []
        in_size = feature_dim
        for _ in range(num_bi_layers):
            layers.append(Bidirectional.lstm(in_size, hidden_size, rng=rng))
            in_size = 2 * hidden_size
        return cls(RNNStack(layers), num_phonemes, rng=rng)

    # -- inference -------------------------------------------------------------

    def forward(self, frames: Array) -> Array:
        """Per-frame phoneme logits ``(B, T, P)``."""
        return self.classifier(self.stack(np.asarray(frames, dtype=np.float64)))

    __call__ = forward

    def transcribe(self, frames: Array) -> List[Tuple[int, ...]]:
        """Collapse-decoded transcripts for a batch of utterances."""
        frame_predictions = self.forward(frames).argmax(axis=-1)
        return [collapse(row) for row in frame_predictions]

    def evaluate(
        self, frames: Array, references: Sequence[Sequence[int]]
    ) -> float:
        """Corpus WER in percent (lower is better)."""
        return wer(list(references), self.transcribe(frames))

    # -- training ----------------------------------------------------------------

    def compute_loss(self, batch: Tuple[Array, Array]) -> float:
        frames, frame_labels = batch
        hidden = self.stack(np.asarray(frames, dtype=np.float64))
        logits = self.classifier(hidden)
        loss = self._loss(logits, np.asarray(frame_labels))
        d_logits = self._loss.backward()
        d_hidden = self.classifier.backward(d_logits)
        self.stack.backward(d_hidden)
        return loss

    # -- analysis hooks ------------------------------------------------------------

    def collect_hidden(self, frames: Array) -> List[Array]:
        """Per-direction hidden sequences for every recurrent layer."""
        out = np.asarray(frames, dtype=np.float64)
        collected: List[Array] = []
        for layer in self.stack.layers:
            out_next = layer(out)
            if isinstance(layer, Bidirectional):
                hidden = layer.hidden_size
                collected.append(out_next[:, :, :hidden])
                collected.append(out_next[:, :, hidden:])
            else:
                collected.append(out_next)
            out = out_next
        return collected

    def layer_io(
        self, frames: Array
    ) -> List[Tuple[Union[LSTMLayer, GRULayer], Array]]:
        """(cell layer, its input sequence) pairs for correlation analysis."""
        out = np.asarray(frames, dtype=np.float64)
        pairs: List[Tuple[Union[LSTMLayer, GRULayer], Array]] = []
        for layer in self.stack.layers:
            if isinstance(layer, Bidirectional):
                pairs.append((layer.fwd, out))
                pairs.append((layer.bwd, out[:, ::-1, :]))
            else:
                pairs.append((layer, out))
            out = layer(out)
        return pairs
