"""Encoder-decoder LSTM for the MNMT stand-in, scored with BLEU.

The decoder is conditioned on the encoder's final hidden state, which is
concatenated to every decoder input embedding (a fixed-context seq2seq,
Sutskever-style).  Greedy decoding drives the decoder through the layer
stepping interface, so it runs unchanged under the memoization engine.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.datasets.translation import BOS, EOS, NUM_SPECIALS
from repro.metrics.bleu import corpus_bleu
from repro.nn.embedding import Embedding
from repro.nn.linear import Linear
from repro.nn.losses import SequenceCrossEntropy
from repro.nn.lstm import LSTMLayer
from repro.nn.module import Module

Array = np.ndarray


class TranslationModel(Module):
    """Fixed-context sequence-to-sequence LSTM."""

    def __init__(
        self,
        src_vocab: int,
        tgt_vocab: int,
        embed_dim: int,
        hidden_size: int,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.src_embedding = Embedding(src_vocab, embed_dim, rng=rng)
        self.tgt_embedding = Embedding(tgt_vocab, embed_dim, rng=rng)
        self.encoder = LSTMLayer(embed_dim, hidden_size, rng=rng)
        self.decoder = LSTMLayer(embed_dim + hidden_size, hidden_size, rng=rng)
        self.output = Linear(hidden_size, tgt_vocab, rng=rng)
        self.hidden_size = hidden_size
        self.tgt_vocab = tgt_vocab
        self._loss = SequenceCrossEntropy()

    # -- encoding ---------------------------------------------------------------

    def encode(self, src_ids: Array) -> Array:
        """Context vector ``(B, H)``: the encoder's final hidden state."""
        embedded = self.src_embedding(np.asarray(src_ids))
        return self.encoder(embedded)[:, -1, :]

    def _decoder_inputs(self, dec_in_ids: Array, context: Array) -> Array:
        """Concatenate target embeddings with the broadcast context."""
        embedded = self.tgt_embedding(np.asarray(dec_in_ids))
        steps = embedded.shape[1]
        tiled = np.repeat(context[:, None, :], steps, axis=1)
        return np.concatenate([embedded, tiled], axis=-1)

    # -- training ---------------------------------------------------------------

    def forward(self, src_ids: Array, dec_in_ids: Array) -> Array:
        """Teacher-forced logits ``(B, L, tgt_vocab)``."""
        context = self.encode(src_ids)
        dec_x = self._decoder_inputs(dec_in_ids, context)
        return self.output(self.decoder(dec_x))

    __call__ = forward

    def compute_loss(self, batch: Tuple[Array, Array, Array]) -> float:
        src_ids, dec_in_ids, dec_tgt_ids = batch
        embedded_src = self.src_embedding(np.asarray(src_ids))
        enc_out = self.encoder(embedded_src)
        context = enc_out[:, -1, :]
        embedded_tgt = self.tgt_embedding(np.asarray(dec_in_ids))
        steps = embedded_tgt.shape[1]
        dec_x = np.concatenate(
            [embedded_tgt, np.repeat(context[:, None, :], steps, axis=1)], axis=-1
        )
        logits = self.output(self.decoder(dec_x))
        loss = self._loss(logits, np.asarray(dec_tgt_ids))

        d_logits = self._loss.backward()
        d_dec_h = self.output.backward(d_logits)
        d_dec_x = self.decoder.backward(d_dec_h)
        embed_dim = embedded_tgt.shape[-1]
        self.tgt_embedding.backward(d_dec_x[:, :, :embed_dim])
        d_context = d_dec_x[:, :, embed_dim:].sum(axis=1)
        d_enc_out = np.zeros_like(enc_out)
        d_enc_out[:, -1, :] = d_context
        d_embedded_src = self.encoder.backward(d_enc_out)
        self.src_embedding.backward(d_embedded_src)
        return loss

    # -- decoding ---------------------------------------------------------------

    def translate(
        self, src_ids: Array, max_len: int, early_stop: bool = True
    ) -> List[Tuple[int, ...]]:
        """Greedy decode; stops each hypothesis at EOS or ``max_len``.

        Args:
            src_ids: source token batch ``(B, S)``.
            max_len: decode-step budget per hypothesis.
            early_stop: abandon the loop once *every* row has emitted
                EOS.  The hypotheses are identical either way (finished
                rows never append tokens), but the step count then
                depends on the whole batch, which couples per-row
                memoization statistics across rows.  Sharded evaluation
                (:meth:`repro.models.benchmark.Benchmark.evaluate_memoized`)
                passes ``False`` so every row always sees exactly
                ``max_len`` decoder steps regardless of which other rows
                share its batch — the property that makes per-batch
                shard merges bitwise-identical to the whole-split run.
        """
        src_ids = np.asarray(src_ids)
        batch = src_ids.shape[0]
        context = self.encode(src_ids)
        state = self.decoder.start_state(batch)
        tokens = np.full(batch, BOS, dtype=np.int64)
        finished = np.zeros(batch, dtype=bool)
        hypotheses: List[List[int]] = [[] for _ in range(batch)]
        for _ in range(max_len):
            embedded = self.tgt_embedding(tokens)
            step_in = np.concatenate([embedded, context], axis=-1)
            h, state = self.decoder.step(step_in, state)
            logits = self.output(h)
            tokens = logits.argmax(axis=-1).astype(np.int64)
            for b in range(batch):
                if not finished[b]:
                    if tokens[b] == EOS:
                        finished[b] = True
                    else:
                        hypotheses[b].append(int(tokens[b]))
            if early_stop and finished.all():
                break
        return [tuple(h) for h in hypotheses]

    def translate_beam(
        self, src_ids: Array, max_len: int, beam_width: int = 4
    ) -> List[Tuple[int, ...]]:
        """Beam-search decode (the paper's MNMT uses beam search).

        Standard length-normalised log-probability beam search over the
        decoder, decoding one source sentence at a time.

        Note: beam search branches the decoder state, while the
        memoization engine keeps one linear per-neuron memo stream; under
        ``memoized(...)`` the beams would share that stream, which is not
        the hardware's per-sequence buffer semantics.  Memoized quality
        numbers therefore use greedy decoding (``evaluate`` default); the
        paper's beam search is modelled in the accelerator's effective
        sequence length instead (see ``repro.models.specs``).
        """
        if beam_width < 1:
            raise ValueError("beam_width must be >= 1")
        src_ids = np.asarray(src_ids)
        results: List[Tuple[int, ...]] = []
        for row in src_ids:
            results.append(self._beam_one(row[None, :], max_len, beam_width))
        return results

    def _beam_one(self, src: Array, max_len: int, width: int) -> Tuple[int, ...]:
        context = self.encode(src)  # (1, H)
        state = self.decoder.start_state(1)
        # Each beam: (neg mean logprob is applied at the end; store sum)
        beams = [((), 0.0, state, BOS, False)]  # tokens, logp, state, last, done
        for _ in range(max_len):
            if all(b[4] for b in beams):
                break
            candidates = []
            for tokens, logp, state, last, done in beams:
                if done:
                    candidates.append((tokens, logp, state, last, True))
                    continue
                embedded = self.tgt_embedding(np.array([last], dtype=np.int64))
                step_in = np.concatenate([embedded, context], axis=-1)
                h, new_state = self.decoder.step(step_in, state)
                logits = self.output(h)[0]
                shifted = logits - logits.max()
                log_probs = shifted - np.log(np.exp(shifted).sum())
                top = np.argsort(log_probs)[::-1][:width]
                for token in top:
                    token = int(token)
                    if token == EOS:
                        candidates.append(
                            (tokens, logp + log_probs[token], new_state, token, True)
                        )
                    else:
                        candidates.append(
                            (
                                tokens + (token,),
                                logp + log_probs[token],
                                new_state,
                                token,
                                False,
                            )
                        )
            # Length-normalised pruning.
            candidates.sort(
                key=lambda b: b[1] / max(len(b[0]), 1), reverse=True
            )
            beams = candidates[:width]
        best = max(beams, key=lambda b: b[1] / max(len(b[0]), 1))
        return best[0]

    def evaluate(
        self,
        src_ids: Array,
        references: Sequence[Sequence[int]],
        max_len: int | None = None,
        beam_width: int | None = None,
    ) -> float:
        """Corpus BLEU in percent (higher is better).

        Greedy decoding by default; pass ``beam_width`` for beam search.
        """
        if max_len is None:
            max_len = src_ids.shape[1] + NUM_SPECIALS
        if beam_width is None:
            hypotheses = self.translate(src_ids, max_len=max_len)
        else:
            hypotheses = self.translate_beam(
                src_ids, max_len=max_len, beam_width=beam_width
            )
        return corpus_bleu(list(references), hypotheses)

    # -- analysis hooks -----------------------------------------------------------

    def collect_hidden(self, src_ids: Array, dec_in_ids: Array) -> List[Array]:
        context = self.encode(src_ids)
        embedded_src = self.src_embedding(np.asarray(src_ids))
        enc_hidden = self.encoder(embedded_src)
        dec_hidden = self.decoder(self._decoder_inputs(dec_in_ids, context))
        return [enc_hidden, dec_hidden]

    def layer_io(
        self, src_ids: Array, dec_in_ids: Array
    ) -> List[Tuple[LSTMLayer, Array]]:
        embedded_src = self.src_embedding(np.asarray(src_ids))
        context = self.encode(src_ids)
        dec_x = self._decoder_inputs(dec_in_ids, context)
        return [(self.encoder, embedded_src), (self.decoder, dec_x)]
