"""Word error rate via Levenshtein edit distance.

The paper reports speech results as *WER loss*: the absolute increase in
WER over the unmodified network (Table 1 lists 10.24 WER for DeepSpeech2
and 23.8 for EESEN).  ``wer_loss`` implements that convention.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

Token = object  # hashable token: str, int, ...


def edit_distance(reference: Sequence[Token], hypothesis: Sequence[Token]) -> int:
    """Levenshtein distance (substitutions, insertions, deletions).

    Runs in O(len(ref) * len(hyp)) with a two-row numpy DP table.
    """
    ref = list(reference)
    hyp = list(hypothesis)
    if not ref:
        return len(hyp)
    if not hyp:
        return len(ref)
    previous = np.arange(len(hyp) + 1)
    current = np.empty(len(hyp) + 1, dtype=np.int64)
    for i, ref_tok in enumerate(ref, start=1):
        current[0] = i
        # substitution cost vector for this reference token
        subs = previous[:-1] + np.array(
            [0 if ref_tok == h else 1 for h in hyp], dtype=np.int64
        )
        for j in range(1, len(hyp) + 1):
            current[j] = min(subs[j - 1], previous[j] + 1, current[j - 1] + 1)
        previous, current = current, previous
    return int(previous[len(hyp)])


def wer(
    references: Sequence[Sequence[Token]], hypotheses: Sequence[Sequence[Token]]
) -> float:
    """Corpus-level WER in percent: total edits / total reference tokens."""
    if len(references) != len(hypotheses):
        raise ValueError(
            f"got {len(references)} references but {len(hypotheses)} hypotheses"
        )
    if not references:
        raise ValueError("need at least one reference")
    total_edits = 0
    total_tokens = 0
    for ref, hyp in zip(references, hypotheses):
        total_edits += edit_distance(ref, hyp)
        total_tokens += len(ref)
    if total_tokens == 0:
        raise ValueError("references contain no tokens")
    return 100.0 * total_edits / total_tokens


def wer_loss(base_wer: float, new_wer: float) -> float:
    """Absolute WER degradation relative to the baseline network.

    Never negative: a (noise-induced) improvement counts as zero loss,
    matching how the paper's loss axes start at 0.
    """
    return max(0.0, new_wer - base_wer)


def align_lengths(
    reference: Sequence[Token], hypothesis: Sequence[Token]
) -> Tuple[int, int, int]:
    """Convenience stats: ``(edits, ref_len, hyp_len)`` for one pair."""
    return edit_distance(reference, hypothesis), len(reference), len(hypothesis)
