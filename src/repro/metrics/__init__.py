"""Evaluation metrics used by the paper's four benchmarks.

- WER (word error rate) for the two speech networks (DeepSpeech2, EESEN),
- BLEU for the machine-translation network (MNMT),
- classification accuracy for IMDB sentiment,
- Pearson correlation for the BNN/RNN output-correlation analysis.

Each corpus metric also has a *mergeable accumulator*
(:mod:`repro.metrics.accumulators`) carrying its integer sufficient
statistics, which is what makes batch-sharded evaluation merge
bitwise-identically to the whole-split computation.
"""

from repro.metrics.accumulators import (
    ACCUMULATOR_KINDS,
    AccuracyAccumulator,
    BLEUAccumulator,
    MetricAccumulator,
    WERAccumulator,
    accumulator_from_payload,
)
from repro.metrics.accuracy import accuracy, accuracy_loss
from repro.metrics.bleu import bleu, bleu_loss, corpus_bleu
from repro.metrics.correlation import pearson
from repro.metrics.wer import edit_distance, wer, wer_loss

__all__ = [
    "ACCUMULATOR_KINDS",
    "AccuracyAccumulator",
    "BLEUAccumulator",
    "MetricAccumulator",
    "WERAccumulator",
    "accumulator_from_payload",
    "accuracy",
    "accuracy_loss",
    "bleu",
    "bleu_loss",
    "corpus_bleu",
    "edit_distance",
    "pearson",
    "wer",
    "wer_loss",
]
