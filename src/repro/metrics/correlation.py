"""Pearson correlation, used for the BNN/RNN output analysis (Fig. 7/8)."""

from __future__ import annotations

import numpy as np

Array = np.ndarray


def pearson(x: Array, y: Array) -> float:
    """Pearson correlation coefficient between two 1-D samples.

    Returns 0.0 when either sample is (numerically) constant — the
    convention used when histogramming per-neuron correlation factors,
    where a dead neuron carries no predictive signal.
    """
    x = np.asarray(x, dtype=np.float64).reshape(-1)
    y = np.asarray(y, dtype=np.float64).reshape(-1)
    if x.shape != y.shape:
        raise ValueError(f"length mismatch: {x.shape} vs {y.shape}")
    if x.size < 2:
        raise ValueError("need at least two samples")
    x_centered = x - x.mean()
    y_centered = y - y.mean()
    denom = np.sqrt(np.sum(x_centered**2) * np.sum(y_centered**2))
    if denom < 1e-300:
        return 0.0
    return float(np.sum(x_centered * y_centered) / denom)
