"""Corpus BLEU (Papineni et al. 2002) implemented from scratch.

Used for the MNMT benchmark (Table 1 lists 29.8 BLEU on WMT'15 En->De).
The implementation is the standard one: modified n-gram precision with
clipping, geometric mean over orders 1..4 and a brevity penalty; smoothing
adds one to numerator and denominator for orders > 1 (Lin & Och 2004) so
short synthetic corpora do not zero out.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence, Tuple

Token = object


def _ngrams(tokens: Sequence[Token], order: int) -> Counter:
    return Counter(
        tuple(tokens[i : i + order]) for i in range(len(tokens) - order + 1)
    )


def modified_precision(
    references: Sequence[Sequence[Token]],
    hypotheses: Sequence[Sequence[Token]],
    order: int,
) -> Tuple[int, int]:
    """Clipped n-gram matches and total hypothesis n-grams at ``order``."""
    matches = 0
    total = 0
    for ref, hyp in zip(references, hypotheses):
        hyp_counts = _ngrams(hyp, order)
        ref_counts = _ngrams(ref, order)
        total += sum(hyp_counts.values())
        matches += sum(
            min(count, ref_counts[gram]) for gram, count in hyp_counts.items()
        )
    return matches, total


def corpus_bleu(
    references: Sequence[Sequence[Token]],
    hypotheses: Sequence[Sequence[Token]],
    max_order: int = 4,
    smooth: bool = True,
) -> float:
    """Corpus-level BLEU in percent (0-100)."""
    if len(references) != len(hypotheses):
        raise ValueError(
            f"got {len(references)} references but {len(hypotheses)} hypotheses"
        )
    if not references:
        raise ValueError("need at least one sentence pair")
    if max_order < 1:
        raise ValueError("max_order must be >= 1")

    log_precisions = []
    for order in range(1, max_order + 1):
        matches, total = modified_precision(references, hypotheses, order)
        if smooth and order > 1:
            matches += 1
            total += 1
        if total == 0 or matches == 0:
            return 0.0
        log_precisions.append(math.log(matches / total))

    ref_len = sum(len(r) for r in references)
    hyp_len = sum(len(h) for h in hypotheses)
    if hyp_len == 0:
        return 0.0
    brevity = 1.0 if hyp_len > ref_len else math.exp(1.0 - ref_len / hyp_len)
    geo_mean = math.exp(sum(log_precisions) / max_order)
    return 100.0 * brevity * geo_mean


def bleu(
    references: Sequence[Sequence[Token]], hypotheses: Sequence[Sequence[Token]]
) -> float:
    """Alias for :func:`corpus_bleu` with default settings."""
    return corpus_bleu(references, hypotheses)


def bleu_loss(base_bleu: float, new_bleu: float) -> float:
    """Absolute BLEU degradation relative to the baseline network."""
    return max(0.0, base_bleu - new_bleu)
