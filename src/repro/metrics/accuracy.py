"""Classification accuracy (IMDB sentiment benchmark)."""

from __future__ import annotations

import numpy as np

Array = np.ndarray


def accuracy(predictions: Array, targets: Array) -> float:
    """Fraction of correct predictions, in percent.

    Accepts either hard class predictions (same shape as ``targets``) or
    per-class scores (``targets.shape + (C,)``), which are argmaxed.
    """
    predictions = np.asarray(predictions)
    targets = np.asarray(targets)
    if predictions.shape == targets.shape:
        hard = predictions
    elif predictions.shape[:-1] == targets.shape:
        hard = predictions.argmax(axis=-1)
    else:
        raise ValueError(
            f"predictions shape {predictions.shape} incompatible with "
            f"targets shape {targets.shape}"
        )
    if targets.size == 0:
        raise ValueError("need at least one target")
    return 100.0 * float(np.mean(hard == targets))


def accuracy_loss(base_accuracy: float, new_accuracy: float) -> float:
    """Absolute accuracy degradation relative to the baseline network."""
    return max(0.0, base_accuracy - new_accuracy)
