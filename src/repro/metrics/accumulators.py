"""Mergeable metric accumulators for batch-sharded evaluation.

Every quality metric used by the benchmarks (accuracy, corpus WER,
corpus BLEU) is a function of *sufficient statistics* that are plain
integer sums over the evaluated items: hit/total counts, edit-distance
and reference-length sums, clipped n-gram match counts.  An accumulator
carries those sums, so an evaluation can be partitioned into arbitrary
shards, each shard reduced independently, and the partials combined with
:meth:`MetricAccumulator.merge` — integer addition is exact, associative
and order-independent, so the merged ``finalize()`` is **bitwise
identical** to the whole-split computation in
:mod:`repro.metrics.accuracy` / :mod:`~repro.metrics.wer` /
:mod:`~repro.metrics.bleu` (the ``finalize`` implementations replicate
those modules' floating-point expressions verbatim).

Protocol::

    acc = WERAccumulator()
    acc.update(references_shard_0, hypotheses_shard_0)
    other = WERAccumulator()
    other.update(references_shard_1, hypotheses_shard_1)
    acc.merge(other)
    corpus_wer = acc.finalize()   # == wer(all_references, all_hypotheses)

Accumulators serialize to JSON-safe payloads (``to_payload`` /
:func:`accumulator_from_payload`) so the runner can ship shard partials
through the on-disk result cache and across worker processes.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import ClassVar, Dict, List, Mapping, Sequence, Type

import numpy as np

from repro.metrics.bleu import modified_precision
from repro.metrics.wer import edit_distance

Array = np.ndarray
Token = object


class MetricAccumulator(ABC):
    """Sufficient statistics of a corpus-level quality metric.

    Subclasses hold only exactly-mergeable state (integer sums), which
    makes :meth:`merge` associative and order-independent: merging any
    partition of the corpus, in any order and grouping, yields the same
    state — and therefore a bitwise-identical :meth:`finalize`.
    """

    #: Payload discriminator, unique per subclass.
    kind: ClassVar[str] = ""

    @abstractmethod
    def merge(self, other: "MetricAccumulator") -> None:
        """Fold ``other``'s statistics into this accumulator (in place)."""

    @abstractmethod
    def finalize(self) -> float:
        """The corpus-level metric value of everything accumulated.

        Raises:
            ValueError: if nothing has been accumulated.
        """

    @abstractmethod
    def state_payload(self) -> Dict[str, object]:
        """JSON-safe snapshot of the accumulator state."""

    @classmethod
    @abstractmethod
    def from_state(cls, state: Mapping[str, object]) -> "MetricAccumulator":
        """Inverse of :meth:`state_payload`."""

    # -- shared behaviour ----------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """Self-describing JSON-safe form (see :func:`accumulator_from_payload`)."""
        return {"kind": self.kind, "state": self.state_payload()}

    def copy(self) -> "MetricAccumulator":
        """Independent deep copy (merge-safe)."""
        return type(self).from_state(self.state_payload())

    def _check_mergeable(self, other: "MetricAccumulator") -> None:
        if type(other) is not type(self):
            raise TypeError(
                f"cannot merge {type(other).__name__} into {type(self).__name__}"
            )

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.state_payload() == other.state_payload()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.state_payload()})"


class AccuracyAccumulator(MetricAccumulator):
    """Classification accuracy as (correct, total) counts.

    ``finalize`` computes ``100.0 * (hits / total)`` — bitwise identical
    to :func:`repro.metrics.accuracy.accuracy`, whose ``np.mean`` over
    the correctness mask is exactly ``hits / total`` (both counts are
    integer-valued float64 well below 2**53).
    """

    kind = "accuracy"

    def __init__(self, hits: int = 0, total: int = 0):
        if hits < 0 or total < 0 or hits > total:
            raise ValueError(f"invalid counts: hits={hits}, total={total}")
        self.hits = int(hits)
        self.total = int(total)

    def update(self, predictions: Array, targets: Array) -> None:
        """Accumulate one batch (same prediction conventions as ``accuracy``)."""
        predictions = np.asarray(predictions)
        targets = np.asarray(targets)
        if predictions.shape == targets.shape:
            hard = predictions
        elif predictions.shape[:-1] == targets.shape:
            hard = predictions.argmax(axis=-1)
        else:
            raise ValueError(
                f"predictions shape {predictions.shape} incompatible with "
                f"targets shape {targets.shape}"
            )
        self.hits += int((hard == targets).sum())
        self.total += int(targets.size)

    def merge(self, other: MetricAccumulator) -> None:
        self._check_mergeable(other)
        self.hits += other.hits
        self.total += other.total

    def finalize(self) -> float:
        if self.total == 0:
            raise ValueError("need at least one target")
        # Parenthesised to match accuracy()'s 100.0 * float(np.mean(...)).
        return 100.0 * (self.hits / self.total)

    def state_payload(self) -> Dict[str, object]:
        return {"hits": self.hits, "total": self.total}

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "AccuracyAccumulator":
        return cls(hits=int(state["hits"]), total=int(state["total"]))


class WERAccumulator(MetricAccumulator):
    """Corpus WER as (edit-distance sum, reference-token sum).

    ``finalize`` computes ``100.0 * edits / ref_tokens`` with the exact
    association of :func:`repro.metrics.wer.wer`.
    """

    kind = "wer"

    def __init__(self, edits: int = 0, ref_tokens: int = 0, pairs: int = 0):
        if edits < 0 or ref_tokens < 0 or pairs < 0:
            raise ValueError("counts must be non-negative")
        self.edits = int(edits)
        self.ref_tokens = int(ref_tokens)
        self.pairs = int(pairs)

    def update(
        self,
        references: Sequence[Sequence[Token]],
        hypotheses: Sequence[Sequence[Token]],
    ) -> None:
        if len(references) != len(hypotheses):
            raise ValueError(
                f"got {len(references)} references but {len(hypotheses)} hypotheses"
            )
        for ref, hyp in zip(references, hypotheses):
            self.edits += edit_distance(ref, hyp)
            self.ref_tokens += len(ref)
            self.pairs += 1

    def merge(self, other: MetricAccumulator) -> None:
        self._check_mergeable(other)
        self.edits += other.edits
        self.ref_tokens += other.ref_tokens
        self.pairs += other.pairs

    def finalize(self) -> float:
        if self.pairs == 0:
            raise ValueError("need at least one reference")
        if self.ref_tokens == 0:
            raise ValueError("references contain no tokens")
        return 100.0 * self.edits / self.ref_tokens

    def state_payload(self) -> Dict[str, object]:
        return {
            "edits": self.edits,
            "ref_tokens": self.ref_tokens,
            "pairs": self.pairs,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "WERAccumulator":
        return cls(
            edits=int(state["edits"]),
            ref_tokens=int(state["ref_tokens"]),
            pairs=int(state["pairs"]),
        )


class BLEUAccumulator(MetricAccumulator):
    """Corpus BLEU as per-order clipped match/total counts plus lengths.

    ``finalize`` replicates :func:`repro.metrics.bleu.corpus_bleu`
    expression-for-expression (smoothing, early zero returns, brevity
    penalty, geometric mean), so a merged accumulator finalizes to the
    bitwise-identical score of the whole corpus.
    """

    kind = "bleu"

    def __init__(
        self,
        max_order: int = 4,
        smooth: bool = True,
        matches: Sequence[int] | None = None,
        totals: Sequence[int] | None = None,
        ref_len: int = 0,
        hyp_len: int = 0,
        pairs: int = 0,
    ):
        if max_order < 1:
            raise ValueError("max_order must be >= 1")
        self.max_order = int(max_order)
        self.smooth = bool(smooth)
        self.matches: List[int] = (
            [int(m) for m in matches] if matches is not None else [0] * max_order
        )
        self.totals: List[int] = (
            [int(t) for t in totals] if totals is not None else [0] * max_order
        )
        if len(self.matches) != self.max_order or len(self.totals) != self.max_order:
            raise ValueError("matches/totals must have max_order entries")
        self.ref_len = int(ref_len)
        self.hyp_len = int(hyp_len)
        self.pairs = int(pairs)

    def update(
        self,
        references: Sequence[Sequence[Token]],
        hypotheses: Sequence[Sequence[Token]],
    ) -> None:
        if len(references) != len(hypotheses):
            raise ValueError(
                f"got {len(references)} references but {len(hypotheses)} hypotheses"
            )
        for order in range(1, self.max_order + 1):
            matches, total = modified_precision(references, hypotheses, order)
            self.matches[order - 1] += matches
            self.totals[order - 1] += total
        self.ref_len += sum(len(r) for r in references)
        self.hyp_len += sum(len(h) for h in hypotheses)
        self.pairs += len(references)

    def merge(self, other: MetricAccumulator) -> None:
        self._check_mergeable(other)
        if other.max_order != self.max_order or other.smooth != self.smooth:
            raise ValueError(
                "cannot merge BLEU accumulators with different max_order/smooth"
            )
        for i in range(self.max_order):
            self.matches[i] += other.matches[i]
            self.totals[i] += other.totals[i]
        self.ref_len += other.ref_len
        self.hyp_len += other.hyp_len
        self.pairs += other.pairs

    def finalize(self) -> float:
        if self.pairs == 0:
            raise ValueError("need at least one sentence pair")
        log_precisions = []
        for order in range(1, self.max_order + 1):
            matches = self.matches[order - 1]
            total = self.totals[order - 1]
            if self.smooth and order > 1:
                matches += 1
                total += 1
            if total == 0 or matches == 0:
                return 0.0
            log_precisions.append(math.log(matches / total))
        if self.hyp_len == 0:
            return 0.0
        brevity = (
            1.0
            if self.hyp_len > self.ref_len
            else math.exp(1.0 - self.ref_len / self.hyp_len)
        )
        geo_mean = math.exp(sum(log_precisions) / self.max_order)
        return 100.0 * brevity * geo_mean

    def state_payload(self) -> Dict[str, object]:
        return {
            "max_order": self.max_order,
            "smooth": self.smooth,
            "matches": list(self.matches),
            "totals": list(self.totals),
            "ref_len": self.ref_len,
            "hyp_len": self.hyp_len,
            "pairs": self.pairs,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "BLEUAccumulator":
        return cls(
            max_order=int(state["max_order"]),
            smooth=bool(state["smooth"]),
            matches=state["matches"],
            totals=state["totals"],
            ref_len=int(state["ref_len"]),
            hyp_len=int(state["hyp_len"]),
            pairs=int(state["pairs"]),
        )


#: kind -> accumulator class, for payload round-trips.
ACCUMULATOR_KINDS: Dict[str, Type[MetricAccumulator]] = {
    cls.kind: cls
    for cls in (AccuracyAccumulator, WERAccumulator, BLEUAccumulator)
}


def accumulator_from_payload(payload: Mapping[str, object]) -> MetricAccumulator:
    """Rebuild an accumulator from its :meth:`~MetricAccumulator.to_payload`.

    Raises:
        KeyError, TypeError, ValueError: on malformed payloads — cache
            readers treat these as misses.
    """
    kind = payload["kind"]
    try:
        cls = ACCUMULATOR_KINDS[kind]
    except KeyError:
        raise ValueError(f"unknown accumulator kind {kind!r}") from None
    state = payload["state"]
    if not isinstance(state, Mapping):
        raise TypeError(f"accumulator state must be a mapping, got {type(state)}")
    return cls.from_state(state)
