"""Command-line interface: ``python -m repro <command>``.

Commands mirror the library's main entry points:

- ``sweep``     — threshold sweep on one network (Figures 1/16 style).
- ``e2e``       — full calibration -> test -> accelerator pipeline.
- ``simulate``  — accelerator what-if for a hypothetical reuse fraction.
- ``table1``    — print the benchmark-network table.
- ``area``      — print the area model.
- ``report``    — full markdown reproduction report.
- ``worker``    — drain a work queue (shared directory or coordinator).
- ``coordinator`` — serve a work queue over HTTP (no shared filesystem).
- ``serve``     — online fuzzy-memoized inference over HTTP (one warm
  model, live-retunable threshold).
- ``loadgen``   — drive a running ``serve`` endpoint with deterministic
  traffic; report latency percentiles and optionally verify served
  predictions bitwise against the offline batch path.
- ``top``       — live text dashboard for a ``serve`` endpoint or a
  ``coordinator`` (request rates, latency percentiles, reuse, queue
  depths, per-owner throughput); ``--watch`` refreshes in place.

``sweep``/``e2e``/``report`` take ``--backend
{serial,process,queue,http}``: ``serial`` evaluates in-process,
``process`` fans out over ``--jobs`` local worker processes, ``queue``
publishes every point into a ``--queue-dir`` that any number of
``repro worker`` processes (on any host sharing that filesystem) drain
concurrently, and ``http`` publishes them to a ``repro coordinator``
URL that any host with network reach can drain
(``repro worker --coordinator URL``).  Every backend prints
byte-identical output.
"""

from __future__ import annotations

import argparse
import json
from typing import Optional, Sequence, Tuple, Union

from repro.accel.area import DEFAULT_AREA_MODEL
from repro.accel.epur import compare
from repro.accel.trace import ReuseTrace
from repro.analysis.figures import render_table
from repro.analysis.sweep import end_to_end, network_sweep
from repro.core.engine import PREDICTOR_KINDS, MemoizationScheme
from repro.models.specs import BENCHMARK_NAMES, PAPER_NETWORKS
from repro.models.zoo import load_benchmark
from repro.runner import (
    BACKEND_NAMES,
    DEFAULT_CACHE_DIR,
    DEFAULT_COORDINATOR_PORT,
    DEFAULT_LEASE_TTL,
    DEFAULT_QUEUE_DIR,
    CoordinatorServer,
    ParallelRunner,
    RemoteWorkQueue,
    ResultCache,
    WorkQueue,
    default_owner,
    drain,
    evaluate_task,
    make_backend,
    read_token_file,
)
from repro.serve import (
    DEFAULT_COALESCE_MS,
    DEFAULT_SERVE_PORT,
    DEFAULT_SESSION_TTL,
    InferenceServer,
    ServeError,
    ServeState,
    parse_layer_thetas,
    run_loadgen,
)


def _add_queue_arguments(sub: argparse.ArgumentParser) -> None:
    """Work-queue knobs shared by the queue backend and ``worker``."""
    sub.add_argument(
        "--queue-dir",
        default=DEFAULT_QUEUE_DIR,
        help=(
            "work-queue directory shared with `repro worker` processes "
            f"(default: {DEFAULT_QUEUE_DIR})"
        ),
    )
    sub.add_argument(
        "--lease-ttl",
        type=float,
        default=DEFAULT_LEASE_TTL,
        help=(
            "seconds before a claimed task's lease expires and the task "
            f"is re-queued (default: {DEFAULT_LEASE_TTL:.0f})"
        ),
    )


def _add_transport_arguments(sub: argparse.ArgumentParser) -> None:
    """HTTP-coordinator knobs shared by the http backend and ``worker``."""
    sub.add_argument(
        "--coordinator",
        default=None,
        metavar="URL",
        help=(
            "coordinator base URL (http://HOST:PORT) for the http "
            "backend / a network-attached worker"
        ),
    )
    sub.add_argument(
        "--token-file",
        default=None,
        metavar="FILE",
        help="file holding the coordinator's shared auth token",
    )
    sub.add_argument(
        "--gzip",
        choices=("auto", "always", "off"),
        default="auto",
        help=(
            "compress request bodies to the coordinator: auto "
            "(default; large bodies, once the coordinator advertises "
            "support), always, or off"
        ),
    )


def _read_token(args) -> Optional[str]:
    if args.token_file is None:
        return None
    try:
        return read_token_file(args.token_file)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"--token-file: {exc}") from exc


def _add_runner_arguments(sub: argparse.ArgumentParser) -> None:
    """Execution knobs shared by the sweep-driven commands."""
    sub.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default=None,
        help=(
            "execution backend (default: process when --jobs > 1, "
            "serial otherwise); all backends print identical output"
        ),
    )
    sub.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the process backend (default: 1)",
    )
    sub.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "split each evaluation batch into N mergeable shards "
            "(default: 1; results are bitwise identical for any N)"
        ),
    )
    sub.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache",
    )
    sub.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    sub.add_argument(
        "--seed", type=int, default=0, help="benchmark seed (default: 0)"
    )
    _add_queue_arguments(sub)
    _add_transport_arguments(sub)
    sub.add_argument(
        "--no-drain",
        action="store_true",
        help=(
            "queue/http backends only: do not evaluate tasks in this "
            "process; rely entirely on external `repro worker` processes"
        ),
    )
    sub.add_argument(
        "--queue-timeout",
        type=float,
        default=None,
        help=(
            "queue/http backends only: abort after this many seconds "
            "without progress (default: wait forever)"
        ),
    )


def _build_runner(args) -> ParallelRunner:
    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    if args.shards < 1:
        raise SystemExit("--shards must be >= 1")
    if args.lease_ttl <= 0:
        raise SystemExit("--lease-ttl must be positive")
    backend_name = args.backend
    if backend_name is None:
        backend_name = "process" if args.jobs > 1 else "serial"
    if backend_name != "process" and args.jobs > 1:
        raise SystemExit(
            f"--backend {backend_name} is incompatible with --jobs > 1 "
            "(--jobs only parameterises the process backend)"
        )
    if backend_name == "http" and not args.coordinator:
        raise SystemExit("--backend http requires --coordinator URL")
    backend = make_backend(
        backend_name,
        jobs=args.jobs,
        queue_dir=args.queue_dir,
        lease_ttl=args.lease_ttl,
        drain=not args.no_drain,
        timeout=args.queue_timeout,
        reuse_results=not args.no_cache,
        coordinator=args.coordinator,
        token=_read_token(args),
        gzip_mode=args.gzip,
    )
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return ParallelRunner(cache=cache, backend=backend)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Neuron-level fuzzy memoization in RNNs (MICRO-52 2019)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser("sweep", help="threshold sweep on one network")
    sweep.add_argument("network", choices=BENCHMARK_NAMES)
    sweep.add_argument(
        "--predictor", choices=PREDICTOR_KINDS, default="bnn"
    )
    sweep.add_argument("--no-throttle", action="store_true")
    sweep.add_argument(
        "--thetas",
        type=float,
        nargs="+",
        default=[0.0, 0.05, 0.1, 0.2, 0.3, 0.5],
    )
    sweep.add_argument("--scale", choices=("tiny", "bench"), default="tiny")
    _add_runner_arguments(sweep)

    e2e = sub.add_parser("e2e", help="calibrate, test, project onto E-PUR")
    e2e.add_argument("network", choices=BENCHMARK_NAMES)
    e2e.add_argument("--loss-target", type=float, default=1.0)
    e2e.add_argument("--scale", choices=("tiny", "bench"), default="tiny")
    _add_runner_arguments(e2e)

    simulate = sub.add_parser(
        "simulate", help="accelerator what-if at a given reuse fraction"
    )
    simulate.add_argument("network", choices=BENCHMARK_NAMES)
    simulate.add_argument("--reuse", type=float, required=True)

    sub.add_parser("table1", help="print the Table 1 network specs")
    sub.add_parser("area", help="print the area model")

    report = sub.add_parser("report", help="full markdown reproduction report")
    report.add_argument("--scale", choices=("tiny", "bench"), default="tiny")
    report.add_argument("--loss-target", type=float, default=1.0)
    report.add_argument(
        "--networks", nargs="+", default=list(BENCHMARK_NAMES)
    )
    _add_runner_arguments(report)

    worker = sub.add_parser(
        "worker",
        help="drain a work queue (shared directory or HTTP coordinator)",
        description=(
            "Claim and evaluate tasks until the queue stays empty for "
            "--idle-timeout seconds (or forever without it).  The queue "
            "is either a --queue-dir shared over a filesystem, or a "
            "--coordinator URL served by `repro coordinator` (no shared "
            "filesystem needed).  Run any number of workers on any "
            "hosts; crashed workers' tasks are re-queued when their "
            "lease expires.  Exits non-zero if any task this run was "
            "quarantined under failed/, so deployment scripts can "
            "detect poison tasks."
        ),
    )
    _add_queue_arguments(worker)
    _add_transport_arguments(worker)
    worker.add_argument(
        "--max-tasks",
        type=int,
        default=None,
        help="exit after completing this many tasks (default: unlimited)",
    )
    worker.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        help=(
            "exit after this many seconds without claimable work "
            "(default: run forever)"
        ),
    )
    worker.add_argument(
        "--poll-interval",
        type=float,
        default=0.1,
        help="seconds between queue polls when idle (default: 0.1)",
    )

    coordinator = sub.add_parser(
        "coordinator",
        help="serve a work queue over HTTP (no shared filesystem needed)",
        description=(
            "Wrap --queue-dir in an HTTP coordinator so any machine "
            "that can reach this URL joins the fleet: workers run "
            "`repro worker --coordinator http://HOST:PORT`, submitters "
            "run `repro sweep ... --backend http --coordinator ...`.  "
            "Queue state lives on disk, so a restarted coordinator "
            "resumes exactly where the old one stopped.  Pass "
            "--token-file to require `Authorization: Bearer` on every "
            "request."
        ),
    )
    _add_queue_arguments(coordinator)
    coordinator.add_argument(
        "--host",
        default="0.0.0.0",
        help="bind address (default: 0.0.0.0 — all interfaces)",
    )
    coordinator.add_argument(
        "--port",
        type=int,
        default=DEFAULT_COORDINATOR_PORT,
        help=f"listen port (default: {DEFAULT_COORDINATOR_PORT}; 0 = ephemeral)",
    )
    coordinator.add_argument(
        "--token-file",
        default=None,
        metavar="FILE",
        help=(
            "file holding the shared auth token workers must present "
            "(strongly recommended off-loopback)"
        ),
    )

    serve = sub.add_parser(
        "serve",
        help="online fuzzy-memoized inference over HTTP",
        description=(
            "Train (or load) one zoo network, wrap it with fuzzy "
            "memoization once, and answer inference requests over HTTP "
            "with the memo buffers warm across requests.  The reuse "
            "threshold is retunable live (globally and per layer) via "
            "PUT /api/v1/theta; /api/v1/metrics reports request "
            "counters, a latency histogram and the running reuse rate.  "
            "Pass --token-file to require `Authorization: Bearer` on "
            "every request."
        ),
    )
    serve.add_argument("network", choices=BENCHMARK_NAMES)
    serve.add_argument("--scale", choices=("tiny", "bench"), default="tiny")
    serve.add_argument(
        "--seed", type=int, default=0, help="benchmark seed (default: 0)"
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: 127.0.0.1 — loopback only)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=DEFAULT_SERVE_PORT,
        help=f"listen port (default: {DEFAULT_SERVE_PORT}; 0 = ephemeral)",
    )
    serve.add_argument(
        "--token-file",
        default=None,
        metavar="FILE",
        help="file holding the shared auth token clients must present",
    )
    serve.add_argument(
        "--theta",
        type=float,
        default=0.05,
        help="initial reuse threshold (default: 0.05)",
    )
    serve.add_argument(
        "--predictor", choices=PREDICTOR_KINDS, default="bnn"
    )
    serve.add_argument("--no-throttle", action="store_true")
    serve.add_argument(
        "--layer-theta",
        action="append",
        default=[],
        metavar="LAYER=THETA",
        help=(
            "per-layer threshold override (repeatable), e.g. "
            "--layer-theta stack.layer0=0.1"
        ),
    )
    serve.add_argument(
        "--replicas",
        type=int,
        default=1,
        metavar="N",
        help=(
            "independently-wrapped compute copies of the model in the "
            "pool; K concurrent requests run up to N forwards in "
            "parallel (default: 1)"
        ),
    )
    serve.add_argument(
        "--coalesce-ms",
        type=float,
        default=DEFAULT_COALESCE_MS,
        metavar="MS",
        help=(
            "gather window for coalescing equal-shape rows from waiting "
            "requests into one forward while all replicas are busy; 0 "
            f"disables coalescing (default: {DEFAULT_COALESCE_MS})"
        ),
    )
    serve.add_argument(
        "--session-ttl",
        type=float,
        default=DEFAULT_SESSION_TTL,
        metavar="SECONDS",
        help=(
            "evict streaming sessions idle this long; <= 0 disables "
            f"eviction (default: {DEFAULT_SESSION_TTL:.0f})"
        ),
    )

    loadgen = sub.add_parser(
        "loadgen",
        help="drive a running `repro serve` endpoint; print a JSON summary",
        description=(
            "Send deterministic test-split traffic at a running server "
            "and report client-side latency percentiles (p50/p95/p99), "
            "throughput, and the server's reuse metrics.  With --verify, "
            "train the same benchmark locally (bitwise the server's "
            "weights) and diff every served prediction against the "
            "offline batch path under the server's live scheme."
        ),
    )
    loadgen.add_argument("network", choices=BENCHMARK_NAMES)
    loadgen.add_argument(
        "--url", required=True, help="server base URL (http://HOST:PORT)"
    )
    loadgen.add_argument("--scale", choices=("tiny", "bench"), default="tiny")
    loadgen.add_argument(
        "--seed", type=int, default=0, help="benchmark seed (default: 0)"
    )
    loadgen.add_argument(
        "--requests",
        type=int,
        default=32,
        help="number of requests to send (default: 32)",
    )
    loadgen.add_argument(
        "--concurrency",
        type=int,
        default=4,
        help="client threads (default: 4)",
    )
    loadgen.add_argument(
        "--batch",
        type=int,
        default=4,
        help="rows per request (default: 4)",
    )
    loadgen.add_argument(
        "--theta",
        type=float,
        default=None,
        help="PUT this threshold to the server before the run",
    )
    loadgen.add_argument(
        "--retune-theta",
        type=float,
        default=None,
        metavar="THETA",
        help=(
            "fire a live PUT /theta to this threshold once about half "
            "the requests have completed; --verify still checks every "
            "row bitwise, per scheme version"
        ),
    )
    loadgen.add_argument(
        "--token-file",
        default=None,
        metavar="FILE",
        help="file holding the server's shared auth token",
    )
    loadgen.add_argument(
        "--verify",
        action="store_true",
        help=(
            "diff served predictions bitwise against the local offline "
            "batch path (trains the benchmark locally first)"
        ),
    )
    loadgen.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="also write the JSON summary report to this file",
    )

    top = sub.add_parser(
        "top",
        help="live text dashboard for a serve endpoint or coordinator",
        description=(
            "Scrape a running `repro serve` (/api/v1/metrics) or "
            "`repro coordinator` (/api/v1/stats) and render a compact "
            "text dashboard: request rates, latency percentiles, pool "
            "occupancy and reuse for the serving tier; queue depths and "
            "per-owner throughput for the coordinator.  With --watch, "
            "refresh in place until interrupted."
        ),
    )
    top.add_argument(
        "--url", required=True, help="server base URL (http://HOST:PORT)"
    )
    top.add_argument(
        "--token-file",
        default=None,
        metavar="FILE",
        help="file holding the server's shared auth token",
    )
    top.add_argument(
        "--watch",
        action="store_true",
        help="refresh the dashboard in place until Ctrl-C",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between --watch refreshes (default: 2)",
    )
    return parser


def _cmd_sweep(args) -> str:
    # trained=False: on a warm cache (or with --jobs) no training is
    # needed in this process, so defer it to the first cache miss.
    bench = load_benchmark(
        args.network, scale=args.scale, seed=args.seed, trained=False
    )
    scheme = MemoizationScheme(
        predictor=args.predictor, throttle=not args.no_throttle
    )
    with _build_runner(args) as runner:
        sweep = network_sweep(
            bench,
            scheme,
            thetas=tuple(args.thetas),
            runner=runner,
            shards=args.shards,
        )
    rows = [
        [p.theta, f"{p.loss:.2f}", f"{100 * p.reuse:.1f}%"] for p in sweep.points
    ]
    metric = bench.spec.quality_metric
    return render_table(["theta", f"{metric} loss", "reuse"], rows)


def _cmd_e2e(args) -> str:
    bench = load_benchmark(
        args.network, scale=args.scale, seed=args.seed, trained=False
    )
    with _build_runner(args) as runner:
        result = end_to_end(
            bench,
            loss_target=args.loss_target,
            runner=runner,
            shards=args.shards,
        )
    rows = [
        ["calibrated theta", result.theta],
        ["test quality loss", f"{result.quality_loss:.2f}"],
        ["computation reuse", f"{result.reuse_percent:.1f}%"],
        ["energy savings", f"{result.energy_savings_percent:.1f}%"],
        ["speedup", f"{result.speedup:.2f}x"],
    ]
    return render_table(["quantity", "value"], rows)


def _cmd_simulate(args) -> str:
    if not 0.0 <= args.reuse <= 1.0:
        raise SystemExit("--reuse must be in [0, 1]")
    spec = PAPER_NETWORKS[args.network]
    comparison = compare(spec, ReuseTrace.uniform(args.reuse, spec.layers))
    rows = [
        ["network", spec.name],
        ["reuse", f"{comparison.reuse_percent:.1f}%"],
        ["energy savings", f"{comparison.energy_savings_percent:.1f}%"],
        ["speedup", f"{comparison.speedup:.2f}x"],
    ]
    return render_table(["quantity", "value"], rows)


def _cmd_table1(args) -> str:
    del args
    rows = [
        [
            spec.name,
            spec.app_domain,
            spec.cell_type,
            spec.layers,
            spec.neurons,
            f"{spec.base_quality} {spec.quality_metric}",
            f"{spec.paper_reuse_percent}%",
        ]
        for spec in PAPER_NETWORKS.values()
    ]
    return render_table(
        ["network", "domain", "cell", "layers", "neurons", "base", "reuse@1%"],
        rows,
    )


def _cmd_report(args) -> str:
    from repro.analysis.report import generate_report

    with _build_runner(args) as runner:
        return generate_report(
            scale=args.scale,
            loss_target=args.loss_target,
            networks=tuple(args.networks),
            runner=runner,
            seed=args.seed,
            shards=args.shards,
        )


def _cmd_worker(args) -> Tuple[str, int]:
    if args.lease_ttl <= 0:
        raise SystemExit("--lease-ttl must be positive")
    if args.max_tasks is not None and args.max_tasks < 1:
        raise SystemExit("--max-tasks must be >= 1")
    if args.coordinator:
        queue = RemoteWorkQueue(
            args.coordinator, token=_read_token(args), gzip_mode=args.gzip
        )
    else:
        queue = WorkQueue(args.queue_dir, lease_ttl=args.lease_ttl)
    owner = default_owner()
    print(f"worker {owner} draining {queue.location}", flush=True)
    quarantined = 0

    def counting_evaluate(payload):
        # Count only *this worker's* quarantines (handler exceptions it
        # raised itself): a fleet-wide failed_count() delta would blame
        # every concurrently-draining worker for one poison task.
        nonlocal quarantined
        try:
            return evaluate_task(payload)
        except Exception:
            quarantined += 1
            raise

    completed = drain(
        queue,
        counting_evaluate,
        max_tasks=args.max_tasks,
        idle_timeout=args.idle_timeout,
        poll_interval=args.poll_interval,
    )
    summary = f"worker {owner}: drained {completed} task(s) from {queue.location}"
    if quarantined:
        # Non-zero exit: scripted deployments must be able to see from
        # the exit code alone that poison tasks are sitting in failed/.
        summary += f" ({quarantined} task(s) quarantined in failed/)"
    return summary, 1 if quarantined else 0


def _cmd_coordinator(args) -> str:
    if args.lease_ttl <= 0:
        raise SystemExit("--lease-ttl must be positive")
    token = _read_token(args)
    queue = WorkQueue(args.queue_dir, lease_ttl=args.lease_ttl)
    server = CoordinatorServer(
        queue, host=args.host, port=args.port, token=token
    )
    auth = "token auth" if token else "NO auth -- trusted networks only"
    print(
        f"coordinator serving queue {args.queue_dir} at {server.url} "
        f"({auth}); Ctrl-C to stop",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    stats = queue.stats()
    return (
        f"coordinator stopped; queue {args.queue_dir}: "
        f"{stats['pending']} pending, {stats['active']} active, "
        f"{stats['failed']} failed, {stats['results']} result(s)"
    )


def _cmd_serve(args) -> str:
    token = _read_token(args)
    try:
        scheme = MemoizationScheme(
            theta=args.theta,
            predictor=args.predictor,
            throttle=not args.no_throttle,
            layer_thetas=parse_layer_thetas(args.layer_theta) or None,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    print(
        f"loading {args.network} ({args.scale}, seed {args.seed}); "
        "training if needed...",
        flush=True,
    )
    bench = load_benchmark(args.network, scale=args.scale, seed=args.seed)
    try:
        state = ServeState(
            bench,
            scheme,
            replicas=args.replicas,
            coalesce_ms=args.coalesce_ms,
            session_ttl=args.session_ttl,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    server = InferenceServer(state, host=args.host, port=args.port, token=token)
    auth = "token auth" if token else "NO auth -- trusted networks only"
    print(
        f"serving {args.network} at {server.url} (theta={scheme.theta}, "
        f"predictor={scheme.predictor}, {state.replica_count} replica(s), "
        f"coalesce {state.coalesce_ms:g} ms, {auth}); Ctrl-C to stop",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return (
        f"serve stopped; {state.infer_requests} inference request(s), "
        f"{state.rows_served} row(s), "
        f"{100.0 * state.aggregate_stats().reuse_fraction():.1f}% reuse"
    )


def _cmd_loadgen(args) -> Tuple[str, int]:
    try:
        summary = run_loadgen(
            args.url,
            args.network,
            scale=args.scale,
            seed=args.seed,
            requests=args.requests,
            concurrency=args.concurrency,
            batch=args.batch,
            token=_read_token(args),
            verify=args.verify,
            theta=args.theta,
            retune_theta=args.retune_theta,
            out=args.out,
        )
    except (ServeError, ValueError) as exc:
        raise SystemExit(f"loadgen: {exc}") from exc
    failed = bool(summary["errors"]) or (
        args.verify and summary["verify"]["mismatches"] > 0
    )
    return json.dumps(summary, indent=2), 1 if failed else 0


def _cmd_top(args) -> Union[str, Tuple[str, int]]:
    # Lazy import: the dashboard renderer is the one obs module the
    # library tiers never load.
    from repro.obs.top import TopError, run_top

    if args.interval <= 0:
        raise SystemExit("--interval must be positive")
    token = _read_token(args)
    if not args.watch:
        try:
            return run_top(args.url, token=token)
        except TopError as exc:
            raise SystemExit(f"top: {exc}") from exc
    import time as _time

    try:
        while True:
            try:
                dashboard = run_top(args.url, token=token)
            except TopError as exc:
                dashboard = f"top: {exc}"
            # Clear screen + home, like watch(1).
            print("\x1b[2J\x1b[H" + dashboard, flush=True)
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return ""


def _cmd_area(args) -> str:
    del args
    model = DEFAULT_AREA_MODEL
    rows = [[name, f"{mm2:.1f}"] for name, mm2 in model.breakdown().items()]
    rows.append(["E-PUR", f"{model.baseline_mm2:.1f}"])
    rows.append(["E-PUR+BM", f"{model.memoized_mm2:.1f}"])
    return render_table(["component", "mm^2"], rows)


_COMMANDS = {
    "sweep": _cmd_sweep,
    "e2e": _cmd_e2e,
    "simulate": _cmd_simulate,
    "table1": _cmd_table1,
    "area": _cmd_area,
    "report": _cmd_report,
    "worker": _cmd_worker,
    "coordinator": _cmd_coordinator,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "top": _cmd_top,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    outcome: Union[str, Tuple[str, int]] = _COMMANDS[args.command](args)
    text, code = outcome if isinstance(outcome, tuple) else (outcome, 0)
    print(text)
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
