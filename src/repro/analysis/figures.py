"""Plain-text rendering of the reproduced tables and figure series.

The benches print the same rows/series the paper plots; these helpers
keep the formatting consistent (fixed-width columns, one header row).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width text table."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    name: str, xs: Sequence[float], ys: Sequence[float], unit: str = ""
) -> str:
    """One labelled (x, y) series as a compact text block."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    pairs = "  ".join(f"({_fmt(x)}, {_fmt(y)})" for x, y in zip(xs, ys))
    suffix = f" [{unit}]" if unit else ""
    return f"{name}{suffix}: {pairs}"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
