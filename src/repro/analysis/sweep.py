"""Threshold sweeps and end-to-end (functional -> accelerator) pipelines.

``end_to_end`` is the full methodology of §3.2.1 + §5 for one network:

1. sweep thresholds on the *calibration* split and pick the best theta
   within the accuracy-loss budget;
2. evaluate that theta on the test split (quality loss + reuse trace);
3. feed the measured reuse into the E-PUR model for energy and speedup.

Execution routes through :mod:`repro.runner`: each sweep point becomes a
:class:`~repro.runner.SweepJob` point that a
:class:`~repro.runner.ParallelRunner` can resolve from its on-disk cache
or hand to any execution backend — serial in-process, a local process
pool, or the multi-host work queue (build the runner with
``ParallelRunner(backend=make_backend("queue", ...))``).  The default
runner is serial and uncached, so calling these functions directly
behaves exactly like the pre-runner in-process path; every backend
produces bitwise-identical sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.accel.config import DEFAULT_CONFIG, EPURConfig
from repro.accel.epur import Comparison, compare
from repro.accel.trace import ReuseTrace
from repro.core.calibration import SweepPoint, ThresholdSweep
from repro.core.engine import MemoizationScheme
from repro.models.benchmark import Benchmark, MemoizedResult
from repro.runner import DEFAULT_THETAS, ParallelRunner, SerialBackend, SweepJob

__all__ = [
    "DEFAULT_THETAS",
    "EndToEndResult",
    "end_to_end",
    "frontier",
    "network_sweep",
]

#: Serial, uncached runner used when callers do not supply one.
_DEFAULT_RUNNER = ParallelRunner(cache=None, backend=SerialBackend())


def network_sweep(
    benchmark: Benchmark,
    scheme: MemoizationScheme,
    thetas: Sequence[float] = DEFAULT_THETAS,
    calibration: bool = False,
    runner: Optional[ParallelRunner] = None,
    shards: int = 1,
) -> ThresholdSweep:
    """Loss/reuse at every threshold for one network and predictor.

    ``shards > 1`` splits every threshold's evaluation per-batch
    (:class:`~repro.runner.EvalShardJob`); the merged sweep is bitwise
    identical to the unsharded serial path for any shard count.
    """
    runner = runner if runner is not None else _DEFAULT_RUNNER
    job = SweepJob.from_benchmark(benchmark, scheme, thetas, calibration)
    return runner.sweep(job, benchmark=benchmark, shards=shards)


def frontier(
    sweep: ThresholdSweep, loss_targets: Sequence[float]
) -> Dict[float, Optional[SweepPoint]]:
    """Best (highest-reuse) sweep point for each loss budget."""
    return {target: sweep.best_under_loss(target) for target in loss_targets}


@dataclass(frozen=True)
class EndToEndResult:
    """One network's row in Figures 17-19."""

    network: str
    loss_target: float
    theta: float
    calibration_sweep: ThresholdSweep
    test_result: MemoizedResult
    comparison: Comparison

    @property
    def reuse_percent(self) -> float:
        return self.test_result.reuse_percent

    @property
    def quality_loss(self) -> float:
        return self.test_result.quality_loss

    @property
    def energy_savings_percent(self) -> float:
        return self.comparison.energy_savings_percent

    @property
    def speedup(self) -> float:
        return self.comparison.speedup


def end_to_end(
    benchmark: Benchmark,
    loss_target: float,
    scheme: MemoizationScheme = MemoizationScheme(),
    thetas: Sequence[float] = DEFAULT_THETAS,
    config: EPURConfig = DEFAULT_CONFIG,
    runner: Optional[ParallelRunner] = None,
    shards: int = 1,
) -> EndToEndResult:
    """The full §3.2.1 + §5 pipeline for one network and loss budget.

    ``shards > 1`` shards both the calibration sweep and the final test
    evaluation per-batch; results are bitwise identical either way.
    """
    runner = runner if runner is not None else _DEFAULT_RUNNER
    job = SweepJob.from_benchmark(benchmark, scheme, thetas, calibration=True)
    calibration_sweep = runner.sweep(job, benchmark=benchmark, shards=shards)
    best = calibration_sweep.best_under_loss(loss_target)
    theta = best.theta if best is not None else min(thetas)

    test_job = SweepJob.from_benchmark(
        benchmark, scheme.with_theta(theta), (theta,), calibration=False
    )
    test_result = runner.run(test_job, benchmark=benchmark, shards=shards)[0]
    trace = ReuseTrace.from_stats(test_result.stats, benchmark.spec)
    comparison = compare(benchmark.spec, trace, config=config)
    return EndToEndResult(
        network=benchmark.name,
        loss_target=loss_target,
        theta=theta,
        calibration_sweep=calibration_sweep,
        test_result=test_result,
        comparison=comparison,
    )
