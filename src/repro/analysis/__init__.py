"""Experiment-level orchestration: sweeps, frontiers, figure rendering."""

from repro.analysis.figures import render_series, render_table
from repro.analysis.report import generate_report
from repro.analysis.sweep import (
    EndToEndResult,
    end_to_end,
    frontier,
    network_sweep,
)

__all__ = [
    "EndToEndResult",
    "end_to_end",
    "frontier",
    "generate_report",
    "network_sweep",
    "render_series",
    "render_table",
]
