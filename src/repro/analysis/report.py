"""One-shot reproduction report: every headline quantity in one document.

``generate_report`` trains (or reuses) the four benchmarks, runs the
calibration -> test -> accelerator pipeline per network, and renders a
markdown document with the Table 1 comparison, the Figure 17/19
quantities and the area story.  The CLI exposes it as
``python -m repro report``.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.accel.area import DEFAULT_AREA_MODEL
from repro.analysis.figures import render_table
from repro.analysis.sweep import DEFAULT_THETAS, end_to_end
from repro.models.specs import BENCHMARK_NAMES, PAPER_NETWORKS
from repro.models.zoo import load_benchmark

PAPER_HEADLINES = {
    "avg_savings_percent_at_1pct": 18.5,
    "avg_reuse_percent_at_1pct": 24.2,
    "avg_speedup_at_1pct": 1.35,
}


def generate_report(
    scale: str = "bench",
    loss_target: float = 1.0,
    thetas: Sequence[float] = DEFAULT_THETAS,
    networks: Sequence[str] = BENCHMARK_NAMES,
    runner=None,
    seed: int = 0,
    shards: int = 1,
) -> str:
    """Markdown reproduction report over ``networks``.

    Args:
        scale: benchmark scale ("tiny" for a fast smoke report).
        loss_target: the accuracy-loss budget for calibration.
        thetas: threshold exploration grid.
        networks: which Table 1 networks to include.
        runner: optional :class:`repro.runner.ParallelRunner`; lets the
            report share the sweep cache with the figure benches and
            select an execution backend (serial, local process pool, or
            the multi-host work queue) — the rendered report is
            byte-identical under every backend.
        seed: benchmark construction/training seed.
        shards: per-batch evaluation shards per sweep point (results
            are bitwise identical for any value).
    """
    if not networks:
        raise ValueError("need at least one network")
    unknown = set(networks) - set(BENCHMARK_NAMES)
    if unknown:
        raise KeyError(f"unknown networks: {sorted(unknown)}")

    results = []
    for name in networks:
        bench = load_benchmark(name, scale=scale, seed=seed, trained=False)
        bench.ensure_trained()  # the Table 1 rows quote base_quality
        results.append(
            (
                bench,
                end_to_end(
                    bench,
                    loss_target,
                    thetas=thetas,
                    runner=runner,
                    shards=shards,
                ),
            )
        )

    lines: List[str] = [
        "# Reproduction report — Neuron-Level Fuzzy Memoization in RNNs",
        "",
        f"Scale: `{scale}` — loss budget: {loss_target}% — thresholds: "
        f"{list(thetas)}",
        "",
        "## Networks (Table 1)",
        "",
    ]
    rows = []
    for bench, e2e in results:
        spec = PAPER_NETWORKS[bench.name]
        rows.append(
            [
                bench.name,
                f"{spec.base_quality} {spec.quality_metric}",
                f"{bench.base_quality:.2f}",
                f"{spec.paper_reuse_percent}%",
                f"{e2e.reuse_percent:.1f}%",
            ]
        )
    lines.append(
        render_table(
            ["network", "paper base", "our base", "paper reuse", "our reuse"],
            rows,
        )
    )

    lines += ["", "## Accelerator projection (Figures 17 and 19)", ""]
    rows = [
        [
            e2e.network,
            e2e.theta,
            f"{e2e.quality_loss:.2f}",
            f"{e2e.reuse_percent:.1f}%",
            f"{e2e.energy_savings_percent:.1f}%",
            f"{e2e.speedup:.2f}x",
        ]
        for _, e2e in results
    ]
    lines.append(
        render_table(
            ["network", "theta", "test loss", "reuse", "energy savings", "speedup"],
            rows,
        )
    )

    save = float(np.mean([e.energy_savings_percent for _, e in results]))
    reuse = float(np.mean([e.reuse_percent for _, e in results]))
    speed = float(np.mean([e.speedup for _, e in results]))
    lines += [
        "",
        f"Averages: savings {save:.1f}% (paper "
        f"{PAPER_HEADLINES['avg_savings_percent_at_1pct']}%), reuse "
        f"{reuse:.1f}% (paper {PAPER_HEADLINES['avg_reuse_percent_at_1pct']}%), "
        f"speedup {speed:.2f}x (paper "
        f"{PAPER_HEADLINES['avg_speedup_at_1pct']}x).",
        "",
        "## Area (§5)",
        "",
        f"E-PUR {DEFAULT_AREA_MODEL.baseline_mm2:.1f} mm² -> E-PUR+BM "
        f"{DEFAULT_AREA_MODEL.memoized_mm2:.1f} mm² "
        f"({100 * DEFAULT_AREA_MODEL.overhead_fraction:.1f}% overhead).",
        "",
        "See EXPERIMENTS.md for per-figure analysis and deviations.",
    ]
    return "\n".join(lines)
