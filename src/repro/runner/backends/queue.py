"""Multi-host execution through the file-based work queue.

The submitting process publishes payloads as tasks in a shared
:class:`~repro.runner.queue.WorkQueue` directory and collects results
from the queue's content-addressed result cache.  Any number of
``repro worker --queue-dir DIR`` processes — on this host or any host
mounting the same filesystem — claim and evaluate the tasks; lease
expiry re-queues the tasks of workers that die mid-evaluation.

Submission and polling go through the queue's *batch* operations
(:meth:`~repro.runner.queue.TaskQueue.submit_many` /
:meth:`~repro.runner.queue.TaskQueue.poll_many`): one snapshot per
tick answers results, quarantine and lease liveness for every
outstanding task, which the HTTP transport turns into a single round
trip per tick instead of ~3 per task.
"""

from __future__ import annotations

import time
import traceback
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.models.benchmark import Benchmark
from repro.runner.backends.base import ExecutionBackend
from repro.runner.evaluate import evaluate_task
from repro.runner.job import payload_key
from repro.runner.queue import DEFAULT_LEASE_TTL, TaskQueue, WorkQueue


class QueueDrainTimeout(RuntimeError):
    """No task progress within the backend's timeout window."""


class QueueTaskFailed(RuntimeError):
    """A task of this submission was quarantined under ``failed/``.

    Evaluation here is deterministic, so a task that raised once will
    raise again: the submitter surfaces the worker's recorded traceback
    immediately instead of waiting for a result that can never arrive.
    Retry by deleting the task's ``failed/`` entry after fixing the
    cause.
    """


class QueueBackend(ExecutionBackend):
    """Execute payloads by publishing them to a shared work queue.

    The submitter logic is written against the
    :class:`~repro.runner.queue.TaskQueue` contract, not the file
    layout, so the same class drives the filesystem :class:`WorkQueue`
    directly *and* — through its :class:`HttpBackend
    <repro.runner.backends.http.HttpBackend>` subclass — a
    :class:`~repro.runner.transport.client.RemoteWorkQueue` behind an
    HTTP coordinator.

    Args:
        queue: any :class:`TaskQueue` (a queue directory path builds a
            :class:`WorkQueue` over it).
        lease_ttl: lease expiry used when ``queue`` is a path.
        drain: when ``True`` (default) the submitting process also
            claims and evaluates tasks while it waits, so a sweep
            completes even with zero external workers — extra workers
            purely add speed.  ``False`` makes the submitter
            coordinate-only (it still re-queues expired leases), which
            is how the CI smoke job proves external workers did the
            work.
        timeout: raise :class:`QueueDrainTimeout` after this many
            seconds *without progress* — a result arriving, a task
            evaluated here, an expired lease re-queued, or a live
            worker holding one of this submission's leases all count
            as progress, so the timeout only fires for a genuinely
            stuck queue.  ``None`` waits forever — sensible only when
            drain mode or a healthy worker fleet guarantees liveness.
        poll_interval: sleep between polls when idle.
        worker: lease tag identifying this submitter in the queue dir.
        reuse_results: when ``False`` (the CLI's ``--no-cache``),
            results already sitting in the queue's store are discarded
            and re-evaluated instead of reused, so a "fresh run"
            request really re-runs everything.  The store itself cannot
            be disabled — it is how workers hand results back.

    Note: ``workers_for`` reports 1 — the queue cannot know how many
    remote workers will pick its tasks up.
    """

    name = "queue"

    def __init__(
        self,
        queue: Union[TaskQueue, str, Path],
        lease_ttl: float = DEFAULT_LEASE_TTL,
        drain: bool = True,
        timeout: Optional[float] = None,
        poll_interval: float = 0.05,
        worker: str = "submitter",
        reuse_results: bool = True,
    ):
        if not isinstance(queue, TaskQueue):
            queue = WorkQueue(queue, lease_ttl=lease_ttl)
        self.queue = queue
        self.drain = bool(drain)
        self.timeout = timeout
        self.poll_interval = float(poll_interval)
        self.worker = worker
        self.reuse_results = bool(reuse_results)

    def execute(
        self,
        payloads: Sequence[Mapping[str, object]],
        benchmark: Optional[Benchmark] = None,
    ) -> List[Dict[str, object]]:
        del benchmark  # remote workers rebuild from the payload alone
        keys = [payload_key(payload) for payload in payloads]
        outputs: Dict[str, Dict[str, object]] = {}
        to_submit: List[Mapping[str, object]] = []
        if not self.reuse_results:
            self.queue.results.discard_many(keys)  # force a fresh run
            to_submit = list(payloads)
        else:
            # One poll_many answers every cache-hit question up front —
            # over HTTP this is one round trip instead of one per point.
            polled = self.queue.poll_many(keys)
            for payload, key in zip(payloads, keys):
                entry = polled.get(key) or {}
                cached = entry.get("result")
                if isinstance(cached, dict):
                    outputs[key] = cached
                elif not entry.get("deferred"):
                    # A deferred entry is a hit whose payload exceeded
                    # the reply budget: it arrives on a later poll, so
                    # re-uploading its task payload would be waste.
                    to_submit.append(payload)
        self.queue.submit_many(to_submit)

        waiting = [key for key in keys if key not in outputs]
        idle_start = time.monotonic()
        while waiting:
            # One snapshot per tick: results, quarantine state and live
            # leases for every outstanding task in a single poll_many
            # (a single batch/poll round trip over HTTP).
            polled = self.queue.poll_many(waiting)
            arrived = False
            lease_live = False
            for key in waiting:
                entry = polled.get(key) or {}
                result = entry.get("result")
                if isinstance(result, dict):
                    outputs[key] = result
                    arrived = True
                    continue
                if entry.get("failed"):
                    self._raise_failed(key, str(entry.get("error") or ""))
                if entry.get("lease_live"):
                    lease_live = True
            if arrived:
                waiting = [key for key in waiting if key not in outputs]
                idle_start = time.monotonic()
                continue
            # Progress is anything that moves a task of ours toward a
            # result: an expired lease re-queued (crash recovery), a
            # task evaluated by this process, or a live worker holding
            # one of our leases.  Only a genuinely stuck queue — no
            # results, no recovery, no one working — runs the timeout
            # clock.
            progressed = self.queue.requeue_expired() > 0
            if self.drain and self._drain_one():
                progressed = True
            if not progressed:
                progressed = lease_live
            if progressed:
                idle_start = time.monotonic()
                continue
            if (
                self.timeout is not None
                and time.monotonic() - idle_start >= self.timeout
            ):
                raise QueueDrainTimeout(
                    f"no progress for {self.timeout:.0f}s; "
                    f"{len(waiting)} task(s) still unresolved in "
                    f"{self.queue.location} (are any workers running?)"
                )
            time.sleep(self.poll_interval)
        return [outputs[key] for key in keys]

    def _raise_failed(self, key: str, error: str) -> None:
        """Surface a quarantined task of ours instead of waiting forever."""
        detail = f":\n{error}" if error else " (no traceback recorded)"
        raise QueueTaskFailed(
            f"task {key} was quarantined under failed/ of "
            f"{self.queue.location}{detail}"
        )

    def _drain_one(self) -> bool:
        """Claim and evaluate one task (any task — helping other
        submitters sharing the queue still makes global progress).

        A failing evaluation is quarantined, exactly as a fleet worker
        would (one foreign poison payload must not abort this
        submitter's own healthy sweep); if the failed task was *ours*,
        the next tick's ``poll_many`` reports it and `_raise_failed`
        surfaces it.
        """
        task = self.queue.claim(self.worker)
        if task is None:
            return False
        try:
            with self.queue.heartbeat(task):
                output = evaluate_task(task.payload)
        except Exception:  # checks: allow-broad-except poison task is quarantined via queue.fail
            self.queue.fail(task, error=traceback.format_exc())
            return True  # the quarantine itself is queue progress
        self.queue.results.put(task.task_id, output)
        self.queue.complete(task)
        return True
