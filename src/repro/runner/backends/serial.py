"""In-process serial execution: the reference backend."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.models.benchmark import Benchmark
from repro.runner.backends.base import ExecutionBackend
from repro.runner.evaluate import evaluate_payload
from repro.runner.job import result_to_payload


class SerialBackend(ExecutionBackend):
    """Evaluate every payload in this process, one after another.

    The baseline every other backend must match bitwise.  Accepts the
    live-``benchmark`` hint, so a caller that already holds the trained
    model never pays a zoo rebuild.
    """

    name = "serial"

    def execute(
        self,
        payloads: Sequence[Mapping[str, object]],
        benchmark: Optional[Benchmark] = None,
    ) -> List[Dict[str, object]]:
        return [
            result_to_payload(evaluate_payload(payload, benchmark))
            for payload in payloads
        ]
