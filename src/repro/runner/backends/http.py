"""HTTP execution: ship payloads to a coordinator, no shared mount.

:class:`HttpBackend` is :class:`~repro.runner.backends.queue.QueueBackend`
pointed at a :class:`~repro.runner.transport.client.RemoteWorkQueue`
instead of a queue directory — the submitter logic (publish, poll,
opportunistic drain, crash recovery, poison surfacing) is inherited
unchanged, because both queues implement the same
:class:`~repro.runner.queue.TaskQueue` contract.  Any host that can
reach the ``repro coordinator`` URL can submit sweeps or drain them
with ``repro worker --coordinator URL``.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.runner.backends.queue import QueueBackend
from repro.runner.transport.client import RemoteWorkQueue


class HttpBackend(QueueBackend):
    """Execute payloads through an HTTP coordinator's work queue.

    Args:
        coordinator: the coordinator's base URL (or an already-built
            :class:`RemoteWorkQueue`).
        token: shared secret matching the coordinator's ``--token-file``.
        drain / timeout / worker / reuse_results: exactly as on
            :class:`QueueBackend`.
        poll_interval: idle sleep between polls — defaults higher than
            the file queue's (a poll is a network round-trip here).
        gzip_mode: request-body compression policy handed to
            :class:`RemoteWorkQueue` (``auto`` / ``always`` / ``off``).
    """

    name = "http"

    def __init__(
        self,
        coordinator: Union[RemoteWorkQueue, str],
        token: Optional[str] = None,
        drain: bool = True,
        timeout: Optional[float] = None,
        poll_interval: float = 0.2,
        worker: str = "submitter",
        reuse_results: bool = True,
        gzip_mode: str = "auto",
    ):
        if not isinstance(coordinator, RemoteWorkQueue):
            coordinator = RemoteWorkQueue(
                coordinator, token=token, gzip_mode=gzip_mode
            )
        super().__init__(
            coordinator,
            drain=drain,
            timeout=timeout,
            poll_interval=poll_interval,
            worker=worker,
            reuse_results=reuse_results,
        )
