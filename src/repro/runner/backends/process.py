"""Process-pool execution: fan payloads across local worker processes."""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Mapping, Optional, Sequence

from repro.models.benchmark import Benchmark
from repro.runner.backends.base import ExecutionBackend
from repro.runner.backends.serial import SerialBackend
from repro.runner.evaluate import evaluate_point


class ProcessBackend(ExecutionBackend):
    """Fan payloads out over a lazily created ``ProcessPoolExecutor``.

    The pool is created on the first multi-payload batch and kept alive
    for the backend's lifetime: each worker's in-process zoo cache then
    amortises benchmark training across successive batches (a
    pool-per-call design would retrain the same networks every time).
    Single-payload batches fall back to in-process serial execution —
    the pool round-trip would cost more than it saves — which also lets
    them use the live-``benchmark`` hint.
    """

    name = "process"

    def __init__(self, jobs: int):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = int(jobs)
        self._serial = SerialBackend()
        self._pool: Optional[ProcessPoolExecutor] = None

    def execute(
        self,
        payloads: Sequence[Mapping[str, object]],
        benchmark: Optional[Benchmark] = None,
    ) -> List[Dict[str, object]]:
        if self.jobs == 1 or len(payloads) <= 1:
            return self._serial.execute(payloads, benchmark)
        return list(self._get_pool().map(evaluate_point, payloads))

    def workers_for(self, tasks: int) -> int:
        if self.jobs == 1 or tasks <= 1:
            return 1
        return min(self.jobs, tasks)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _get_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool
