"""The execution-backend contract shared by every execution strategy.

A backend answers exactly one question: *given these job payloads, get
me their result payloads, in order*.  Everything else — cache lookups,
shard fan-out and merging, report accounting — stays in
:class:`~repro.runner.parallel.ParallelRunner`, so adding a transport
(threads, a remote RPC pool, a cloud batch service) means implementing
one method.  All backends evaluate through
:func:`repro.runner.evaluate.evaluate_point`, the single evaluation
path, so every backend is bitwise-identical to every other by
construction; the equivalence suite (``tests/test_backends.py``) locks
that in.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Mapping, Optional, Sequence

from repro.models.benchmark import Benchmark


class ExecutionBackend(abc.ABC):
    """Strategy interface: evaluate job payloads, somewhere, in order."""

    #: Short identifier used by the CLI (``--backend NAME``) and reports.
    name: str = "abstract"

    @abc.abstractmethod
    def execute(
        self,
        payloads: Sequence[Mapping[str, object]],
        benchmark: Optional[Benchmark] = None,
    ) -> List[Dict[str, object]]:
        """Evaluate every payload; result payloads in submission order.

        ``benchmark`` is an optional live instance matching the
        payloads' identity — purely an optimisation hint for in-process
        execution (skips a zoo rebuild); distributed backends ignore it.
        """

    def workers_for(self, tasks: int) -> int:
        """How many workers a batch of ``tasks`` payloads would occupy."""
        del tasks
        return 1

    def close(self) -> None:
        """Release held resources (idempotent); the default holds none."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
