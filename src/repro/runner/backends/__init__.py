"""Pluggable execution backends for the sweep runner.

Four strategies behind one :class:`ExecutionBackend` contract:

- :class:`SerialBackend` — in-process, one payload at a time (the
  bitwise reference).
- :class:`ProcessBackend` — a persistent local ``ProcessPoolExecutor``.
- :class:`QueueBackend` — a file-based multi-host work queue drained by
  ``repro worker`` processes, with lease-based crash recovery.
- :class:`HttpBackend` — the same work-queue protocol spoken to a
  ``repro coordinator`` over HTTP, for hosts that share no filesystem.

All four produce bitwise-identical results for any jobs/shards
combination; ``tests/test_backends.py`` enforces it.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.runner.backends.base import ExecutionBackend
from repro.runner.backends.http import HttpBackend
from repro.runner.backends.process import ProcessBackend
from repro.runner.backends.queue import (
    QueueBackend,
    QueueDrainTimeout,
    QueueTaskFailed,
)
from repro.runner.backends.serial import SerialBackend
from repro.runner.queue import DEFAULT_LEASE_TTL, DEFAULT_QUEUE_DIR

#: CLI names of the available backends.
BACKEND_NAMES = ("serial", "process", "queue", "http")


def make_backend(
    name: str,
    jobs: int = 1,
    queue_dir: Union[str, Path] = DEFAULT_QUEUE_DIR,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    drain: bool = True,
    timeout: Optional[float] = None,
    reuse_results: bool = True,
    coordinator: Optional[str] = None,
    token: Optional[str] = None,
    gzip_mode: str = "auto",
) -> ExecutionBackend:
    """Build a backend from CLI/environment-style knobs.

    ``jobs`` only parameterises the process backend; ``queue_dir`` /
    ``lease_ttl`` only the queue backend; ``coordinator`` / ``token`` /
    ``gzip_mode`` only the http backend; ``drain`` / ``timeout`` /
    ``reuse_results`` the queue and http backends.
    """
    if name == "serial":
        return SerialBackend()
    if name == "process":
        return ProcessBackend(jobs=jobs)
    if name == "queue":
        return QueueBackend(
            queue_dir,
            lease_ttl=lease_ttl,
            drain=drain,
            timeout=timeout,
            reuse_results=reuse_results,
        )
    if name == "http":
        if not coordinator:
            raise ValueError(
                "the http backend needs a coordinator URL "
                "(--coordinator http://HOST:PORT)"
            )
        return HttpBackend(
            coordinator,
            token=token,
            drain=drain,
            timeout=timeout,
            reuse_results=reuse_results,
            gzip_mode=gzip_mode,
        )
    raise ValueError(
        f"unknown backend {name!r}; expected one of {BACKEND_NAMES}"
    )


__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "HttpBackend",
    "ProcessBackend",
    "QueueBackend",
    "QueueDrainTimeout",
    "QueueTaskFailed",
    "SerialBackend",
    "make_backend",
]
